//! Lockstep multi-replica stepping with cross-replica FFT batching.
//!
//! Each replica is a full [`MatrixFreeBd`] driver — own positions, own
//! RNG stream, own operator scratch — but replicas resolving to the same
//! shape share one [`PmePlans`]/[`TreePlans`] allocation from the runner's
//! [`PlanCache`], and the per-step drift `M f` of every same-shape periodic
//! group goes through **one** batched forward/inverse FFT pair instead of
//! `G` separate 3-transform trips.
//!
//! Bitwise contract: a replica stepped here produces exactly the trajectory
//! a standalone `MatrixFreeBd` with the same system, config, and seed
//! would. The window refresh (operator build + Brownian block) is the
//! standalone code path verbatim; the drift pipeline reuses the operator's
//! own spread/influence/interpolate kernels; and the batch FFTs are bitwise
//! identical per mesh to the single-mesh transforms.
//!
//! [`PmePlans`]: hibd_pme::PmePlans
//! [`TreePlans`]: hibd_treecode::TreePlans

use crate::cache::PlanCache;
use hibd_core::ewald_bd::BdError;
use hibd_core::mf_bd::{MatrixFreeConfig, MobilityPlans};
use hibd_core::{MatrixFreeBd, ParticleSystem};
use hibd_linalg::LinearOperator;
use hibd_pme::PmePhaseTimes;
use hibd_telemetry::{self as telemetry, Counter, LabeledSnapshot, Phase, Snapshot};
use std::sync::Arc;

/// Record `secs` as one span in a local (per-job) snapshot. Zero-length
/// deltas are skipped so idle phases keep a zero count.
fn record_phase(snap: &mut Snapshot, phase: Phase, secs: f64) {
    if secs > 0.0 {
        snap.phases[phase as usize].record((secs * 1e9) as u64);
    }
}

/// Fold one step's worth of PME operator phase times into a job snapshot.
fn record_pme_times(snap: &mut Snapshot, t: &PmePhaseTimes) {
    record_phase(snap, Phase::Spreading, t.spreading);
    record_phase(snap, Phase::ForwardFft, t.forward_fft);
    record_phase(snap, Phase::Influence, t.influence);
    record_phase(snap, Phase::InverseFft, t.inverse_fft);
    record_phase(snap, Phase::Interpolation, t.interpolation);
    record_phase(snap, Phase::RealSpace, t.real_space);
}

/// Steps `R` replicas in lockstep, sharing setup plans and batching the
/// drift FFTs of same-shape periodic replicas.
pub struct EnsembleRunner {
    replicas: Vec<MatrixFreeBd>,
    cache: PlanCache,
    /// Same-shape periodic replica groups (indices into `replicas`), fixed
    /// at construction: plans are per-driver immutable.
    groups: Vec<Vec<usize>>,
    /// Open-boundary replicas, stepped through their own tree operator.
    solo: Vec<usize>,
    /// Per-replica drift `M f` buffers.
    drift: Vec<Vec<f64>>,
    /// Per-job phase statistics ("r0", "r1", ...).
    per_job: Vec<Snapshot>,
    /// Work not attributable to one job: the batched FFT passes.
    shared: Snapshot,
}

impl EnsembleRunner {
    /// Build one replica per `(system, seed)` job, all under `cfg`, sharing
    /// setup plans through an internal [`PlanCache`].
    pub fn new(
        cfg: MatrixFreeConfig,
        jobs: Vec<(ParticleSystem, u64)>,
    ) -> Result<EnsembleRunner, BdError> {
        let mut cache = PlanCache::new();
        let mut replicas = Vec::with_capacity(jobs.len());
        for (system, seed) in jobs {
            let plans = cache.plans_for(&system, &cfg)?;
            replicas.push(MatrixFreeBd::with_plans(system, cfg, seed, plans)?);
        }

        // Group periodic replicas by shared-plan identity. `Arc::ptr_eq` is
        // the grouping key: equal pointers guarantee the same FFT plan, so
        // one batched transform serves the whole group.
        let mut groups: Vec<(Arc<hibd_pme::PmePlans>, Vec<usize>)> = Vec::new();
        let mut solo = Vec::new();
        for (r, bd) in replicas.iter().enumerate() {
            match bd.plans() {
                MobilityPlans::Pme(p) => match groups.iter_mut().find(|(g, _)| Arc::ptr_eq(g, p)) {
                    Some((_, members)) => members.push(r),
                    None => groups.push((Arc::clone(p), vec![r])),
                },
                MobilityPlans::Tree(_) => solo.push(r),
            }
        }

        let n_jobs = replicas.len();
        Ok(EnsembleRunner {
            replicas,
            cache,
            groups: groups.into_iter().map(|(_, members)| members).collect(),
            solo,
            drift: vec![Vec::new(); n_jobs],
            per_job: vec![Snapshot::empty(); n_jobs],
            shared: Snapshot::empty(),
        })
    }

    /// Number of replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the runner holds no replicas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Replica `r` (read access: positions, timings, parameters).
    #[must_use]
    pub fn replica(&self, r: usize) -> &MatrixFreeBd {
        &self.replicas[r]
    }

    /// Replica `r`, mutable — for attaching forces before stepping.
    pub fn replica_mut(&mut self, r: usize) -> &mut MatrixFreeBd {
        &mut self.replicas[r]
    }

    /// The internal plan cache (hit/miss counters, resident plan bytes).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Advance every replica by one BD step.
    pub fn step(&mut self) -> Result<(), BdError> {
        let n_jobs = self.replicas.len();

        // Window refresh per replica (operator rebuild + Brownian block),
        // attributing the standalone-path timings to the owning job.
        for r in 0..n_jobs {
            let before = *self.replicas[r].timings();
            self.replicas[r].ensure_window()?;
            let after = *self.replicas[r].timings();
            let setup_phase = match self.replicas[r].plans() {
                MobilityPlans::Pme(_) => Phase::PmeSetup,
                MobilityPlans::Tree(_) => Phase::TreeBuild,
            };
            let snap = &mut self.per_job[r];
            record_phase(snap, setup_phase, after.setup - before.setup);
            record_phase(snap, Phase::Displacements, after.displacements - before.displacements);
            snap.counters[Counter::LanczosIterations as usize] +=
                (after.krylov_iterations - before.krylov_iterations) as u64;
        }

        // Deterministic forces on the current configurations.
        let forces: Vec<Vec<f64>> =
            self.replicas.iter_mut().map(MatrixFreeBd::total_forces).collect();
        for (r, bd) in self.replicas.iter().enumerate() {
            self.drift[r].clear();
            self.drift[r].resize(3 * bd.system().len(), 0.0);
        }

        // Drift `M f` for each same-shape periodic group: per-replica
        // real-space + spread, one shared batched FFT round trip,
        // per-replica influence + interpolation. The batch buffers are
        // *borrowed* from the group's first operator — its Krylov batch
        // scratch already holds `3 lambda` meshes, so lockstepping adds no
        // large allocation of its own.
        for group in &self.groups {
            let g = group.len();
            let host = group[0];
            let plans = match self.replicas[host].plans() {
                MobilityPlans::Pme(p) => Arc::clone(p),
                MobilityPlans::Tree(_) => unreachable!("groups hold periodic replicas"),
            };
            let k = plans.params().mesh_dim;
            let k3 = k * k * k;
            let s_len = k * k * (k / 2 + 1);
            let (need_mesh, need_spec) = (3 * g * k3, 3 * g * s_len);
            let (mut bmesh, mut bspec) = self.replicas[host]
                .pme_operator_mut()
                .expect("periodic replica runs on PME")
                .take_batch_scratch(g);

            for (gi, &r) in group.iter().enumerate() {
                let op = self.replicas[r].pme_operator_mut().expect("periodic replica runs on PME");
                op.real_apply(&forces[r], &mut self.drift[r]);
                op.spread_forces(&forces[r], &mut bmesh[gi * 3 * k3..(gi + 1) * 3 * k3]);
            }

            let sw = telemetry::start(Phase::ForwardFft);
            plans.fft().forward_batch(&bmesh[..need_mesh], &mut bspec[..need_spec], 3 * g);
            record_phase(&mut self.shared, Phase::ForwardFft, sw.stop());

            for (gi, &r) in group.iter().enumerate() {
                let sw = telemetry::start(Phase::Influence);
                plans.influence().apply(&mut bspec[gi * 3 * s_len..(gi + 1) * 3 * s_len]);
                record_phase(&mut self.per_job[r], Phase::Influence, sw.stop());
            }

            let sw = telemetry::start(Phase::InverseFft);
            plans.fft().inverse_batch(&mut bspec[..need_spec], &mut bmesh[..need_mesh], 3 * g);
            record_phase(&mut self.shared, Phase::InverseFft, sw.stop());

            for (gi, &r) in group.iter().enumerate() {
                let op = self.replicas[r].pme_operator_mut().expect("periodic replica runs on PME");
                op.interpolate_add(&bmesh[gi * 3 * k3..(gi + 1) * 3 * k3], &mut self.drift[r]);
            }

            self.replicas[host]
                .pme_operator_mut()
                .expect("periodic replica runs on PME")
                .restore_batch_scratch(bmesh, bspec);
        }

        // Open-boundary replicas: the treecode apply is already an `O(n
        // log n)` single pass with nothing to batch across replicas.
        for &r in &self.solo {
            let sw = telemetry::start(Phase::Stepping);
            let op = self.replicas[r].tree_operator_mut().expect("open replica runs on the tree");
            op.apply(&forces[r], &mut self.drift[r]);
            record_phase(&mut self.per_job[r], Phase::Stepping, sw.stop());
        }

        // Propagate every replica and attribute the remaining phase time.
        for r in 0..n_jobs {
            let before = self.replicas[r].timings().stepping;
            let drift = std::mem::take(&mut self.drift[r]);
            self.replicas[r].advance_with_drift(&drift);
            self.drift[r] = drift;
            let delta = self.replicas[r].timings().stepping - before;
            record_phase(&mut self.per_job[r], Phase::Stepping, delta);
            let times = self.replicas[r].pme_operator_mut().map(hibd_pme::PmeOperator::take_times);
            if let Some(times) = times {
                record_pme_times(&mut self.per_job[r], &times);
            }
        }
        Ok(())
    }

    /// Advance every replica by `m` steps.
    pub fn run(&mut self, m: usize) -> Result<(), BdError> {
        for _ in 0..m {
            self.step()?;
        }
        Ok(())
    }

    /// Per-job phase statistics labeled `r0..r{R-1}` plus a `shared` entry
    /// for the batched FFT passes and the plan-cache counters. Merging
    /// these across runners goes through
    /// [`hibd_telemetry::merge_labeled`].
    #[must_use]
    pub fn job_snapshots(&self) -> Vec<LabeledSnapshot> {
        let mut out: Vec<LabeledSnapshot> = self
            .per_job
            .iter()
            .enumerate()
            .map(|(r, s)| LabeledSnapshot { label: format!("r{r}"), snapshot: s.clone() })
            .collect();
        let mut shared = self.shared.clone();
        shared.counters[Counter::PlanCacheHits as usize] = self.cache.hits();
        shared.counters[Counter::PlanCacheMisses as usize] = self.cache.misses();
        out.push(LabeledSnapshot { label: "shared".into(), snapshot: shared });
        out
    }

    /// Resident bytes of the whole ensemble: every replica's per-job
    /// operator state (which includes the borrowed batch scratch), each
    /// distinct shared plan set **once**, and the drift buffers. With `R`
    /// replicas of one shape this is strictly less than `R` standalone
    /// operators, which count their plans `R` times.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let mut total =
            self.drift.iter().map(|d| d.capacity() * std::mem::size_of::<f64>()).sum::<usize>();
        let mut seen: Vec<*const u8> = Vec::new();
        for bd in &self.replicas {
            if let Some(op) = bd.pme_operator() {
                total += op.state_memory_bytes();
            }
            if let Some(op) = bd.tree_operator() {
                total += op.state_memory_bytes();
            }
            let (ptr, bytes) = match bd.plans() {
                MobilityPlans::Pme(p) => (Arc::as_ptr(p).cast::<u8>(), p.memory_bytes()),
                MobilityPlans::Tree(p) => (Arc::as_ptr(p).cast::<u8>(), p.memory_bytes()),
            };
            if !seen.contains(&ptr) {
                seen.push(ptr);
                total += bytes;
            }
        }
        total
    }
}
