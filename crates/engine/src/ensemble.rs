//! Lockstep multi-replica stepping with cross-replica FFT batching.
//!
//! Each replica is a full [`MatrixFreeBd`] driver — own positions, own
//! RNG stream, own operator scratch — but replicas resolving to the same
//! shape share one [`PmePlans`]/[`TreePlans`] allocation from the runner's
//! [`PlanCache`], and the per-step drift `M f` of every same-shape periodic
//! group goes through **one** batched forward/inverse FFT pair instead of
//! `G` separate 3-transform trips.
//!
//! Membership is dynamic: [`EnsembleRunner::admit`] adds a job between
//! steps (it joins its shape group at the next step boundary) and
//! [`EnsembleRunner::retire`] removes one without stalling the rest —
//! retired slots are reused by later admissions. This is safe under the
//! bitwise contract because the batched FFTs are bitwise identical per
//! mesh: regrouping only repacks which meshes ride in one batch, never
//! what any single mesh computes.
//!
//! Bitwise contract: a replica stepped here produces exactly the trajectory
//! a standalone `MatrixFreeBd` with the same system, config, and seed
//! would. The window refresh (operator build + Brownian block) is the
//! standalone code path verbatim; the drift pipeline reuses the operator's
//! own spread/influence/interpolate kernels; and the batch FFTs are bitwise
//! identical per mesh to the single-mesh transforms.
//!
//! [`PmePlans`]: hibd_pme::PmePlans
//! [`TreePlans`]: hibd_treecode::TreePlans

use crate::cache::PlanCache;
use hibd_core::ewald_bd::BdError;
use hibd_core::mf_bd::{MatrixFreeConfig, MobilityPlans};
use hibd_core::{MatrixFreeBd, ParticleSystem};
use hibd_linalg::LinearOperator;
use hibd_pme::PmePhaseTimes;
use hibd_telemetry::{self as telemetry, Counter, LabeledSnapshot, Phase, Snapshot};
use std::sync::Arc;

/// Record `secs` as one span in a local (per-job) snapshot. Zero-length
/// deltas are skipped so idle phases keep a zero count.
fn record_phase(snap: &mut Snapshot, phase: Phase, secs: f64) {
    if secs > 0.0 {
        snap.phases[phase as usize].record((secs * 1e9) as u64);
    }
}

/// Fold one step's worth of PME operator phase times into a job snapshot.
fn record_pme_times(snap: &mut Snapshot, t: &PmePhaseTimes) {
    record_phase(snap, Phase::Spreading, t.spreading);
    record_phase(snap, Phase::ForwardFft, t.forward_fft);
    record_phase(snap, Phase::Influence, t.influence);
    record_phase(snap, Phase::InverseFft, t.inverse_fft);
    record_phase(snap, Phase::Interpolation, t.interpolation);
    record_phase(snap, Phase::RealSpace, t.real_space);
}

/// Why a job failed during an isolated step.
#[derive(Debug)]
pub enum JobFault {
    /// The driver returned a structured error.
    Error(BdError),
    /// The job panicked; the payload message, when one was attached.
    Panic(String),
}

impl std::fmt::Display for JobFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFault::Error(e) => write!(f, "{e}"),
            JobFault::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// One job's failure from [`EnsembleRunner::step_isolated`]. The slot is
/// dead for the rest of that step; the caller decides whether to
/// [`retire`](EnsembleRunner::retire) it (a failed job's operator scratch
/// is suspect — always retire before stepping again).
#[derive(Debug)]
pub struct JobFailure {
    /// Slot index of the failed job.
    pub slot: usize,
    /// What went wrong.
    pub fault: JobFault,
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run one per-job segment. With `isolate` set, panics are caught and
/// converted into faults (the segment only touches that job's own driver
/// state, which the caller then retires — hence the `AssertUnwindSafe`);
/// without it, errors and panics propagate exactly as before.
fn run_guarded<T>(isolate: bool, f: impl FnOnce() -> Result<T, BdError>) -> Result<T, JobFault> {
    if isolate {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(JobFault::Error(e)),
            Err(p) => Err(JobFault::Panic(panic_message(p.as_ref()))),
        }
    } else {
        f().map_err(JobFault::Error)
    }
}

/// Record a per-job fault, or propagate it when isolation is off.
fn note_fault(
    isolate: bool,
    slot: usize,
    fault: JobFault,
    dead: &mut [bool],
    failures: &mut Vec<JobFailure>,
) -> Result<(), BdError> {
    if !isolate {
        if let JobFault::Error(e) = fault {
            return Err(e);
        }
    }
    dead[slot] = true;
    failures.push(JobFailure { slot, fault });
    Ok(())
}

/// Steps live replicas in lockstep, sharing setup plans and batching the
/// drift FFTs of same-shape periodic replicas. Slots are stable handles:
/// a job keeps its slot index for life, and retired slots are recycled.
pub struct EnsembleRunner {
    slots: Vec<Option<MatrixFreeBd>>,
    cache: PlanCache,
    /// Same-shape periodic groups (slot indices), rebuilt on every
    /// admit/retire. Plans are per-driver immutable, so membership only
    /// changes at those step boundaries.
    groups: Vec<Vec<usize>>,
    /// Open-boundary slots, stepped through their own tree operator.
    solo: Vec<usize>,
    /// Per-slot drift `M f` buffers.
    drift: Vec<Vec<f64>>,
    /// Per-slot phase statistics ("r0", "r1", ...).
    per_job: Vec<Snapshot>,
    /// Work not attributable to one job: the batched FFT passes.
    shared: Snapshot,
}

impl EnsembleRunner {
    /// Build one replica per `(system, seed)` job, all under `cfg`, sharing
    /// setup plans through an internal unbounded [`PlanCache`].
    pub fn new(
        cfg: MatrixFreeConfig,
        jobs: Vec<(ParticleSystem, u64)>,
    ) -> Result<EnsembleRunner, BdError> {
        let mut runner = EnsembleRunner::with_cache(PlanCache::new());
        for (system, seed) in jobs {
            runner.admit(system, cfg, seed)?;
        }
        Ok(runner)
    }

    /// An empty runner that shares plans through `cache` (use
    /// [`PlanCache::with_capacity`] to bound a long-running service).
    #[must_use]
    pub fn with_cache(cache: PlanCache) -> EnsembleRunner {
        EnsembleRunner {
            slots: Vec::new(),
            cache,
            groups: Vec::new(),
            solo: Vec::new(),
            drift: Vec::new(),
            per_job: Vec::new(),
            shared: Snapshot::empty(),
        }
    }

    /// Admit a new job, returning its slot index. The job joins its shape
    /// group at the next step boundary; a retired slot is reused when one
    /// is free. Admission is the only point that builds plans, so a
    /// same-shape admit is a cache hit and shares the existing `Arc`.
    pub fn admit(
        &mut self,
        system: ParticleSystem,
        cfg: MatrixFreeConfig,
        seed: u64,
    ) -> Result<usize, BdError> {
        let plans = self.cache.plans_for(&system, &cfg)?;
        let bd = MatrixFreeBd::with_plans(system, cfg, seed, plans)?;
        let slot = match self.slots.iter().position(Option::is_none) {
            Some(free) => {
                self.slots[free] = Some(bd);
                free
            }
            None => {
                self.slots.push(Some(bd));
                self.drift.push(Vec::new());
                self.per_job.push(Snapshot::empty());
                self.slots.len() - 1
            }
        };
        self.drift[slot].clear();
        self.per_job[slot] = Snapshot::empty();
        self.regroup();
        Ok(slot)
    }

    /// Remove the job in `slot` (finished, failed, or cancelled) and hand
    /// its driver back; the rest of its group keeps stepping. Read the
    /// slot's [`job_snapshot`](EnsembleRunner::job_snapshot) *before*
    /// retiring — retirement resets it for the next occupant.
    pub fn retire(&mut self, slot: usize) -> Option<MatrixFreeBd> {
        let bd = self.slots.get_mut(slot)?.take()?;
        self.drift[slot] = Vec::new();
        self.per_job[slot] = Snapshot::empty();
        self.regroup();
        Some(bd)
    }

    /// Rebuild the periodic groups and the solo list from the live slots.
    /// `Arc::ptr_eq` is the grouping key: equal pointers guarantee the
    /// same FFT plan, so one batched transform serves the whole group.
    /// Slot-index iteration keeps the grouping deterministic.
    fn regroup(&mut self) {
        let mut groups: Vec<(Arc<hibd_pme::PmePlans>, Vec<usize>)> = Vec::new();
        let mut solo = Vec::new();
        for (r, bd) in self.slots.iter().enumerate() {
            let Some(bd) = bd else { continue };
            match bd.plans() {
                MobilityPlans::Pme(p) => match groups.iter_mut().find(|(g, _)| Arc::ptr_eq(g, p)) {
                    Some((_, members)) => members.push(r),
                    None => groups.push((Arc::clone(p), vec![r])),
                },
                MobilityPlans::Tree(_) => solo.push(r),
            }
        }
        self.groups = groups.into_iter().map(|(_, members)| members).collect();
        self.solo = solo;
    }

    /// Number of live replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the runner holds no live replicas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot indices of the live replicas, in slot order.
    #[must_use]
    pub fn live_slots(&self) -> Vec<usize> {
        (0..self.slots.len()).filter(|&r| self.slots[r].is_some()).collect()
    }

    /// The replica in `slot`, when one is live there.
    #[must_use]
    pub fn slot(&self, slot: usize) -> Option<&MatrixFreeBd> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// The replica in `slot`, mutable, when one is live there.
    pub fn slot_mut(&mut self, slot: usize) -> Option<&mut MatrixFreeBd> {
        self.slots.get_mut(slot).and_then(Option::as_mut)
    }

    /// Replica `r` (read access: positions, timings, parameters).
    ///
    /// # Panics
    /// Panics when slot `r` is empty; use [`slot`](EnsembleRunner::slot)
    /// where retirement is in play.
    #[must_use]
    pub fn replica(&self, r: usize) -> &MatrixFreeBd {
        self.slots[r].as_ref().expect("live replica")
    }

    /// Replica `r`, mutable — for attaching forces before stepping.
    ///
    /// # Panics
    /// Panics when slot `r` is empty.
    pub fn replica_mut(&mut self, r: usize) -> &mut MatrixFreeBd {
        self.slots[r].as_mut().expect("live replica")
    }

    /// The internal plan cache (hit/miss/eviction counters, plan bytes).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Sizes of the current same-shape periodic groups, in group order.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }

    /// Number of open-boundary (ungrouped) replicas.
    #[must_use]
    pub fn solo_count(&self) -> usize {
        self.solo.len()
    }

    /// Advance every replica by one BD step. The first job error aborts
    /// the step (and a job panic propagates) — the pre-service contract.
    pub fn step(&mut self) -> Result<(), BdError> {
        self.step_impl(false).map(|_| ())
    }

    /// Advance every replica by one BD step with per-job fault isolation:
    /// a job that errors or panics is skipped for the rest of the step and
    /// reported, while the rest of its group (and the daemon) keep going.
    /// Failed slots must be [`retire`](EnsembleRunner::retire)d before the
    /// next step — their driver state is suspect.
    pub fn step_isolated(&mut self) -> Vec<JobFailure> {
        self.step_impl(true).expect("isolated step never propagates job faults")
    }

    fn step_impl(&mut self, isolate: bool) -> Result<Vec<JobFailure>, BdError> {
        let n_slots = self.slots.len();
        let mut failures = Vec::new();
        let mut dead = vec![false; n_slots];

        // Window refresh per replica (operator rebuild + Brownian block),
        // attributing the standalone-path timings to the owning job.
        for r in 0..n_slots {
            let Some(bd) = self.slots[r].as_mut() else {
                dead[r] = true;
                continue;
            };
            let before = *bd.timings();
            let setup_phase = match bd.plans() {
                MobilityPlans::Pme(_) => Phase::PmeSetup,
                MobilityPlans::Tree(_) => Phase::TreeBuild,
            };
            match run_guarded(isolate, || bd.ensure_window()) {
                Ok(()) => {
                    let after = *self.slots[r].as_ref().expect("live").timings();
                    let snap = &mut self.per_job[r];
                    record_phase(snap, setup_phase, after.setup - before.setup);
                    record_phase(
                        snap,
                        Phase::Displacements,
                        after.displacements - before.displacements,
                    );
                    snap.counters[Counter::LanczosIterations as usize] +=
                        (after.krylov_iterations - before.krylov_iterations) as u64;
                }
                Err(fault) => note_fault(isolate, r, fault, &mut dead, &mut failures)?,
            }
        }

        // Deterministic forces on the current configurations.
        let mut forces: Vec<Vec<f64>> = vec![Vec::new(); n_slots];
        for r in 0..n_slots {
            if dead[r] {
                continue;
            }
            let bd = self.slots[r].as_mut().expect("live");
            match run_guarded(isolate, || Ok(bd.total_forces())) {
                Ok(f) => forces[r] = f,
                Err(fault) => note_fault(isolate, r, fault, &mut dead, &mut failures)?,
            }
        }
        for (r, is_dead) in dead.iter().enumerate() {
            if *is_dead {
                self.drift[r].clear();
                continue;
            }
            let n = self.slots[r].as_ref().expect("live").system().len();
            self.drift[r].clear();
            self.drift[r].resize(3 * n, 0.0);
        }

        // Drift `M f` for each same-shape periodic group: per-replica
        // real-space + spread, one shared batched FFT round trip,
        // per-replica influence + interpolation. The batch buffers are
        // *borrowed* from the group's first live operator — its Krylov
        // batch scratch already holds `3 lambda` meshes, so lockstepping
        // adds no large allocation of its own. A member that faults
        // mid-group leaves its mesh chunk untouched downstream; the batch
        // FFT is bitwise per mesh, so one member's garbage never reaches
        // another's lanes.
        for group in &self.groups {
            let live: Vec<usize> = group.iter().copied().filter(|&r| !dead[r]).collect();
            let Some(&host) = live.first() else { continue };
            let g = live.len();
            let plans = match self.slots[host].as_ref().expect("live").plans() {
                MobilityPlans::Pme(p) => Arc::clone(p),
                MobilityPlans::Tree(_) => unreachable!("groups hold periodic replicas"),
            };
            let k = plans.params().mesh_dim;
            let k3 = k * k * k;
            let s_len = k * k * (k / 2 + 1);
            let (need_mesh, need_spec) = (3 * g * k3, 3 * g * s_len);
            let (mut bmesh, mut bspec) = self.slots[host]
                .as_mut()
                .expect("live")
                .pme_operator_mut()
                .expect("periodic replica runs on PME")
                .take_batch_scratch(g);

            for (gi, &r) in live.iter().enumerate() {
                let chunk = &mut bmesh[gi * 3 * k3..(gi + 1) * 3 * k3];
                let bd = self.slots[r].as_mut().expect("live");
                let f = &forces[r];
                let drift = &mut self.drift[r];
                let res = run_guarded(isolate, || {
                    let op = bd.pme_operator_mut().expect("periodic replica runs on PME");
                    op.real_apply(f, drift);
                    op.spread_forces(f, chunk);
                    Ok(())
                });
                if let Err(fault) = res {
                    note_fault(isolate, r, fault, &mut dead, &mut failures)?;
                }
            }

            let sw = telemetry::start(Phase::ForwardFft);
            plans.fft().forward_batch(&bmesh[..need_mesh], &mut bspec[..need_spec], 3 * g);
            record_phase(&mut self.shared, Phase::ForwardFft, sw.stop());

            for (gi, &r) in live.iter().enumerate() {
                if dead[r] {
                    continue;
                }
                let sw = telemetry::start(Phase::Influence);
                plans.influence().apply(&mut bspec[gi * 3 * s_len..(gi + 1) * 3 * s_len]);
                record_phase(&mut self.per_job[r], Phase::Influence, sw.stop());
            }

            let sw = telemetry::start(Phase::InverseFft);
            plans.fft().inverse_batch(&mut bspec[..need_spec], &mut bmesh[..need_mesh], 3 * g);
            record_phase(&mut self.shared, Phase::InverseFft, sw.stop());

            for (gi, &r) in live.iter().enumerate() {
                if dead[r] {
                    continue;
                }
                let chunk = &bmesh[gi * 3 * k3..(gi + 1) * 3 * k3];
                let bd = self.slots[r].as_mut().expect("live");
                let drift = &mut self.drift[r];
                let res = run_guarded(isolate, || {
                    bd.pme_operator_mut()
                        .expect("periodic replica runs on PME")
                        .interpolate_add(chunk, drift);
                    Ok(())
                });
                if let Err(fault) = res {
                    note_fault(isolate, r, fault, &mut dead, &mut failures)?;
                }
            }

            self.slots[host]
                .as_mut()
                .expect("live")
                .pme_operator_mut()
                .expect("periodic replica runs on PME")
                .restore_batch_scratch(bmesh, bspec);
        }

        // Open-boundary replicas: the treecode apply is already an `O(n
        // log n)` single pass with nothing to batch across replicas.
        for &r in &self.solo {
            if dead[r] {
                continue;
            }
            let sw = telemetry::start(Phase::Stepping);
            let bd = self.slots[r].as_mut().expect("live");
            let f = &forces[r];
            let drift = &mut self.drift[r];
            let res = run_guarded(isolate, || {
                let op = bd.tree_operator_mut().expect("open replica runs on the tree");
                op.apply(f, drift);
                Ok(())
            });
            record_phase(&mut self.per_job[r], Phase::Stepping, sw.stop());
            if let Err(fault) = res {
                note_fault(isolate, r, fault, &mut dead, &mut failures)?;
            }
        }

        // Propagate every replica and attribute the remaining phase time.
        for r in 0..n_slots {
            if dead[r] {
                continue;
            }
            let bd = self.slots[r].as_mut().expect("live");
            let before = bd.timings().stepping;
            let drift = std::mem::take(&mut self.drift[r]);
            let res = run_guarded(isolate, || {
                bd.advance_with_drift(&drift);
                Ok(())
            });
            self.drift[r] = drift;
            match res {
                Ok(()) => {
                    let bd = self.slots[r].as_ref().expect("live");
                    let delta = bd.timings().stepping - before;
                    record_phase(&mut self.per_job[r], Phase::Stepping, delta);
                    let times = self.slots[r]
                        .as_mut()
                        .expect("live")
                        .pme_operator_mut()
                        .map(hibd_pme::PmeOperator::take_times);
                    if let Some(times) = times {
                        record_pme_times(&mut self.per_job[r], &times);
                    }
                }
                Err(fault) => note_fault(isolate, r, fault, &mut dead, &mut failures)?,
            }
        }
        Ok(failures)
    }

    /// Advance every replica by `m` steps.
    pub fn run(&mut self, m: usize) -> Result<(), BdError> {
        for _ in 0..m {
            self.step()?;
        }
        Ok(())
    }

    /// One live slot's accumulated phase statistics.
    #[must_use]
    pub fn job_snapshot(&self, slot: usize) -> Snapshot {
        self.per_job[slot].clone()
    }

    /// Per-job phase statistics labeled `r{slot}` for every live slot plus
    /// a `shared` entry for the batched FFT passes and the plan-cache
    /// counters. Merging these across runners goes through
    /// [`hibd_telemetry::merge_labeled`].
    #[must_use]
    pub fn job_snapshots(&self) -> Vec<LabeledSnapshot> {
        let mut out: Vec<LabeledSnapshot> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(r, _)| LabeledSnapshot {
                label: format!("r{r}"),
                snapshot: self.per_job[r].clone(),
            })
            .collect();
        let mut shared = self.shared.clone();
        shared.counters[Counter::PlanCacheHits as usize] = self.cache.hits();
        shared.counters[Counter::PlanCacheMisses as usize] = self.cache.misses();
        shared.counters[Counter::PlanCacheEvictions as usize] = self.cache.evictions();
        out.push(LabeledSnapshot { label: "shared".into(), snapshot: shared });
        out
    }

    /// Resident bytes of the whole ensemble: every live replica's per-job
    /// operator state (which includes the borrowed batch scratch), each
    /// distinct shared plan set **once**, and the drift buffers. With `R`
    /// replicas of one shape this is strictly less than `R` standalone
    /// operators, which count their plans `R` times.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let mut total =
            self.drift.iter().map(|d| d.capacity() * std::mem::size_of::<f64>()).sum::<usize>();
        let mut seen: Vec<*const u8> = Vec::new();
        for bd in self.slots.iter().flatten() {
            if let Some(op) = bd.pme_operator() {
                total += op.state_memory_bytes();
            }
            if let Some(op) = bd.tree_operator() {
                total += op.state_memory_bytes();
            }
            let (ptr, bytes) = match bd.plans() {
                MobilityPlans::Pme(p) => (Arc::as_ptr(p).cast::<u8>(), p.memory_bytes()),
                MobilityPlans::Tree(p) => (Arc::as_ptr(p).cast::<u8>(), p.memory_bytes()),
            };
            if !seen.contains(&ptr) {
                seen.push(ptr);
                total += bytes;
            }
        }
        total
    }
}
