//! The shared plan cache: one set of setup artifacts per distinct shape.
//!
//! A "shape" is everything the position-independent setup work depends on:
//! the tuned PME parameters for a periodic box, or the treecode schedule
//! for an open cloud. Two jobs resolving to the same shape get the *same*
//! `Arc`, so the `O(K^3)` influence table and the FFT twiddle plans exist
//! once no matter how many replicas run.

use hibd_core::ewald_bd::BdError;
use hibd_core::mf_bd::{resolve_shape, MatrixFreeConfig, MobilityPlans};
use hibd_core::ParticleSystem;
use hibd_pme::{PmeParams, PmePlans};
use hibd_telemetry::{self as telemetry, Counter, Phase};
use hibd_treecode::{TreeEval, TreeParams, TreePlans};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Canonical, totally ordered identity of a mobility-backend shape.
/// Floating-point parameters are keyed by their exact bit patterns: the
/// cache must only ever share plans between *identical* parameter sets, so
/// semantic closeness (or `NaN` quirks) is irrelevant — equal bits, equal
/// shape. The bit patterns also give the key a total order, which the
/// `BTreeMap` store turns into deterministic iteration (memory accounting,
/// `shapes()`) regardless of insertion history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShapeKey {
    /// Periodic box: the full tuned PME parameter set.
    Periodic {
        a: u64,
        eta: u64,
        box_l: u64,
        alpha: u64,
        mesh_dim: usize,
        spline_order: usize,
        r_max: u64,
    },
    /// Open cloud: the treecode accuracy schedule plus the far-field
    /// strategy — [`TreePlans`] for the FMM carry the L2L tables the
    /// treecode's don't, so the two must never share an entry.
    Open { theta: u64, leaf_capacity: usize, cheb_order: usize, a: u64, eta: u64, eval: TreeEval },
}

impl ShapeKey {
    /// Key for a periodic shape.
    #[must_use]
    pub fn periodic(p: &PmeParams) -> ShapeKey {
        ShapeKey::Periodic {
            a: p.a.to_bits(),
            eta: p.eta.to_bits(),
            box_l: p.box_l.to_bits(),
            alpha: p.alpha.to_bits(),
            mesh_dim: p.mesh_dim,
            spline_order: p.spline_order,
            r_max: p.r_max.to_bits(),
        }
    }

    /// Key for an open (free-space) shape.
    #[must_use]
    pub fn open(p: &TreeParams) -> ShapeKey {
        ShapeKey::Open {
            theta: p.theta.to_bits(),
            leaf_capacity: p.leaf_capacity,
            cheb_order: p.cheb_order,
            a: p.a.to_bits(),
            eta: p.eta.to_bits(),
            eval: p.eval,
        }
    }
}

/// Deduplicating store of setup plans, keyed by [`ShapeKey`]. Lookups
/// count as hits (an existing `Arc` was reused) or misses (fresh plans were
/// built) both locally and on the global telemetry counters. The maps are
/// `BTreeMap`s, not `HashMap`s: the engine sits inside the bitwise
/// determinism contract, and key-ordered iteration keeps every traversal
/// (accounting, shape listings) independent of the per-process hasher seed.
#[derive(Default)]
pub struct PlanCache {
    pme: BTreeMap<ShapeKey, Arc<PmePlans>>,
    tree: BTreeMap<ShapeKey, Arc<TreePlans>>,
    /// Keys from least- to most-recently used; `None` capacity = unbounded.
    /// A `Vec` scan is fine: capacities are tens of shapes, not thousands.
    recency: Vec<ShapeKey>,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache holding at most `capacity` shapes; the least-recently
    /// used entry is evicted on overflow (`capacity` 0 is treated as 1 —
    /// the entry just built must survive long enough to be returned). Jobs
    /// already holding an evicted `Arc` keep it alive; eviction only means
    /// the *next* job with that shape rebuilds its plans.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache { capacity: Some(capacity.max(1)), ..PlanCache::default() }
    }

    /// Shared PME plans for `params`, building them on first sight.
    pub fn pme(&mut self, params: PmeParams) -> Result<Arc<PmePlans>, BdError> {
        let key = ShapeKey::periodic(&params);
        if let Some(p) = self.pme.get(&key).map(Arc::clone) {
            self.hit(key);
            return Ok(p);
        }
        self.miss();
        let _sw = telemetry::span(Phase::PmeSetup);
        let p = Arc::new(PmePlans::new(params).map_err(|e| BdError::Setup(e.to_string()))?);
        self.pme.insert(key, Arc::clone(&p));
        self.inserted(key);
        Ok(p)
    }

    /// Shared treecode plans for `params`, building them on first sight.
    pub fn tree(&mut self, params: TreeParams) -> Arc<TreePlans> {
        let key = ShapeKey::open(&params);
        if let Some(p) = self.tree.get(&key).map(Arc::clone) {
            self.hit(key);
            return p;
        }
        self.miss();
        let _sw = telemetry::span(Phase::TreeBuild);
        let p = Arc::new(TreePlans::new(params));
        self.tree.insert(key, Arc::clone(&p));
        self.inserted(key);
        p
    }

    /// Resolve the shape of `(system, cfg)` and return shared plans for it
    /// — the one-stop entry the ensemble runner uses per job.
    pub fn plans_for(
        &mut self,
        system: &ParticleSystem,
        cfg: &MatrixFreeConfig,
    ) -> Result<MobilityPlans, BdError> {
        let shape = resolve_shape(system, cfg)?;
        match (shape.pme, shape.tree) {
            (Some(p), None) => Ok(MobilityPlans::Pme(self.pme(p)?)),
            (None, Some(t)) => Ok(MobilityPlans::Tree(self.tree(t))),
            _ => unreachable!("resolve_shape yields exactly one backend"),
        }
    }

    fn hit(&mut self, key: ShapeKey) {
        self.hits += 1;
        self.touch(key);
        telemetry::incr(Counter::PlanCacheHits, 1);
    }

    fn miss(&mut self) {
        self.misses += 1;
        telemetry::incr(Counter::PlanCacheMisses, 1);
    }

    /// Move `key` to the most-recently-used end of the recency list.
    fn touch(&mut self, key: ShapeKey) {
        if let Some(i) = self.recency.iter().position(|k| *k == key) {
            self.recency.remove(i);
        }
        self.recency.push(key);
    }

    /// Record a fresh insertion and evict the LRU entry if over capacity.
    fn inserted(&mut self, key: ShapeKey) {
        self.touch(key);
        let Some(cap) = self.capacity else { return };
        while self.len() > cap && !self.recency.is_empty() {
            let victim = self.recency.remove(0);
            self.pme.remove(&victim);
            self.tree.remove(&victim);
            self.evictions += 1;
            telemetry::incr(Counter::PlanCacheEvictions, 1);
        }
    }

    /// Lookups that reused an existing entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that built fresh plans.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to stay within capacity.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The configured capacity, `None` when unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Distinct shapes currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pme.len() + self.tree.len()
    }

    /// Whether the cache holds no plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pme.is_empty() && self.tree.is_empty()
    }

    /// Resident bytes of all cached plans (each shape counted once).
    #[must_use]
    pub fn plans_memory_bytes(&self) -> usize {
        self.pme.values().map(|p| p.memory_bytes()).sum::<usize>()
            + self.tree.values().map(|p| p.memory_bytes()).sum::<usize>()
    }

    /// Every cached shape, in `ShapeKey` order (periodic shapes first) —
    /// the same sequence on every run with the same contents.
    #[must_use]
    pub fn shapes(&self) -> Vec<ShapeKey> {
        self.pme.keys().chain(self.tree.keys()).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_params_hit_distinct_params_miss() {
        let mut cache = PlanCache::new();
        let p1 = PmeParams { mesh_dim: 8, ..PmeParams::default() };
        let p2 = PmeParams { mesh_dim: 12, ..PmeParams::default() };

        let a = cache.pme(p1).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.pme(p1).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "same shape must share one allocation");

        let c = cache.pme(p2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert!(cache.plans_memory_bytes() > 0);
    }

    #[test]
    fn tree_entries_are_keyed_independently_of_pme() {
        let mut cache = PlanCache::new();
        let t = TreeParams::default();
        let a = cache.tree(t);
        let b = cache.tree(t);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let stricter = cache.tree(TreeParams { theta: 0.2, ..t });
        assert!(!Arc::ptr_eq(&a, &stricter));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn fmm_and_treecode_shapes_never_share_plans() {
        let mut cache = PlanCache::new();
        let t = TreeParams::default();
        let f = TreeParams { eval: TreeEval::Fmm, ..t };
        let pt = cache.tree(t);
        let pf = cache.tree(f);
        assert!(!Arc::ptr_eq(&pt, &pf), "eval is part of the shape identity");
        assert_eq!(cache.len(), 2);
        // The FMM plans carry the L2L tables on top of M2M.
        assert!(pf.memory_bytes() > pt.memory_bytes());
        // Same eval still hits.
        let pf2 = cache.tree(f);
        assert!(Arc::ptr_eq(&pf, &pf2));
    }

    #[test]
    fn shapes_iterate_in_key_order_regardless_of_insertion_order() {
        let p1 = PmeParams { mesh_dim: 8, ..PmeParams::default() };
        let p2 = PmeParams { mesh_dim: 12, ..PmeParams::default() };
        let t = TreeParams::default();

        let mut fwd = PlanCache::new();
        fwd.pme(p1).unwrap();
        fwd.pme(p2).unwrap();
        fwd.tree(t);
        let mut rev = PlanCache::new();
        rev.tree(t);
        rev.pme(p2).unwrap();
        rev.pme(p1).unwrap();

        let shapes = fwd.shapes();
        assert_eq!(shapes, rev.shapes(), "iteration order must not depend on insertion");
        let mut sorted = shapes.clone();
        sorted.sort_unstable();
        assert_eq!(shapes, sorted, "shapes() is key-ordered");
    }

    #[test]
    fn lru_evicts_least_recently_used_shape() {
        let mut cache = PlanCache::with_capacity(2);
        let p1 = PmeParams { mesh_dim: 8, ..PmeParams::default() };
        let p2 = PmeParams { mesh_dim: 12, ..PmeParams::default() };
        let p3 = PmeParams { mesh_dim: 16, ..PmeParams::default() };

        cache.pme(p1).unwrap();
        cache.pme(p2).unwrap();
        assert_eq!((cache.len(), cache.evictions()), (2, 0));

        // Touch p1 so p2 becomes the LRU entry, then overflow with p3.
        cache.pme(p1).unwrap();
        cache.pme(p3).unwrap();
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        let shapes = cache.shapes();
        assert!(shapes.contains(&ShapeKey::periodic(&p1)), "recently used p1 survives");
        assert!(!shapes.contains(&ShapeKey::periodic(&p2)), "LRU p2 evicted");
        assert!(shapes.contains(&ShapeKey::periodic(&p3)));

        // An evicted shape rebuilds (a miss), it does not error.
        let before = cache.misses();
        cache.pme(p2).unwrap();
        assert_eq!(cache.misses(), before + 1);
        assert_eq!(cache.evictions(), 2, "p2 reinsertion evicted the new LRU");
    }

    #[test]
    fn lru_spans_pme_and_tree_maps() {
        let mut cache = PlanCache::with_capacity(1);
        cache.tree(TreeParams::default());
        cache.pme(PmeParams { mesh_dim: 8, ..PmeParams::default() }).unwrap();
        assert_eq!((cache.len(), cache.evictions()), (1, 1));
        assert!(matches!(cache.shapes()[0], ShapeKey::Periodic { .. }));
    }

    #[test]
    fn zero_capacity_still_serves_each_lookup() {
        let mut cache = PlanCache::with_capacity(0);
        let a = cache.tree(TreeParams::default());
        assert!(a.memory_bytes() > 0);
        assert_eq!(cache.len(), 1, "capacity 0 clamps to 1");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut cache = PlanCache::new();
        assert_eq!(cache.capacity(), None);
        for dim in [8usize, 12, 16, 18, 20] {
            cache.pme(PmeParams { mesh_dim: dim, ..PmeParams::default() }).unwrap();
        }
        assert_eq!((cache.len(), cache.evictions()), (5, 0));
    }

    #[test]
    fn float_keys_compare_by_bits() {
        let base = PmeParams::default();
        let nudged = PmeParams { alpha: base.alpha + 1e-16, ..base };
        if base.alpha.to_bits() != nudged.alpha.to_bits() {
            assert_ne!(ShapeKey::periodic(&base), ShapeKey::periodic(&nudged));
        }
        assert_eq!(ShapeKey::periodic(&base), ShapeKey::periodic(&{ base }));
    }
}
