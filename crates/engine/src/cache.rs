//! The shared plan cache: one set of setup artifacts per distinct shape.
//!
//! A "shape" is everything the position-independent setup work depends on:
//! the tuned PME parameters for a periodic box, or the treecode schedule
//! for an open cloud. Two jobs resolving to the same shape get the *same*
//! `Arc`, so the `O(K^3)` influence table and the FFT twiddle plans exist
//! once no matter how many replicas run.

use hibd_core::ewald_bd::BdError;
use hibd_core::mf_bd::{resolve_shape, MatrixFreeConfig, MobilityPlans};
use hibd_core::ParticleSystem;
use hibd_pme::{PmeParams, PmePlans};
use hibd_telemetry::{self as telemetry, Counter, Phase};
use hibd_treecode::{TreeEval, TreeParams, TreePlans};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Canonical, totally ordered identity of a mobility-backend shape.
/// Floating-point parameters are keyed by their exact bit patterns: the
/// cache must only ever share plans between *identical* parameter sets, so
/// semantic closeness (or `NaN` quirks) is irrelevant — equal bits, equal
/// shape. The bit patterns also give the key a total order, which the
/// `BTreeMap` store turns into deterministic iteration (memory accounting,
/// `shapes()`) regardless of insertion history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShapeKey {
    /// Periodic box: the full tuned PME parameter set.
    Periodic {
        a: u64,
        eta: u64,
        box_l: u64,
        alpha: u64,
        mesh_dim: usize,
        spline_order: usize,
        r_max: u64,
    },
    /// Open cloud: the treecode accuracy schedule plus the far-field
    /// strategy — [`TreePlans`] for the FMM carry the L2L tables the
    /// treecode's don't, so the two must never share an entry.
    Open { theta: u64, leaf_capacity: usize, cheb_order: usize, a: u64, eta: u64, eval: TreeEval },
}

impl ShapeKey {
    /// Key for a periodic shape.
    #[must_use]
    pub fn periodic(p: &PmeParams) -> ShapeKey {
        ShapeKey::Periodic {
            a: p.a.to_bits(),
            eta: p.eta.to_bits(),
            box_l: p.box_l.to_bits(),
            alpha: p.alpha.to_bits(),
            mesh_dim: p.mesh_dim,
            spline_order: p.spline_order,
            r_max: p.r_max.to_bits(),
        }
    }

    /// Key for an open (free-space) shape.
    #[must_use]
    pub fn open(p: &TreeParams) -> ShapeKey {
        ShapeKey::Open {
            theta: p.theta.to_bits(),
            leaf_capacity: p.leaf_capacity,
            cheb_order: p.cheb_order,
            a: p.a.to_bits(),
            eta: p.eta.to_bits(),
            eval: p.eval,
        }
    }
}

/// Deduplicating store of setup plans, keyed by [`ShapeKey`]. Lookups
/// count as hits (an existing `Arc` was reused) or misses (fresh plans were
/// built) both locally and on the global telemetry counters. The maps are
/// `BTreeMap`s, not `HashMap`s: the engine sits inside the bitwise
/// determinism contract, and key-ordered iteration keeps every traversal
/// (accounting, shape listings) independent of the per-process hasher seed.
#[derive(Default)]
pub struct PlanCache {
    pme: BTreeMap<ShapeKey, Arc<PmePlans>>,
    tree: BTreeMap<ShapeKey, Arc<TreePlans>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Shared PME plans for `params`, building them on first sight.
    pub fn pme(&mut self, params: PmeParams) -> Result<Arc<PmePlans>, BdError> {
        let key = ShapeKey::periodic(&params);
        if let Some(p) = self.pme.get(&key).map(Arc::clone) {
            self.hit();
            return Ok(p);
        }
        self.miss();
        let _sw = telemetry::span(Phase::PmeSetup);
        let p = Arc::new(PmePlans::new(params).map_err(|e| BdError::Setup(e.to_string()))?);
        self.pme.insert(key, Arc::clone(&p));
        Ok(p)
    }

    /// Shared treecode plans for `params`, building them on first sight.
    pub fn tree(&mut self, params: TreeParams) -> Arc<TreePlans> {
        let key = ShapeKey::open(&params);
        if let Some(p) = self.tree.get(&key).map(Arc::clone) {
            self.hit();
            return p;
        }
        self.miss();
        let _sw = telemetry::span(Phase::TreeBuild);
        let p = Arc::new(TreePlans::new(params));
        self.tree.insert(key, Arc::clone(&p));
        p
    }

    /// Resolve the shape of `(system, cfg)` and return shared plans for it
    /// — the one-stop entry the ensemble runner uses per job.
    pub fn plans_for(
        &mut self,
        system: &ParticleSystem,
        cfg: &MatrixFreeConfig,
    ) -> Result<MobilityPlans, BdError> {
        let shape = resolve_shape(system, cfg)?;
        match (shape.pme, shape.tree) {
            (Some(p), None) => Ok(MobilityPlans::Pme(self.pme(p)?)),
            (None, Some(t)) => Ok(MobilityPlans::Tree(self.tree(t))),
            _ => unreachable!("resolve_shape yields exactly one backend"),
        }
    }

    fn hit(&mut self) {
        self.hits += 1;
        telemetry::incr(Counter::PlanCacheHits, 1);
    }

    fn miss(&mut self) {
        self.misses += 1;
        telemetry::incr(Counter::PlanCacheMisses, 1);
    }

    /// Lookups that reused an existing entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that built fresh plans.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct shapes currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pme.len() + self.tree.len()
    }

    /// Whether the cache holds no plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pme.is_empty() && self.tree.is_empty()
    }

    /// Resident bytes of all cached plans (each shape counted once).
    #[must_use]
    pub fn plans_memory_bytes(&self) -> usize {
        self.pme.values().map(|p| p.memory_bytes()).sum::<usize>()
            + self.tree.values().map(|p| p.memory_bytes()).sum::<usize>()
    }

    /// Every cached shape, in `ShapeKey` order (periodic shapes first) —
    /// the same sequence on every run with the same contents.
    #[must_use]
    pub fn shapes(&self) -> Vec<ShapeKey> {
        self.pme.keys().chain(self.tree.keys()).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_params_hit_distinct_params_miss() {
        let mut cache = PlanCache::new();
        let p1 = PmeParams { mesh_dim: 8, ..PmeParams::default() };
        let p2 = PmeParams { mesh_dim: 12, ..PmeParams::default() };

        let a = cache.pme(p1).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.pme(p1).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "same shape must share one allocation");

        let c = cache.pme(p2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert!(cache.plans_memory_bytes() > 0);
    }

    #[test]
    fn tree_entries_are_keyed_independently_of_pme() {
        let mut cache = PlanCache::new();
        let t = TreeParams::default();
        let a = cache.tree(t);
        let b = cache.tree(t);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let stricter = cache.tree(TreeParams { theta: 0.2, ..t });
        assert!(!Arc::ptr_eq(&a, &stricter));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn fmm_and_treecode_shapes_never_share_plans() {
        let mut cache = PlanCache::new();
        let t = TreeParams::default();
        let f = TreeParams { eval: TreeEval::Fmm, ..t };
        let pt = cache.tree(t);
        let pf = cache.tree(f);
        assert!(!Arc::ptr_eq(&pt, &pf), "eval is part of the shape identity");
        assert_eq!(cache.len(), 2);
        // The FMM plans carry the L2L tables on top of M2M.
        assert!(pf.memory_bytes() > pt.memory_bytes());
        // Same eval still hits.
        let pf2 = cache.tree(f);
        assert!(Arc::ptr_eq(&pf, &pf2));
    }

    #[test]
    fn shapes_iterate_in_key_order_regardless_of_insertion_order() {
        let p1 = PmeParams { mesh_dim: 8, ..PmeParams::default() };
        let p2 = PmeParams { mesh_dim: 12, ..PmeParams::default() };
        let t = TreeParams::default();

        let mut fwd = PlanCache::new();
        fwd.pme(p1).unwrap();
        fwd.pme(p2).unwrap();
        fwd.tree(t);
        let mut rev = PlanCache::new();
        rev.tree(t);
        rev.pme(p2).unwrap();
        rev.pme(p1).unwrap();

        let shapes = fwd.shapes();
        assert_eq!(shapes, rev.shapes(), "iteration order must not depend on insertion");
        let mut sorted = shapes.clone();
        sorted.sort_unstable();
        assert_eq!(shapes, sorted, "shapes() is key-ordered");
    }

    #[test]
    fn float_keys_compare_by_bits() {
        let base = PmeParams::default();
        let nudged = PmeParams { alpha: base.alpha + 1e-16, ..base };
        if base.alpha.to_bits() != nudged.alpha.to_bits() {
            assert_ne!(ShapeKey::periodic(&base), ShapeKey::periodic(&nudged));
        }
        assert_eq!(ShapeKey::periodic(&base), ShapeKey::periodic(&{ base }));
    }
}
