//! `hibd-engine`: a resident batch-simulation engine.
//!
//! Screening studies run many replicas of the *same shape* — one suspension
//! geometry, many noise seeds. Building a standalone [`MatrixFreeBd`] per
//! replica repeats the position-independent setup work (FFT twiddle plans,
//! the `O(K^3)` influence table, Chebyshev transfer matrices) `R` times and
//! steps each trajectory alone. This crate keeps that work resident:
//!
//! * [`PlanCache`] — deduplicates the immutable setup artifacts
//!   ([`hibd_pme::PmePlans`] / [`hibd_treecode::TreePlans`]) behind a
//!   canonical [`ShapeKey`], handing every replica of a shape the same
//!   `Arc`. Hit/miss counts feed the telemetry counters.
//! * [`EnsembleRunner`] — steps `R` replicas in lockstep, batching the
//!   per-step `M f` drift FFTs of same-shape periodic replicas through one
//!   [`hibd_fft::Fft3::forward_batch`]/`inverse_batch` pair. Membership is
//!   dynamic (`admit`/`retire` at step boundaries) and `step_isolated`
//!   confines one job's error or panic to that job — the substrate the
//!   `hibd-serve` daemon schedules onto.
//!
//! The correctness contract is **bitwise**: every replica's trajectory is
//! identical, bit for bit, to a standalone single-trajectory run with the
//! same seed. This holds because the batch FFT entry points are bitwise
//! identical per mesh to the single-mesh transforms (pinned by
//! `crates/fft/tests/batch_bitwise.rs`) and every other stage runs on the
//! replica's own operator exactly as `MatrixFreeBd::step` would.
//!
//! [`MatrixFreeBd`]: hibd_core::MatrixFreeBd

pub mod cache;
pub mod ensemble;

pub use cache::{PlanCache, ShapeKey};
pub use ensemble::{EnsembleRunner, JobFailure, JobFault};
