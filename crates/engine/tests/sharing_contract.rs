//! The plan-sharing correctness contract: an operator built on
//! cache-shared plans applies **bitwise identically** to a freshly built
//! standalone operator on the same positions — for both backends. Nothing
//! position-dependent lives in the shared plans, so sharing must be
//! invisible to the arithmetic.

use hibd_engine::PlanCache;
use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_pme::{PmeOperator, PmeParams};
use hibd_treecode::{TreeOperator, TreeParams};
use proptest::prelude::*;

fn lcg_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn positions(n: usize, scale: f64, seed: u64) -> Vec<Vec3> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            Vec3::new(lcg_unit(&mut s) * scale, lcg_unit(&mut s) * scale, lcg_unit(&mut s) * scale)
        })
        .collect()
}

fn force_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..3 * n).map(|_| lcg_unit(&mut s) - 0.5).collect()
}

fn small_pme_params() -> PmeParams {
    PmeParams { mesh_dim: 12, ..PmeParams::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_pme_operator_matches_standalone_bitwise(
        n in 5usize..30,
        seed in any::<u64>(),
    ) {
        let params = small_pme_params();
        let pos = positions(n, params.box_l, seed);
        let f = force_vector(n, seed);

        let mut standalone = PmeOperator::new(&pos, params).unwrap();
        let mut cache = PlanCache::new();
        let mut shared_a = PmeOperator::with_plans(&pos, cache.pme(params).unwrap());
        let mut shared_b = PmeOperator::with_plans(&pos, cache.pme(params).unwrap());
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(cache.misses(), 1);

        let mut u_ref = vec![0.0; 3 * n];
        let mut u_a = vec![0.0; 3 * n];
        let mut u_b = vec![0.0; 3 * n];
        standalone.apply(&f, &mut u_ref);
        shared_a.apply(&f, &mut u_a);
        shared_b.apply(&f, &mut u_b);
        for i in 0..3 * n {
            prop_assert_eq!(u_ref[i].to_bits(), u_a[i].to_bits(), "shared apply diverged at {}", i);
            prop_assert_eq!(u_ref[i].to_bits(), u_b[i].to_bits(), "second sharer diverged at {}", i);
        }
    }

    #[test]
    fn cached_tree_operator_matches_standalone_bitwise(
        n in 5usize..30,
        seed in any::<u64>(),
    ) {
        let params = TreeParams::default();
        let pos = positions(n, 8.0, seed);
        let f = force_vector(n, seed);

        let mut standalone = TreeOperator::new(&pos, params);
        let mut cache = PlanCache::new();
        let mut shared = TreeOperator::with_plans(&pos, cache.tree(params));
        prop_assert_eq!(cache.misses(), 1);

        let mut u_ref = vec![0.0; 3 * n];
        let mut u_shared = vec![0.0; 3 * n];
        standalone.apply(&f, &mut u_ref);
        shared.apply(&f, &mut u_shared);
        for i in 0..3 * n {
            prop_assert_eq!(
                u_ref[i].to_bits(),
                u_shared[i].to_bits(),
                "shared tree apply diverged at {}",
                i
            );
        }
    }
}

#[test]
fn shared_operators_report_less_memory_than_standalone_sum() {
    let params = small_pme_params();
    let pos_a = positions(20, params.box_l, 1);
    let pos_b = positions(20, params.box_l, 2);

    let standalone_sum = PmeOperator::new(&pos_a, params).unwrap().memory_bytes()
        + PmeOperator::new(&pos_b, params).unwrap().memory_bytes();

    let mut cache = PlanCache::new();
    let a = PmeOperator::with_plans(&pos_a, cache.pme(params).unwrap());
    let b = PmeOperator::with_plans(&pos_b, cache.pme(params).unwrap());
    let shared_total = a.state_memory_bytes() + b.state_memory_bytes() + cache.plans_memory_bytes();

    assert!(
        shared_total < standalone_sum,
        "shared {shared_total} bytes should undercut standalone {standalone_sum}"
    );
}
