//! Dynamic group membership and fault isolation: jobs admitted mid-run
//! join their shape group at the next step boundary, retired jobs leave
//! without perturbing the rest, and a panicking job fails alone — all
//! without breaking the replica-vs-standalone bitwise contract.

use hibd_core::forces::{Force, RepulsiveHarmonic};
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_core::system::ParticleSystem;
use hibd_engine::{EnsembleRunner, JobFault, PlanCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn periodic_system(n: usize, phi: f64, seed: u64) -> ParticleSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    ParticleSystem::random_suspension(n, phi, &mut rng)
}

fn positions_bits(bd: &MatrixFreeBd) -> Vec<[u64; 3]> {
    bd.system()
        .positions()
        .iter()
        .map(|p| [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()])
        .collect()
}

fn standalone_trajectory(
    sys: ParticleSystem,
    cfg: MatrixFreeConfig,
    seed: u64,
    steps: usize,
) -> Vec<[u64; 3]> {
    let mut bd = MatrixFreeBd::new(sys, cfg, seed).unwrap();
    bd.add_force(RepulsiveHarmonic::default());
    bd.run(steps).unwrap();
    positions_bits(&bd)
}

#[test]
fn admit_mid_run_and_retire_early_stay_bitwise() {
    const STEPS_A: usize = 6;
    const STEPS_B: usize = 4;
    const JOIN_AT: usize = 2;
    let cfg = MatrixFreeConfig { lambda_rpy: 2, ..Default::default() };
    let base = periodic_system(16, 0.1, 11);

    let mut runner = EnsembleRunner::with_cache(PlanCache::new());
    let a = runner.admit(base.clone(), cfg, 100).unwrap();
    runner.replica_mut(a).add_force(RepulsiveHarmonic::default());
    runner.run(JOIN_AT).unwrap();

    // b joins the group mid-run; from here the pair steps batched.
    let b = runner.admit(base.clone(), cfg, 200).unwrap();
    runner.replica_mut(b).add_force(RepulsiveHarmonic::default());
    assert_eq!(runner.group_sizes(), vec![2], "same shape jobs share one group");
    assert_eq!(runner.cache().hits(), 1, "the second admit reuses the plans");
    runner.run(STEPS_B).unwrap();

    // b finishes first and retires; a keeps going alone.
    let done_b = runner.retire(b).expect("b was live");
    assert_eq!(done_b.completed_steps(), STEPS_B as u64);
    assert_eq!(runner.group_sizes(), vec![1]);
    runner.run(STEPS_A - JOIN_AT - STEPS_B).unwrap();

    let want_a = standalone_trajectory(base.clone(), cfg, 100, STEPS_A);
    let want_b = standalone_trajectory(base, cfg, 200, STEPS_B);
    assert_eq!(positions_bits(runner.replica(a)), want_a, "job a diverged");
    assert_eq!(positions_bits(&done_b), want_b, "job b diverged");
}

#[test]
fn retired_slots_are_reused() {
    let cfg = MatrixFreeConfig { lambda_rpy: 2, ..Default::default() };
    let base = periodic_system(12, 0.1, 5);
    let mut runner = EnsembleRunner::with_cache(PlanCache::new());
    let a = runner.admit(base.clone(), cfg, 1).unwrap();
    let b = runner.admit(base.clone(), cfg, 2).unwrap();
    assert_eq!((a, b), (0, 1));
    runner.retire(a);
    assert_eq!(runner.len(), 1);
    assert_eq!(runner.live_slots(), vec![1]);
    let c = runner.admit(base, cfg, 3).unwrap();
    assert_eq!(c, 0, "freed slot 0 is recycled");
    assert_eq!(runner.len(), 2);
    assert!(runner.retire(5).is_none(), "out-of-range retire is a no-op");
    assert!(runner.retire(c).is_some());
    assert!(runner.retire(c).is_none(), "double retire is a no-op");
}

/// A force that panics once the step counter reaches a trigger value —
/// the poison pill for the isolation tests.
struct PanicAt {
    calls: usize,
    trigger: usize,
}

impl Force for PanicAt {
    fn accumulate(&mut self, _system: &ParticleSystem, _f: &mut [f64]) {
        self.calls += 1;
        assert!(self.calls < self.trigger, "poison pill");
    }

    fn name(&self) -> &'static str {
        "panic-at"
    }
}

#[test]
fn panicking_job_fails_alone_and_bitwise() {
    const STEPS: usize = 5;
    const POISON_STEP: usize = 3;
    let cfg = MatrixFreeConfig { lambda_rpy: 2, ..Default::default() };
    let base = periodic_system(14, 0.1, 23);

    let mut runner = EnsembleRunner::with_cache(PlanCache::new());
    let good0 = runner.admit(base.clone(), cfg, 300).unwrap();
    let bad = runner.admit(base.clone(), cfg, 999).unwrap();
    let good1 = runner.admit(base.clone(), cfg, 301).unwrap();
    runner.replica_mut(good0).add_force(RepulsiveHarmonic::default());
    runner.replica_mut(bad).add_force(PanicAt { calls: 0, trigger: POISON_STEP });
    runner.replica_mut(good1).add_force(RepulsiveHarmonic::default());

    // Silence the default panic hook for the expected poison-pill panic.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failed = Vec::new();
    for _ in 0..STEPS {
        for failure in runner.step_isolated() {
            failed.push(failure.slot);
            assert!(
                matches!(failure.fault, JobFault::Panic(ref m) if m.contains("poison pill")),
                "unexpected fault: {}",
                failure.fault
            );
            runner.retire(failure.slot);
        }
    }
    std::panic::set_hook(hook);

    assert_eq!(failed, vec![bad], "exactly the poisoned job fails");
    assert_eq!(runner.len(), 2, "survivors keep running");

    // The survivors' trajectories never saw the poisoned neighbor.
    let want0 = standalone_trajectory(base.clone(), cfg, 300, STEPS);
    let want1 = standalone_trajectory(base, cfg, 301, STEPS);
    assert_eq!(positions_bits(runner.replica(good0)), want0, "good0 diverged");
    assert_eq!(positions_bits(runner.replica(good1)), want1, "good1 diverged");
}
