//! The ensemble correctness contract, end to end: every replica stepped by
//! [`EnsembleRunner`] must reproduce the trajectory of a standalone
//! [`MatrixFreeBd`] with the same system, config, and seed — bit for bit —
//! even though the drift FFTs of same-shape replicas run batched.

use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_core::system::ParticleSystem;
use hibd_engine::EnsembleRunner;
use hibd_telemetry::{Counter, Phase};
use hibd_treecode::TreeParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn periodic_system(n: usize, phi: f64, seed: u64) -> ParticleSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    ParticleSystem::random_suspension(n, phi, &mut rng)
}

fn open_system(n: usize, phi: f64, seed: u64) -> ParticleSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    ParticleSystem::random_cluster_with(n, phi, 1.0, 1.0, &mut rng)
}

fn standalone_trajectory(
    sys: ParticleSystem,
    cfg: MatrixFreeConfig,
    seed: u64,
    steps: usize,
) -> Vec<[u64; 3]> {
    let mut bd = MatrixFreeBd::new(sys, cfg, seed).unwrap();
    bd.add_force(RepulsiveHarmonic::default());
    bd.run(steps).unwrap();
    bd.system()
        .positions()
        .iter()
        .map(|p| [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()])
        .collect()
}

#[test]
fn periodic_replicas_match_standalone_runs_bitwise() {
    const R: usize = 3;
    const STEPS: usize = 6;
    let cfg = MatrixFreeConfig { lambda_rpy: 4, ..Default::default() };
    let base = periodic_system(18, 0.1, 7);

    let jobs: Vec<_> = (0..R as u64).map(|r| (base.clone(), 90 + r)).collect();
    let mut runner = EnsembleRunner::new(cfg, jobs).unwrap();
    assert_eq!(runner.cache().misses(), 1, "one shape, one plan build");
    assert_eq!(runner.cache().hits(), R as u64 - 1);
    for r in 0..R {
        runner.replica_mut(r).add_force(RepulsiveHarmonic::default());
    }
    runner.run(STEPS).unwrap();

    for r in 0..R {
        let want = standalone_trajectory(base.clone(), cfg, 90 + r as u64, STEPS);
        let got: Vec<[u64; 3]> = runner
            .replica(r)
            .system()
            .positions()
            .iter()
            .map(|p| [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()])
            .collect();
        assert_eq!(got, want, "replica {r} trajectory diverged from its standalone run");
    }
}

#[test]
fn open_replicas_match_standalone_runs_bitwise() {
    const R: usize = 2;
    const STEPS: usize = 4;
    // Pin tree params: the measured tuner would otherwise re-run per job.
    let cfg =
        MatrixFreeConfig { lambda_rpy: 2, tree: Some(TreeParams::default()), ..Default::default() };
    let base = open_system(14, 0.1, 31);

    let jobs: Vec<_> = (0..R as u64).map(|r| (base.clone(), 400 + r)).collect();
    let mut runner = EnsembleRunner::new(cfg, jobs).unwrap();
    for r in 0..R {
        runner.replica_mut(r).add_force(RepulsiveHarmonic::default());
    }
    runner.run(STEPS).unwrap();

    for r in 0..R {
        let want = standalone_trajectory(base.clone(), cfg, 400 + r as u64, STEPS);
        let got: Vec<[u64; 3]> = runner
            .replica(r)
            .system()
            .positions()
            .iter()
            .map(|p| [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()])
            .collect();
        assert_eq!(got, want, "open replica {r} diverged from its standalone run");
    }
}

#[test]
fn ensemble_memory_undercuts_standalone_sum() {
    const R: usize = 4;
    let cfg = MatrixFreeConfig { lambda_rpy: 4, ..Default::default() };
    let base = periodic_system(20, 0.1, 3);

    let mut standalone_sum = 0;
    for r in 0..R as u64 {
        let mut bd = MatrixFreeBd::new(base.clone(), cfg, 60 + r).unwrap();
        bd.step().unwrap();
        standalone_sum += bd.operator_memory_bytes();
    }

    let jobs: Vec<_> = (0..R as u64).map(|r| (base.clone(), 60 + r)).collect();
    let mut runner = EnsembleRunner::new(cfg, jobs).unwrap();
    runner.step().unwrap();
    let ensemble_total = runner.memory_bytes();
    assert!(
        ensemble_total < standalone_sum,
        "{R} plan-sharing replicas ({ensemble_total} B) must undercut \
         {R} standalone operators ({standalone_sum} B)"
    );
}

#[test]
fn job_snapshots_attribute_per_replica_work() {
    const R: usize = 2;
    const STEPS: usize = 3;
    let cfg = MatrixFreeConfig { lambda_rpy: 2, ..Default::default() };
    let base = periodic_system(12, 0.1, 17);
    let jobs: Vec<_> = (0..R as u64).map(|r| (base.clone(), 5 + r)).collect();
    let mut runner = EnsembleRunner::new(cfg, jobs).unwrap();
    runner.run(STEPS).unwrap();

    let snaps = runner.job_snapshots();
    assert_eq!(snaps.len(), R + 1);
    let labels: Vec<&str> = snaps.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, ["r0", "r1", "shared"]);

    for s in &snaps[..R] {
        assert_eq!(s.snapshot.phase(Phase::Stepping).count, STEPS as u64, "{}", s.label);
        assert!(s.snapshot.phase(Phase::Displacements).count > 0, "{}", s.label);
        assert!(s.snapshot.phase(Phase::Influence).count > 0, "{}", s.label);
        assert!(s.snapshot.counter(Counter::LanczosIterations) > 0, "{}", s.label);
    }
    let shared = &snaps[R].snapshot;
    assert_eq!(shared.phase(Phase::ForwardFft).count, STEPS as u64);
    assert_eq!(shared.phase(Phase::InverseFft).count, STEPS as u64);
    assert_eq!(shared.counter(Counter::PlanCacheMisses), 1);
    assert_eq!(shared.counter(Counter::PlanCacheHits), R as u64 - 1);
}
