//! Allocation regression for the ensemble runner: lockstep steps inside an
//! operator window must not grow the heap. The batch mesh/spectrum scratch
//! and per-replica drift buffers are grown on the first step and reused;
//! per-step force vectors are transient (freed within the step), so the
//! invariant is zero *net* growth.

use hibd_alloctrack::{exclusive, measure};
use hibd_core::mf_bd::MatrixFreeConfig;
use hibd_core::system::ParticleSystem;
use hibd_engine::EnsembleRunner;
use rand::rngs::StdRng;
use rand::SeedableRng;

hibd_alloctrack::install!();

const TOL: isize = 16 * 1024;

#[test]
fn lockstep_steps_within_a_window_do_not_grow_the_heap() {
    let _guard = exclusive();
    let mut rng = StdRng::seed_from_u64(9);
    let base = ParticleSystem::random_suspension(20, 0.1, &mut rng);
    let cfg = MatrixFreeConfig { lambda_rpy: 8, ..Default::default() };
    let jobs: Vec<_> = (0..3u64).map(|r| (base.clone(), 70 + r)).collect();
    let mut runner = EnsembleRunner::new(cfg, jobs).unwrap();

    // Step 1 refreshes every window and grows the batch + drift scratch;
    // steps 2..6 stay inside the windows.
    runner.step().unwrap();
    let mem = runner.memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..5 {
            runner.step().unwrap();
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "5 lockstep steps leaked {} net bytes", m.net_bytes);
    assert_eq!(runner.memory_bytes(), mem, "ensemble scratch grew inside the window");
}
