//! Allocation regression for the block Lanczos displacement kernel.
//!
//! `block_lanczos_sqrt` itself allocates by design (basis panels, projected
//! blocks, QR factors). The invariant worth machine-checking is one level
//! down: the *operator applies inside the iteration* — the expensive part
//! that runs 10-60 times per displacement block — must be allocation-free
//! once the PME scratch is warm. `AllocCheckedOp` measures every forwarded
//! `apply_multi` individually.

use hibd_alloctrack::{exclusive, AllocCheckedOp};
use hibd_krylov::{block_lanczos_sqrt, KrylovConfig};
use hibd_mathx::{fill_standard_normal, Vec3};
use hibd_pme::{PmeOperator, PmeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

hibd_alloctrack::install!();

/// Per-apply slack for transient runtime structures that net out late (e.g.
/// a rayon worker growing a thread-local deque). A real regression — a
/// scratch mesh reallocated per apply — is hundreds of kilobytes.
const PER_APPLY_TOL: isize = 8 * 1024;

fn positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

#[test]
fn pme_applies_inside_block_lanczos_are_allocation_free() {
    let _guard = exclusive();
    let n = 30;
    let s = 4;
    let params = PmeParams {
        a: 1.0,
        eta: 1.0,
        box_l: 10.0,
        alpha: 0.8,
        mesh_dim: 32,
        spline_order: 6,
        r_max: 4.5,
    };
    let pos = positions(n, params.box_l, 7);
    let mut op = AllocCheckedOp::new(PmeOperator::new(&pos, params).unwrap());
    let mut rng = StdRng::seed_from_u64(17);
    let mut z = vec![0.0; 3 * n * s];
    fill_standard_normal(&mut rng, &mut z);
    let cfg = KrylovConfig { tol: 1e-3, max_iter: 60, check_interval: 1 };

    // Warm-up solve: grows the PME batch scratch on the first apply_multi.
    block_lanczos_sqrt(&mut op, &z, s, &cfg).unwrap();
    assert!(op.applies() > 0);
    op.reset();

    // Steady state: every apply inside the second solve must be clean.
    let (_, stats) = block_lanczos_sqrt(&mut op, &z, s, &cfg).unwrap();
    assert!(stats.converged);
    assert!(op.applies() >= 2, "expected several block applies, got {}", op.applies());
    assert!(
        op.max_apply_net_bytes() <= PER_APPLY_TOL,
        "worst operator apply inside Lanczos leaked {} net bytes over {} applies",
        op.max_apply_net_bytes(),
        op.applies()
    );
    assert!(
        op.total_net_bytes() <= PER_APPLY_TOL * op.applies() as isize,
        "operator applies leaked {} net bytes total",
        op.total_net_bytes()
    );
}
