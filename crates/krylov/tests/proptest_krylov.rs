//! Property-based tests of the matrix-free solvers against dense references.

use hibd_krylov::{
    block_lanczos_sqrt, chebyshev_sqrt, conjugate_gradient, lanczos_sqrt, CgConfig,
    ChebyshevConfig, KrylovConfig,
};
use hibd_linalg::{sym_eig, DMat, DenseOp};
use proptest::prelude::*;

/// SPD matrix with eigenvalues in [lo, hi] built from a random rotation.
fn spd_from(raw: &[f64], n: usize, lo: f64, hi: f64) -> DMat {
    let b = DMat::from_vec(n, n, raw.to_vec());
    let sym = DMat::from_fn(n, n, |i, j| b[(i, j)] + b[(j, i)]);
    let (_, v) = sym_eig(&sym);
    let mut vw = v.clone();
    for i in 0..n {
        for j in 0..n {
            let w = lo + (hi - lo) * j as f64 / (n - 1).max(1) as f64;
            vw[(i, j)] *= w;
        }
    }
    vw.matmul(&v.transpose())
}

fn exact_sqrt_times(m: &DMat, x: &[f64]) -> Vec<f64> {
    let (w, v) = sym_eig(m);
    let n = m.nrows();
    let mut tmp = vec![0.0; n];
    for j in 0..n {
        let mut s = 0.0;
        for i in 0..n {
            s += v[(i, j)] * x[i];
        }
        tmp[j] = s * w[j].max(0.0).sqrt();
    }
    let mut out = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            out[i] += v[(i, j)] * tmp[j];
        }
    }
    out
}

fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
    let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

fn case() -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>)> {
    (3usize..16).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec(-1.0f64..1.0, n * n),
            prop::collection::vec(-1.0f64..1.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lanczos_sqrt_matches_eigendecomposition((n, raw, z) in case()) {
        let m = spd_from(&raw, n, 0.4, 2.5);
        let want = exact_sqrt_times(&m, &z);
        let cfg = KrylovConfig { tol: 1e-10, max_iter: 4 * n, check_interval: 1 };
        let (g, stats) = lanczos_sqrt(&mut DenseOp::new(m), &z, &cfg).unwrap();
        prop_assert!(stats.converged);
        prop_assert!(rel_err(&g, &want) < 1e-6, "err {}", rel_err(&g, &want));
    }

    #[test]
    fn block_and_single_agree((n, raw, z) in case()) {
        let m = spd_from(&raw, n, 0.5, 2.0);
        let cfg = KrylovConfig { tol: 1e-9, max_iter: 4 * n, check_interval: 1 };
        let (g1, _) = lanczos_sqrt(&mut DenseOp::new(m.clone()), &z, &cfg).unwrap();
        let (gb, _) = block_lanczos_sqrt(&mut DenseOp::new(m), &z, 1, &cfg).unwrap();
        prop_assert!(rel_err(&g1, &gb) < 1e-5, "err {}", rel_err(&g1, &gb));
    }

    #[test]
    fn chebyshev_matches_eigendecomposition((n, raw, z) in case()) {
        let m = spd_from(&raw, n, 0.4, 2.5);
        let want = exact_sqrt_times(&m, &z);
        let cfg = ChebyshevConfig { tol: 1e-9, bounds: Some((0.3, 2.8)), ..Default::default() };
        let (g, _) = chebyshev_sqrt(&mut DenseOp::new(m), &z, &cfg).unwrap();
        prop_assert!(rel_err(&g, &want) < 1e-6, "err {}", rel_err(&g, &want));
    }

    #[test]
    fn cg_solves_to_requested_residual((n, raw, b) in case()) {
        let m = spd_from(&raw, n, 0.3, 3.0);
        let cfg = CgConfig { tol: 1e-10, max_iter: 10 * n };
        let (x, stats) = conjugate_gradient(&mut DenseOp::new(m.clone()), &b, &cfg).unwrap();
        prop_assert!(stats.converged);
        let mut mx = vec![0.0; n];
        m.mul_vec(&x, &mut mx);
        prop_assert!(rel_err(&mx, &b) < 1e-8, "residual {}", rel_err(&mx, &b));
    }

    #[test]
    fn sqrt_then_cg_recovers_sqrt_inverse((n, raw, z) in case()) {
        // x = M^{-1} (M^{1/2} z) must equal M^{-1/2} z; verify via
        // M^{1/2} x == z.
        let m = spd_from(&raw, n, 0.5, 2.0);
        let kcfg = KrylovConfig { tol: 1e-11, max_iter: 4 * n, check_interval: 1 };
        let (g, _) = lanczos_sqrt(&mut DenseOp::new(m.clone()), &z, &kcfg).unwrap();
        let ccfg = CgConfig { tol: 1e-12, max_iter: 10 * n };
        let (x, _) = conjugate_gradient(&mut DenseOp::new(m.clone()), &g, &ccfg).unwrap();
        let (gx, _) = lanczos_sqrt(&mut DenseOp::new(m), &x, &kcfg).unwrap();
        prop_assert!(rel_err(&gx, &z) < 1e-4, "err {}", rel_err(&gx, &z));
    }
}
