//! Fixman's Chebyshev polynomial method for `M^{1/2} z`.
//!
//! The paper (Section III-B) notes that matrix-free alternatives to the
//! Krylov approach exist "but they require eigenvalue estimates of M, e.g.,
//! \[25\]" — Fixman (Macromolecules 19, 1986). This module implements that
//! method for completeness and for the ablation comparison:
//!
//! 1. estimate the extreme eigenvalues of the SPD operator with a short
//!    Lanczos run ([`estimate_spectrum_bounds`]);
//! 2. build the Chebyshev interpolation of `sqrt` on the (padded) spectral
//!    interval, truncated where the coefficient tail meets the tolerance;
//! 3. evaluate `p(M) z` with the three-term Chebyshev recurrence — one
//!    operator application per polynomial degree.
//!
//! Versus Lanczos, Chebyshev needs no basis storage (three vectors total)
//! but its degree is set by the condition number rather than by the
//! spectral distribution seen by `z`, so it typically needs more operator
//! applications at equal accuracy — which the comparison test demonstrates.

use crate::{KrylovError, KrylovStats};
use hibd_hot as hibd;
use hibd_linalg::{tridiag_eig, LinearOperator};

/// Options for the Chebyshev square-root evaluation.
#[derive(Clone, Copy, Debug)]
pub struct ChebyshevConfig {
    /// Relative truncation tolerance of the polynomial (plays the role of
    /// the Krylov `e_k`).
    pub tol: f64,
    /// Maximum polynomial degree.
    pub max_degree: usize,
    /// Spectral bounds `(lambda_min, lambda_max)`; `None` estimates them
    /// with [`estimate_spectrum_bounds`].
    pub bounds: Option<(f64, f64)>,
    /// Lanczos iterations used for the bound estimate.
    pub bound_iters: usize,
}

impl Default for ChebyshevConfig {
    fn default() -> Self {
        ChebyshevConfig { tol: 1e-2, max_degree: 400, bounds: None, bound_iters: 20 }
    }
}

/// Estimate `(lambda_min, lambda_max)` of an SPD operator by a short
/// Lanczos run started from a fixed pseudo-random vector, padded by the
/// safety factors Fixman's method needs (Ritz values underestimate the
/// spectral range).
pub fn estimate_spectrum_bounds(
    op: &mut dyn LinearOperator,
    iters: usize,
) -> Result<(f64, f64), KrylovError> {
    let n = op.dim();
    if n == 0 {
        return Err(KrylovError::BadShape("empty operator".into()));
    }
    // Deterministic start vector.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut v: Vec<f64> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    let nrm = norm(&v);
    for x in &mut v {
        *x /= nrm;
    }

    let m = iters.clamp(2, n);
    let mut basis: Vec<Vec<f64>> = vec![v];
    let mut alpha = Vec::new();
    let mut beta: Vec<f64> = Vec::new();
    let mut w = vec![0.0; n];
    for j in 0..m {
        op.apply(&basis[j], &mut w);
        let a = dot(&basis[j], &w);
        alpha.push(a);
        for (wi, vi) in w.iter_mut().zip(&basis[j]) {
            *wi -= a * vi;
        }
        if j > 0 {
            let b = beta[j - 1];
            for (wi, vi) in w.iter_mut().zip(&basis[j - 1]) {
                *wi -= b * vi;
            }
        }
        for vk in &basis {
            let p = dot(vk, &w);
            for (wi, vi) in w.iter_mut().zip(vk) {
                *wi -= p * vi;
            }
        }
        let b = norm(&w);
        if b < 1e-14 {
            break;
        }
        beta.push(b);
        basis.push(w.iter().map(|x| x / b).collect());
    }
    let k = alpha.len();
    let (ritz, _) = tridiag_eig(&alpha, &beta[..k.saturating_sub(1)]);
    let lo = ritz.first().copied().unwrap_or(1.0);
    let hi = ritz.last().copied().unwrap_or(1.0);
    if lo <= 0.0 {
        return Err(KrylovError::NotPositiveSemidefinite { eigenvalue: lo });
    }
    // Fixman's safety padding.
    Ok((lo * 0.70, hi * 1.30))
}

/// Outcome of a Chebyshev evaluation.
#[derive(Clone, Copy, Debug)]
pub struct ChebyshevStats {
    /// Polynomial degree used (= operator applications, excluding bound
    /// estimation).
    pub degree: usize,
    /// Operator applications spent estimating the spectral bounds.
    pub bound_applications: usize,
    /// Estimated relative truncation error of the polynomial.
    pub poly_error: f64,
    /// Spectral interval used.
    pub bounds: (f64, f64),
}

/// Approximate `g = M^{1/2} z` with Fixman's Chebyshev method.
pub fn chebyshev_sqrt(
    op: &mut dyn LinearOperator,
    z: &[f64],
    cfg: &ChebyshevConfig,
) -> Result<(Vec<f64>, ChebyshevStats), KrylovError> {
    let n = op.dim();
    if z.len() != n {
        return Err(KrylovError::BadShape(format!("z has {} entries, dim {n}", z.len())));
    }
    let (bounds, bound_apps) = match cfg.bounds {
        Some(b) => (b, 0),
        None => (estimate_spectrum_bounds(op, cfg.bound_iters)?, cfg.bound_iters),
    };
    let (lo, hi) = bounds;
    if !(lo > 0.0 && hi > lo) {
        return Err(KrylovError::BadShape(format!("invalid spectral bounds ({lo}, {hi})")));
    }

    // Chebyshev interpolation coefficients of sqrt on [lo, hi], computed at
    // high resolution, then truncated where the tail drops below the
    // tolerance (relative to sqrt(lo), the smallest function value).
    let nq = (cfg.max_degree + 1).max(64);
    let coeffs = chebyshev_coefficients(nq, f64::sqrt, lo, hi);
    let floor = lo.sqrt();
    let mut degree = cfg.max_degree.min(nq - 1);
    let mut tail: f64 = coeffs[degree..].iter().map(|c| c.abs()).sum();
    for m in 1..=cfg.max_degree.min(nq - 1) {
        let t: f64 = coeffs[m + 1..].iter().map(|c| c.abs()).sum();
        if t <= cfg.tol * floor {
            degree = m;
            tail = t;
            break;
        }
    }

    // Clenshaw-style three-term recurrence in the operator:
    // y = 2/(hi-lo) (M x) - (hi+lo)/(hi-lo) x maps the spectrum to [-1, 1].
    let scale = 2.0 / (hi - lo);
    let shift = (hi + lo) / (hi - lo);

    let mut t_prev = z.to_vec(); // T_0 z
    let mut t_cur = vec![0.0; n]; // T_1 z
    apply_shifted(op, scale, shift, &t_prev, &mut t_cur);
    let mut g: Vec<f64> = t_prev.iter().map(|v| 0.5 * coeffs[0] * v).collect();
    if degree >= 1 {
        for (gi, ti) in g.iter_mut().zip(&t_cur) {
            *gi += coeffs[1] * ti;
        }
    }
    let mut t_next = vec![0.0; n];
    for k in 2..=degree {
        recurrence_step(op, scale, shift, coeffs[k], &t_prev, &t_cur, &mut t_next, &mut g);
        std::mem::swap(&mut t_prev, &mut t_cur);
        std::mem::swap(&mut t_cur, &mut t_next);
    }

    Ok((
        g,
        ChebyshevStats { degree, bound_applications: bound_apps, poly_error: tail / floor, bounds },
    ))
}

/// Chebyshev interpolation coefficients of `f` on `[lo, hi]`:
/// `f(x) ≈ c0/2 + Σ_{k>=1} c_k T_k(t(x))`.
pub fn chebyshev_coefficients(nq: usize, f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> Vec<f64> {
    let mut c = vec![0.0; nq];
    let half = 0.5 * (hi - lo);
    let mid = 0.5 * (hi + lo);
    // Function values at the Chebyshev nodes.
    let vals: Vec<f64> = (0..nq)
        .map(|j| {
            let theta = std::f64::consts::PI * (j as f64 + 0.5) / nq as f64;
            f(mid + half * theta.cos())
        })
        .collect();
    for (k, ck) in c.iter_mut().enumerate() {
        let mut s = 0.0;
        for (j, v) in vals.iter().enumerate() {
            let theta = std::f64::consts::PI * (j as f64 + 0.5) / nq as f64;
            s += v * (k as f64 * theta).cos();
        }
        *ck = 2.0 * s / nq as f64;
    }
    c
}

/// Shifted operator application `out = scale (M x) - shift x`, mapping the
/// spectrum of `M` onto `[-1, 1]` for the Chebyshev recurrence.
#[hibd::hot]
fn apply_shifted(op: &mut dyn LinearOperator, scale: f64, shift: f64, x: &[f64], out: &mut [f64]) {
    op.apply(x, out);
    for (o, xv) in out.iter_mut().zip(x) {
        *o = scale * *o - shift * xv;
    }
}

/// One degree of the three-term recurrence `T_k z = 2 y(T_{k-1} z) - T_{k-2} z`
/// plus the accumulation `g += c_k T_k z`. All work happens in caller-owned
/// buffers: one polynomial degree costs exactly one operator application.
#[hibd::hot]
#[allow(clippy::too_many_arguments)]
fn recurrence_step(
    op: &mut dyn LinearOperator,
    scale: f64,
    shift: f64,
    ck: f64,
    t_prev: &[f64],
    t_cur: &[f64],
    t_next: &mut [f64],
    g: &mut [f64],
) {
    apply_shifted(op, scale, shift, t_cur, t_next);
    for (nx, pv) in t_next.iter_mut().zip(t_prev) {
        *nx = 2.0 * *nx - pv;
    }
    for (gi, ti) in g.iter_mut().zip(t_next.iter()) {
        *gi += ck * ti;
    }
}

#[hibd::hot]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[hibd::hot]
fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Convenience conversion of Chebyshev stats into the common stats type.
impl From<ChebyshevStats> for KrylovStats {
    fn from(s: ChebyshevStats) -> KrylovStats {
        KrylovStats {
            iterations: s.degree + s.bound_applications,
            converged: true,
            rel_change: s.poly_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanczos_sqrt;
    use crate::KrylovConfig;
    use hibd_linalg::{sym_eig, DMat, DenseOp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spd(n: usize, lo: f64, hi: f64, seed: u64) -> DMat {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = DMat::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let sym = DMat::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)]);
        let (_, v) = sym_eig(&sym);
        let w: Vec<f64> =
            (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64).collect();
        let mut vw = v.clone();
        for i in 0..n {
            for j in 0..n {
                vw[(i, j)] *= w[j];
            }
        }
        vw.matmul(&v.transpose())
    }

    fn exact_sqrt_times(m: &DMat, x: &[f64]) -> Vec<f64> {
        let (w, v) = sym_eig(m);
        let n = m.nrows();
        let mut tmp = vec![0.0; n];
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..n {
                s += v[(i, j)] * x[i];
            }
            tmp[j] = s * w[j].max(0.0).sqrt();
        }
        let mut out = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                out[i] += v[(i, j)] * tmp[j];
            }
        }
        out
    }

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        num / b.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    #[test]
    fn coefficients_reproduce_sqrt_on_interval() {
        let (lo, hi) = (0.3, 4.0);
        let c = chebyshev_coefficients(128, f64::sqrt, lo, hi);
        for i in 0..20 {
            let x = lo + (hi - lo) * i as f64 / 19.0;
            let t = (2.0 * x - hi - lo) / (hi - lo);
            // Clenshaw evaluation.
            let mut b1 = 0.0;
            let mut b2 = 0.0;
            for k in (1..c.len()).rev() {
                let b0 = 2.0 * t * b1 - b2 + c[k];
                b2 = b1;
                b1 = b0;
            }
            let val = t * b1 - b2 + 0.5 * c[0];
            assert!((val - x.sqrt()).abs() < 1e-10, "x={x}: {val} vs {}", x.sqrt());
        }
    }

    #[test]
    fn chebyshev_matches_exact_sqrt_with_given_bounds() {
        let n = 40;
        let m = spd(n, 0.5, 3.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want = exact_sqrt_times(&m, &z);
        let cfg = ChebyshevConfig { tol: 1e-8, bounds: Some((0.4, 3.2)), ..Default::default() };
        let (g, stats) = chebyshev_sqrt(&mut DenseOp::new(m), &z, &cfg).unwrap();
        let err = rel_err(&g, &want);
        assert!(err < 1e-6, "rel err {err}, degree {}", stats.degree);
    }

    #[test]
    fn automatic_bounds_work() {
        let n = 30;
        let m = spd(n, 0.2, 2.0, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want = exact_sqrt_times(&m, &z);
        let cfg = ChebyshevConfig { tol: 1e-6, ..Default::default() };
        let (g, stats) = chebyshev_sqrt(&mut DenseOp::new(m), &z, &cfg).unwrap();
        assert!(stats.bounds.0 <= 0.21 && stats.bounds.1 >= 1.99, "bounds {:?}", stats.bounds);
        let err = rel_err(&g, &want);
        assert!(err < 1e-4, "rel err {err}");
    }

    #[test]
    fn degree_grows_with_condition_number() {
        let z: Vec<f64> = (0..30).map(|i| ((i * 7 + 1) as f64 * 0.13).sin()).collect();
        let cfg = ChebyshevConfig { tol: 1e-6, ..Default::default() };
        let m_easy = spd(30, 1.0, 2.0, 7);
        let (_, s_easy) = chebyshev_sqrt(&mut DenseOp::new(m_easy), &z, &cfg).unwrap();
        let m_hard = spd(30, 0.01, 2.0, 8);
        let (_, s_hard) = chebyshev_sqrt(&mut DenseOp::new(m_hard), &z, &cfg).unwrap();
        assert!(
            s_hard.degree > 2 * s_easy.degree,
            "easy {} vs hard {}",
            s_easy.degree,
            s_hard.degree
        );
    }

    #[test]
    fn lanczos_needs_fewer_applications_than_chebyshev() {
        // The reason the paper prefers Krylov: it adapts to the spectrum
        // actually excited by z instead of covering the whole interval.
        let n = 60;
        let m = spd(n, 0.05, 4.0, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want = exact_sqrt_times(&m, &z);

        let kcfg = KrylovConfig { tol: 1e-5, max_iter: 200, check_interval: 1 };
        let (gl, sl) = lanczos_sqrt(&mut DenseOp::new(m.clone()), &z, &kcfg).unwrap();
        let ccfg = ChebyshevConfig { tol: 1e-5, ..Default::default() };
        let (gc, sc) = chebyshev_sqrt(&mut DenseOp::new(m), &z, &ccfg).unwrap();

        assert!(rel_err(&gl, &want) < 1e-3);
        assert!(rel_err(&gc, &want) < 1e-3);
        assert!(
            sl.iterations < sc.degree + sc.bound_applications,
            "lanczos {} vs chebyshev {}",
            sl.iterations,
            sc.degree + sc.bound_applications
        );
    }

    #[test]
    fn rejects_indefinite_bounds() {
        let m = DMat::identity(4);
        let z = [1.0; 4];
        let cfg = ChebyshevConfig { bounds: Some((-1.0, 2.0)), ..Default::default() };
        assert!(chebyshev_sqrt(&mut DenseOp::new(m), &z, &cfg).is_err());
    }

    #[test]
    fn bound_estimation_brackets_true_spectrum() {
        let m = spd(25, 0.3, 2.5, 11);
        let (lo, hi) = estimate_spectrum_bounds(&mut DenseOp::new(m), 15).unwrap();
        assert!(lo <= 0.3 && lo > 0.0, "lo {lo}");
        assert!(hi >= 2.5, "hi {hi}");
    }
}
