//! `hibd-krylov`: Krylov subspace computation of Brownian displacements.
//!
//! The Brownian displacement is `g = sqrt(2 kB T dt) M^{1/2} z` with
//! `z ~ N(0, I)`; the conventional algorithm computes `M^{1/2}` via a
//! Cholesky factor, which requires `M` as an explicit dense matrix. This
//! crate implements the matrix-free alternative of the paper (Section III-B,
//! ref. \[8\] — Ando, Chow, Saad & Skolnick, J. Chem. Phys. 137, 2012):
//!
//! * [`lanczos_sqrt`] — single-vector Lanczos: build the Krylov basis
//!   `K_m(M, z)`, project to a small tridiagonal `T_m`, and approximate
//!   `M^{1/2} z ≈ ||z|| V_m T_m^{1/2} e_1`;
//! * [`block_lanczos_sqrt`] — the block variant used by Algorithm 2: since
//!   the mobility matrix is reused for `lambda_RPY` time steps, all
//!   `lambda_RPY` displacement vectors are computed together, which both
//!   converges in fewer iterations and turns the real-space SpMV into a
//!   multi-RHS SpMM (paper refs. \[8\], \[24\]).
//!
//! Both run against any [`LinearOperator`], so they accept the dense Ewald
//! matrix and the PME operator interchangeably. Convergence is declared when
//! the relative change between successive iterates drops below the paper's
//! `e_k` tolerance.
//!
//! Two further matrix-free solvers round out the toolbox:
//!
//! * [`chebyshev_sqrt`] — Fixman's Chebyshev polynomial method (the paper's
//!   ref. \[25\]), which needs spectral bounds instead of a Krylov basis;
//! * [`conjugate_gradient`] — CG for the resistance problem `M f = u`.

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels

pub mod cg;
pub mod chebyshev;

pub use cg::{conjugate_gradient, CgConfig};
pub use chebyshev::{chebyshev_sqrt, estimate_spectrum_bounds, ChebyshevConfig, ChebyshevStats};

use hibd_hot as hibd;
use hibd_linalg::{sym_sqrt_times_block, thin_qr, DMat, LinearOperator};

/// Options for the Lanczos square-root solvers.
#[derive(Clone, Copy, Debug)]
pub struct KrylovConfig {
    /// Relative-change convergence tolerance (the paper's `e_k`).
    pub tol: f64,
    /// Hard iteration cap.
    pub max_iter: usize,
    /// Check convergence every this many iterations (checks cost `O(m^3)`
    /// eigen-solves of the projected matrix).
    pub check_interval: usize,
}

impl Default for KrylovConfig {
    fn default() -> Self {
        KrylovConfig { tol: 1e-2, max_iter: 200, check_interval: 1 }
    }
}

/// Outcome statistics.
#[derive(Clone, Copy, Debug)]
pub struct KrylovStats {
    /// Lanczos iterations performed (matrix applications for the single
    /// solver; block applications for the block solver).
    pub iterations: usize,
    /// Whether the relative-change criterion was met (a Lanczos breakdown —
    /// exact invariant subspace — also counts as converged).
    pub converged: bool,
    /// Last measured relative change.
    pub rel_change: f64,
}

/// Errors from the solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum KrylovError {
    /// The projected matrix had a significantly negative eigenvalue: the
    /// operator is not positive semidefinite.
    NotPositiveSemidefinite { eigenvalue: f64 },
    /// Dimension/shape mismatch.
    BadShape(String),
}

impl std::fmt::Display for KrylovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KrylovError::NotPositiveSemidefinite { eigenvalue } => {
                write!(f, "operator is not PSD (projected eigenvalue {eigenvalue:e})")
            }
            KrylovError::BadShape(s) => write!(f, "bad shape: {s}"),
        }
    }
}

impl std::error::Error for KrylovError {}

/// Approximate `g = M^{1/2} z` for an SPD operator using single-vector
/// Terminal bookkeeping for a square-root solve: publish the iteration and
/// restart counts to the global telemetry recorder (each call to a Lanczos
/// solver builds a fresh Krylov space, i.e. one restart), then hand back the
/// result unchanged.
fn done(g: Vec<f64>, stats: KrylovStats) -> Result<(Vec<f64>, KrylovStats), KrylovError> {
    hibd_telemetry::incr(hibd_telemetry::Counter::LanczosRestarts, 1);
    hibd_telemetry::incr(hibd_telemetry::Counter::LanczosIterations, stats.iterations as u64);
    Ok((g, stats))
}

/// Lanczos with full reorthogonalization.
///
/// Returns the approximation and convergence statistics.
pub fn lanczos_sqrt(
    op: &mut dyn LinearOperator,
    z: &[f64],
    cfg: &KrylovConfig,
) -> Result<(Vec<f64>, KrylovStats), KrylovError> {
    let n = op.dim();
    if z.len() != n {
        return Err(KrylovError::BadShape(format!("z has {} entries, operator dim {n}", z.len())));
    }
    let beta0 = norm(z);
    if beta0 == 0.0 {
        return done(vec![0.0; n], KrylovStats { iterations: 0, converged: true, rel_change: 0.0 });
    }

    // Krylov basis vectors, alphas (diagonal of T), betas (subdiagonal).
    let mut v: Vec<Vec<f64>> = vec![z.iter().map(|x| x / beta0).collect()];
    let mut alpha: Vec<f64> = Vec::new();
    let mut beta: Vec<f64> = Vec::new();

    let mut w = vec![0.0; n];
    let mut g_prev: Option<Vec<f64>> = None;
    let mut rel_change = f64::INFINITY;
    let mut breakdown = false;

    for j in 0..cfg.max_iter {
        op.apply(&v[j], &mut w);
        let a = dot(&v[j], &w);
        alpha.push(a);
        for (wi, vi) in w.iter_mut().zip(&v[j]) {
            *wi -= a * vi;
        }
        if j > 0 {
            let b = beta[j - 1];
            for (wi, vi) in w.iter_mut().zip(&v[j - 1]) {
                *wi -= b * vi;
            }
        }
        // Full reorthogonalization (cheap at these subspace sizes, avoids
        // the ghost-eigenvalue pathology).
        for vk in &v {
            let p = dot(vk, &w);
            for (wi, vi) in w.iter_mut().zip(vk) {
                *wi -= p * vi;
            }
        }
        let b = norm(&w);

        let check_now = (j + 1) % cfg.check_interval == 0 || j + 1 == cfg.max_iter;
        if b <= 1e-13 * beta0 {
            breakdown = true;
        } else {
            v.push(w.iter().map(|x| x / b).collect());
            beta.push(b);
        }

        if check_now || breakdown {
            let g = evaluate_sqrt_single(&v, &alpha, &beta, beta0)?;
            if let Some(prev) = &g_prev {
                rel_change = rel_diff(&g, prev);
                if rel_change < cfg.tol || breakdown {
                    return done(g, KrylovStats { iterations: j + 1, converged: true, rel_change });
                }
            } else if breakdown {
                return done(
                    g,
                    KrylovStats { iterations: j + 1, converged: true, rel_change: 0.0 },
                );
            }
            g_prev = Some(g);
        }
    }
    let g = g_prev.expect("at least one evaluation");
    done(g, KrylovStats { iterations: cfg.max_iter, converged: false, rel_change })
}

/// `g_m = beta0 * V_m * sqrt(T_m) * e_1` for the current tridiagonal.
fn evaluate_sqrt_single(
    v: &[Vec<f64>],
    alpha: &[f64],
    beta: &[f64],
    beta0: f64,
) -> Result<Vec<f64>, KrylovError> {
    let m = alpha.len();
    let mut t = DMat::zeros(m, m);
    for i in 0..m {
        t[(i, i)] = alpha[i];
        if i + 1 < m {
            t[(i, i + 1)] = beta[i];
            t[(i + 1, i)] = beta[i];
        }
    }
    let mut e1 = DMat::zeros(m, 1);
    e1[(0, 0)] = beta0;
    let coeffs = sym_sqrt_times_block(&t, &e1)
        .map_err(|w| KrylovError::NotPositiveSemidefinite { eigenvalue: w })?;
    let n = v[0].len();
    let mut g = vec![0.0; n];
    for (k, vk) in v.iter().take(m).enumerate() {
        let c = coeffs[(k, 0)];
        for (gi, vi) in g.iter_mut().zip(vk) {
            *gi += c * vi;
        }
    }
    Ok(g)
}

/// Approximate `G = M^{1/2} Z` for a block of `s` vectors (`z` row-major
/// `[n][s]`) with block Lanczos — Algorithm 2's displacement kernel.
///
/// ```
/// use hibd_krylov::{block_lanczos_sqrt, KrylovConfig};
/// use hibd_linalg::{DenseOp, DMat};
///
/// // M = diag(1, 4): sqrt(M) = diag(1, 2).
/// let m = DMat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 4.0]);
/// let z = vec![1.0, 1.0,   // row of particle-dof 0: two samples
///              1.0, 2.0];  // row of particle-dof 1
/// let (g, stats) =
///     block_lanczos_sqrt(&mut DenseOp::new(m), &z, 2, &KrylovConfig::default()).unwrap();
/// assert!(stats.converged);
/// assert!((g[0] - 1.0).abs() < 1e-10); // sqrt(1) * 1
/// assert!((g[3] - 4.0).abs() < 1e-10); // sqrt(4) * 2
/// ```
pub fn block_lanczos_sqrt(
    op: &mut dyn LinearOperator,
    z: &[f64],
    s: usize,
    cfg: &KrylovConfig,
) -> Result<(Vec<f64>, KrylovStats), KrylovError> {
    let n = op.dim();
    if s == 0 || z.len() != n * s {
        return Err(KrylovError::BadShape(format!(
            "z has {} entries, expected n*s = {}",
            z.len(),
            n * s
        )));
    }
    if n < s {
        return Err(KrylovError::BadShape(format!("block width {s} exceeds dimension {n}")));
    }

    // V_1 R = Z (thin QR).
    let z0 = DMat::from_vec(n, s, z.to_vec());
    let qr0 = thin_qr(&z0);
    let r0 = qr0.r;
    let mut panels: Vec<DMat> = vec![qr0.q];
    let mut a_blocks: Vec<DMat> = Vec::new(); // diagonal blocks A_j (s x s)
    let mut b_blocks: Vec<DMat> = Vec::new(); // subdiagonal blocks B_j (s x s)

    // W is reused across iterations; apply_multi writes the operator's
    // batched block product straight into it (it fully overwrites), so the
    // hot loop performs no per-iteration allocation or copy for W.
    let mut wmat = DMat::zeros(n, s);
    let mut g_prev: Option<DMat> = None;
    let mut rel_change = f64::INFINITY;
    let mut breakdown = false;

    for j in 0..cfg.max_iter {
        op.apply_multi(panels[j].as_slice(), wmat.as_mut_slice(), s);
        if j > 0 {
            // W -= V_{j-1} B_{j-1}^T
            let corr = panels[j - 1].matmul(&b_blocks[j - 1].transpose());
            sub_assign(&mut wmat, &corr);
        }
        // A_j = V_j^T W; W -= V_j A_j
        let aj = panels[j].tr_matmul(&wmat);
        let corr = panels[j].matmul(&aj);
        sub_assign(&mut wmat, &corr);
        a_blocks.push(symmetrize(aj));
        // Full block reorthogonalization.
        for vk in &panels {
            let p = vk.tr_matmul(&wmat);
            let corr = vk.matmul(&p);
            sub_assign(&mut wmat, &corr);
        }
        let qr = thin_qr(&wmat);
        if qr.deficient.len() == s {
            breakdown = true;
        } else {
            b_blocks.push(qr.r.clone());
            panels.push(qr.q);
        }

        let check_now = (j + 1) % cfg.check_interval == 0 || j + 1 == cfg.max_iter;
        if check_now || breakdown {
            let g = evaluate_sqrt_block(&panels, &a_blocks, &b_blocks, &r0, s)?;
            if let Some(prev) = &g_prev {
                rel_change = rel_diff(g.as_slice(), prev.as_slice());
                if rel_change < cfg.tol || breakdown {
                    return done(
                        g.as_slice().to_vec(),
                        KrylovStats { iterations: j + 1, converged: true, rel_change },
                    );
                }
            } else if breakdown {
                return done(
                    g.as_slice().to_vec(),
                    KrylovStats { iterations: j + 1, converged: true, rel_change: 0.0 },
                );
            }
            g_prev = Some(g);
        }
    }
    let g = g_prev.expect("at least one evaluation");
    done(
        g.as_slice().to_vec(),
        KrylovStats { iterations: cfg.max_iter, converged: false, rel_change },
    )
}

/// `G_m = [V_1 .. V_m] * sqrt(T_m) * E_1 * R` for the current block
/// tridiagonal `T_m` (`m*s x m*s`).
fn evaluate_sqrt_block(
    panels: &[DMat],
    a_blocks: &[DMat],
    b_blocks: &[DMat],
    r0: &DMat,
    s: usize,
) -> Result<DMat, KrylovError> {
    let m = a_blocks.len();
    let ms = m * s;
    let mut t = DMat::zeros(ms, ms);
    for (jb, ab) in a_blocks.iter().enumerate() {
        for i in 0..s {
            for k in 0..s {
                t[(jb * s + i, jb * s + k)] = ab[(i, k)];
            }
        }
    }
    for (jb, bb) in b_blocks.iter().enumerate().take(m.saturating_sub(1)) {
        // T[(j+1)s + i, j s + k] = B_j[i, k]; symmetric counterpart mirrored.
        for i in 0..s {
            for k in 0..s {
                t[((jb + 1) * s + i, jb * s + k)] = bb[(i, k)];
                t[(jb * s + k, (jb + 1) * s + i)] = bb[(i, k)];
            }
        }
    }
    // E_1 R: ms x s block with R in the top block.
    let mut e1r = DMat::zeros(ms, s);
    for i in 0..s {
        for k in 0..s {
            e1r[(i, k)] = r0[(i, k)];
        }
    }
    let coeffs = sym_sqrt_times_block(&t, &e1r)
        .map_err(|w| KrylovError::NotPositiveSemidefinite { eigenvalue: w })?;
    // G = sum_j V_j * coeffs[j s .. (j+1) s, :]
    let n = panels[0].nrows();
    let mut g = DMat::zeros(n, s);
    for (jb, vj) in panels.iter().take(m).enumerate() {
        let cj = DMat::from_fn(s, s, |i, k| coeffs[(jb * s + i, k)]);
        let add = vj.matmul(&cj);
        add_assign(&mut g, &add);
    }
    Ok(g)
}

#[hibd::hot]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[hibd::hot]
fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[hibd::hot]
fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
    let den = norm(a).max(1e-300);
    num / den
}

#[hibd::hot]
fn sub_assign(a: &mut DMat, b: &DMat) {
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

#[hibd::hot]
fn add_assign(a: &mut DMat, b: &DMat) {
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

fn symmetrize(a: DMat) -> DMat {
    let n = a.nrows();
    DMat::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_linalg::{sym_eig, DenseOp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// SPD matrix with eigenvalues log-uniform in [lo, hi].
    fn spd_with_spectrum(n: usize, lo: f64, hi: f64, seed: u64) -> DMat {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = DMat::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let sym = DMat::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)]);
        let (_, v) = sym_eig(&sym);
        let w: Vec<f64> = (0..n).map(|_| (rng.gen_range(lo.ln()..hi.ln())).exp()).collect();
        // A = V diag(w) V^T
        let mut vw = v.clone();
        for i in 0..n {
            for j in 0..n {
                vw[(i, j)] *= w[j];
            }
        }
        vw.matmul(&v.transpose())
    }

    /// Exact M^{1/2} x via eigendecomposition.
    fn exact_sqrt_times(m: &DMat, x: &[f64]) -> Vec<f64> {
        let (w, v) = sym_eig(m);
        let n = m.nrows();
        let mut vtx = vec![0.0; n];
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..n {
                s += v[(i, j)] * x[i];
            }
            vtx[j] = s * w[j].max(0.0).sqrt();
        }
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += v[(i, j)] * vtx[j];
            }
            out[i] = s;
        }
        out
    }

    #[test]
    fn lanczos_converges_to_exact_sqrt() {
        let n = 40;
        let m = spd_with_spectrum(n, 0.2, 2.5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want = exact_sqrt_times(&m, &z);
        let mut op = DenseOp::new(m);
        let cfg = KrylovConfig { tol: 1e-10, max_iter: 100, check_interval: 1 };
        let (g, stats) = lanczos_sqrt(&mut op, &z, &cfg).unwrap();
        assert!(stats.converged);
        let err = rel_diff(&g, &want);
        assert!(err < 1e-8, "rel err {err}, iters {}", stats.iterations);
    }

    #[test]
    fn looser_tolerance_costs_fewer_iterations() {
        let n = 60;
        let m = spd_with_spectrum(n, 0.05, 5.0, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let tight = KrylovConfig { tol: 1e-8, max_iter: 100, check_interval: 1 };
        let loose = KrylovConfig { tol: 1e-2, max_iter: 100, check_interval: 1 };
        let (_, st) = lanczos_sqrt(&mut DenseOp::new(m.clone()), &z, &tight).unwrap();
        let (_, sl) = lanczos_sqrt(&mut DenseOp::new(m), &z, &loose).unwrap();
        assert!(sl.iterations < st.iterations, "{} !< {}", sl.iterations, st.iterations);
        assert!(sl.converged && st.converged);
    }

    #[test]
    fn identity_operator_is_exact_in_one_iteration() {
        let n = 10;
        let mut op = DenseOp::new(DMat::identity(n));
        let z: Vec<f64> = (0..n).map(|i| i as f64 - 4.5).collect();
        let cfg = KrylovConfig::default();
        let (g, stats) = lanczos_sqrt(&mut op, &z, &cfg).unwrap();
        // sqrt(I) z = z; breakdown after first iteration.
        assert!(stats.converged);
        assert!(rel_diff(&g, &z) < 1e-12);
    }

    #[test]
    fn zero_vector_yields_zero() {
        let mut op = DenseOp::new(DMat::identity(5));
        let (g, stats) = lanczos_sqrt(&mut op, &[0.0; 5], &KrylovConfig::default()).unwrap();
        assert_eq!(g, vec![0.0; 5]);
        assert!(stats.converged);
    }

    #[test]
    fn rejects_indefinite_operator() {
        let mut m = DMat::identity(4);
        m[(2, 2)] = -1.0;
        let mut op = DenseOp::new(m);
        let z = [1.0, 1.0, 1.0, 1.0];
        let cfg = KrylovConfig { tol: 1e-10, max_iter: 20, check_interval: 1 };
        let err = lanczos_sqrt(&mut op, &z, &cfg).unwrap_err();
        assert!(matches!(err, KrylovError::NotPositiveSemidefinite { .. }));
    }

    #[test]
    fn block_matches_exact_sqrt_per_column() {
        let n = 30;
        let s = 4;
        let m = spd_with_spectrum(n, 0.3, 3.0, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let z: Vec<f64> = (0..n * s).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = KrylovConfig { tol: 1e-10, max_iter: 60, check_interval: 1 };
        let (g, stats) = block_lanczos_sqrt(&mut DenseOp::new(m.clone()), &z, s, &cfg).unwrap();
        assert!(stats.converged);
        for col in 0..s {
            let zc: Vec<f64> = (0..n).map(|i| z[i * s + col]).collect();
            let want = exact_sqrt_times(&m, &zc);
            let gc: Vec<f64> = (0..n).map(|i| g[i * s + col]).collect();
            let err = rel_diff(&gc, &want);
            assert!(err < 1e-7, "col {col}: rel err {err}");
        }
    }

    #[test]
    fn block_with_one_column_matches_single_vector() {
        let n = 25;
        let m = spd_with_spectrum(n, 0.5, 2.0, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = KrylovConfig { tol: 1e-9, max_iter: 60, check_interval: 1 };
        let (g1, _) = lanczos_sqrt(&mut DenseOp::new(m.clone()), &z, &cfg).unwrap();
        let (gb, _) = block_lanczos_sqrt(&mut DenseOp::new(m), &z, 1, &cfg).unwrap();
        assert!(rel_diff(&g1, &gb) < 1e-6);
    }

    #[test]
    fn block_uses_fewer_iterations_per_vector() {
        // The paper's motivation (a): block Krylov needs fewer total
        // iterations than running the single-vector method s times.
        let n = 80;
        let s = 8;
        let m = spd_with_spectrum(n, 0.05, 5.0, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let z: Vec<f64> = (0..n * s).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = KrylovConfig { tol: 1e-4, max_iter: 100, check_interval: 1 };
        let (_, bs) = block_lanczos_sqrt(&mut DenseOp::new(m.clone()), &z, s, &cfg).unwrap();
        let zc: Vec<f64> = (0..n).map(|i| z[i * s]).collect();
        let (_, ss) = lanczos_sqrt(&mut DenseOp::new(m), &zc, &cfg).unwrap();
        assert!(
            bs.iterations <= ss.iterations,
            "block iters {} vs single iters {}",
            bs.iterations,
            ss.iterations
        );
    }

    #[test]
    fn covariance_of_samples_matches_m() {
        // E[g g^T] = M when z ~ N(0, I): the fluctuation-dissipation check.
        let n = 6;
        let m = spd_with_spectrum(n, 0.5, 2.0, 41);
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = KrylovConfig { tol: 1e-8, max_iter: 30, check_interval: 1 };
        let samples = 20_000;
        let mut cov = DMat::zeros(n, n);
        let mut z = vec![0.0; n];
        let mut op = DenseOp::new(m.clone());
        for _ in 0..samples {
            hibd_mathx_fill(&mut rng, &mut z);
            let (g, _) = lanczos_sqrt(&mut op, &z, &cfg).unwrap();
            for i in 0..n {
                for j in 0..n {
                    cov[(i, j)] += g[i] * g[j];
                }
            }
        }
        for v in cov.as_mut_slice() {
            *v /= samples as f64;
        }
        let scale = m.fro_norm();
        assert!(cov.max_abs_diff(&m) < 0.05 * scale, "covariance error {}", cov.max_abs_diff(&m));
    }

    /// Local standard-normal fill (Box–Muller) to avoid a dev-dependency on
    /// hibd-mathx just for tests.
    fn hibd_mathx_fill(rng: &mut StdRng, out: &mut [f64]) {
        for x in out.iter_mut() {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            *x = (-2.0 * u1.ln()).sqrt() * u2.cos();
        }
    }
}
