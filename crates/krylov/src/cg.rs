//! Conjugate gradients for SPD operator systems `M x = b`.
//!
//! The *resistance problem* — given particle velocities, find the forces —
//! inverts the mobility: `f = M^{-1} u`. With the matrix-free PME operator
//! the natural solver is CG, which (like the displacement computation)
//! needs only operator applications. Used by constrained BD schemes and by
//! tests as an independent check that the PME operator is well-conditioned
//! SPD.

use crate::{KrylovError, KrylovStats};
use hibd_linalg::LinearOperator;

/// Options for [`conjugate_gradient`].
#[derive(Clone, Copy, Debug)]
pub struct CgConfig {
    /// Relative residual tolerance `|r| / |b|`.
    pub tol: f64,
    pub max_iter: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig { tol: 1e-8, max_iter: 500 }
    }
}

/// Solve `M x = b` for SPD `M`. Returns the solution and stats (the
/// `rel_change` field reports the final relative residual).
pub fn conjugate_gradient(
    op: &mut dyn LinearOperator,
    b: &[f64],
    cfg: &CgConfig,
) -> Result<(Vec<f64>, KrylovStats), KrylovError> {
    let n = op.dim();
    if b.len() != n {
        return Err(KrylovError::BadShape(format!("b has {} entries, dim {n}", b.len())));
    }
    let bnorm = norm(b);
    if bnorm == 0.0 {
        return Ok((vec![0.0; n], KrylovStats { iterations: 0, converged: true, rel_change: 0.0 }));
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r);

    for it in 0..cfg.max_iter {
        op.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(KrylovError::NotPositiveSemidefinite { eigenvalue: pap / dot(&p, &p) });
        }
        let alpha = rr / pap;
        for ((xi, pi), (ri, api)) in x.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
            *xi += alpha * pi;
            *ri -= alpha * api;
        }
        let rr_new = dot(&r, &r);
        let rel = rr_new.sqrt() / bnorm;
        if rel < cfg.tol {
            return Ok((x, KrylovStats { iterations: it + 1, converged: true, rel_change: rel }));
        }
        let beta = rr_new / rr;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rr = rr_new;
    }
    let rel = rr.sqrt() / bnorm;
    Ok((x, KrylovStats { iterations: cfg.max_iter, converged: false, rel_change: rel }))
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_linalg::{DMat, DenseOp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spd(n: usize, seed: u64) -> DMat {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = DMat::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64 * 0.5;
        }
        a
    }

    #[test]
    fn solves_spd_system_to_tolerance() {
        let n = 50;
        let a = spd(n, 1);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut b = vec![0.0; n];
        a.mul_vec(&x_true, &mut b);
        let (x, stats) =
            conjugate_gradient(&mut DenseOp::new(a), &b, &CgConfig::default()).unwrap();
        assert!(stats.converged, "iters {}", stats.iterations);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn converges_in_at_most_n_iterations() {
        let n = 20;
        let a = spd(n, 3);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        let (_, stats) =
            conjugate_gradient(&mut DenseOp::new(a), &b, &CgConfig::default()).unwrap();
        assert!(stats.converged);
        assert!(stats.iterations <= n + 2, "{}", stats.iterations);
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let a = spd(8, 5);
        let (x, stats) =
            conjugate_gradient(&mut DenseOp::new(a), &[0.0; 8], &CgConfig::default()).unwrap();
        assert_eq!(x, vec![0.0; 8]);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn detects_indefinite_operator() {
        let mut a = DMat::identity(4);
        a[(1, 1)] = -2.0;
        let b = [1.0, 1.0, 1.0, 1.0];
        let err = conjugate_gradient(&mut DenseOp::new(a), &b, &CgConfig::default());
        assert!(matches!(err, Err(KrylovError::NotPositiveSemidefinite { .. })));
    }

    #[test]
    fn unconverged_reports_honestly() {
        let a = spd(30, 9);
        let b: Vec<f64> = (0..30).map(|i| (i as f64).cos()).collect();
        let cfg = CgConfig { tol: 1e-14, max_iter: 2 };
        let (_, stats) = conjugate_gradient(&mut DenseOp::new(a), &b, &cfg).unwrap();
        assert!(!stats.converged);
        assert!(stats.rel_change > 1e-14);
    }

    #[test]
    fn inverse_of_sqrt_squared_is_identity_action() {
        // CG(M, M z) == z: consistency between apply and solve.
        let n = 25;
        let a = spd(n, 11);
        let z: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64 * 0.17).sin()).collect();
        let mut mz = vec![0.0; n];
        a.mul_vec(&z, &mut mz);
        let (x, _) = conjugate_gradient(&mut DenseOp::new(a), &mz, &CgConfig::default()).unwrap();
        for (got, want) in x.iter().zip(&z) {
            assert!((got - want).abs() < 1e-7);
        }
    }
}
