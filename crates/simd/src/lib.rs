//! Runtime SIMD dispatch for hibd hot kernels.
//!
//! The workspace's vectorized kernels (FFT combine stages, B-spline
//! spread/interpolate rows, RPY near-field pair batches) are compiled with
//! `#[target_feature(enable = "avx2,fma")]` and selected at runtime. This
//! crate is the single source of truth for that decision:
//!
//! * `level()` reports [`Level::Avx2`] only when the CPU supports **both**
//!   AVX2 and FMA (the kernels assume fused multiply-add), the crate was
//!   built with the default `simd` feature, and the `HIBD_SIMD` environment
//!   variable does not disable it.
//! * `HIBD_SIMD=off` (also `0` or `scalar`) forces the scalar fallback at
//!   process start — this is the switch CI uses to keep the scalar paths
//!   green on vector-capable runners.
//! * Building with `--no-default-features` removes the vector paths at
//!   compile time; `level()` is then a constant [`Level::Scalar`].
//!
//! Dispatch sites follow one convention, enforced by `cargo run -p xtask --
//! audit`: every `#[target_feature]` kernel is an `unsafe fn` whose name ends
//! in `_avx2`, has a `*_scalar` sibling in the same file, and is only called
//! under `level() == Level::Avx2` with a `// SAFETY:` comment citing the
//! detection.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction-set level selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Portable scalar kernels only.
    Scalar,
    /// AVX2 + FMA kernels (x86-64, runtime-detected).
    Avx2,
}

/// Test/bench override so one process can exercise both kernel paths.
/// 0 = auto (detected), 1 = force scalar.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn detected() -> Level {
    static DETECTED: OnceLock<Level> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if !cfg!(feature = "simd") {
            return Level::Scalar;
        }
        // NOTE: this one-time init allocates when the variable is set (the
        // `OsString` copy); alloc-regression tests must touch `level()`
        // before their measurement window.
        if let Some(v) = std::env::var_os("HIBD_SIMD") {
            if v == "off" || v == "0" || v == "scalar" {
                return Level::Scalar;
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Level::Avx2;
            }
        }
        Level::Scalar
    })
}

/// The instruction-set level kernels should dispatch on. Cheap (one relaxed
/// atomic load plus a cached lookup); fine to query per row or per batch.
#[inline]
pub fn level() -> Level {
    if OVERRIDE.load(Ordering::Relaxed) == 1 {
        return Level::Scalar;
    }
    detected()
}

/// `true` when the AVX2+FMA kernel path is selected.
#[inline]
pub fn avx2() -> bool {
    level() == Level::Avx2
}

/// Force the scalar fallback for this process (`on = true`) or restore
/// auto-detection (`on = false`).
///
/// Intended for equivalence tests and scalar-vs-SIMD benchmarks that must
/// run both paths in one process. Tests that toggle this must serialize
/// (take a shared mutex) — the override is process-global.
pub fn force_scalar(on: bool) {
    OVERRIDE.store(u8::from(on), Ordering::Relaxed);
}

/// RAII guard that forces the scalar path while alive. Restores
/// auto-detection on drop. Same serialization caveat as [`force_scalar`].
pub struct ScalarGuard(());

impl ScalarGuard {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        force_scalar(true);
        ScalarGuard(())
    }
}

impl Drop for ScalarGuard {
    fn drop(&mut self) {
        force_scalar(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The override is process-global; tests that flip it serialize here.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn override_forces_scalar() {
        let _l = LOCK.lock().unwrap();
        // Whatever the hardware, the override must win while set and release
        // cleanly after.
        {
            let _g = ScalarGuard::new();
            assert_eq!(level(), Level::Scalar);
            assert!(!avx2());
        }
        assert_eq!(level(), detected());
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(detected(), detected());
    }
}
