//! Per-job lifecycle state and the `meta.json` commit protocol.
//!
//! Each job owns a directory `<output>/<name>/` containing
//!
//! * `trajectory.xyz` — the streamed frames (byte-identical to the file a
//!   standalone `hibd run` of the same config would write);
//! * `ckpt-<step>.hibd` — the most recent checkpoint;
//! * `meta.json` — the **commit point** (schema `hibd-job-v1`): state,
//!   completed steps, the checkpoint file name, and the committed
//!   trajectory byte count.
//!
//! The write order at a checkpoint is trajectory flush → checkpoint
//! (atomic) → `meta.json` (atomic) → old checkpoint unlink. A daemon killed
//! anywhere in that sequence restarts from a consistent pair: `meta.json`
//! always names a checkpoint that exists, and resume truncates the
//! trajectory to the committed byte count before replaying. Non-terminal
//! checkpoints are taken only at `lambda_RPY` window boundaries, where the
//! window-seeded RNG makes the replay bitwise.

use crate::output::atomic_write;
use hibd_telemetry::json::{self, Value};
use std::path::{Path, PathBuf};

/// Job lifecycle states reported in `meta.json` and `status.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Spooled, waiting for admission (queue bound reached).
    Queued,
    /// Admitted to a worker and stepping.
    Running,
    /// Reached its configured step budget.
    Done,
    /// Failed (setup error, step fault, panic, or deadline).
    Failed,
    /// Cancelled through a `.cancel` spool sentinel.
    Cancelled,
}

impl JobState {
    /// The state's `meta.json` / `status.json` string.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parse a `meta.json` state string.
    #[must_use]
    pub fn from_name(name: &str) -> Option<JobState> {
        match name {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Terminal states never re-admit on restart.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// The committed job record (`meta.json`, schema `hibd-job-v1`).
#[derive(Clone, Debug, PartialEq)]
pub struct JobMeta {
    pub name: String,
    pub state: JobState,
    /// Completed (global) steps at the commit.
    pub step: u64,
    /// Configured step budget.
    pub steps: u64,
    /// File name (relative to the job directory) of the checkpoint backing
    /// `step`; `None` before the first checkpoint (resume restarts fresh).
    pub checkpoint: Option<String>,
    /// Committed trajectory length in bytes.
    pub trajectory_bytes: u64,
    /// Failure/cancellation detail.
    pub error: Option<String>,
}

impl JobMeta {
    /// Render the `hibd-job-v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ckpt = match &self.checkpoint {
            Some(c) => format!("\"{}\"", json::escape(c)),
            None => "null".to_string(),
        };
        let error = match &self.error {
            Some(e) => format!("\"{}\"", json::escape(e)),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"schema\": \"hibd-job-v1\",\n  \"name\": \"{}\",\n  \"state\": \"{}\",\n  \
             \"step\": {},\n  \"steps\": {},\n  \"checkpoint\": {},\n  \
             \"trajectory_bytes\": {},\n  \"error\": {}\n}}\n",
            json::escape(&self.name),
            self.state.name(),
            self.step,
            self.steps,
            ckpt,
            self.trajectory_bytes,
            error
        )
    }

    /// Parse a `meta.json` document.
    pub fn from_json(src: &str) -> Result<JobMeta, String> {
        let v = json::parse(src)?;
        if v.get("schema").and_then(Value::as_str) != Some("hibd-job-v1") {
            return Err("not an hibd-job-v1 document".into());
        }
        let field_u64 = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .map(|x| x as u64)
                .ok_or_else(|| format!("missing numeric `{key}`"))
        };
        let state_name =
            v.get("state").and_then(Value::as_str).ok_or_else(|| "missing `state`".to_string())?;
        Ok(JobMeta {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| "missing `name`".to_string())?
                .to_string(),
            state: JobState::from_name(state_name)
                .ok_or_else(|| format!("unknown state `{state_name}`"))?,
            step: field_u64("step")?,
            steps: field_u64("steps")?,
            checkpoint: v.get("checkpoint").and_then(Value::as_str).map(str::to_string),
            trajectory_bytes: field_u64("trajectory_bytes")?,
            error: v.get("error").and_then(Value::as_str).map(str::to_string),
        })
    }

    /// Atomically commit this record to `dir/meta.json`.
    pub fn commit(&self, dir: &Path) -> std::io::Result<()> {
        atomic_write(&dir.join("meta.json"), self.to_json().as_bytes())
    }

    /// Load the committed record from `dir/meta.json` (`Ok(None)` when no
    /// commit exists yet; a corrupt file is an error).
    pub fn load(dir: &Path) -> Result<Option<JobMeta>, String> {
        let path = dir.join("meta.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => JobMeta::from_json(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }
}

/// Checkpoint file name for a committed step.
#[must_use]
pub fn checkpoint_name(step: u64) -> String {
    format!("ckpt-{step}.hibd")
}

/// The job's trajectory path.
#[must_use]
pub fn trajectory_path(dir: &Path) -> PathBuf {
    dir.join("trajectory.xyz")
}

/// Round a checkpoint interval up to a `lambda_RPY` window multiple: only
/// window-boundary checkpoints resume bitwise, so the daemon aligns every
/// non-terminal commit. `interval = 0` (config default "no checkpoints")
/// falls back to four windows — the service always checkpoints.
#[must_use]
pub fn aligned_checkpoint_interval(interval: usize, lambda: usize) -> u64 {
    let lambda = lambda.max(1) as u64;
    let base = if interval == 0 { 4 * lambda } else { interval as u64 };
    base.div_ceil(lambda) * lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrips_through_json() {
        let meta = JobMeta {
            name: "job \"a\"".to_string(),
            state: JobState::Running,
            step: 128,
            steps: 400,
            checkpoint: Some(checkpoint_name(128)),
            trajectory_bytes: 90210,
            error: None,
        };
        assert_eq!(JobMeta::from_json(&meta.to_json()).unwrap(), meta);

        let terminal = JobMeta {
            state: JobState::Failed,
            checkpoint: None,
            error: Some("deadline exceeded".to_string()),
            ..meta
        };
        let back = JobMeta::from_json(&terminal.to_json()).unwrap();
        assert_eq!(back, terminal);
        assert!(back.state.is_terminal());
    }

    #[test]
    fn commit_and_load_are_inverse() {
        let dir = std::env::temp_dir().join("hibd_serve_meta_test");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(JobMeta::load(&dir).unwrap(), None);
        let meta = JobMeta {
            name: "j".to_string(),
            state: JobState::Done,
            step: 8,
            steps: 8,
            checkpoint: Some(checkpoint_name(8)),
            trajectory_bytes: 42,
            error: None,
        };
        meta.commit(&dir).unwrap();
        assert_eq!(JobMeta::load(&dir).unwrap(), Some(meta));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_intervals_align_to_windows() {
        assert_eq!(aligned_checkpoint_interval(0, 8), 32);
        assert_eq!(aligned_checkpoint_interval(5, 8), 8);
        assert_eq!(aligned_checkpoint_interval(8, 8), 8);
        assert_eq!(aligned_checkpoint_interval(9, 8), 16);
        assert_eq!(aligned_checkpoint_interval(3, 1), 3);
    }

    #[test]
    fn states_roundtrip_by_name() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_name(s.name()), Some(s));
        }
        assert_eq!(JobState::from_name("nope"), None);
    }
}
