//! `hibd-serve`: a resident batch-simulation service.
//!
//! The throughput case for the paper's method is not one long trajectory
//! but *fleets* of them — parameter sweeps and replica ensembles where the
//! expensive part (operator setup, FFT plans, tuned shapes) is shared
//! across jobs. This crate turns the [`hibd_engine::EnsembleRunner`] into a
//! long-running daemon:
//!
//! * [`spool`] — jobs are ordinary `hibd run` config files dropped into a
//!   watched directory; a `<name>.cancel` sentinel cancels cooperatively;
//! * [`server`] — the main loop: bounded admission, one-time shape
//!   resolution, and shape-affine routing so same-shape jobs land in the
//!   same worker's runner (continuous batching — joins at the next step
//!   boundary, retirements without stalling the group);
//! * [`worker`] — worker threads (std threads + channels, no async
//!   runtime), each owning one runner with per-job fault isolation;
//! * [`job`] / [`output`] — the crash-safe streaming protocol: append-only
//!   trajectories, atomic rename-on-write checkpoints, and a `meta.json`
//!   commit point, with non-terminal checkpoints aligned to `lambda_RPY`
//!   window boundaries so a killed daemon resumes every job **bitwise**;
//! * [`status`] — a periodically rewritten `hibd-serve-v1` `status.json`
//!   (queue depths, plan-cache health, group occupancy, per-job telemetry)
//!   plus the validator behind `xtask validate-status`;
//! * [`shutdown`] — SIGINT/SIGTERM → finish the step, checkpoint all, exit.

pub mod job;
pub mod output;
pub mod server;
pub mod shutdown;
pub mod spec;
pub mod spool;
pub mod status;
pub mod worker;

pub use job::{JobMeta, JobState};
pub use server::{serve, ServeReport};
pub use spec::ServeSpec;
pub use status::validate_status;
