//! Process-wide graceful-shutdown flag.
//!
//! `hibd serve` (and plain `hibd run`) must survive Ctrl-C without tearing a
//! checkpoint: the signal handler only sets an atomic flag, and the stepping
//! loops poll [`requested`] at step boundaries, finish the step, write a
//! final checkpoint, and exit cleanly. The handler is installed with the
//! libc `signal(2)` entry point directly — the service is dependency-free,
//! and an atomic store is on the short list of async-signal-safe operations.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    // Async-signal-safe: a relaxed atomic store, nothing else.
    REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Install the SIGINT/SIGTERM handler. Idempotent; a no-op on non-unix
/// targets (the flag still works through [`request`]).
pub fn install() {
    #[cfg(unix)]
    {
        // SAFETY: `signal(2)` with a handler that only performs an
        // async-signal-safe atomic store; the handler stays valid for the
        // process lifetime (it is a plain fn item).
        unsafe {
            signal(SIGINT, on_signal);
        }
        // SAFETY: as above, for SIGTERM.
        unsafe {
            signal(SIGTERM, on_signal);
        }
    }
}

/// Has a shutdown been requested (signal received or [`request`] called)?
#[must_use]
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Request a shutdown programmatically (tests, embedding).
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Clear the flag (tests; the flag is process-global).
pub fn reset() {
    REQUESTED.store(false, Ordering::Relaxed);
}
