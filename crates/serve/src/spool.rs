//! Spool directory scanning.
//!
//! Jobs are submitted by dropping an ordinary `hibd run` config file into
//! the spool directory; the job name is the file stem (`colloid.conf` →
//! `colloid`). A `<name>.cancel` sentinel requests cooperative cancellation.
//! Scans are sorted by name so admission order — and therefore worker
//! routing — is deterministic for a given spool content.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One deterministic snapshot of the spool directory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpoolScan {
    /// Job name → config file path, sorted by name.
    pub jobs: BTreeMap<String, PathBuf>,
    /// Names with a `.cancel` sentinel present.
    pub cancels: Vec<String>,
}

/// File stem used as the job name (`colloid.conf` → `colloid`; an
/// extensionless file keeps its full name).
fn job_name(path: &Path) -> Option<String> {
    let stem = path.file_stem()?.to_str()?;
    if stem.is_empty() || stem.starts_with('.') {
        return None;
    }
    Some(stem.to_string())
}

/// Scan `dir`, returning the sorted job set and pending cancellations.
/// Hidden files and in-flight `.tmp` writes are ignored; when two files
/// share a stem the lexicographically first path wins.
pub fn scan(dir: &Path) -> io::Result<SpoolScan> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            paths.push(entry.path());
        }
    }
    paths.sort();

    let mut scan = SpoolScan::default();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with('.') || name.ends_with(".tmp") {
            continue;
        }
        if let Some(stem) = name.strip_suffix(".cancel") {
            if !stem.is_empty() {
                scan.cancels.push(stem.to_string());
            }
            continue;
        }
        if let Some(job) = job_name(&path) {
            scan.jobs.entry(job).or_insert(path);
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_sorts_and_classifies() {
        let dir = std::env::temp_dir().join("hibd_serve_spool_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for f in ["b.conf", "a.conf", "c.cancel", ".hidden", "d.conf.tmp"] {
            std::fs::write(dir.join(f), "x").unwrap();
        }
        let s = scan(&dir).unwrap();
        let names: Vec<&String> = s.jobs.keys().collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(s.cancels, ["c"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_stems_keep_the_first_path() {
        let dir = std::env::temp_dir().join("hibd_serve_spool_dup_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.cfg"), "x").unwrap();
        std::fs::write(dir.join("a.conf"), "x").unwrap();
        let s = scan(&dir).unwrap();
        assert_eq!(s.jobs.len(), 1);
        assert_eq!(s.jobs["a"], dir.join("a.cfg"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
