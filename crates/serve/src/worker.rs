//! Worker threads: each owns one [`EnsembleRunner`] and steps its admitted
//! jobs in lockstep.
//!
//! The server routes same-shape jobs to the same worker, so a worker's
//! runner groups them on one plan `Arc` and batches their drift FFTs
//! (continuous batching: an admit joins its group at the next step
//! boundary, a finished job retires without stalling the rest). All file
//! output follows the `meta.json` commit protocol in [`crate::job`]; faults
//! are isolated per job through [`EnsembleRunner::step_isolated`].

use crate::job::{
    aligned_checkpoint_interval, checkpoint_name, trajectory_path, JobMeta, JobState,
};
use crate::output::{atomic_write, CountingFile};
use crate::status::{JobView, ServiceState, WorkerView};
use hibd_core::checkpoint::Checkpoint;
use hibd_core::config::SimSpec;
use hibd_core::io::{Coordinates, XyzWriter};
use hibd_core::mf_bd::MatrixFreeConfig;
use hibd_core::system::ParticleSystem;
use hibd_engine::{EnsembleRunner, PlanCache};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server → worker messages.
pub enum Command {
    /// Admit a prepared job (system built / checkpoint restored, shape
    /// resolved and pinned in `cfg` by the server).
    Admit(Box<AdmitJob>),
    /// Cooperatively cancel a job by name at the next step boundary.
    Cancel(String),
    /// Finish every job's current window, checkpoint, and exit.
    Drain,
}

/// Everything a worker needs to take over a job.
pub struct AdmitJob {
    pub name: String,
    pub spec: SimSpec,
    /// Resolved config: the server pins the backend parameters so
    /// admission never re-runs the tuner and same-shape jobs share plans.
    pub cfg: MatrixFreeConfig,
    /// Initial (or checkpoint-restored) configuration.
    pub system: ParticleSystem,
    /// Completed steps at hand-over (0 fresh, the committed step on resume;
    /// always a `lambda_RPY` window boundary so the replay is bitwise).
    pub start_step: u64,
    /// Committed trajectory bytes (resume truncates to this).
    pub traj_bytes: u64,
    /// Job output directory.
    pub dir: PathBuf,
}

/// Worker-side bookkeeping for one live job.
struct ActiveJob {
    name: String,
    dir: PathBuf,
    steps: u64,
    step: u64,
    lambda: u64,
    ckpt_every: u64,
    traj_interval: u64,
    writer: XyzWriter<CountingFile>,
    committed_ckpt: Option<String>,
    deadline: Option<Duration>,
    admitted: Instant,
    cancel: bool,
}

/// One worker thread: drain commands, step, commit output, repeat.
pub struct Worker {
    index: usize,
    runner: EnsembleRunner,
    jobs: BTreeMap<usize, ActiveJob>,
    rx: Receiver<Command>,
    state: Arc<Mutex<ServiceState>>,
    throttle: Duration,
    poll: Duration,
    draining: bool,
}

impl Worker {
    /// Thread body: runs until drained (and told to) or the channel closes.
    pub fn run(
        index: usize,
        plan_cache: usize,
        throttle_ms: u64,
        poll_ms: u64,
        rx: Receiver<Command>,
        state: Arc<Mutex<ServiceState>>,
    ) {
        let cache =
            if plan_cache == 0 { PlanCache::new() } else { PlanCache::with_capacity(plan_cache) };
        let mut worker = Worker {
            index,
            runner: EnsembleRunner::with_cache(cache),
            jobs: BTreeMap::new(),
            rx,
            state,
            throttle: Duration::from_millis(throttle_ms),
            poll: Duration::from_millis(poll_ms.max(1)),
            draining: false,
        };
        worker.serve();
    }

    fn serve(&mut self) {
        loop {
            while let Ok(cmd) = self.rx.try_recv() {
                self.handle(cmd);
            }
            if crate::shutdown::requested() {
                self.draining = true;
            }
            // Pre-step pass: everything that must happen at a step boundary
            // (budget, cancellation, deadline, drain parking).
            self.boundary_pass();
            if self.runner.is_empty() {
                self.publish();
                if self.draining {
                    return;
                }
                // Idle: block on the channel so an empty worker costs nothing.
                match self.rx.recv_timeout(self.poll) {
                    Ok(cmd) => self.handle(cmd),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                continue;
            }

            let failures = self.runner.step_isolated();
            for f in &failures {
                self.finalize(f.slot, JobState::Failed, Some(f.fault.to_string()));
            }
            let survivors: Vec<usize> =
                self.jobs.keys().copied().filter(|s| self.runner.slot(*s).is_some()).collect();
            for slot in survivors {
                self.post_step(slot);
            }
            self.publish();
            if !self.throttle.is_zero() {
                std::thread::sleep(self.throttle);
            }
        }
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::Admit(job) => self.admit(*job),
            Command::Cancel(name) => {
                for job in self.jobs.values_mut() {
                    if job.name == name {
                        job.cancel = true;
                    }
                }
            }
            Command::Drain => self.draining = true,
        }
    }

    fn log(&self, message: &str) {
        let mut state = self.state.lock().expect("service state mutex");
        state.log.push(format!("worker {}: {message}", self.index));
    }

    fn update_view(&self, name: &str, f: impl FnOnce(&mut JobView)) {
        let mut state = self.state.lock().expect("service state mutex");
        let view = state.jobs.entry(name.to_string()).or_insert_with(|| JobView::queued(0));
        f(view);
    }

    fn admit(&mut self, job: AdmitJob) {
        let name = job.name.clone();
        match self.try_admit(job) {
            Ok(slot) => {
                let job = &self.jobs[&slot];
                let (step, steps) = (job.step, job.steps);
                self.update_view(&name, |v| {
                    v.state = JobState::Running;
                    v.step = step;
                    v.steps = steps;
                });
                self.log(&format!("admitted {name} at step {step}/{steps} (slot {slot})"));
            }
            Err(e) => {
                self.log(&format!("admission of {name} failed: {e}"));
                self.update_view(&name, |v| {
                    v.state = JobState::Failed;
                    v.error = Some(e.clone());
                });
            }
        }
    }

    fn try_admit(&mut self, job: AdmitJob) -> Result<usize, String> {
        std::fs::create_dir_all(&job.dir).map_err(|e| format!("creating job dir: {e}"))?;
        let spec = &job.spec;
        let traj_interval = spec.trajectory_interval.max(1) as u64;
        let sink = CountingFile::resume(&trajectory_path(&job.dir), job.traj_bytes)
            .map_err(|e| format!("opening trajectory: {e}"))?;
        let writer = XyzWriter::new(sink, Coordinates::Wrapped)
            .with_frame_offset((job.start_step / traj_interval) as usize);

        let slot = self
            .runner
            .admit(job.system, job.cfg, spec.seed)
            .map_err(|e| format!("building the driver: {e}"))?;
        let bd = self.runner.slot_mut(slot).expect("freshly admitted slot");
        // Window-seeded RNG: resuming the completed-step counter at a
        // window boundary replays the uninterrupted run bit for bit.
        bd.set_completed_steps(job.start_step);
        for force in spec.forces() {
            bd.add_force_boxed(force);
        }

        let lambda = spec.lambda_rpy.max(1) as u64;
        let active = ActiveJob {
            name: job.name,
            dir: job.dir,
            steps: spec.steps as u64,
            step: job.start_step,
            lambda,
            ckpt_every: aligned_checkpoint_interval(spec.checkpoint_interval, spec.lambda_rpy),
            traj_interval,
            writer,
            committed_ckpt: None,
            deadline: job.spec.deadline_seconds.map(Duration::from_secs_f64),
            admitted: Instant::now(),
            cancel: false,
        };
        let meta = JobMeta {
            name: active.name.clone(),
            state: JobState::Running,
            step: active.step,
            steps: active.steps,
            checkpoint: None,
            trajectory_bytes: job.traj_bytes,
            error: None,
        };
        // Re-commit the record at admission so a resumed job's meta is
        // refreshed even if it never reaches another checkpoint. The
        // resumed-from checkpoint (if any) stays on disk and stays named:
        let mut meta = meta;
        if active.step > 0 {
            let ckpt = checkpoint_name(active.step);
            if active.dir.join(&ckpt).exists() {
                meta.checkpoint = Some(ckpt);
            }
        }
        meta.commit(&active.dir).map_err(|e| format!("committing meta.json: {e}"))?;
        let committed = meta.checkpoint;
        self.jobs.insert(slot, ActiveJob { committed_ckpt: committed, ..active });
        Ok(slot)
    }

    /// Step-boundary housekeeping for every live job: budget, cancellation,
    /// wall-clock deadline, and drain parking (window boundaries only).
    fn boundary_pass(&mut self) {
        let slots: Vec<usize> = self.jobs.keys().copied().collect();
        for slot in slots {
            let job = &self.jobs[&slot];
            if job.step >= job.steps {
                self.finalize(slot, JobState::Done, None);
            } else if job.cancel {
                self.finalize(slot, JobState::Cancelled, Some("cancelled by sentinel".into()));
            } else if job.deadline.is_some_and(|d| job.admitted.elapsed() > d) {
                let msg = format!("deadline exceeded at step {}/{}", job.step, job.steps);
                self.finalize(slot, JobState::Failed, Some(msg));
            } else if self.draining && job.step.is_multiple_of(job.lambda) {
                self.park(slot);
            }
        }
    }

    /// One completed step for a surviving job: stream the frame, finish or
    /// commit a periodic checkpoint.
    fn post_step(&mut self, slot: usize) {
        let job = self.jobs.get_mut(&slot).expect("live job");
        job.step += 1;
        if job.step.is_multiple_of(job.traj_interval) {
            let system = self.runner.slot(slot).expect("live slot").system();
            let comment = format!("step={}", job.step);
            if let Err(e) = job.writer.write_frame(system, &comment) {
                let msg = format!("trajectory write failed: {e}");
                self.finalize(slot, JobState::Failed, Some(msg));
                return;
            }
        }
        let job = &self.jobs[&slot];
        if job.step >= job.steps {
            self.finalize(slot, JobState::Done, None);
        } else if job.step.is_multiple_of(job.ckpt_every) {
            if let Err(e) = self.commit_checkpoint(slot, JobState::Running, None) {
                let msg = format!("checkpoint commit failed: {e}");
                self.finalize(slot, JobState::Failed, Some(msg));
            }
        }
    }

    /// Flush the trajectory, write `ckpt-<step>.hibd`, commit `meta.json`,
    /// and unlink the superseded checkpoint (in that order — see
    /// [`crate::job`] for why a kill anywhere in between stays consistent).
    fn commit_checkpoint(
        &mut self,
        slot: usize,
        state: JobState,
        error: Option<String>,
    ) -> std::io::Result<()> {
        let system_ckpt = {
            let job = self.jobs.get_mut(&slot).expect("live job");
            job.writer.sink_mut().flush()?;
            let system = self.runner.slot(slot).expect("live slot").system();
            Checkpoint::capture(system, job.step).encode()
        };
        let job = self.jobs.get_mut(&slot).expect("live job");
        let ckpt = checkpoint_name(job.step);
        atomic_write(&job.dir.join(&ckpt), &system_ckpt)?;
        let meta = JobMeta {
            name: job.name.clone(),
            state,
            step: job.step,
            steps: job.steps,
            checkpoint: Some(ckpt.clone()),
            trajectory_bytes: job.writer.sink_mut().bytes(),
            error,
        };
        meta.commit(&job.dir)?;
        if let Some(old) = job.committed_ckpt.replace(ckpt) {
            if Some(&old) != job.committed_ckpt.as_ref() {
                std::fs::remove_file(job.dir.join(old)).ok();
            }
        }
        Ok(())
    }

    /// Retire `slot` into a terminal state: final checkpoint + meta commit,
    /// registry update, slot freed for the next admission.
    fn finalize(&mut self, slot: usize, state: JobState, error: Option<String>) {
        let snapshot = self.runner.job_snapshot(slot);
        let commit = if self.runner.slot(slot).is_some() {
            self.commit_checkpoint(slot, state, error.clone())
        } else {
            // The driver died mid-step (fault isolation): the in-memory
            // state is not at a step boundary, so keep the last committed
            // checkpoint and only update the record.
            let job = self.jobs.get_mut(&slot).expect("live job");
            job.writer.sink_mut().flush().and_then(|()| {
                JobMeta {
                    name: job.name.clone(),
                    state,
                    step: job.step,
                    steps: job.steps,
                    checkpoint: job.committed_ckpt.clone(),
                    trajectory_bytes: job.writer.sink_mut().bytes(),
                    error: error.clone(),
                }
                .commit(&job.dir)
            })
        };
        self.runner.retire(slot);
        let job = self.jobs.remove(&slot).expect("live job");
        if let Err(e) = commit {
            self.log(&format!("{}: terminal commit failed: {e}", job.name));
        }
        let step = job.step;
        self.update_view(&job.name, |v| {
            v.state = state;
            v.step = step;
            v.error = error.clone();
            v.snapshot = snapshot;
        });
        let detail = error.as_deref().unwrap_or("complete");
        self.log(&format!("{} -> {} at step {step} ({detail})", job.name, state.name()));
    }

    /// Drain parking: commit a window-boundary checkpoint with the job left
    /// in `running` state, then release the slot. A restarted daemon
    /// re-admits it from exactly this point, bitwise.
    fn park(&mut self, slot: usize) {
        let snapshot = self.runner.job_snapshot(slot);
        let commit = self.commit_checkpoint(slot, JobState::Running, None);
        self.runner.retire(slot);
        let job = self.jobs.remove(&slot).expect("live job");
        if let Err(e) = commit {
            self.log(&format!("{}: drain checkpoint failed: {e}", job.name));
        }
        let step = job.step;
        self.update_view(&job.name, |v| {
            v.state = JobState::Running;
            v.step = step;
            v.snapshot = snapshot;
        });
        self.log(&format!("parked {} at step {step} for shutdown", job.name));
    }

    /// Publish per-job progress and the worker view into the registry.
    fn publish(&self) {
        let mut views: Vec<(String, u64, hibd_telemetry::Snapshot)> = Vec::new();
        for (slot, job) in &self.jobs {
            views.push((job.name.clone(), job.step, self.runner.job_snapshot(*slot)));
        }
        let cache = self.runner.cache();
        let worker_view = WorkerView {
            jobs: self.runner.len(),
            groups: self.runner.group_sizes(),
            solo: self.runner.solo_count(),
            cache_shapes: cache.len(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
            cache_capacity: cache.capacity(),
            plan_bytes: cache.plans_memory_bytes(),
        };
        let mut state = self.state.lock().expect("service state mutex");
        for (name, step, snapshot) in views {
            if let Some(view) = state.jobs.get_mut(&name) {
                view.step = step;
                view.snapshot = snapshot;
            }
        }
        state.workers[self.index] = worker_view;
    }
}
