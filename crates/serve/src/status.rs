//! The shared service registry and the `status.json` document.
//!
//! Workers publish per-job and per-worker views into a [`ServiceState`]
//! behind one mutex; the server thread periodically renders the
//! `hibd-serve-v1` JSON document and rewrites the status file atomically.
//! [`validate_status`] closes the loop (schema checks in tests and
//! `xtask validate-status`), mirroring the `hibd-profile-v1` tooling.

use crate::job::JobState;
use hibd_telemetry::json::{self, Value};
use hibd_telemetry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Registry entry for one job (spooled, running, or terminal).
#[derive(Clone, Debug)]
pub struct JobView {
    pub state: JobState,
    /// Completed (global) steps.
    pub step: u64,
    /// Configured step budget.
    pub steps: u64,
    /// Owning worker index once admitted.
    pub worker: Option<usize>,
    /// Failure/cancellation detail.
    pub error: Option<String>,
    /// Per-job telemetry (phases + counters attributed by the runner).
    pub snapshot: Snapshot,
}

impl JobView {
    /// A freshly spooled, not-yet-admitted job.
    #[must_use]
    pub fn queued(steps: u64) -> JobView {
        JobView {
            state: JobState::Queued,
            step: 0,
            steps,
            worker: None,
            error: None,
            snapshot: Snapshot::empty(),
        }
    }
}

/// Published view of one worker's runner.
#[derive(Clone, Debug, Default)]
pub struct WorkerView {
    /// Live jobs in the runner.
    pub jobs: usize,
    /// Same-plan group sizes (periodic batching occupancy).
    pub groups: Vec<usize>,
    /// Open-boundary solo jobs.
    pub solo: usize,
    /// Plan-cache resident shapes / hits / misses / evictions / capacity.
    pub cache_shapes: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_capacity: Option<usize>,
    /// Bytes held by resident plans.
    pub plan_bytes: usize,
}

/// Everything the status document is rendered from, shared between the
/// server thread and the workers under one mutex.
#[derive(Debug, Default)]
pub struct ServiceState {
    pub jobs: BTreeMap<String, JobView>,
    pub workers: Vec<WorkerView>,
    pub draining: bool,
    /// Worker log lines, drained by the server thread.
    pub log: Vec<String>,
}

impl ServiceState {
    /// Jobs currently counted against the admission bound.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.jobs.values().filter(|j| j.state == JobState::Running).count()
    }

    /// Count of jobs in `state`.
    #[must_use]
    pub fn count(&self, state: JobState) -> usize {
        self.jobs.values().filter(|j| j.state == state).count()
    }
}

/// Render the `hibd-serve-v1` status document.
#[must_use]
pub fn render_status(state: &ServiceState, queue_capacity: usize, uptime_seconds: f64) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"hibd-serve-v1\",\n");
    let _ = writeln!(
        out,
        "  \"daemon\": {{\"workers\": {}, \"queue_capacity\": {queue_capacity}, \
         \"uptime_seconds\": {uptime_seconds:e}, \"draining\": {}}},",
        state.workers.len(),
        state.draining
    );
    let _ = writeln!(
        out,
        "  \"queue\": {{\"queued\": {}, \"running\": {}, \"done\": {}, \"failed\": {}, \
         \"cancelled\": {}}},",
        state.count(JobState::Queued),
        state.count(JobState::Running),
        state.count(JobState::Done),
        state.count(JobState::Failed),
        state.count(JobState::Cancelled)
    );

    // Aggregate plan-cache health over the workers.
    let (mut shapes, mut hits, mut misses, mut evictions) = (0usize, 0u64, 0u64, 0u64);
    for w in &state.workers {
        shapes += w.cache_shapes;
        hits += w.cache_hits;
        misses += w.cache_misses;
        evictions += w.cache_evictions;
    }
    let _ = writeln!(
        out,
        "  \"plan_cache\": {{\"shapes\": {shapes}, \"hits\": {hits}, \"misses\": {misses}, \
         \"evictions\": {evictions}}},"
    );

    out.push_str("  \"workers\": [");
    for (i, w) in state.workers.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let groups = w.groups.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
        let capacity = w.cache_capacity.map_or_else(|| "null".to_string(), |c| c.to_string());
        let _ = write!(
            out,
            "{{\"jobs\": {}, \"groups\": [{groups}], \"solo\": {}, \
             \"cache\": {{\"shapes\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"capacity\": {capacity}, \"plan_bytes\": {}}}}}",
            w.jobs,
            w.solo,
            w.cache_shapes,
            w.cache_hits,
            w.cache_misses,
            w.cache_evictions,
            w.plan_bytes
        );
    }
    out.push_str("],\n");

    out.push_str("  \"jobs\": {\n");
    for (i, (name, job)) in state.jobs.iter().enumerate() {
        let worker = job.worker.map_or_else(|| "null".to_string(), |w| w.to_string());
        let error = match &job.error {
            Some(e) => format!("\"{}\"", json::escape(e)),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "    \"{}\": {{\"state\": \"{}\", \"step\": {}, \"steps\": {}, \"worker\": {worker}, \
             \"error\": {error}, \"phases\": {}, \"counters\": {}}}",
            json::escape(name),
            job.state.name(),
            job.step,
            job.steps,
            job.snapshot.phases_to_json(),
            job.snapshot.counters_to_json()
        );
        out.push_str(if i + 1 < state.jobs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn expect_num(v: &Value, ctx: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{ctx} is not a number"))
}

fn expect_obj<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    let inner = v.get(key).ok_or_else(|| format!("{ctx} is missing `{key}`"))?;
    match inner {
        Value::Obj(_) => Ok(inner),
        _ => Err(format!("{ctx}.{key} is not an object")),
    }
}

/// Validate an `hibd-serve-v1` status document (parse + schema checks).
pub fn validate_status(src: &str) -> Result<(), String> {
    let v = json::parse(src)?;
    if v.get("schema").and_then(Value::as_str) != Some("hibd-serve-v1") {
        return Err("schema is not hibd-serve-v1".into());
    }
    let daemon = expect_obj(&v, "daemon", "document")?;
    let workers =
        expect_num(daemon.get("workers").ok_or("daemon is missing `workers`")?, "daemon.workers")?;
    expect_num(
        daemon.get("queue_capacity").ok_or("daemon is missing `queue_capacity`")?,
        "daemon.queue_capacity",
    )?;
    match daemon.get("draining") {
        Some(Value::Bool(_)) => {}
        _ => return Err("daemon.draining is not a boolean".into()),
    }

    let queue = expect_obj(&v, "queue", "document")?;
    for key in ["queued", "running", "done", "failed", "cancelled"] {
        expect_num(queue.get(key).ok_or_else(|| format!("queue is missing `{key}`"))?, key)?;
    }

    let cache = expect_obj(&v, "plan_cache", "document")?;
    for key in ["shapes", "hits", "misses", "evictions"] {
        expect_num(cache.get(key).ok_or_else(|| format!("plan_cache is missing `{key}`"))?, key)?;
    }

    let worker_list = v
        .get("workers")
        .and_then(Value::as_array)
        .ok_or("document is missing the `workers` array")?;
    if worker_list.len() != workers as usize {
        return Err(format!(
            "daemon.workers = {workers} but the workers array has {} entries",
            worker_list.len()
        ));
    }
    for (i, w) in worker_list.iter().enumerate() {
        let ctx = format!("workers[{i}]");
        expect_num(w.get("jobs").ok_or_else(|| format!("{ctx} is missing `jobs`"))?, &ctx)?;
        w.get("groups").and_then(Value::as_array).ok_or(format!("{ctx}.groups is not an array"))?;
        expect_obj(w, "cache", &ctx)?;
    }

    let jobs = expect_obj(&v, "jobs", "document")?;
    let Value::Obj(fields) = jobs else { unreachable!("expect_obj returned a non-object") };
    for (name, job) in fields {
        let ctx = format!("jobs.{name}");
        let state = job
            .get("state")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx} is missing `state`"))?;
        if JobState::from_name(state).is_none() {
            return Err(format!("{ctx} has unknown state `{state}`"));
        }
        let step = expect_num(job.get("step").ok_or_else(|| format!("{ctx} missing step"))?, &ctx)?;
        let steps =
            expect_num(job.get("steps").ok_or_else(|| format!("{ctx} missing steps"))?, &ctx)?;
        if step > steps {
            return Err(format!("{ctx}: step {step} exceeds budget {steps}"));
        }
        expect_obj(job, "phases", &ctx)?;
        expect_obj(job, "counters", &ctx)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ServiceState {
        let workers = vec![
            WorkerView {
                jobs: 2,
                groups: vec![2],
                solo: 0,
                cache_shapes: 1,
                cache_hits: 1,
                cache_misses: 1,
                cache_evictions: 0,
                cache_capacity: Some(4),
                plan_bytes: 1024,
            },
            WorkerView::default(),
        ];
        let mut state = ServiceState { workers, ..ServiceState::default() };
        let mut running = JobView::queued(400);
        running.state = JobState::Running;
        running.step = 128;
        running.worker = Some(0);
        state.jobs.insert("a".to_string(), running.clone());
        state.jobs.insert("b".to_string(), running);
        let mut failed = JobView::queued(100);
        failed.state = JobState::Failed;
        failed.error = Some("deadline \"exceeded\"".to_string());
        state.jobs.insert("c".to_string(), failed);
        state
    }

    #[test]
    fn rendered_status_validates() {
        let state = sample_state();
        let doc = render_status(&state, 8, 1.25);
        validate_status(&doc).unwrap();
        assert_eq!(state.in_flight(), 2);
        assert_eq!(state.count(JobState::Failed), 1);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_status("{}").is_err());
        assert!(validate_status("not json").is_err());
        let doc = render_status(&sample_state(), 8, 0.0);
        let wrong = doc.replace("hibd-serve-v1", "hibd-serve-v0");
        assert!(validate_status(&wrong).is_err());
        let wrong = doc.replace("\"step\": 128", "\"step\": 1000000");
        assert!(validate_status(&wrong).unwrap_err().contains("exceeds budget"));
        let wrong = doc.replace("\"state\": \"running\"", "\"state\": \"jogging\"");
        assert!(validate_status(&wrong).unwrap_err().contains("unknown state"));
    }

    #[test]
    fn empty_service_renders_a_valid_document() {
        let doc = render_status(&ServiceState::default(), 1, 0.0);
        validate_status(&doc).unwrap();
    }
}
