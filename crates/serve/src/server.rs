//! The daemon main loop: spool watching, admission, routing, status, drain.
//!
//! The server thread owns the spool scan and all admission decisions; the
//! heavy lifting happens on the worker threads ([`crate::worker`]). Shape
//! resolution runs once here, on the server thread, and the resolved
//! parameters are pinned into the job's `MatrixFreeConfig` — so the worker
//! never re-runs the tuner and every same-shape job routes to the same
//! worker, where the runner's plan cache turns its admission into a hit and
//! its stepping into batched lockstep.

use crate::job::{JobMeta, JobState};
use crate::output::atomic_write;
use crate::spec::ServeSpec;
use crate::spool;
use crate::status::{render_status, JobView, ServiceState, WorkerView};
use crate::worker::{AdmitJob, Command, Worker};
use hibd_core::checkpoint::Checkpoint;
use hibd_core::config::{Algorithm, SimSpec};
use hibd_core::mf_bd::resolve_shape;
use hibd_engine::ShapeKey;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Exit summary of a daemon run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    pub done: usize,
    pub failed: usize,
    pub cancelled: usize,
    /// Jobs parked mid-run by a graceful drain (resume on restart).
    pub parked: usize,
    /// The daemon exited because of SIGINT/SIGTERM rather than idleness.
    pub interrupted: bool,
}

/// Server-side tracking of each spooled name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tracked {
    /// Waiting for an admission slot.
    Queued,
    /// Handed to a worker.
    Sent,
    /// Done / failed / cancelled; never re-admitted.
    Terminal,
}

struct Server {
    spec: ServeSpec,
    spool_dir: PathBuf,
    out_root: PathBuf,
    state: Arc<Mutex<ServiceState>>,
    txs: Vec<Sender<Command>>,
    tracked: BTreeMap<String, Tracked>,
    /// Job name → owning worker.
    owner: BTreeMap<String, usize>,
    /// Shape → worker affinity (same shape, same runner, shared plans).
    routing: BTreeMap<ShapeKey, usize>,
    started: Instant,
}

/// Run the daemon until drained. `log` receives progress lines from the
/// server and (forwarded) from the workers.
pub fn serve(
    spec: &ServeSpec,
    mut log: impl FnMut(&str),
) -> Result<ServeReport, Box<dyn std::error::Error>> {
    spec.validate()?;
    let spool_dir = PathBuf::from(&spec.spool);
    let out_root = PathBuf::from(&spec.output);
    std::fs::create_dir_all(&spool_dir)?;
    std::fs::create_dir_all(&out_root)?;
    let status_path = spec.status_path();
    if let Some(parent) = status_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }

    let state = Arc::new(Mutex::new(ServiceState {
        workers: vec![WorkerView::default(); spec.workers],
        ..ServiceState::default()
    }));
    let mut txs = Vec::with_capacity(spec.workers);
    let mut handles = Vec::with_capacity(spec.workers);
    for w in 0..spec.workers {
        let (tx, rx) = mpsc::channel();
        let (plan_cache, throttle_ms, poll_ms) = (spec.plan_cache, spec.throttle_ms, spec.poll_ms);
        let state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name(format!("hibd-serve-w{w}"))
            .spawn(move || Worker::run(w, plan_cache, throttle_ms, poll_ms, rx, state))?;
        txs.push(tx);
        handles.push(handle);
    }
    log(&format!(
        "serving spool {} with {} worker(s), queue bound {}",
        spool_dir.display(),
        spec.workers,
        spec.queue
    ));

    let mut server = Server {
        spec: spec.clone(),
        spool_dir,
        out_root,
        state,
        txs,
        tracked: BTreeMap::new(),
        owner: BTreeMap::new(),
        routing: BTreeMap::new(),
        started: Instant::now(),
    };

    let mut draining = false;
    let mut last_status: Option<Instant> = None;
    loop {
        server.forward_logs(&mut log);
        server.reconcile();
        let scan = spool::scan(&server.spool_dir)?;
        if !draining {
            server.admissions(&scan, &mut log);
            server.cancellations(&scan, &mut log);
        }

        if last_status.is_none_or(|t| t.elapsed() >= Duration::from_millis(spec.status_ms)) {
            server.write_status(&status_path)?;
            last_status = Some(Instant::now());
        }

        if !draining && crate::shutdown::requested() {
            draining = true;
            server.drain(&mut log, "shutdown requested");
        }
        if !draining && spec.exit_when_idle && server.idle(&scan) {
            draining = true;
            server.drain(&mut log, "spool idle");
        }
        if draining && handles.iter().all(std::thread::JoinHandle::is_finished) {
            break;
        }
        std::thread::sleep(Duration::from_millis(spec.poll_ms));
    }

    server.txs.clear();
    for handle in handles {
        handle.join().map_err(|_| "a worker thread panicked")?;
    }
    server.forward_logs(&mut log);
    server.write_status(&status_path)?;

    let state = server.state.lock().expect("service state mutex");
    let report = ServeReport {
        done: state.count(JobState::Done),
        failed: state.count(JobState::Failed),
        cancelled: state.count(JobState::Cancelled),
        parked: state.count(JobState::Running) + state.count(JobState::Queued),
        interrupted: crate::shutdown::requested(),
    };
    log(&format!(
        "drained: {} done, {} failed, {} cancelled, {} parked",
        report.done, report.failed, report.cancelled, report.parked
    ));
    Ok(report)
}

impl Server {
    fn forward_logs(&self, log: &mut impl FnMut(&str)) {
        let lines: Vec<String> = {
            let mut state = self.state.lock().expect("service state mutex");
            state.log.drain(..).collect()
        };
        for line in lines {
            log(&line);
        }
    }

    /// Fold worker-reported terminal states back into the tracking map
    /// (a parked job stays `running` in the registry and stays `Sent`, so
    /// a drained daemon leaves it spooled for the next one).
    fn reconcile(&mut self) {
        let state = self.state.lock().expect("service state mutex");
        for (name, tracked) in &mut self.tracked {
            if *tracked == Tracked::Sent {
                if let Some(view) = state.jobs.get(name) {
                    if view.state.is_terminal() {
                        *tracked = Tracked::Terminal;
                    }
                }
            }
        }
    }

    /// Scan pass 1: admit new spool files (bounded by `queue`).
    fn admissions(&mut self, scan: &spool::SpoolScan, log: &mut impl FnMut(&str)) {
        for (name, path) in &scan.jobs {
            if self.tracked.contains_key(name) && self.tracked[name] != Tracked::Queued {
                continue;
            }
            let dir = self.out_root.join(name);
            // A restarted daemon finds terminal jobs by their committed record.
            match JobMeta::load(&dir) {
                Ok(Some(meta)) if meta.state.is_terminal() => {
                    self.tracked.insert(name.clone(), Tracked::Terminal);
                    self.set_view(name, |v| {
                        v.state = meta.state;
                        v.step = meta.step;
                        v.steps = meta.steps;
                        v.error = meta.error.clone();
                    });
                    continue;
                }
                Ok(_) => {}
                Err(e) => {
                    self.fail_unadmitted(name, &dir, &format!("corrupt meta.json: {e}"), log);
                    continue;
                }
            }
            // Cancelled before ever being admitted: commit the record directly.
            if scan.cancels.iter().any(|c| c == name) {
                self.cancel_unadmitted(name, &dir, log);
                continue;
            }
            let in_flight = self.state.lock().expect("service state mutex").in_flight();
            if in_flight >= self.spec.queue {
                if self.tracked.insert(name.clone(), Tracked::Queued).is_none() {
                    self.set_view(name, |v| v.state = JobState::Queued);
                    log(&format!("{name}: queued (admission bound {} reached)", self.spec.queue));
                }
                continue;
            }
            match self.prepare(name, path, dir.clone()) {
                Ok((job, key)) => {
                    let worker = self.route(key);
                    let (step, steps) = (job.start_step, job.spec.steps as u64);
                    let resumed =
                        if step > 0 { format!(" (resumed at step {step})") } else { String::new() };
                    log(&format!("{name}: admitted to worker {worker}{resumed}"));
                    self.set_view(name, |v| {
                        v.state = JobState::Running;
                        v.step = step;
                        v.steps = steps;
                        v.worker = Some(worker);
                    });
                    self.tracked.insert(name.clone(), Tracked::Sent);
                    self.owner.insert(name.clone(), worker);
                    // A closed channel means the worker is gone (drain race);
                    // the job stays spooled for the next daemon.
                    self.txs[worker].send(Command::Admit(Box::new(job))).ok();
                }
                Err(e) => self.fail_unadmitted(name, &dir, &e, log),
            }
        }
    }

    /// Scan pass 2: forward `.cancel` sentinels for in-flight jobs.
    fn cancellations(&mut self, scan: &spool::SpoolScan, log: &mut impl FnMut(&str)) {
        for name in &scan.cancels {
            match self.tracked.get(name) {
                Some(Tracked::Sent) => {
                    let running = {
                        let state = self.state.lock().expect("service state mutex");
                        state.jobs.get(name).is_some_and(|v| v.state == JobState::Running)
                    };
                    if running {
                        if let Some(&w) = self.owner.get(name) {
                            self.txs[w].send(Command::Cancel(name.clone())).ok();
                        }
                    }
                }
                Some(Tracked::Queued) => {
                    let dir = self.out_root.join(name);
                    self.cancel_unadmitted(name, &dir, log);
                }
                _ => {}
            }
        }
    }

    /// Parse, validate, and prepare one job for hand-over: build or restore
    /// the system, resolve the operator shape once, pin it into the config.
    fn prepare(
        &mut self,
        name: &str,
        path: &Path,
        dir: PathBuf,
    ) -> Result<(AdmitJob, ShapeKey), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let sim = SimSpec::parse(&text).map_err(|e| e.to_string())?;
        if sim.algorithm != Algorithm::MatrixFree {
            return Err("serve jobs share matrix-free operator plans; \
                 set algorithm = matrix-free"
                .into());
        }
        if sim.replicas != 1 {
            return Err(format!(
                "spool jobs are single-trajectory (replicas = {}); submit replicas as \
                 separate job files — the service batches same-shape jobs anyway",
                sim.replicas
            ));
        }

        let meta = JobMeta::load(&dir)?;
        let (system, start_step, traj_bytes) = match &meta {
            Some(m) if m.state == JobState::Running && m.checkpoint.is_some() => {
                let ckpt = m.checkpoint.as_deref().expect("checked above");
                let ck = Checkpoint::load(&dir.join(ckpt))
                    .map_err(|e| format!("loading {ckpt}: {e}"))?;
                if ck.step != m.step {
                    return Err(format!(
                        "inconsistent commit: meta.json step {} vs checkpoint step {}",
                        m.step, ck.step
                    ));
                }
                (ck.restore(), m.step, m.trajectory_bytes)
            }
            _ => (sim.build_system(sim.seed), 0, 0),
        };

        let mut cfg = sim.matrix_free_config();
        let shape = resolve_shape(&system, &cfg).map_err(|e| e.to_string())?;
        cfg.pme = shape.pme;
        if shape.tree.is_some() {
            cfg.tree = shape.tree;
        }
        let key = match (&shape.pme, &shape.tree) {
            (Some(p), _) => ShapeKey::periodic(p),
            (_, Some(t)) => ShapeKey::open(t),
            _ => return Err("shape resolution yielded no backend".into()),
        };
        let job = AdmitJob {
            name: name.to_string(),
            spec: sim,
            cfg,
            system,
            start_step,
            traj_bytes,
            dir,
        };
        Ok((job, key))
    }

    /// Worker routing: shape affinity first (so same-shape jobs share one
    /// runner's plans and batch together), least-loaded otherwise.
    fn route(&mut self, key: ShapeKey) -> usize {
        if let Some(&w) = self.routing.get(&key) {
            return w;
        }
        let mut load = vec![0usize; self.txs.len()];
        let state = self.state.lock().expect("service state mutex");
        for view in state.jobs.values() {
            if view.state == JobState::Running {
                if let Some(w) = view.worker {
                    load[w] += 1;
                }
            }
        }
        drop(state);
        let w = (0..load.len()).min_by_key(|&w| (load[w], w)).unwrap_or(0);
        self.routing.insert(key, w);
        w
    }

    fn set_view(&self, name: &str, f: impl FnOnce(&mut JobView)) {
        let mut state = self.state.lock().expect("service state mutex");
        let view = state.jobs.entry(name.to_string()).or_insert_with(|| JobView::queued(0));
        f(view);
    }

    /// Commit a terminal record for a job that never reached a worker.
    fn terminal_unadmitted(
        &mut self,
        name: &str,
        dir: &Path,
        state: JobState,
        error: Option<String>,
    ) {
        std::fs::create_dir_all(dir).ok();
        let meta = JobMeta {
            name: name.to_string(),
            state,
            step: 0,
            steps: 0,
            checkpoint: None,
            trajectory_bytes: 0,
            error: error.clone(),
        };
        meta.commit(dir).ok();
        self.tracked.insert(name.to_string(), Tracked::Terminal);
        self.set_view(name, |v| {
            v.state = state;
            v.error = error;
        });
    }

    fn fail_unadmitted(&mut self, name: &str, dir: &Path, error: &str, log: &mut impl FnMut(&str)) {
        log(&format!("{name}: rejected ({error})"));
        self.terminal_unadmitted(name, dir, JobState::Failed, Some(error.to_string()));
    }

    fn cancel_unadmitted(&mut self, name: &str, dir: &Path, log: &mut impl FnMut(&str)) {
        log(&format!("{name}: cancelled before admission"));
        self.terminal_unadmitted(
            name,
            dir,
            JobState::Cancelled,
            Some("cancelled by sentinel".to_string()),
        );
    }

    /// Idle = every spooled job is tracked and terminal, nothing in flight.
    fn idle(&self, scan: &spool::SpoolScan) -> bool {
        let all_terminal =
            scan.jobs.keys().all(|name| self.tracked.get(name) == Some(&Tracked::Terminal));
        let state = self.state.lock().expect("service state mutex");
        all_terminal && state.in_flight() == 0 && state.count(JobState::Queued) == 0
    }

    fn drain(&self, log: &mut impl FnMut(&str), why: &str) {
        log(&format!("draining workers ({why})"));
        self.state.lock().expect("service state mutex").draining = true;
        for tx in &self.txs {
            tx.send(Command::Drain).ok();
        }
    }

    fn write_status(&self, path: &Path) -> std::io::Result<()> {
        let doc = {
            let state = self.state.lock().expect("service state mutex");
            render_status(&state, self.spec.queue, self.started.elapsed().as_secs_f64())
        };
        atomic_write(path, doc.as_bytes())
    }
}
