//! Service configuration: the `hibd serve` daemon spec.
//!
//! Same dependency-free `key = value` format as the simulation configs
//! (comments with `#`, case-insensitive keys), parsed into a [`ServeSpec`].
//! Job files dropped into the spool directory are ordinary `hibd run`
//! configs ([`hibd_core::config::SimSpec`]); this spec only describes the
//! daemon around them.

use hibd_core::config::ConfigError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Daemon configuration for `hibd serve`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSpec {
    /// Directory watched for job files (`<name>.conf`) and cancellation
    /// sentinels (`<name>.cancel`).
    pub spool: String,
    /// Output root: each job writes under `<output>/<name>/`.
    pub output: String,
    /// Worker threads; each owns one [`hibd_engine::EnsembleRunner`].
    pub workers: usize,
    /// Admission bound: at most this many jobs in flight at once; excess
    /// spool files wait in `queued` state.
    pub queue: usize,
    /// Spool scan interval in milliseconds.
    pub poll_ms: u64,
    /// Status file path (default `<output>/status.json`).
    pub status: Option<String>,
    /// Status rewrite interval in milliseconds.
    pub status_ms: u64,
    /// Optional sleep between worker stepping rounds (politeness on shared
    /// hosts); `0` steps flat out.
    pub throttle_ms: u64,
    /// Plan-cache capacity per worker (resident shapes); `0` = unbounded.
    pub plan_cache: usize,
    /// Exit once every spooled job is terminal and the spool stops growing
    /// (CI smoke runs and tests; a production daemon keeps watching).
    pub exit_when_idle: bool,
}

impl Default for ServeSpec {
    fn default() -> ServeSpec {
        ServeSpec {
            spool: "spool".to_string(),
            output: "out".to_string(),
            workers: 1,
            queue: 8,
            poll_ms: 50,
            status: None,
            status_ms: 500,
            throttle_ms: 0,
            plan_cache: 0,
            exit_when_idle: false,
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

fn parse_num<T: std::str::FromStr>(line: usize, key: &str, value: &str) -> Result<T, ConfigError> {
    value.parse().map_err(|_| err(line, format!("bad value `{value}` for `{key}`")))
}

fn parse_bool(line: usize, key: &str, value: &str) -> Result<bool, ConfigError> {
    match value.to_ascii_lowercase().as_str() {
        "true" | "yes" | "on" | "1" => Ok(true),
        "false" | "no" | "off" | "0" => Ok(false),
        other => Err(err(line, format!("bad boolean `{other}` for `{key}`"))),
    }
}

impl ServeSpec {
    /// Parse the daemon configuration text.
    pub fn parse(text: &str) -> Result<ServeSpec, ConfigError> {
        let mut kv: BTreeMap<String, (usize, String)> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(line_no, format!("expected `key = value`, got `{line}`")))?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if value.is_empty() {
                return Err(err(line_no, format!("empty value for `{key}`")));
            }
            if kv.insert(key.clone(), (line_no, value)).is_some() {
                return Err(err(line_no, format!("duplicate key `{key}`")));
            }
        }

        let mut spec = ServeSpec::default();
        for (key, (line, value)) in &kv {
            match key.as_str() {
                "spool" => spec.spool = value.clone(),
                "output" => spec.output = value.clone(),
                "workers" => spec.workers = parse_num(*line, key, value)?,
                "queue" => spec.queue = parse_num(*line, key, value)?,
                "poll_ms" => spec.poll_ms = parse_num(*line, key, value)?,
                "status" => spec.status = Some(value.clone()),
                "status_ms" => spec.status_ms = parse_num(*line, key, value)?,
                "throttle_ms" => spec.throttle_ms = parse_num(*line, key, value)?,
                "plan_cache" => spec.plan_cache = parse_num(*line, key, value)?,
                "exit_when_idle" => spec.exit_when_idle = parse_bool(*line, key, value)?,
                other => return Err(err(*line, format!("unknown key `{other}`"))),
            }
        }
        spec.validate().map_err(|m| err(0, m))?;
        Ok(spec)
    }

    /// Cross-field validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.spool.is_empty() {
            return Err("spool directory must be set".into());
        }
        if self.output.is_empty() {
            return Err("output directory must be set".into());
        }
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.queue == 0 {
            return Err("queue must be at least 1".into());
        }
        if self.poll_ms == 0 {
            return Err("poll_ms must be positive".into());
        }
        if self.status_ms == 0 {
            return Err("status_ms must be positive".into());
        }
        Ok(())
    }

    /// Resolved status file path.
    #[must_use]
    pub fn status_path(&self) -> PathBuf {
        match &self.status {
            Some(p) => PathBuf::from(p),
            None => Path::new(&self.output).join("status.json"),
        }
    }

    /// An annotated example daemon configuration.
    #[must_use]
    pub fn example() -> String {
        "\
# hibd serve daemon configuration.
spool = spool              # watched for <name>.conf job files
output = out               # per-job output under <output>/<name>/
workers = 2                # worker threads (one EnsembleRunner each)
queue = 8                  # max jobs in flight; excess spool files wait
poll_ms = 50               # spool scan interval
status_ms = 500            # status.json rewrite interval
plan_cache = 4             # resident shapes per worker (0 = unbounded)
# status = out/status.json # explicit status path
# throttle_ms = 5          # sleep between stepping rounds
# exit_when_idle = true    # exit when every spooled job is terminal
"
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_example() {
        let spec = ServeSpec::parse(&ServeSpec::example()).unwrap();
        assert_eq!(spec.workers, 2);
        assert_eq!(spec.queue, 8);
        assert_eq!(spec.plan_cache, 4);
        assert!(!spec.exit_when_idle);
        assert_eq!(spec.status_path(), Path::new("out").join("status.json"));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(ServeSpec::parse("workers = 0").is_err());
        assert!(ServeSpec::parse("queue = 0").is_err());
        assert!(ServeSpec::parse("poll_ms = nope").is_err());
        assert!(ServeSpec::parse("mystery = 1").is_err());
        assert!(ServeSpec::parse("workers = ").is_err());
    }

    #[test]
    fn status_key_overrides_the_default_path() {
        let spec = ServeSpec::parse("status = /tmp/s.json").unwrap();
        assert_eq!(spec.status_path(), Path::new("/tmp/s.json"));
    }
}
