//! Crash-safe file primitives: atomic rename-on-write and a byte-counting
//! trajectory sink.
//!
//! Every file the daemon treats as a commit point (checkpoints, `meta.json`,
//! `status.json`) is written to a `.tmp` sibling and renamed into place —
//! rename is atomic on POSIX filesystems, so a killed daemon always finds
//! either the old or the new version, never a torn one. The trajectory
//! stream itself is append-only; crash safety comes from `meta.json`
//! recording the committed byte count and resume truncating to it.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Write `bytes` to `path` atomically (tmp file + rename).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

fn tmp_path(path: &Path) -> PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!("{name}.tmp"))
}

/// Append-only trajectory sink that counts the bytes written, so the job
/// lifecycle can commit "trajectory valid up to byte N" in `meta.json`.
/// Writes are buffered; the byte count includes buffered bytes, and commit
/// points flush before recording it.
pub struct CountingFile {
    file: io::BufWriter<File>,
    bytes: u64,
}

impl CountingFile {
    /// Open `path` for appending, truncated to `committed` bytes first
    /// (dropping any frames written after the last checkpoint commit).
    pub fn resume(path: &Path, committed: u64) -> io::Result<CountingFile> {
        let mut file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        file.set_len(committed)?;
        file.seek(SeekFrom::End(0))?;
        Ok(CountingFile { file: io::BufWriter::new(file), bytes: committed })
    }

    /// Bytes written so far (including the committed prefix).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Write for CountingFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.file.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("hibd_serve_output_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.json");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counting_file_truncates_to_the_committed_prefix() {
        let dir = std::env::temp_dir().join("hibd_serve_counting_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.xyz");
        {
            let mut f = CountingFile::resume(&path, 0).unwrap();
            f.write_all(b"committed|uncommitted").unwrap();
            assert_eq!(f.bytes(), 21);
        }
        // Restart: only the first 9 bytes were committed.
        let mut f = CountingFile::resume(&path, 9).unwrap();
        f.write_all(b"|replayed").unwrap();
        assert_eq!(f.bytes(), 18);
        drop(f);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "committed|replayed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
