//! In-process service tests: mixed spool to completion (bitwise vs a
//! standalone run), graceful drain + resume, cancellation, and bad-job
//! isolation.
//!
//! The shutdown flag is process-global, so every test here serializes on
//! one mutex and resets the flag before starting its daemon.

use hibd_core::config::SimSpec;
use hibd_core::io::{Coordinates, XyzWriter};
use hibd_engine::EnsembleRunner;
use hibd_serve::job::JobState;
use hibd_serve::{serve, shutdown, validate_status, JobMeta, ServeSpec};
use hibd_telemetry::json::{self, Value};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the tests: the shutdown flag they toggle is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hibd_serve_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_spec(particles: usize, seed: u64, steps: usize) -> SimSpec {
    SimSpec {
        particles,
        seed,
        steps,
        lambda_rpy: 2,
        trajectory_interval: 2,
        report_interval: 0,
        ..SimSpec::default()
    }
}

/// The trajectory bytes a standalone single-replica run of `spec` writes
/// (the exact `hibd run` frame schedule: `local % interval == 0`,
/// comment `step={global}`).
fn standalone_trajectory(spec: &SimSpec) -> Vec<u8> {
    let system = spec.build_system(spec.seed);
    let mut runner =
        EnsembleRunner::new(spec.matrix_free_config(), vec![(system, spec.seed)]).unwrap();
    for f in spec.forces() {
        runner.replica_mut(0).add_force_boxed(f);
    }
    let mut w = XyzWriter::new(Vec::new(), Coordinates::Wrapped);
    for local in 1..=spec.steps {
        runner.step().unwrap();
        if local % spec.trajectory_interval == 0 {
            w.write_frame(runner.replica(0).system(), &format!("step={local}")).unwrap();
        }
    }
    w.into_inner().unwrap()
}

fn serve_spec(root: &Path) -> ServeSpec {
    ServeSpec {
        spool: root.join("spool").to_string_lossy().into_owned(),
        output: root.join("out").to_string_lossy().into_owned(),
        workers: 1,
        queue: 8,
        poll_ms: 5,
        status: None,
        status_ms: 20,
        throttle_ms: 0,
        plan_cache: 0,
        exit_when_idle: false,
    }
}

fn spool_job(root: &Path, name: &str, spec: &SimSpec) {
    let dir = root.join("spool");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(format!("{name}.conf")), spec.to_config_text()).unwrap();
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(120), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn job_field(status: &Value, job: &str, field: &str) -> Option<f64> {
    status.get("jobs")?.get(job)?.get(field).and_then(Value::as_f64)
}

fn job_state(status: &Value, job: &str) -> Option<String> {
    status.get("jobs")?.get(job)?.get("state").and_then(Value::as_str).map(str::to_string)
}

#[test]
fn mixed_spool_completes_bitwise_and_status_validates() {
    let _guard = lock();
    shutdown::reset();
    let root = temp_root("mixed");
    // a and b share a shape (same n, phi — only the seed differs); c is a
    // different shape. One worker, so a and b batch in one group.
    let a = small_spec(14, 7, 6);
    let b = small_spec(14, 8, 6);
    let c = small_spec(24, 9, 6);
    spool_job(&root, "a", &a);
    spool_job(&root, "b", &b);
    spool_job(&root, "c", &c);

    let spec = ServeSpec { exit_when_idle: true, ..serve_spec(&root) };
    let mut lines = Vec::new();
    let report = serve(&spec, |m| lines.push(m.to_string())).unwrap();
    assert_eq!(report.done, 3, "log: {lines:#?}");
    assert_eq!(report.failed, 0);
    assert_eq!(report.cancelled, 0);
    assert!(!report.interrupted);

    // Byte-for-byte the standalone trajectories.
    for (name, job) in [("a", &a), ("b", &b), ("c", &c)] {
        let got = std::fs::read(root.join("out").join(name).join("trajectory.xyz")).unwrap();
        assert_eq!(got, standalone_trajectory(job), "trajectory of {name} diverged");
        let meta = JobMeta::load(&root.join("out").join(name)).unwrap().unwrap();
        assert_eq!(meta.state, JobState::Done);
        assert_eq!(meta.step, 6);
        assert_eq!(meta.trajectory_bytes, got.len() as u64);
        // The terminal checkpoint is present and named by the commit.
        let ckpt = meta.checkpoint.expect("terminal checkpoint");
        assert!(root.join("out").join(name).join(ckpt).exists());
    }

    // status.json validates and shows the shared shape as a cache hit.
    let doc = std::fs::read_to_string(spec.status_path()).unwrap();
    validate_status(&doc).unwrap();
    let status = json::parse(&doc).unwrap();
    let hits = status.get("plan_cache").unwrap().get("hits").unwrap().as_f64().unwrap();
    assert!(hits >= 1.0, "a and b share a shape, expected a plan-cache hit:\n{doc}");
    assert_eq!(job_state(&status, "a").as_deref(), Some("done"));
    assert!(lines.iter().any(|l| l.contains("admitted")), "{lines:#?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn drain_parks_mid_run_and_restart_resumes_bitwise() {
    let _guard = lock();
    shutdown::reset();
    let root = temp_root("drain");
    let job = small_spec(14, 3, 60);
    spool_job(&root, "long", &job);

    let spec = serve_spec(&root);
    let status_path = spec.status_path();
    let handle = {
        let spec = spec.clone();
        std::thread::spawn(move || serve(&spec, |_| {}).unwrap())
    };
    // Let it get properly mid-run, then pull the plug.
    wait_for(
        || {
            std::fs::read_to_string(&status_path)
                .ok()
                .and_then(|doc| json::parse(&doc).ok())
                .and_then(|s| job_field(&s, "long", "step"))
                .is_some_and(|step| (4.0..=40.0).contains(&step))
        },
        "the job to reach step 4",
    );
    shutdown::request();
    let report = handle.join().unwrap();
    assert!(report.interrupted);
    assert_eq!(report.parked, 1, "the long job should be parked, not finished");

    // The parked commit is a window-boundary running checkpoint.
    let meta = JobMeta::load(&root.join("out").join("long")).unwrap().unwrap();
    assert_eq!(meta.state, JobState::Running);
    assert!(meta.step > 0 && meta.step < 60);
    assert_eq!(meta.step % job.lambda_rpy as u64, 0, "parked off a window boundary");

    // Restart: resumes from the commit and finishes, bitwise.
    shutdown::reset();
    let spec = ServeSpec { exit_when_idle: true, ..spec };
    let mut lines = Vec::new();
    let report = serve(&spec, |m| lines.push(m.to_string())).unwrap();
    assert_eq!(report.done, 1, "log: {lines:#?}");
    assert!(lines.iter().any(|l| l.contains("resumed at step")), "{lines:#?}");
    let got = std::fs::read(root.join("out").join("long").join("trajectory.xyz")).unwrap();
    assert_eq!(got, standalone_trajectory(&job), "resumed trajectory diverged");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cancellation_and_bad_jobs_leave_the_daemon_serving() {
    let _guard = lock();
    shutdown::reset();
    let root = temp_root("cancel");
    let ok = small_spec(14, 5, 4);
    let slow = small_spec(14, 6, 500_000);
    spool_job(&root, "ok", &ok);
    spool_job(&root, "slow", &slow);
    std::fs::write(root.join("spool").join("bad.conf"), "particles = what\n").unwrap();

    let spec = serve_spec(&root);
    let status_path = spec.status_path();
    let handle = {
        let spec = spec.clone();
        std::thread::spawn(move || serve(&spec, |_| {}).unwrap())
    };
    let read_status = || {
        std::fs::read_to_string(&status_path).ok().and_then(|doc| {
            validate_status(&doc).unwrap();
            json::parse(&doc).ok()
        })
    };
    // The bad job fails fast; ok completes; slow keeps running through both.
    wait_for(
        || {
            read_status().is_some_and(|s| {
                job_state(&s, "bad").as_deref() == Some("failed")
                    && job_state(&s, "ok").as_deref() == Some("done")
                    && job_state(&s, "slow").as_deref() == Some("running")
            })
        },
        "bad failed, ok done, slow running",
    );
    // Cooperative cancellation through the spool sentinel.
    std::fs::write(root.join("spool").join("slow.cancel"), "").unwrap();
    wait_for(
        || read_status().is_some_and(|s| job_state(&s, "slow").as_deref() == Some("cancelled")),
        "slow to cancel",
    );
    shutdown::request();
    let report = handle.join().unwrap();
    assert_eq!((report.done, report.failed, report.cancelled), (1, 1, 1));

    let meta = JobMeta::load(&root.join("out").join("bad")).unwrap().unwrap();
    assert_eq!(meta.state, JobState::Failed);
    assert!(meta.error.unwrap().contains("cannot parse"), "parse error should be recorded");
    let meta = JobMeta::load(&root.join("out").join("slow")).unwrap().unwrap();
    assert_eq!(meta.state, JobState::Cancelled);
    std::fs::remove_dir_all(&root).ok();
}
