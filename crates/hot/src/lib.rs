//! `hibd-hot`: the `#[hibd::hot]` marker attribute.
//!
//! The attribute itself is a no-op pass-through — it exists so that hot-path
//! functions are *named* in the source, where both humans and the workspace
//! audit (`cargo run -p xtask -- audit`) can find them. The audit rejects
//! heap-allocating constructs (`vec!`, `Vec::new`, `collect`, `to_vec`,
//! `Box::new`, ...) inside any function carrying the marker; see
//! `crates/xtask` for the lint list and DESIGN.md "Invariants & audit
//! tooling" for the policy.
//!
//! Consumers import the crate under the `hibd` alias so the annotation reads
//! as a workspace-level contract:
//!
//! ```ignore
//! use hibd_hot as hibd;
//!
//! #[hibd::hot]
//! fn scatter_kernel(...) { ... }
//! ```
//!
//! Deliberately dependency-free (no `syn`/`quote`): the token stream is
//! returned untouched, so the marker compiles to nothing.

use proc_macro::TokenStream;

/// Marks a function as a steady-state hot path that must not allocate.
///
/// Pass-through at compile time; enforced lexically by the `xtask` audit.
/// The sanctioned idiom for scratch reuse (`Vec::resize` on a long-lived
/// buffer) is explicitly allowed by the audit; fresh allocations per call
/// (`vec!`, `collect`, `to_vec`, `Box::new`, `String::new`, `format!`,
/// `Vec::new`, `Vec::with_capacity`) are rejected.
#[proc_macro_attribute]
pub fn hot(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
