//! `hibd` — the command-line Brownian dynamics runner.
//!
//! ```text
//! hibd run <config> [--profile p.json]     run a simulation from a config file
//! hibd ensemble <config> [--profile p.json]  lockstep multi-replica run
//! hibd resume <config> <ckpt> [--profile p.json]  continue from a checkpoint
//! hibd serve <config>               spool-directory batch daemon
//! hibd serve example-config         print an annotated daemon config
//! hibd check <config>               parse + validate a config
//! hibd analyze <traj.xyz> [dt]      diffusion + g(r) from a trajectory
//! hibd example-config               print an annotated example config
//! ```
//!
//! `--profile PATH` enables telemetry recording for the run and writes a
//! `hibd-profile-v1` JSON document (phase spans, workload counters, and the
//! calibrated measured-vs-predicted performance report) to PATH.
//!
//! `run`, `ensemble`, and `serve` install a SIGINT/SIGTERM handler: Ctrl-C
//! finishes the in-flight step, writes a final checkpoint (for `serve`,
//! drains every live job to a committed window boundary), and exits 0.

use hibd_cli::analyze::{analyze_trajectory, render};
use hibd_cli::config::SimSpec;
use hibd_cli::profile;
use hibd_cli::runner::{run_ensemble, run_simulation};
use std::path::Path;
use std::process::ExitCode;

const EXAMPLE: &str = r#"# hibd example configuration
# system
particles       = 500
volume_fraction = 0.2
radius          = 1.0
viscosity       = 1.0
seed            = 2014
#replicas       = 8          # hibd ensemble: lockstep replicas, seeds seed+r
boundary        = periodic   # or: open (free-space RPY via the treecode)
#theta          = 0.4        # open only: treecode MAC (omit to tune from e_p)

# integrator (Algorithm 2 of Liu & Chow, IPDPS 2014)
algorithm    = matrix-free    # or: dense
displacement = block-krylov   # or: single-krylov | chebyshev | split-ewald
dt          = 0.01
kbt         = 1.0
lambda_rpy  = 16             # mobility reuse interval
e_k         = 1e-2           # Krylov tolerance
e_p         = 1e-3           # PME accuracy target
steps       = 1000

# forces
repulsion  = on              # contact repulsion, k = 125
#gravity   = 0 0 -0.5
#lj_epsilon = 1.0

# output
trajectory          = trajectory.xyz
trajectory_interval = 50
report_interval     = 100
checkpoint          = state.hibd
checkpoint_interval = 500
"#;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hibd <run CONFIG | ensemble CONFIG | resume CONFIG CHECKPOINT | \
         serve CONFIG | check CONFIG | analyze TRAJECTORY [FRAME_DT] | \
         example-config> [--profile PATH]"
    );
    ExitCode::from(2)
}

/// Extract `--profile PATH` from the argument list (removing both tokens).
/// Returns `Err(())` when the flag is present without a path.
fn take_profile_flag(args: &mut Vec<String>) -> Result<Option<String>, ()> {
    match args.iter().position(|a| a == "--profile") {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(());
            }
            let path = args.remove(i + 1);
            args.remove(i);
            Ok(Some(path))
        }
        None => Ok(None),
    }
}

fn load_spec(path: &str) -> Result<SimSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    SimSpec::parse(&text).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Ok(profile_path) = take_profile_flag(&mut args) else { return usage() };
    match args.first().map(String::as_str) {
        Some("example-config") => {
            print!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(path) = args.get(1) else { return usage() };
            match load_spec(path) {
                Ok(spec) => {
                    println!("config ok: {spec:#?}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("analyze") => {
            let Some(path) = args.get(1) else { return usage() };
            let frame_dt: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
            let file = match std::fs::File::open(path) {
                Ok(f) => std::io::BufReader::new(f),
                Err(e) => {
                    eprintln!("error: cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match analyze_trajectory(file, frame_dt) {
                Ok(a) => {
                    print!("{}", render(&a, frame_dt));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("serve") => {
            let Some(path) = args.get(1) else { return usage() };
            if path == "example-config" {
                print!("{}", hibd_serve::ServeSpec::example());
                return ExitCode::SUCCESS;
            }
            let spec = match std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))
                .and_then(|text| hibd_serve::ServeSpec::parse(&text).map_err(|e| e.to_string()))
            {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            hibd_serve::shutdown::install();
            match hibd_serve::serve(&spec, |m| println!("[hibd-serve] {m}")) {
                Ok(r) => {
                    println!(
                        "[hibd-serve] exit: {} done, {} failed, {} cancelled, {} parked{}",
                        r.done,
                        r.failed,
                        r.cancelled,
                        r.parked,
                        if r.interrupted { " (interrupted)" } else { "" }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("ensemble") => {
            let Some(path) = args.get(1) else { return usage() };
            let spec = match load_spec(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            hibd_serve::shutdown::install();
            if profile_path.is_some() {
                hibd_telemetry::reset();
                hibd_telemetry::enable();
            }
            match run_ensemble(&spec, |m| println!("[hibd] {m}")) {
                Ok(er) => {
                    println!(
                        "[hibd] {}: {} replicas x {} steps in {:.2} s \
                         ({:.2} ms/replica-step, {} Krylov iterations)",
                        if er.report.interrupted { "interrupted" } else { "done" },
                        er.replicas,
                        er.report.steps,
                        er.report.seconds,
                        er.report.seconds_per_step * 1e3,
                        er.report.krylov_iterations
                    );
                    if let Some(path) = &profile_path {
                        let snap = hibd_telemetry::snapshot();
                        hibd_telemetry::disable();
                        if let Err(e) =
                            profile::write_ensemble_profile(Path::new(path.as_str()), &er, &snap)
                        {
                            eprintln!("error: cannot write profile {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("[hibd] profile written to {path}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("run") | Some("resume") => {
            let cmd = args[0].as_str();
            let Some(path) = args.get(1) else { return usage() };
            let resume = if cmd == "resume" {
                match args.get(2) {
                    Some(p) => Some(Path::new(p.as_str()).to_path_buf()),
                    None => return usage(),
                }
            } else {
                None
            };
            let spec = match load_spec(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            hibd_serve::shutdown::install();
            if profile_path.is_some() {
                hibd_telemetry::reset();
                hibd_telemetry::enable();
            }
            match run_simulation(&spec, resume.as_deref(), |m| println!("[hibd] {m}")) {
                Ok(report) => {
                    println!(
                        "[hibd] {}: {} steps in {:.2} s ({:.2} ms/step, {} Krylov iterations)",
                        if report.interrupted { "interrupted" } else { "done" },
                        report.steps,
                        report.seconds,
                        report.seconds_per_step * 1e3,
                        report.krylov_iterations
                    );
                    if let Some(path) = &profile_path {
                        let snap = hibd_telemetry::snapshot();
                        hibd_telemetry::disable();
                        if let Err(e) =
                            profile::write_profile(Path::new(path.as_str()), &report, &snap)
                        {
                            eprintln!("error: cannot write profile {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("[hibd] profile written to {path}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
