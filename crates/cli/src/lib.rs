//! `hibd-cli`: a config-file-driven Brownian dynamics runner.
//!
//! The reference codes the paper compares against (BD_BOX, Brownmove) are
//! standalone simulation programs; this crate provides the equivalent
//! front end for the hibd library:
//!
//! * [`config`] / [`checkpoint`] — re-exported from `hibd-core` (they are
//!   shared with the `hibd-serve` daemon): the `key = value` configuration
//!   format and the binary snapshot/restart of the simulation state;
//! * [`runner`] — assembles the matrix-free (or dense baseline) driver from
//!   a [`config::SimSpec`] and runs it with periodic reporting, trajectory
//!   output, and checkpointing;
//! * [`analyze`] — post-processing of trajectories (diffusion coefficient,
//!   radial distribution function);
//! * [`profile`] — `--profile` JSON output: telemetry snapshot plus the
//!   calibrated Section IV-D measured-vs-predicted report.

pub mod analyze;
pub mod profile;
pub mod runner;

pub use hibd_core::{checkpoint, config};

pub use config::SimSpec;
pub use runner::run_simulation;
