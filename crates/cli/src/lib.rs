//! `hibd-cli`: a config-file-driven Brownian dynamics runner.
//!
//! The reference codes the paper compares against (BD_BOX, Brownmove) are
//! standalone simulation programs; this crate provides the equivalent
//! front end for the hibd library:
//!
//! * [`config`] — a small `key = value` configuration format describing the
//!   system, integrator, forces, and outputs;
//! * [`checkpoint`] — binary snapshot/restart of the full simulation state;
//! * [`runner`] — assembles the matrix-free (or dense baseline) driver from
//!   a [`config::SimSpec`] and runs it with periodic reporting, trajectory
//!   output, and checkpointing;
//! * [`analyze`] — post-processing of trajectories (diffusion coefficient,
//!   radial distribution function);
//! * [`profile`] — `--profile` JSON output: telemetry snapshot plus the
//!   calibrated Section IV-D measured-vs-predicted report.

pub mod analyze;
pub mod checkpoint;
pub mod config;
pub mod profile;
pub mod runner;

pub use config::SimSpec;
pub use runner::run_simulation;
