//! `--profile <path.json>` output: the run's telemetry snapshot, the
//! calibrated Section IV-D performance model, and a measured-vs-predicted
//! report, serialized as a single self-describing JSON document.
//!
//! Schema (`"schema": "hibd-profile-v1"`):
//!
//! ```text
//! {
//!   "schema":   "hibd-profile-v1",
//!   "run":      { steps, seconds, seconds_per_step, krylov_iterations },
//!   "shape":    { n, mesh_dim, spline_order, lambda } | null,
//!   "phases":   { <phase>: { count, total_s, min_ns, max_ns, mean_ns,
//!                            hist: [u64; 32] }, ... },
//!   "counters": { <counter>: u64, ... },
//!   "jobs":     { <label>: { phases: {...}, counters: {...} }, ... },
//!   "report":   { model: {...}, rows: [...] } | null
//! }
//! ```
//!
//! The `jobs` section appears only for `hibd ensemble` runs: one entry per
//! replica (`r0`, `r1`, ...) plus a `shared` entry for work not
//! attributable to a single replica (the batched FFT passes and the
//! plan-cache hit/miss counters).
//!
//! Only phases with at least one recorded span are emitted. The `report`
//! object (format of [`telemetry::Report::to_json`]) is present only for
//! matrix-free runs, where the PME shape is known; its model is calibrated
//! from this run's own spans, so the three pooled bandwidth phases
//! (spreading / influence / interpolation) are genuinely falsifiable while
//! the single-constant FFT and real-space rows fit exactly by construction.

use crate::runner::{EnsembleReport, RunReport};
use hibd_telemetry::{
    self as telemetry, CalibrationSample, Counter, LabeledSnapshot, PerfModel, Snapshot,
};
use std::path::Path;

/// The schema tag emitted in (and required of) every profile document.
pub const SCHEMA: &str = "hibd-profile-v1";

/// Total mobility columns pushed through the reciprocal pipeline, derived
/// from the forward-FFT counter: every column costs exactly three forward
/// mesh transforms (one per vector component), for single and batched
/// applies alike.
#[must_use]
pub fn columns_applied(snap: &Snapshot) -> f64 {
    snap.counter(Counter::ForwardFfts) as f64 / 3.0
}

/// Render the profile document for a finished run.
#[must_use]
pub fn render_profile(report: &RunReport, snap: &Snapshot) -> String {
    render_with_jobs(report, snap, None)
}

/// Render the profile document for a finished ensemble run: the standard
/// [`SCHEMA`] document over the merged (process-global) snapshot, plus a
/// `"jobs"` section holding the per-replica labeled snapshots (`r0..`,
/// `shared`) so phase time can be attributed per replica.
#[must_use]
pub fn render_ensemble_profile(er: &EnsembleReport, snap: &Snapshot) -> String {
    render_with_jobs(&er.report, snap, Some(&er.jobs))
}

fn render_with_jobs(
    report: &RunReport,
    snap: &Snapshot,
    jobs: Option<&[LabeledSnapshot]>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\",\"run\":{");
    out.push_str(&format!(
        "\"steps\":{},\"seconds\":{:e},\"seconds_per_step\":{:e},\"krylov_iterations\":{}}}",
        report.steps, report.seconds, report.seconds_per_step, report.krylov_iterations
    ));

    out.push_str(",\"shape\":");
    match &report.pme {
        Some(s) => out.push_str(&format!(
            "{{\"n\":{},\"mesh_dim\":{},\"spline_order\":{},\"lambda\":{}}}",
            s.n, s.mesh_dim, s.spline_order, s.lambda
        )),
        None => out.push_str("null"),
    }

    out.push_str(",\"phases\":");
    out.push_str(&snap.phases_to_json());

    out.push_str(",\"counters\":");
    out.push_str(&snap.counters_to_json());

    if let Some(jobs) = jobs {
        out.push_str(",\"jobs\":{");
        for (i, j) in jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"phases\":{},\"counters\":{}}}",
                j.label,
                j.snapshot.phases_to_json(),
                j.snapshot.counters_to_json()
            ));
        }
        out.push('}');
    }

    out.push_str(",\"report\":");
    match &report.pme {
        Some(s) => {
            let cols = columns_applied(snap);
            let sample =
                CalibrationSample::from_snapshot(s.n, s.mesh_dim, s.spline_order, cols, 1, snap);
            let model = PerfModel::calibrate(&[sample]);
            let rep = model.report(s.n, s.mesh_dim, s.spline_order, cols, 1, snap);
            out.push_str(&rep.to_json());
        }
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Render and write the profile to `path`.
pub fn write_profile(path: &Path, report: &RunReport, snap: &Snapshot) -> std::io::Result<()> {
    std::fs::write(path, render_profile(report, snap))
}

/// Render and write an ensemble profile (with the `"jobs"` section).
pub fn write_ensemble_profile(
    path: &Path,
    er: &EnsembleReport,
    snap: &Snapshot,
) -> std::io::Result<()> {
    std::fs::write(path, render_ensemble_profile(er, snap))
}

/// Validate a profile document: it must parse as JSON, carry the
/// [`SCHEMA`] tag, and contain the `run`/`phases`/`counters` sections.
/// Returns a description of the first problem found.
pub fn validate_profile(text: &str) -> Result<(), String> {
    let v = telemetry::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match v.get("schema").and_then(telemetry::json::Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing \"schema\" tag".into()),
    }
    for key in ["run", "phases", "counters"] {
        if v.get(key).is_none() {
            return Err(format!("missing {key:?} section"));
        }
    }
    let run = v.get("run").expect("checked above");
    for key in ["steps", "seconds", "seconds_per_step", "krylov_iterations"] {
        if run.get(key).and_then(telemetry::json::Value::as_f64).is_none() {
            return Err(format!("run.{key} missing or not a number"));
        }
    }
    if let Some(jobs) = v.get("jobs") {
        let telemetry::json::Value::Obj(map) = jobs else {
            return Err("jobs is not an object".into());
        };
        for (label, job) in map {
            for key in ["phases", "counters"] {
                if job.get(key).is_none() {
                    return Err(format!("jobs.{label} missing {key:?}"));
                }
            }
        }
    }
    if let Some(rep) = v.get("report") {
        if rep.get("rows").is_some()
            && rep.get("rows").and_then(telemetry::json::Value::as_array).is_none()
        {
            return Err("report.rows is not an array".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PmeShape;
    use hibd_telemetry::Phase;

    fn fake_report(pme: Option<PmeShape>) -> RunReport {
        RunReport {
            steps: 3,
            seconds: 0.6,
            seconds_per_step: 0.2,
            krylov_iterations: 9,
            pme,
            interrupted: false,
        }
    }

    #[test]
    fn empty_snapshot_renders_valid_schema() {
        let text = render_profile(&fake_report(None), &Snapshot::empty());
        validate_profile(&text).unwrap();
        let v = telemetry::json::parse(&text).unwrap();
        assert!(matches!(v.get("shape"), Some(telemetry::json::Value::Null)));
        assert!(matches!(v.get("report"), Some(telemetry::json::Value::Null)));
    }

    #[test]
    fn matrix_free_shape_produces_report_rows() {
        let mut snap = Snapshot::empty();
        // Plant one span per model phase and a consistent FFT count.
        for ph in telemetry::MODEL_PHASES {
            snap.phases[ph as usize].record(1_000_000);
        }
        snap.counters[Counter::ForwardFfts as usize] = 3 * 12;
        let shape = PmeShape { n: 50, mesh_dim: 16, spline_order: 4, lambda: 4 };
        let text = render_profile(&fake_report(Some(shape)), &snap);
        validate_profile(&text).unwrap();
        let v = telemetry::json::parse(&text).unwrap();
        let rows = v
            .get("report")
            .and_then(|r| r.get("rows"))
            .and_then(telemetry::json::Value::as_array)
            .unwrap();
        assert_eq!(rows.len(), 7);
        assert!((columns_applied(&snap) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_profile_carries_a_jobs_section() {
        let mut job = Snapshot::empty();
        job.phases[Phase::Stepping as usize].record(2_000_000);
        job.counters[Counter::LanczosIterations as usize] = 5;
        let er = EnsembleReport {
            replicas: 2,
            report: fake_report(None),
            jobs: vec![
                LabeledSnapshot { label: "r0".into(), snapshot: job.clone() },
                LabeledSnapshot { label: "r1".into(), snapshot: job },
                LabeledSnapshot { label: "shared".into(), snapshot: Snapshot::empty() },
            ],
        };
        let text = render_ensemble_profile(&er, &Snapshot::empty());
        validate_profile(&text).unwrap();
        let v = telemetry::json::parse(&text).unwrap();
        let jobs = v.get("jobs").unwrap();
        let r0 = jobs.get("r0").unwrap();
        assert!(r0.get("phases").and_then(|p| p.get("stepping")).is_some());
        assert!(
            (r0.get("counters")
                .and_then(|c| c.get("lanczos_iterations"))
                .and_then(telemetry::json::Value::as_f64)
                .unwrap()
                - 5.0)
                .abs()
                < 1e-12
        );
        assert!(jobs.get("shared").is_some());
        // A malformed jobs section is rejected.
        assert!(validate_profile(
            "{\"schema\":\"hibd-profile-v1\",\"run\":{\"steps\":1,\"seconds\":1,\
             \"seconds_per_step\":1,\"krylov_iterations\":0},\"phases\":{},\
             \"counters\":{},\"jobs\":[]}"
        )
        .is_err());
    }

    #[test]
    fn validation_rejects_wrong_schema_and_garbage() {
        assert!(validate_profile("not json").is_err());
        assert!(validate_profile("{\"schema\":\"other\"}").is_err());
        assert!(validate_profile("{\"schema\":\"hibd-profile-v1\"}").is_err());
    }
}
