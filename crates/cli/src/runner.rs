//! Assemble and run a simulation from a [`SimSpec`].
//!
//! Both entry points drive the same engine: [`run_simulation`] is the
//! `R = 1` case of the [`EnsembleRunner`] (the dense baseline keeps its
//! own legacy branch), and [`run_ensemble`] steps `replicas` independent
//! copies in lockstep with shared operator plans. Replica `r` of an
//! ensemble is defined as **the standalone run with seed `seed + r`** —
//! same initial-configuration RNG, same BD stream — so its trajectory
//! file is byte-identical to a `replicas = 1` run of that seed.

use crate::checkpoint::Checkpoint;
use crate::config::{Algorithm, SimSpec};
use hibd_core::ewald_bd::{BdError, EwaldBd, EwaldBdConfig};
use hibd_core::io::{Coordinates, XyzWriter};
use hibd_core::mf_bd::MatrixFreeBd;
use hibd_core::system::{Boundary, ParticleSystem};
use hibd_engine::EnsembleRunner;
use hibd_telemetry::LabeledSnapshot;
use hibd_treecode::TreeEval;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// The PME shape a matrix-free run executed with (for the performance
/// model in `--profile` output). `None` for the dense baseline.
#[derive(Clone, Copy, Debug)]
pub struct PmeShape {
    /// Particle count.
    pub n: usize,
    /// Mesh cells per side (`K`).
    pub mesh_dim: usize,
    /// B-spline order (`p`).
    pub spline_order: usize,
    /// Mobility reuse interval (block width of the Krylov solves).
    pub lambda: usize,
}

/// Summary of a completed run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Steps actually executed (short of the budget when interrupted).
    pub steps: usize,
    pub seconds: f64,
    pub seconds_per_step: f64,
    pub krylov_iterations: usize,
    pub pme: Option<PmeShape>,
    /// A SIGINT/SIGTERM arrived: the run finished its in-flight step,
    /// wrote a final checkpoint, and stopped early.
    pub interrupted: bool,
}

/// Summary of a completed ensemble run: the aggregate report (lockstep
/// steps, wall time, Krylov totals) plus per-job labeled snapshots for the
/// `--profile` jobs section.
#[derive(Clone, Debug)]
pub struct EnsembleReport {
    pub replicas: usize,
    pub report: RunReport,
    pub jobs: Vec<LabeledSnapshot>,
}

/// Either BD driver behind one stepping interface. Matrix-free runs go
/// through a one-replica [`EnsembleRunner`] so `hibd run` and
/// `hibd ensemble` share every line of operator construction.
enum Driver {
    MatrixFree(Box<EnsembleRunner>),
    Dense(Box<EwaldBd>),
}

impl Driver {
    fn step(&mut self) -> Result<(), BdError> {
        match self {
            Driver::MatrixFree(d) => d.step(),
            Driver::Dense(d) => d.step(),
        }
    }

    fn system(&self) -> &ParticleSystem {
        match self {
            Driver::MatrixFree(d) => d.replica(0).system(),
            Driver::Dense(d) => d.system(),
        }
    }

    fn krylov_iterations(&self) -> usize {
        match self {
            Driver::MatrixFree(d) => d.replica(0).timings().krylov_iterations,
            Driver::Dense(_) => 0,
        }
    }
}

/// Log the resolved operator shape of a freshly built driver and return
/// the PME shape for the profile's performance model (None for open runs).
fn log_shape(bd: &MatrixFreeBd, lambda: usize, log: &mut impl FnMut(&str)) -> Option<PmeShape> {
    let mut shape = None;
    if let Some(p) = bd.pme_params() {
        log(&format!(
            "matrix-free: K = {}, p = {}, r_max = {:.2}, alpha = {:.4}",
            p.mesh_dim, p.spline_order, p.r_max, p.alpha
        ));
        shape = Some(PmeShape {
            n: bd.system().len(),
            mesh_dim: p.mesh_dim,
            spline_order: p.spline_order,
            lambda,
        });
    }
    if let Some(t) = bd.tree_params() {
        let eval = match t.eval {
            TreeEval::Tree => "treecode",
            TreeEval::Fmm => "fmm",
        };
        log(&format!(
            "matrix-free {eval}: theta = {:.2}, q = {}, leaf = {}",
            t.theta, t.cheb_order, t.leaf_capacity
        ));
    }
    shape
}

/// Per-replica output path: plain at `R = 1`, otherwise `.r{N}` spliced
/// before the extension (`out.xyz` -> `out.r2.xyz`).
fn replica_path(base: &str, r: usize, replicas: usize) -> String {
    if replicas == 1 {
        return base.to_string();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.r{r}.{ext}"),
        None => format!("{base}.r{r}"),
    }
}

/// Run a simulation; `resume_from` optionally restores a checkpoint
/// (overriding the generated initial configuration), `log` receives
/// progress lines.
pub fn run_simulation(
    spec: &SimSpec,
    resume_from: Option<&Path>,
    mut log: impl FnMut(&str),
) -> Result<RunReport, Box<dyn std::error::Error>> {
    if spec.replicas > 1 {
        return Err(format!(
            "this config sets replicas = {}; single-trajectory `hibd run` needs replicas = 1 \
             (use `hibd ensemble` for lockstep multi-replica runs)",
            spec.replicas
        )
        .into());
    }
    // Initial configuration: fresh suspension or checkpoint.
    let (system, start_step) = match resume_from {
        Some(path) => {
            let ck = Checkpoint::load(path)?;
            log(&format!(
                "resumed from {} at step {} ({} particles)",
                path.display(),
                ck.step,
                ck.wrapped.len()
            ));
            (ck.restore(), ck.step as usize)
        }
        None => (spec.build_system(spec.seed), 0),
    };
    match system.boundary() {
        Boundary::Periodic => log(&format!(
            "system: n = {}, L = {:.3}, phi = {:.3}",
            system.len(),
            system.box_l,
            system.volume_fraction()
        )),
        Boundary::Open => log(&format!("system: n = {}, open boundary", system.len())),
    }
    if system.boundary() == Boundary::Open && spec.algorithm == Algorithm::Dense {
        return Err("the dense Ewald baseline is periodic-only; this configuration is open".into());
    }

    // Driver.
    let mut pme_shape = None;
    let mut driver = match spec.algorithm {
        Algorithm::MatrixFree => {
            let cfg = spec.matrix_free_config();
            let mut runner = EnsembleRunner::new(cfg, vec![(system, spec.seed)])?;
            let bd = runner.replica_mut(0);
            // The per-window RNG stream is derived from the completed-step
            // counter, so a checkpoint resumed at a window boundary replays
            // the uninterrupted run bit for bit.
            bd.set_completed_steps(start_step as u64);
            pme_shape = log_shape(bd, spec.lambda_rpy, &mut log);
            add_forces(spec, |f| bd.add_force_boxed(f));
            Driver::MatrixFree(Box::new(runner))
        }
        Algorithm::Dense => {
            let cfg = EwaldBdConfig {
                dt: spec.dt,
                kbt: spec.kbt,
                lambda_rpy: spec.lambda_rpy,
                ..Default::default()
            };
            let mut bd = EwaldBd::new(system, cfg, spec.seed);
            log("dense Ewald baseline (Algorithm 1)");
            add_forces(spec, |f| bd.add_force_boxed(f));
            Driver::Dense(Box::new(bd))
        }
    };

    // Trajectory sink.
    let mut traj = match &spec.trajectory {
        Some(path) => {
            let file = BufWriter::new(File::create(path)?);
            Some(XyzWriter::new(file, Coordinates::Wrapped))
        }
        None => None,
    };

    let t0 = std::time::Instant::now();
    let mut completed = 0;
    let mut interrupted = false;
    for local in 1..=spec.steps {
        driver.step()?;
        completed = local;
        let global = start_step + local;
        if let Some(w) = traj.as_mut() {
            if local % spec.trajectory_interval == 0 {
                w.write_frame(driver.system(), &format!("step={global}"))?;
            }
        }
        if spec.report_interval > 0 && local % spec.report_interval == 0 {
            let per = t0.elapsed().as_secs_f64() / local as f64;
            log(&format!(
                "step {global}: {:.2} ms/step, {} Krylov iterations total",
                per * 1e3,
                driver.krylov_iterations()
            ));
        }
        if let Some(path) = &spec.checkpoint {
            if local % spec.checkpoint_interval == 0 || local == spec.steps {
                Checkpoint::capture(driver.system(), global as u64).save(Path::new(path))?;
            }
        }
        // Graceful Ctrl-C: the in-flight step finished and its outputs are
        // written; commit a final checkpoint and stop instead of dying
        // mid-step with only the last periodic commit on disk.
        if hibd_serve::shutdown::requested() && local < spec.steps {
            interrupted = true;
            match &spec.checkpoint {
                Some(path) => {
                    Checkpoint::capture(driver.system(), global as u64).save(Path::new(path))?;
                    log(&format!("interrupted: checkpoint written at step {global}"));
                }
                None => log(&format!("interrupted at step {global} (no checkpoint configured)")),
            }
            break;
        }
    }
    if let Some(w) = traj {
        let mut inner = w.into_inner()?;
        inner.flush()?;
    }

    let seconds = t0.elapsed().as_secs_f64();
    Ok(RunReport {
        steps: completed,
        seconds,
        seconds_per_step: seconds / completed.max(1) as f64,
        krylov_iterations: driver.krylov_iterations(),
        pme: pme_shape,
        interrupted,
    })
}

/// Run `spec.replicas` independent replicas in lockstep on one shared
/// plan cache. Replica `r` is the standalone run with seed `spec.seed + r`
/// (trajectory/checkpoint files get a `.r{N}` suffix when `replicas > 1`).
/// Resume is single-trajectory only: restart replica `r` with
/// `hibd resume` on its own checkpoint and `seed = seed + r`.
pub fn run_ensemble(
    spec: &SimSpec,
    mut log: impl FnMut(&str),
) -> Result<EnsembleReport, Box<dyn std::error::Error>> {
    if spec.algorithm != Algorithm::MatrixFree {
        return Err("ensemble stepping shares matrix-free operator plans; \
             set algorithm = matrix-free"
            .into());
    }
    let replicas = spec.replicas;
    let jobs: Vec<(ParticleSystem, u64)> =
        (0..replicas as u64).map(|r| (spec.build_system(spec.seed + r), spec.seed + r)).collect();
    match jobs[0].0.boundary() {
        Boundary::Periodic => log(&format!(
            "system: n = {}, L = {:.3}, phi = {:.3}, {replicas} replicas",
            jobs[0].0.len(),
            jobs[0].0.box_l,
            jobs[0].0.volume_fraction()
        )),
        Boundary::Open => {
            log(&format!("system: n = {}, open boundary, {replicas} replicas", jobs[0].0.len()));
        }
    }

    let cfg = spec.matrix_free_config();
    let mut runner = EnsembleRunner::new(cfg, jobs)?;
    let pme_shape = log_shape(runner.replica(0), spec.lambda_rpy, &mut log);
    log(&format!(
        "plan cache: {} resident shape(s), {} hit(s), {} miss(es)",
        runner.cache().len(),
        runner.cache().hits(),
        runner.cache().misses()
    ));
    for r in 0..replicas {
        add_forces(spec, |f| runner.replica_mut(r).add_force_boxed(f));
    }

    // Per-replica trajectory sinks and checkpoint paths.
    let mut trajs = Vec::with_capacity(replicas);
    for r in 0..replicas {
        trajs.push(match &spec.trajectory {
            Some(base) => {
                let path = replica_path(base, r, replicas);
                let file = BufWriter::new(File::create(path)?);
                Some(XyzWriter::new(file, Coordinates::Wrapped))
            }
            None => None,
        });
    }

    let t0 = std::time::Instant::now();
    let mut completed = 0;
    let mut interrupted = false;
    for step in 1..=spec.steps {
        runner.step()?;
        completed = step;
        for (r, traj) in trajs.iter_mut().enumerate() {
            if let Some(w) = traj.as_mut() {
                if step % spec.trajectory_interval == 0 {
                    w.write_frame(runner.replica(r).system(), &format!("step={step}"))?;
                }
            }
            if let Some(base) = &spec.checkpoint {
                if step % spec.checkpoint_interval == 0 || step == spec.steps {
                    let path = replica_path(base, r, replicas);
                    Checkpoint::capture(runner.replica(r).system(), step as u64)
                        .save(Path::new(&path))?;
                }
            }
        }
        if spec.report_interval > 0 && step % spec.report_interval == 0 {
            let per = t0.elapsed().as_secs_f64() / (step * replicas) as f64;
            log(&format!("step {step}: {:.2} ms/replica-step", per * 1e3));
        }
        // Graceful Ctrl-C: checkpoint every replica at the completed
        // lockstep step, then stop.
        if hibd_serve::shutdown::requested() && step < spec.steps {
            interrupted = true;
            if let Some(base) = &spec.checkpoint {
                for r in 0..replicas {
                    let path = replica_path(base, r, replicas);
                    Checkpoint::capture(runner.replica(r).system(), step as u64)
                        .save(Path::new(&path))?;
                }
                log(&format!("interrupted: {replicas} checkpoint(s) written at step {step}"));
            } else {
                log(&format!("interrupted at step {step} (no checkpoint configured)"));
            }
            break;
        }
    }
    for w in trajs.into_iter().flatten() {
        let mut inner = w.into_inner()?;
        inner.flush()?;
    }

    let seconds = t0.elapsed().as_secs_f64();
    let krylov_iterations =
        (0..replicas).map(|r| runner.replica(r).timings().krylov_iterations).sum();
    Ok(EnsembleReport {
        replicas,
        report: RunReport {
            steps: completed,
            seconds,
            seconds_per_step: seconds / (completed * replicas).max(1) as f64,
            krylov_iterations,
            pme: pme_shape,
            interrupted,
        },
        jobs: runner.job_snapshots(),
    })
}

fn add_forces(spec: &SimSpec, mut add: impl FnMut(Box<dyn hibd_core::forces::Force>)) {
    for f in spec.forces() {
        add(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FarFieldEval, SimSpec};

    fn quiet() -> impl FnMut(&str) {
        |_msg: &str| {}
    }

    #[test]
    fn runs_a_small_matrix_free_simulation() {
        let spec = SimSpec { particles: 20, steps: 3, report_interval: 0, ..Default::default() };
        let report = run_simulation(&spec, None, quiet()).unwrap();
        assert_eq!(report.steps, 3);
        assert!(report.seconds_per_step > 0.0);
        assert!(report.krylov_iterations > 0);
    }

    #[test]
    fn run_rejects_multi_replica_configs() {
        let spec = SimSpec { replicas: 2, ..Default::default() };
        let e = run_simulation(&spec, None, quiet()).unwrap_err();
        assert!(e.to_string().contains("hibd ensemble"), "{e}");
    }

    #[test]
    fn ensemble_rejects_the_dense_baseline() {
        let spec = SimSpec { algorithm: Algorithm::Dense, ..Default::default() };
        let e = run_ensemble(&spec, quiet()).unwrap_err();
        assert!(e.to_string().contains("matrix-free"), "{e}");
    }

    #[test]
    fn replica_paths_splice_before_the_extension() {
        assert_eq!(replica_path("out.xyz", 2, 4), "out.r2.xyz");
        assert_eq!(replica_path("state", 0, 2), "state.r0");
        assert_eq!(replica_path("a/b.tar.gz", 1, 2), "a/b.tar.r1.gz");
        assert_eq!(replica_path("out.xyz", 0, 1), "out.xyz");
    }

    #[test]
    fn runs_a_small_ensemble_with_per_job_snapshots() {
        let spec = SimSpec {
            particles: 12,
            steps: 3,
            lambda_rpy: 2,
            replicas: 3,
            report_interval: 0,
            ..Default::default()
        };
        let mut lines = Vec::new();
        let er = run_ensemble(&spec, |m| lines.push(m.to_string())).unwrap();
        assert_eq!(er.replicas, 3);
        assert_eq!(er.report.steps, 3);
        assert!(er.report.krylov_iterations > 0);
        assert!(er.report.pme.is_some());
        let labels: Vec<&str> = er.jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(labels, ["r0", "r1", "r2", "shared"]);
        assert!(lines.iter().any(|l| l.contains("3 replicas")));
        assert!(lines.iter().any(|l| l.contains("plan cache: 1 resident")));
    }

    #[test]
    fn runs_the_dense_baseline() {
        let spec = SimSpec {
            particles: 12,
            steps: 2,
            algorithm: Algorithm::Dense,
            report_interval: 0,
            ..Default::default()
        };
        let report = run_simulation(&spec, None, quiet()).unwrap();
        assert_eq!(report.steps, 2);
        assert_eq!(report.krylov_iterations, 0);
    }

    #[test]
    fn runs_an_open_boundary_simulation_and_resumes() {
        let dir = std::env::temp_dir().join("hibd_runner_open_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("open.hibd");
        let spec = SimSpec {
            particles: 15,
            steps: 4,
            boundary: hibd_core::system::Boundary::Open,
            theta: Some(0.6),
            lambda_rpy: 4,
            checkpoint: Some(ckpt.to_string_lossy().into_owned()),
            checkpoint_interval: 2,
            report_interval: 0,
            ..Default::default()
        };
        let mut lines = Vec::new();
        let report = run_simulation(&spec, None, |m| lines.push(m.to_string())).unwrap();
        assert_eq!(report.steps, 4);
        assert!(report.krylov_iterations > 0);
        assert!(report.pme.is_none(), "open runs have no PME shape");
        assert!(lines.iter().any(|l| l.contains("open boundary")));
        assert!(lines.iter().any(|l| l.contains("treecode: theta = 0.60")));

        // Resume keeps the open boundary through the checkpoint.
        let spec2 = SimSpec { steps: 2, ..spec.clone() };
        let mut lines2 = Vec::new();
        run_simulation(&spec2, Some(&ckpt), |m| lines2.push(m.to_string())).unwrap();
        assert!(lines2.iter().any(|l| l.contains("resumed") && l.contains("step 4")));
        assert!(lines2.iter().any(|l| l.contains("open boundary")));
        let ck = Checkpoint::load(&ckpt).unwrap();
        assert_eq!(ck.step, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runs_an_open_boundary_fmm_simulation() {
        let spec = SimSpec {
            particles: 15,
            steps: 2,
            boundary: hibd_core::system::Boundary::Open,
            theta: Some(0.6),
            eval: Some(FarFieldEval::Fmm),
            lambda_rpy: 4,
            report_interval: 0,
            ..Default::default()
        };
        let mut lines = Vec::new();
        let report = run_simulation(&spec, None, |m| lines.push(m.to_string())).unwrap();
        assert_eq!(report.steps, 2);
        assert!(report.krylov_iterations > 0);
        assert!(lines.iter().any(|l| l.contains("fmm: theta = 0.60")));
    }

    #[test]
    fn writes_trajectory_and_checkpoint_then_resumes() {
        let dir = std::env::temp_dir().join("hibd_runner_test");
        std::fs::create_dir_all(&dir).unwrap();
        let traj = dir.join("t.xyz");
        let ckpt = dir.join("s.hibd");
        let spec = SimSpec {
            particles: 15,
            steps: 4,
            trajectory: Some(traj.to_string_lossy().into_owned()),
            trajectory_interval: 2,
            checkpoint: Some(ckpt.to_string_lossy().into_owned()),
            checkpoint_interval: 2,
            report_interval: 0,
            ..Default::default()
        };
        run_simulation(&spec, None, quiet()).unwrap();
        let text = std::fs::read_to_string(&traj).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("Lattice")).count(), 2);

        // Resume: the checkpoint stores step 4; two more steps continue it.
        let spec2 = SimSpec { steps: 2, trajectory: None, ..spec.clone() };
        let mut lines = Vec::new();
        run_simulation(&spec2, Some(&ckpt), |m| lines.push(m.to_string())).unwrap();
        assert!(lines.iter().any(|l| l.contains("resumed") && l.contains("step 4")));
        // Final checkpoint now at global step 6.
        let ck = Checkpoint::load(&ckpt).unwrap();
        assert_eq!(ck.step, 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
