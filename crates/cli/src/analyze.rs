//! Post-processing of XYZ trajectories: `hibd analyze <trajectory>`.
//!
//! Computes the two observables the paper's evaluation is built on, straight
//! from a trajectory file:
//!
//! * the translational diffusion coefficient `D(tau)` (paper Eq. 12), at a
//!   ladder of lag times — using the recorded frames as-is, so the caller
//!   must have written *unwrapped* coordinates or accept wrapped-trajectory
//!   underestimates;
//! * the radial distribution function `g(r)` from the final frames.

use hibd_core::analysis::RdfAccumulator;
use hibd_core::diffusion::DiffusionEstimator;
use hibd_core::io::{XyzFrame, XyzReader};
use hibd_core::system::ParticleSystem;
use std::io::BufRead;

/// Analysis results, ready for printing.
#[derive(Clone, Debug)]
pub struct Analysis {
    pub frames: usize,
    pub particles: usize,
    pub box_l: Option<f64>,
    /// `(lag_frames, D, err)` rows.
    pub diffusion: Vec<(usize, f64, f64)>,
    /// `(r, g)` histogram, empty when no lattice metadata was present.
    pub rdf: Vec<(f64, f64)>,
}

/// Analyze a trajectory stream. `frame_dt` is the simulation time between
/// stored frames (`steps_between_frames * dt`).
pub fn analyze_trajectory<R: BufRead>(
    reader: R,
    frame_dt: f64,
) -> Result<Analysis, Box<dyn std::error::Error>> {
    let mut xyz = XyzReader::new(reader);
    let mut frames: Vec<XyzFrame> = Vec::new();
    while let Some(f) = xyz.next_frame()? {
        if let Some(prev) = frames.last() {
            if prev.positions.len() != f.positions.len() {
                return Err(format!(
                    "frame {} has {} particles, expected {}",
                    frames.len(),
                    f.positions.len(),
                    prev.positions.len()
                )
                .into());
            }
        }
        frames.push(f);
    }
    if frames.is_empty() {
        return Err("trajectory contains no frames".into());
    }
    let particles = frames[0].positions.len();
    let box_l = frames[0].box_l;

    // Diffusion ladder.
    let max_lag = (frames.len() / 4).clamp(1, 16);
    let mut est = DiffusionEstimator::new(frame_dt, max_lag);
    for f in &frames {
        est.record(&f.positions);
    }
    let mut diffusion = Vec::new();
    for lag in 1..=max_lag {
        if let Some((d, err)) = est.diffusion_at(lag) {
            diffusion.push((lag, d, err));
        }
    }

    // g(r) over the last half of the trajectory.
    let mut rdf = Vec::new();
    if let Some(l) = box_l {
        if particles >= 2 {
            let r_max = (l / 2.0) * 0.99;
            let mut acc = RdfAccumulator::new(r_max, 32);
            for f in frames.iter().skip(frames.len() / 2) {
                let sys = ParticleSystem::new(f.positions.clone(), l, 1.0, 1.0);
                acc.record(&sys);
            }
            rdf = acc.normalized();
        }
    }

    Ok(Analysis { frames: frames.len(), particles, box_l, diffusion, rdf })
}

/// Render the analysis as the CLI's report text.
pub fn render(analysis: &Analysis, frame_dt: f64) -> String {
    let mut out = String::new();
    use std::fmt::Write;
    writeln!(
        out,
        "# {} frames, {} particles, box {}",
        analysis.frames,
        analysis.particles,
        analysis.box_l.map(|l| format!("L = {l:.4}")).unwrap_or_else(|| "unknown".into())
    )
    .unwrap();
    writeln!(out, "\n## diffusion (Eq. 12)  [frame_dt = {frame_dt}]").unwrap();
    writeln!(out, "{:>10} {:>14} {:>12}", "tau", "D(tau)", "err").unwrap();
    for &(lag, d, err) in &analysis.diffusion {
        writeln!(out, "{:>10.4} {d:>14.6} {err:>12.6}", lag as f64 * frame_dt).unwrap();
    }
    if !analysis.rdf.is_empty() {
        writeln!(out, "\n## radial distribution g(r)").unwrap();
        writeln!(out, "{:>8} {:>10}", "r", "g").unwrap();
        for &(r, g) in &analysis.rdf {
            writeln!(out, "{r:>8.3} {g:>10.4}").unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_core::io::{Coordinates, XyzWriter};
    use hibd_core::system::ParticleSystem;
    use hibd_mathx::{fill_standard_normal, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Write a synthetic random-walk trajectory and check the recovered D.
    #[test]
    fn recovers_diffusion_from_written_trajectory() {
        let n = 150;
        let d_true: f64 = 0.4;
        let frame_dt = 0.2;
        let sigma = (2.0 * d_true * frame_dt).sqrt();
        let mut rng = StdRng::seed_from_u64(17);
        let mut sys =
            ParticleSystem::new(vec![Vec3::new(500.0, 500.0, 500.0); n], 1000.0, 1.0, 1.0);
        let mut w = XyzWriter::new(Vec::new(), Coordinates::Unwrapped);
        w.write_frame(&sys, "").unwrap();
        let mut noise = vec![0.0; 3 * n];
        for _ in 0..120 {
            fill_standard_normal(&mut rng, &mut noise);
            for v in &mut noise {
                *v *= sigma;
            }
            sys.apply_displacements(&noise);
            w.write_frame(&sys, "").unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let analysis = analyze_trajectory(&bytes[..], frame_dt).unwrap();
        assert_eq!(analysis.frames, 121);
        let (_, d, err) = analysis.diffusion[0];
        assert!((d - d_true).abs() < 4.0 * err.max(0.02), "D = {d} +- {err}, want {d_true}");
        let text = render(&analysis, frame_dt);
        assert!(text.contains("diffusion"));
    }

    #[test]
    fn computes_rdf_when_lattice_present() {
        let mut rng = StdRng::seed_from_u64(4);
        let sys = ParticleSystem::random_suspension(150, 0.2, &mut rng);
        let mut w = XyzWriter::new(Vec::new(), Coordinates::Wrapped);
        for _ in 0..4 {
            w.write_frame(&sys, "").unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let analysis = analyze_trajectory(&bytes[..], 1.0).unwrap();
        assert!(!analysis.rdf.is_empty());
        // Depleted core below contact.
        for &(r, g) in &analysis.rdf {
            if r < 1.8 {
                assert!(g < 0.1, "r={r}: g={g}");
            }
        }
    }

    #[test]
    fn rejects_empty_and_inconsistent_trajectories() {
        assert!(analyze_trajectory("".as_bytes(), 1.0).is_err());
        let text = "1\nLattice=\"5 0 0 0 5 0 0 0 5\"\nC 0 0 0\n2\nc\nC 0 0 0\nC 1 1 1\n";
        let err = analyze_trajectory(text.as_bytes(), 1.0).unwrap_err();
        assert!(err.to_string().contains("expected 1"), "{err}");
    }
}
