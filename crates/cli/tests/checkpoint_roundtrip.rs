//! Satellite: checkpoint save -> load -> resume must reproduce the
//! uninterrupted run exactly (byte-identical checkpoint files), for both
//! the block Krylov and split-Ewald displacement samplers.
//!
//! Works because the driver's per-window RNG stream is derived from the
//! completed-step counter: a resume at a `lambda_rpy` boundary (checkpoint
//! intervals are chosen as multiples of `lambda_rpy`) replays the exact
//! Gaussian stream the uninterrupted run consumed.

use hibd_cli::checkpoint::Checkpoint;
use hibd_cli::config::{Displacement, SimSpec};
use hibd_cli::runner::run_simulation;
use std::path::Path;

fn quiet() -> impl FnMut(&str) {
    |_msg: &str| {}
}

#[test]
fn resumed_run_matches_uninterrupted_checkpoint() {
    let dir = std::env::temp_dir().join("hibd_ckpt_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (mode, tag) in [(Displacement::BlockKrylov, "block"), (Displacement::SplitEwald, "pse")] {
        let ck_full = dir.join(format!("{tag}_full.hibd"));
        let ck_split = dir.join(format!("{tag}_split.hibd"));
        let base = SimSpec {
            particles: 12,
            lambda_rpy: 2,
            seed: 4242,
            displacement: mode,
            checkpoint_interval: 2,
            report_interval: 0,
            ..Default::default()
        };

        // Uninterrupted: 4 steps, final checkpoint at step 4.
        let full = SimSpec {
            steps: 4,
            checkpoint: Some(ck_full.to_string_lossy().into_owned()),
            ..base.clone()
        };
        run_simulation(&full, None, quiet()).unwrap();

        // Interrupted: 2 steps, then resume the checkpoint for 2 more.
        let split =
            SimSpec { steps: 2, checkpoint: Some(ck_split.to_string_lossy().into_owned()), ..base };
        run_simulation(&split, None, quiet()).unwrap();
        assert_eq!(Checkpoint::load(&ck_split).unwrap().step, 2);
        run_simulation(&split, Some(Path::new(&ck_split)), quiet()).unwrap();

        let a = std::fs::read(&ck_full).unwrap();
        let b = std::fs::read(&ck_split).unwrap();
        assert_eq!(Checkpoint::load(&ck_split).unwrap().step, 4);
        assert_eq!(a, b, "{tag}: resumed checkpoint differs from uninterrupted run");
    }
    std::fs::remove_dir_all(&dir).ok();
}
