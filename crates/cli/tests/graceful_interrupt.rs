//! Graceful Ctrl-C for `hibd run` / `hibd ensemble`: the runner finishes
//! the in-flight step, writes a final checkpoint, and reports
//! `interrupted` — and a resume from that checkpoint reproduces the
//! uninterrupted run bit for bit (the interrupt lands on a `lambda_rpy`
//! window boundary in these tests).
//!
//! The shutdown flag is process-global, so the tests serialize on one
//! mutex and reset the flag around every run.

use hibd_cli::checkpoint::Checkpoint;
use hibd_cli::config::SimSpec;
use hibd_cli::runner::{run_ensemble, run_simulation};
use hibd_serve::shutdown;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes the tests: the shutdown flag they toggle is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hibd_interrupt_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_spec(ckpt: &Path) -> SimSpec {
    SimSpec {
        particles: 14,
        seed: 11,
        steps: 8,
        lambda_rpy: 2,
        report_interval: 1,
        checkpoint: Some(ckpt.to_string_lossy().into_owned()),
        checkpoint_interval: 100,
        ..SimSpec::default()
    }
}

#[test]
fn interrupted_run_checkpoints_and_resumes_bitwise() {
    let _guard = lock();
    shutdown::reset();
    let dir = temp_root("run");
    let ckpt = dir.join("s.hibd");
    let spec = base_spec(&ckpt);

    // Uninterrupted reference: final checkpoint at step 8.
    run_simulation(&spec, None, |_| {}).unwrap();
    let reference = std::fs::read(&ckpt).unwrap();
    std::fs::remove_file(&ckpt).unwrap();

    // Interrupt after step 4 (a window boundary) via the report stream.
    let mut lines = Vec::new();
    let report = run_simulation(&spec, None, |m| {
        if m.starts_with("step 4:") {
            shutdown::request();
        }
        lines.push(m.to_string());
    })
    .unwrap();
    assert!(report.interrupted);
    assert_eq!(report.steps, 4, "the in-flight step finishes, then the run stops");
    assert!(lines.iter().any(|l| l.contains("interrupted: checkpoint written at step 4")));
    assert_eq!(Checkpoint::load(&ckpt).unwrap().step, 4);

    // Resume the remaining steps: the final checkpoint is bitwise the
    // uninterrupted one.
    shutdown::reset();
    let spec2 = SimSpec { steps: 4, ..spec };
    let report = run_simulation(&spec2, Some(&ckpt), |_| {}).unwrap();
    assert!(!report.interrupted);
    assert_eq!(std::fs::read(&ckpt).unwrap(), reference, "resumed end state diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_ensemble_checkpoints_every_replica() {
    let _guard = lock();
    shutdown::reset();
    let dir = temp_root("ensemble");
    let ckpt = dir.join("e.hibd");
    let spec = SimSpec { replicas: 2, ..base_spec(&ckpt) };

    let mut lines = Vec::new();
    let er = run_ensemble(&spec, |m| {
        if m.starts_with("step 2:") {
            shutdown::request();
        }
        lines.push(m.to_string());
    })
    .unwrap();
    shutdown::reset();
    assert!(er.report.interrupted);
    assert_eq!(er.report.steps, 2);
    assert!(lines.iter().any(|l| l.contains("interrupted: 2 checkpoint(s) written at step 2")));
    for r in 0..2 {
        let ck = Checkpoint::load(&dir.join(format!("e.r{r}.hibd"))).unwrap();
        assert_eq!(ck.step, 2, "replica {r} checkpoint");
    }
    std::fs::remove_dir_all(&dir).ok();
}
