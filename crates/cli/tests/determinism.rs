//! Satellite: the same config and seed must produce bitwise-identical
//! trajectories across independent process-level runs, for both the block
//! Krylov and the split-Ewald displacement samplers.

use hibd_cli::config::{Displacement, SimSpec};
use hibd_cli::runner::run_simulation;
use std::path::Path;

fn quiet() -> impl FnMut(&str) {
    |_msg: &str| {}
}

fn run_to_file(spec: &SimSpec, dir: &Path, name: &str) -> Vec<u8> {
    let traj = dir.join(name);
    let spec = SimSpec {
        trajectory: Some(traj.to_string_lossy().into_owned()),
        trajectory_interval: 1,
        ..spec.clone()
    };
    run_simulation(&spec, None, quiet()).unwrap();
    std::fs::read(&traj).unwrap()
}

#[test]
fn identical_runs_write_identical_trajectories() {
    let dir = std::env::temp_dir().join("hibd_determinism_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (mode, tag) in [(Displacement::BlockKrylov, "block"), (Displacement::SplitEwald, "pse")] {
        let spec = SimSpec {
            particles: 12,
            steps: 5,
            lambda_rpy: 2,
            seed: 777,
            displacement: mode,
            report_interval: 0,
            ..Default::default()
        };
        let a = run_to_file(&spec, &dir, &format!("{tag}_a.xyz"));
        let b = run_to_file(&spec, &dir, &format!("{tag}_b.xyz"));
        assert!(!a.is_empty());
        assert_eq!(a, b, "{tag}: two identical runs diverged");

        // A different seed must actually change the trajectory.
        let other = SimSpec { seed: 778, ..spec };
        let c = run_to_file(&other, &dir, &format!("{tag}_c.xyz"));
        assert_ne!(a, c, "{tag}: seed had no effect");
    }
    std::fs::remove_dir_all(&dir).ok();
}
