//! Satellite: the same config and seed must produce bitwise-identical
//! trajectories across independent process-level runs, for both the block
//! Krylov and the split-Ewald displacement samplers.

use hibd_cli::config::{Displacement, SimSpec};
use hibd_cli::runner::{run_ensemble, run_simulation};
use std::path::Path;

fn quiet() -> impl FnMut(&str) {
    |_msg: &str| {}
}

fn run_to_file(spec: &SimSpec, dir: &Path, name: &str) -> Vec<u8> {
    let traj = dir.join(name);
    let spec = SimSpec {
        trajectory: Some(traj.to_string_lossy().into_owned()),
        trajectory_interval: 1,
        ..spec.clone()
    };
    run_simulation(&spec, None, quiet()).unwrap();
    std::fs::read(&traj).unwrap()
}

#[test]
fn identical_runs_write_identical_trajectories() {
    let dir = std::env::temp_dir().join("hibd_determinism_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (mode, tag) in [(Displacement::BlockKrylov, "block"), (Displacement::SplitEwald, "pse")] {
        let spec = SimSpec {
            particles: 12,
            steps: 5,
            lambda_rpy: 2,
            seed: 777,
            displacement: mode,
            report_interval: 0,
            ..Default::default()
        };
        let a = run_to_file(&spec, &dir, &format!("{tag}_a.xyz"));
        let b = run_to_file(&spec, &dir, &format!("{tag}_b.xyz"));
        assert!(!a.is_empty());
        assert_eq!(a, b, "{tag}: two identical runs diverged");

        // A different seed must actually change the trajectory.
        let other = SimSpec { seed: 778, ..spec };
        let c = run_to_file(&other, &dir, &format!("{tag}_c.xyz"));
        assert_ne!(a, c, "{tag}: seed had no effect");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI-level ensemble contract: replica `r` of an `R`-replica ensemble
/// writes byte-identical trajectory and checkpoint files to a standalone
/// `replicas = 1` run with seed `seed + r`, even though the ensemble
/// batches the drift FFTs of all replicas through shared plans.
#[test]
fn ensemble_replicas_match_sequential_runs_bitwise() {
    const R: usize = 3;
    let dir = std::env::temp_dir().join("hibd_ensemble_bitwise_test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = SimSpec {
        particles: 12,
        steps: 4,
        lambda_rpy: 2,
        seed: 900,
        replicas: R,
        trajectory: Some(dir.join("ens.xyz").to_string_lossy().into_owned()),
        trajectory_interval: 1,
        checkpoint: Some(dir.join("ens.hibd").to_string_lossy().into_owned()),
        checkpoint_interval: 2,
        report_interval: 0,
        ..Default::default()
    };
    run_ensemble(&spec, quiet()).unwrap();

    for r in 0..R {
        let solo = SimSpec {
            replicas: 1,
            seed: 900 + r as u64,
            trajectory: Some(dir.join(format!("solo{r}.xyz")).to_string_lossy().into_owned()),
            checkpoint: Some(dir.join(format!("solo{r}.hibd")).to_string_lossy().into_owned()),
            ..spec.clone()
        };
        run_simulation(&solo, None, quiet()).unwrap();
        let ens_traj = std::fs::read(dir.join(format!("ens.r{r}.xyz"))).unwrap();
        let solo_traj = std::fs::read(dir.join(format!("solo{r}.xyz"))).unwrap();
        assert!(!ens_traj.is_empty());
        assert_eq!(ens_traj, solo_traj, "replica {r} trajectory diverged from seed {}", 900 + r);
        let ens_ck = std::fs::read(dir.join(format!("ens.r{r}.hibd"))).unwrap();
        let solo_ck = std::fs::read(dir.join(format!("solo{r}.hibd"))).unwrap();
        assert_eq!(ens_ck, solo_ck, "replica {r} checkpoint diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}
