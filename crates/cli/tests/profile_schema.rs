//! End-to-end `--profile` schema check: run a small matrix-free simulation
//! with telemetry recording enabled, render the profile document, and
//! validate it the same way `xtask validate-profile` does.

use hibd_cli::config::SimSpec;
use hibd_cli::profile::{columns_applied, render_profile, validate_profile, SCHEMA};
use hibd_cli::runner::run_simulation;
use hibd_telemetry as telemetry;
use hibd_telemetry::json::Value;
use std::sync::Mutex;

/// The telemetry recorder is process-global; tests in this binary that
/// touch it serialize here.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn profile_of_a_quick_matrix_free_run_validates() {
    let _l = TELEMETRY_LOCK.lock().unwrap();
    telemetry::reset();
    telemetry::enable();
    let spec = SimSpec { particles: 25, steps: 3, report_interval: 0, ..Default::default() };
    let report = run_simulation(&spec, None, |_| {}).unwrap();
    let snap = telemetry::snapshot();
    telemetry::disable();

    let text = render_profile(&report, &snap);
    validate_profile(&text).unwrap();
    let v = telemetry::json::parse(&text).unwrap();
    assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));

    // The matrix-free run must surface every Section IV-D model phase.
    let phases = v.get("phases").expect("phases section");
    for ph in telemetry::MODEL_PHASES {
        let entry = phases.get(ph.name()).unwrap_or_else(|| panic!("missing phase {}", ph.name()));
        assert!(entry.get("count").and_then(Value::as_f64).unwrap() >= 1.0);
        assert_eq!(
            entry.get("hist").and_then(Value::as_array).unwrap().len(),
            telemetry::NUM_BUCKETS
        );
    }

    // Shape comes from the tuner; the report covers 6 phases + recip_total.
    let shape = v.get("shape").expect("shape section");
    assert_eq!(shape.get("n").and_then(Value::as_f64), Some(25.0));
    let rows =
        v.get("report").and_then(|r| r.get("rows")).and_then(Value::as_array).expect("report rows");
    assert_eq!(rows.len(), 7);
    for row in rows {
        assert!(row.get("measured_s").and_then(Value::as_f64).unwrap() >= 0.0);
        assert!(row.get("predicted_s").and_then(Value::as_f64).unwrap() >= 0.0);
    }

    // Workload counters recorded: FFTs in multiples of 3 transforms/column,
    // Lanczos made progress, and the PME scratch gauge is non-zero.
    assert!(columns_applied(&snap) >= 1.0);
    assert_eq!(snap.counter(telemetry::Counter::ForwardFfts) % 3, 0);
    assert!(snap.counter(telemetry::Counter::LanczosIterations) >= 1);
    assert!(snap.counter(telemetry::Counter::PmeScratchBytes) > 0);
}
