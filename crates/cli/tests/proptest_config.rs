//! Property: any valid SimSpec survives a serialize -> parse roundtrip.

use hibd_cli::config::{Algorithm, Displacement, FarFieldEval, SimSpec};
use hibd_core::system::Boundary;
use hibd_mathx::Vec3;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SimSpec> {
    (
        (1usize..3000, 0.01f64..0.5, 0.1f64..3.0, 0.1f64..5.0, any::<u64>()),
        (0u8..5, 1e-4f64..0.1, 0.0f64..4.0, 1usize..64),
        (1e-6f64..0.9, 1e-6f64..0.4, 1usize..5000, prop::bool::ANY),
        (
            prop::option::of((-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0)),
            0.0f64..3.0,
            prop::option::of("[a-z]{1,8}\\.xyz"),
            1usize..100,
        ),
        (
            prop::bool::ANY,
            prop::option::of(0.05f64..0.95),
            1usize..9,
            0u8..3,
            prop::option::of(0.5f64..7200.0),
        ),
    )
        .prop_map(
            |(
                (particles, volume_fraction, radius, viscosity, seed),
                (solver, dt, kbt, lambda_rpy),
                (e_k, e_p, steps, repulsion),
                (gravity, lj_epsilon, trajectory, interval),
                (open, theta, replicas, eval, deadline),
            )| {
                // solver 0 = dense, 1..=4 = matrix-free displacement modes.
                SimSpec {
                    particles,
                    volume_fraction,
                    radius,
                    viscosity,
                    seed,
                    algorithm: if solver == 0 && particles <= 5000 {
                        Algorithm::Dense
                    } else {
                        Algorithm::MatrixFree
                    },
                    displacement: match solver {
                        0 | 1 => Displacement::BlockKrylov,
                        2 => Displacement::SingleKrylov,
                        3 => Displacement::Chebyshev,
                        _ => Displacement::SplitEwald,
                    },
                    dt,
                    kbt,
                    lambda_rpy,
                    e_k,
                    e_p,
                    steps,
                    repulsion,
                    gravity: gravity.map(|(x, y, z)| Vec3::new(x, y, z)),
                    lj_epsilon,
                    trajectory,
                    trajectory_interval: interval,
                    report_interval: interval,
                    checkpoint: None,
                    checkpoint_interval: 0,
                    boundary: if open { Boundary::Open } else { Boundary::Periodic },
                    // theta/eval only tune the open-boundary operator;
                    // validate() rejects them for periodic specs.
                    theta: if open { theta } else { None },
                    eval: match (open, eval) {
                        (true, 1) => Some(FarFieldEval::Tree),
                        (true, 2) => Some(FarFieldEval::Fmm),
                        _ => None,
                    },
                    replicas,
                    deadline_seconds: deadline,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_preserves_spec(spec in spec_strategy()) {
        prop_assume!(spec.validate().is_ok());
        let text = spec.to_config_text();
        let parsed = SimSpec::parse(&text).unwrap();
        prop_assert_eq!(parsed.particles, spec.particles);
        prop_assert_eq!(parsed.algorithm, spec.algorithm);
        prop_assert_eq!(parsed.displacement, spec.displacement);
        prop_assert!((parsed.volume_fraction - spec.volume_fraction).abs() < 1e-15);
        prop_assert!((parsed.dt - spec.dt).abs() < 1e-18);
        prop_assert!((parsed.e_k - spec.e_k).abs() < 1e-18);
        prop_assert!((parsed.e_p - spec.e_p).abs() < 1e-18);
        prop_assert_eq!(parsed.lambda_rpy, spec.lambda_rpy);
        prop_assert_eq!(parsed.steps, spec.steps);
        prop_assert_eq!(parsed.repulsion, spec.repulsion);
        prop_assert_eq!(parsed.gravity.is_some(), spec.gravity.is_some());
        if let (Some(a), Some(b)) = (parsed.gravity, spec.gravity) {
            prop_assert!((a - b).norm() < 1e-12);
        }
        prop_assert_eq!(&parsed.trajectory, &spec.trajectory);
        prop_assert_eq!(parsed.seed, spec.seed);
        prop_assert_eq!(parsed.replicas, spec.replicas);
        prop_assert_eq!(parsed.boundary, spec.boundary);
        prop_assert_eq!(parsed.theta.is_some(), spec.theta.is_some());
        if let (Some(a), Some(b)) = (parsed.theta, spec.theta) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        prop_assert_eq!(parsed.eval, spec.eval);
    }
}
