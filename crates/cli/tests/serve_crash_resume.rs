//! Crash-resume for the `hibd serve` daemon, end to end through the real
//! binary: spool a job, SIGKILL the daemon mid-run (no graceful drain —
//! whatever was committed last is all that survives), restart it, and
//! assert the finished trajectory is byte-identical to an uninterrupted
//! standalone `hibd run` of the same config.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn hibd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hibd"))
}

fn temp_root() -> PathBuf {
    let dir = std::env::temp_dir().join("hibd_serve_crash_resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The job: long enough to reliably straddle the kill, small enough that
/// the uninterrupted reference run stays cheap.
fn job_config(trajectory: Option<&Path>) -> String {
    let mut text = String::from(
        "particles = 14\nvolume_fraction = 0.1\nseed = 7\nsteps = 400\nlambda_rpy = 2\n\
         trajectory_interval = 2\nreport_interval = 0\n",
    );
    if let Some(path) = trajectory {
        text.push_str(&format!("trajectory = {}\n", path.display()));
    }
    text
}

fn serve_config(root: &Path, exit_when_idle: bool) -> PathBuf {
    let path = root.join(if exit_when_idle { "serve_idle.conf" } else { "serve.conf" });
    std::fs::write(
        &path,
        format!(
            "spool = {}\noutput = {}\nworkers = 1\npoll_ms = 5\nstatus_ms = 20\n\
             exit_when_idle = {}\n",
            root.join("spool").display(),
            root.join("out").display(),
            if exit_when_idle { "on" } else { "off" }
        ),
    )
    .unwrap();
    path
}

/// Poll `status.json` until the job's step enters `[lo, hi]`.
fn wait_for_step(status: &Path, lo: f64, hi: f64, child: &mut Child) {
    let t0 = Instant::now();
    loop {
        assert!(t0.elapsed() < Duration::from_secs(120), "timed out waiting for step {lo}..{hi}");
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon exited early: {status}");
        }
        if let Ok(doc) = std::fs::read_to_string(status) {
            if let Some(step) = doc
                .split("\"long\": {")
                .nth(1)
                .and_then(|j| j.split("\"step\": ").nth(1))
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.trim().parse::<f64>().ok())
            {
                if (lo..=hi).contains(&step) {
                    return;
                }
                assert!(step <= hi, "polled too slowly: job already at step {step}");
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn killed_daemon_resumes_every_job_bitwise() {
    let root = temp_root();
    std::fs::create_dir_all(root.join("spool")).unwrap();
    std::fs::write(root.join("spool").join("long.conf"), job_config(None)).unwrap();

    // Uninterrupted reference trajectory via standalone `hibd run`.
    let ref_traj = root.join("ref.xyz");
    let run_conf = root.join("run.conf");
    std::fs::write(&run_conf, job_config(Some(&ref_traj))).unwrap();
    let out = hibd().arg("run").arg(&run_conf).output().unwrap();
    assert!(out.status.success(), "reference run failed: {}", String::from_utf8_lossy(&out.stderr));
    let reference = std::fs::read(&ref_traj).unwrap();

    // Start the daemon, let the job get properly mid-run, and SIGKILL it:
    // no drain, no final commit — a hard crash.
    let mut child = hibd()
        .arg("serve")
        .arg(serve_config(&root, false))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_for_step(&root.join("out").join("status.json"), 40.0, 260.0, &mut child);
    child.kill().unwrap();
    child.wait().unwrap();

    // Restart: the daemon resumes from the last committed checkpoint,
    // truncates the trajectory to the committed byte count, and finishes.
    let out = hibd().arg("serve").arg(serve_config(&root, true)).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "restart failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("resumed at step"), "expected a resume, not a restart:\n{stdout}");
    assert!(stdout.contains("1 done"), "{stdout}");

    let got = std::fs::read(root.join("out").join("long").join("trajectory.xyz")).unwrap();
    assert_eq!(got, reference, "crash-resumed trajectory diverged from the uninterrupted run");
    std::fs::remove_dir_all(&root).ok();
}
