//! Allocation regression for the PSE sampler steady state.
//!
//! After the first draw has grown the Gaussian/spectrum/mesh scratch,
//! repeated draws must cause no net heap growth: the wave path is strictly
//! reuse-only, and the near path's Lanczos transients (basis panels, QR)
//! must all be returned to the allocator.

use hibd_alloctrack::{exclusive, measure};
use hibd_krylov::KrylovConfig;
use hibd_mathx::Vec3;
use hibd_pme::PmeParams;
use hibd_pse::{PseSampler, PseSplit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

hibd_alloctrack::install!();

const TOL: isize = 16 * 1024;

fn suspension(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<Vec3> = Vec::with_capacity(n);
    while pos.len() < n {
        let c = Vec3::new(
            rng.gen_range(0.0..box_l),
            rng.gen_range(0.0..box_l),
            rng.gen_range(0.0..box_l),
        );
        if pos.iter().all(|p| (*p - c).min_image(box_l).norm() >= 2.0) {
            pos.push(c);
        }
    }
    pos
}

fn sampler(n: usize, box_l: f64, k: usize, seed: u64) -> PseSampler {
    let pme = PmeParams { box_l, mesh_dim: k, spline_order: 4, ..PmeParams::default() };
    let params = PseSplit::default().resolve(&pme);
    PseSampler::new(&suspension(n, box_l, seed), params).unwrap()
}

#[test]
fn wave_sampling_is_allocation_free_at_steady_state() {
    let _guard = exclusive();
    let n = 20;
    let s = 4;
    let mut smp = sampler(n, 12.0, 16, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = vec![0.0; 3 * n * s];
    smp.wave_sample_block(&mut rng, &mut out, s); // warm-up grows spec/mesh
    let (m, ()) = measure(|| {
        for _ in 0..5 {
            smp.wave_sample_block(&mut rng, &mut out, s);
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "5 warm wave draws leaked {} net bytes", m.net_bytes);
}

#[test]
fn full_sampling_has_no_monotone_heap_growth() {
    // The combined draw allocates transiently inside block Lanczos; the
    // invariant is that nothing persists from draw to draw.
    let _guard = exclusive();
    let n = 20;
    let s = 4;
    let mut smp = sampler(n, 12.0, 16, 7);
    let mut rng = StdRng::seed_from_u64(9);
    let mut out = vec![0.0; 3 * n * s];
    let kcfg = KrylovConfig { tol: 1e-3, max_iter: 60, check_interval: 1 };
    smp.sample_block(&mut rng, &mut out, s, &kcfg).unwrap(); // warm-up
    let mem = smp.memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..4 {
            smp.sample_block(&mut rng, &mut out, s, &kcfg).unwrap();
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "4 warm draws leaked {} net bytes", m.net_bytes);
    assert_eq!(smp.memory_bytes(), mem, "sampler scratch grew after warm-up");
}
