//! The PSE near-field operator `N = M_self + M_real(xi)`.
//!
//! The complement of the wave-space sum at the sampler's splitting
//! parameter: Beenakker's real-space tensor summed over periodic images out
//! to the tolerance-driven cutoff `r_max`, plus the Yamakawa overlap
//! correction for overlapping pairs and the `xi`-dependent self term. At the
//! small PSE `xi` the cutoff can exceed the box, so assembly has two paths:
//!
//! * `r_max < L/2` — only the minimum image of any pair can lie inside the
//!   cutoff, so a Verlet list delivers exactly the contributing pairs (the
//!   sparse production path for large boxes);
//! * `r_max >= L/2` — each pair (including `i = i`) sums a full shell of
//!   lattice images; blocks are dense-ish, which is fine for the small
//!   boxes where this triggers.
//!
//! Both paths produce one symmetric [`Bcsr3`]; the self coefficient stays a
//! scalar applied on the fly (it would only pad the diagonal blocks).

use hibd_cells::VerletList;
use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_rpy::RpyEwald;
use hibd_sparse::{Bcsr3, Bcsr3Builder};

/// Sparse SPD near-field mobility as a [`LinearOperator`] for (block)
/// Lanczos. Applies count no FFTs — that is the whole point of the split.
#[derive(Clone, Debug)]
pub struct NearFieldOperator {
    n: usize,
    mat: Bcsr3,
    self_coef: f64,
    /// Column applies served (one per `apply`, `s` per `apply_multi`).
    matvec_columns: usize,
}

impl NearFieldOperator {
    /// Assemble for a configuration; `ewald` must be the `kernel_only`
    /// split at the PSE `xi`.
    pub fn new(positions: &[Vec3], ewald: &RpyEwald, r_max: f64) -> NearFieldOperator {
        NearFieldOperator {
            n: positions.len(),
            mat: assemble(positions, ewald, r_max),
            self_coef: ewald.self_coefficient(),
            matvec_columns: 0,
        }
    }

    /// Re-assemble for new positions (operator refresh), keeping the
    /// cumulative matvec counter.
    pub fn rebuild(&mut self, positions: &[Vec3], ewald: &RpyEwald, r_max: f64) {
        self.n = positions.len();
        self.mat = assemble(positions, ewald, r_max);
        self.self_coef = ewald.self_coefficient();
    }

    /// The sparse off-diagonal-image part.
    pub fn matrix(&self) -> &Bcsr3 {
        &self.mat
    }

    /// Self-mobility coefficient added along the diagonal.
    pub fn self_coefficient(&self) -> f64 {
        self.self_coef
    }

    /// Column applies served so far.
    pub fn matvec_columns(&self) -> usize {
        self.matvec_columns
    }

    pub fn reset_counters(&mut self) {
        self.matvec_columns = 0;
    }

    /// Resident bytes of the sparse matrix.
    pub fn memory_bytes(&self) -> usize {
        self.mat.memory_bytes()
    }

    /// Dense `3n x 3n` materialization (tests only).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = self.mat.to_dense();
        let dim = 3 * self.n;
        for i in 0..dim {
            d[i * dim + i] += self.self_coef;
        }
        d
    }
}

impl LinearOperator for NearFieldOperator {
    fn dim(&self) -> usize {
        3 * self.n
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.mat.mul_vec(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += self.self_coef * xi;
        }
        self.matvec_columns += 1;
    }

    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        self.mat.mul_multi(x, y, s);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += self.self_coef * xi;
        }
        self.matvec_columns += s;
    }
}

/// Image-summed pair block for minimum-image displacement `mi`: every
/// lattice image within `r_max`, with the Yamakawa overlap correction
/// applied per image (it vanishes for `r >= 2a`). Returns `None` when no
/// image contributes.
fn image_summed_block(ewald: &RpyEwald, mi: Vec3, box_l: f64, r_max: f64) -> Option<[f64; 9]> {
    let nmax = (r_max / box_l + 0.5).ceil() as i64;
    let mut blk = [0.0f64; 9];
    let mut any = false;
    for lx in -nmax..=nmax {
        for ly in -nmax..=nmax {
            for lz in -nmax..=nmax {
                let rv = mi + Vec3::new(lx as f64, ly as f64, lz as f64) * box_l;
                let r = rv.norm();
                if r < 1e-12 || r > r_max {
                    continue;
                }
                any = true;
                for (acc, v) in blk.iter_mut().zip(&ewald.real_tensor_with_overlap(rv)) {
                    *acc += v;
                }
            }
        }
    }
    any.then_some(blk)
}

fn assemble(positions: &[Vec3], ewald: &RpyEwald, r_max: f64) -> Bcsr3 {
    let n = positions.len();
    let box_l = ewald.box_l;
    let mut b = Bcsr3Builder::new(n, n);
    if 2.0 * r_max < box_l {
        // Minimum image only: any further image of a pair is at least
        // `L - r_max > r_max` away, and self images at least `L`.
        let mut vl = VerletList::new(positions, box_l, r_max, 0.0);
        vl.for_each_pair(positions, |i, j, dr, _r2| {
            let blk = ewald.real_tensor_with_overlap(dr);
            // The RPY pair tensor is symmetric and even in `dr`, so the
            // (j, i) block is identical.
            b.push(i, j, blk);
            b.push(j, i, blk);
        });
    } else {
        for i in 0..n {
            for j in i..n {
                let mi = (positions[i] - positions[j]).min_image(box_l);
                if let Some(blk) = image_summed_block(ewald, mi, box_l, r_max) {
                    b.push(i, j, blk);
                    if j > i {
                        b.push(j, i, blk);
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_linalg::{sym_eig, DMat};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(0.0..box_l),
                    rng.gen_range(0.0..box_l),
                    rng.gen_range(0.0..box_l),
                )
            })
            .collect()
    }

    #[test]
    fn verlet_and_image_sum_paths_agree_below_half_box() {
        // With r_max < L/2 the image sum degenerates to the minimum image,
        // so both assembly paths must produce the same matrix.
        let box_l = 20.0;
        let pos = random_positions(24, box_l, 3);
        let ewald = RpyEwald::kernel_only(1.0, 1.0, box_l, 0.6);
        let r_max = 8.0;
        let sparse = assemble(&pos, &ewald, r_max).to_dense();
        // Force the image path by assembling as if the box were smaller
        // than 2 r_max, using a manual all-pairs loop with the real box.
        let n = pos.len();
        let mut b = Bcsr3Builder::new(n, n);
        for i in 0..n {
            for j in i..n {
                let mi = (pos[i] - pos[j]).min_image(box_l);
                if let Some(blk) = image_summed_block(&ewald, mi, box_l, r_max) {
                    b.push(i, j, blk);
                    if j > i {
                        b.push(j, i, blk);
                    }
                }
            }
        }
        let dense = b.build().to_dense();
        assert_eq!(sparse.len(), dense.len());
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
    }

    /// Sequential insertion with a minimum pair distance of `2a = 2`.
    fn random_suspension(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<Vec3> = Vec::with_capacity(n);
        while pos.len() < n {
            let c = Vec3::new(
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
            );
            if pos.iter().all(|p| (*p - c).min_image(box_l).norm() >= 2.0) {
                pos.push(c);
            }
        }
        pos
    }

    #[test]
    fn near_field_is_spd_at_the_default_split() {
        // Dense phi ~ 0.2 box small enough that the cutoff wraps images;
        // xi at the production SPD cap.
        let box_l = 6.5;
        let pos = random_suspension(12, box_l, 7);
        let xi = crate::XI_BOX_CAP / box_l;
        let ewald = RpyEwald::kernel_only(1.0, 1.0, box_l, xi);
        let r_max = (1.0f64 / 1e-6).ln().sqrt() * 1.5 / xi;
        let op = NearFieldOperator::new(&pos, &ewald, r_max);
        let dim = 3 * pos.len();
        let d = op.to_dense();
        let mut m = DMat::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                m[(i, j)] = d[i * dim + j];
            }
        }
        // Symmetric by construction.
        for i in 0..dim {
            for j in 0..dim {
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-13);
            }
        }
        let (w, _) = sym_eig(&m);
        let min = w.iter().copied().fold(f64::MAX, f64::min);
        assert!(min > 0.0, "near field not SPD: min eigenvalue {min}");
    }

    #[test]
    fn apply_adds_self_term_and_counts_columns() {
        let box_l = 12.0;
        let pos = random_positions(8, box_l, 11);
        let ewald = RpyEwald::kernel_only(1.0, 1.0, box_l, 0.5);
        let mut op = NearFieldOperator::new(&pos, &ewald, 5.0);
        let dim = op.dim();
        let x: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; dim];
        op.apply(&x, &mut y);
        let mut y_mat = vec![0.0; dim];
        op.matrix().mul_vec(&x, &mut y_mat);
        for i in 0..dim {
            assert!((y[i] - y_mat[i] - op.self_coefficient() * x[i]).abs() < 1e-14);
        }
        // apply_multi with s columns matches per-column apply and counts s.
        let s = 3;
        let mut xm = vec![0.0; dim * s];
        for i in 0..dim {
            for c in 0..s {
                xm[i * s + c] = x[i] * (c + 1) as f64;
            }
        }
        let mut ym = vec![0.0; dim * s];
        op.apply_multi(&xm, &mut ym, s);
        for i in 0..dim {
            for c in 0..s {
                assert!((ym[i * s + c] - y[i] * (c + 1) as f64).abs() < 1e-12);
            }
        }
        assert_eq!(op.matvec_columns(), 1 + s);
        op.reset_counters();
        assert_eq!(op.matvec_columns(), 0);
        assert!(op.memory_bytes() > 0);
    }
}
