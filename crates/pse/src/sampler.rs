//! The combined PSE sampler: near-field block Lanczos + exact wave-space
//! square root.
//!
//! **Wave part.** Under the repo's unnormalized FFT convention
//! (`ifft(fft(x)) = n x`), the PME reciprocal operator is the matrix
//! `A = P W̄ D W Pᵀ` with `W` the (symmetric) forward DFT, `W̄` the inverse,
//! `W̄ W = K³ I`, and `D = diag(s(k) (I - k̂k̂ᵀ))`. Filling the half
//! spectrum with Hermitian-symmetric unit complex Gaussians `ξ`
//! (`E[ξ(k) ξ(k)^*] = 1`, `ξ(-k) = ξ(k)^*`), scaling by `D^{1/2}`
//! ([`Influence::apply_sqrt_multi`]), running **one** unnormalized inverse
//! FFT and interpolating gives `u = P W̄ D^{1/2} ξ` with
//!
//! `Cov(u) = P W̄ D^{1/2} E[ξ ξ^H] D^{1/2} W̄^H Pᵀ = P W̄ D W Pᵀ = A`
//!
//! exactly — no `K³` normalization factor appears, because the sampler runs
//! one inverse transform where the apply runs a forward/inverse round trip.
//! Zero FFT forward passes, zero iterations.
//!
//! **Near part.** Block Lanczos on the sparse [`NearFieldOperator`] — whose
//! matvec is an SpMM, not an FFT — converges in a handful of iterations
//! because the near field is well conditioned at the small PSE `xi`.
//!
//! The near sample is written first (overwrite), the wave sample
//! accumulates on top via [`interpolate_multi`] — the same
//! overwrite-then-accumulate convention as the PME apply pipeline.

use crate::nearfield::NearFieldOperator;
use crate::PseParams;
use hibd_fft::{Complex64, Fft3};
use hibd_hot as hibd;
use hibd_krylov::{block_lanczos_sqrt, KrylovConfig, KrylovError, KrylovStats};
use hibd_mathx::{fill_standard_normal, standard_normal, Vec3};
use hibd_pme::influence::Influence;
use hibd_pme::pmat::{build_interp_matrix, InterpMatrix};
use hibd_pme::spread::interpolate_multi;
use hibd_rpy::RpyEwald;
use rand::rngs::StdRng;
use std::f64::consts::FRAC_1_SQRT_2;

/// Columns per batched wave pass (bounds the mesh/spectrum scratch exactly
/// like the PME operator's column chunks).
pub const WAVE_CHUNK: usize = 8;

/// Errors from sampler construction or drawing.
#[derive(Debug)]
pub enum PseError {
    /// FFT plan or parameter validation failure.
    Setup(String),
    /// The near-field Lanczos failed — `NotPositiveSemidefinite` means the
    /// split `xi` is too large (or the cutoff too small) for this
    /// configuration; lower `xi` or raise the cutoff.
    Krylov(KrylovError),
}

impl std::fmt::Display for PseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PseError::Setup(s) => write!(f, "PSE setup: {s}"),
            PseError::Krylov(e) => write!(f, "PSE near-field Lanczos: {e}"),
        }
    }
}

impl std::error::Error for PseError {}

impl From<KrylovError> for PseError {
    fn from(e: KrylovError) -> Self {
        PseError::Krylov(e)
    }
}

/// Positively-split Ewald Brownian displacement sampler.
///
/// Draws blocks `G` (row-major `[3n][s]`, the repo's multi-RHS layout) with
/// `Cov(G columns) = N + A ≈ M` — near field plus clamped wave field at the
/// PSE split. Steady-state draws are allocation-free: all mesh, spectrum
/// and Gaussian scratch is grown by `resize` and never shrunk, and
/// [`memory_bytes`](Self::memory_bytes) accounts it.
pub struct PseSampler {
    params: PseParams,
    n: usize,
    ewald: RpyEwald,
    fft: Fft3,
    pm: InterpMatrix,
    inf: Influence,
    clipped: f64,
    near: NearFieldOperator,
    /// Wave scratch: up to `3 * WAVE_CHUNK` half spectra / meshes.
    spec: Vec<Complex64>,
    mesh: Vec<f64>,
    /// Near-field Gaussian block scratch.
    z_near: Vec<f64>,
    /// Single-mesh inverse-FFT executions performed (3 per wave column).
    mesh_transforms: usize,
}

impl PseSampler {
    pub fn new(positions: &[Vec3], params: PseParams) -> Result<PseSampler, PseError> {
        if positions.is_empty() {
            return Err(PseError::Setup("no particles".into()));
        }
        if !(params.xi > 0.0 && params.r_max > 0.0 && params.box_l > 0.0) {
            return Err(PseError::Setup(format!(
                "xi {}, r_max {}, box {} must be positive",
                params.xi, params.r_max, params.box_l
            )));
        }
        let k = params.mesh_dim;
        let fft = Fft3::new([k, k, k]).map_err(|e| PseError::Setup(e.to_string()))?;
        let ewald = RpyEwald::kernel_only(params.a, params.eta, params.box_l, params.xi);
        let pm = build_interp_matrix(positions, params.box_l, k, params.spline_order);
        let mut inf = Influence::new(&ewald, k, params.spline_order);
        let clipped = inf.clamp_nonnegative();
        let near = NearFieldOperator::new(positions, &ewald, params.r_max);
        Ok(PseSampler {
            params,
            n: positions.len(),
            ewald,
            fft,
            pm,
            inf,
            clipped,
            near,
            spec: Vec::new(),
            mesh: Vec::new(),
            z_near: Vec::new(),
            mesh_transforms: 0,
        })
    }

    /// Refresh for new positions (operator-window refresh in the BD
    /// driver). The influence table, FFT plan and wave scratch depend only
    /// on the parameters and are reused; the interpolation matrix and the
    /// near-field sparse matrix are rebuilt.
    pub fn rebuild(&mut self, positions: &[Vec3]) -> Result<(), PseError> {
        if positions.len() != self.n {
            return Err(PseError::Setup(format!(
                "rebuild with {} particles, sampler built for {}",
                positions.len(),
                self.n
            )));
        }
        self.pm = build_interp_matrix(
            positions,
            self.params.box_l,
            self.params.mesh_dim,
            self.params.spline_order,
        );
        self.near.rebuild(positions, &self.ewald, self.params.r_max);
        Ok(())
    }

    pub fn params(&self) -> &PseParams {
        &self.params
    }

    /// Fraction of wave spectral mass clipped by the nonnegativity clamp.
    pub fn clipped_fraction(&self) -> f64 {
        self.clipped
    }

    pub fn near_field(&self) -> &NearFieldOperator {
        &self.near
    }

    /// Single-mesh inverse-FFT executions so far (the sampler never runs a
    /// forward transform).
    pub fn mesh_transforms(&self) -> usize {
        self.mesh_transforms
    }

    /// Near-field matvec columns so far.
    pub fn near_matvec_columns(&self) -> usize {
        self.near.matvec_columns()
    }

    pub fn reset_counters(&mut self) {
        self.mesh_transforms = 0;
        self.near.reset_counters();
    }

    /// Resident bytes: interpolation matrix, influence table, near-field
    /// matrix, and all draw scratch.
    pub fn memory_bytes(&self) -> usize {
        self.pm.mat.memory_bytes()
            + self.inf.memory_bytes()
            + self.near.memory_bytes()
            + self.spec.len() * 16
            + self.mesh.len() * 8
            + self.z_near.len() * 8
    }

    /// Draw one block `G` of `s` displacement samples into `out` (row-major
    /// `[3n][s]`, overwritten): near-field Lanczos sample plus wave-space
    /// sample. Returns the near-field Lanczos stats; the wave part is exact
    /// and iteration-free. Gaussian consumption order is fixed (near block
    /// first, then wave spectra in column chunks), so a seeded `rng` makes
    /// the draw fully deterministic.
    pub fn sample_block(
        &mut self,
        rng: &mut StdRng,
        out: &mut [f64],
        s: usize,
        kcfg: &KrylovConfig,
    ) -> Result<KrylovStats, PseError> {
        let n3 = 3 * self.n;
        assert_eq!(out.len(), n3 * s, "output must be [3n][s]");
        assert!(s > 0);
        if self.z_near.len() < n3 * s {
            self.z_near.resize(n3 * s, 0.0);
        }
        fill_standard_normal(rng, &mut self.z_near[..n3 * s]);
        let (g, stats) = block_lanczos_sqrt(&mut self.near, &self.z_near[..n3 * s], s, kcfg)?;
        out.copy_from_slice(&g);
        self.wave_sample_block(rng, out, s);
        Ok(stats)
    }

    /// Accumulate a wave-space sample block into `out` (row-major
    /// `[3n][s]`): Hermitian Gaussian spectrum → `I(k)^{1/2}` → one inverse
    /// batch FFT → B-spline interpolation. Public for the ablation harness
    /// and the covariance tests.
    #[hibd::hot]
    pub fn wave_sample_block(&mut self, rng: &mut StdRng, out: &mut [f64], s: usize) {
        let k = self.params.mesh_dim;
        let nc = k / 2 + 1;
        let k3 = k * k * k;
        let s_len = self.fft.spectrum_len();
        let cap = s.min(WAVE_CHUNK);
        if self.spec.len() < 3 * cap * s_len {
            self.spec.resize(3 * cap * s_len, Complex64::ZERO);
        }
        if self.mesh.len() < 3 * cap * k3 {
            self.mesh.resize(3 * cap * k3, 0.0);
        }
        let mut col0 = 0;
        while col0 < s {
            let width = (s - col0).min(WAVE_CHUNK);
            let spec = &mut self.spec[..3 * width * s_len];
            for q in 0..3 * width {
                fill_hermitian_gaussian(rng, &mut spec[q * s_len..(q + 1) * s_len], k, nc);
            }
            self.inf.apply_sqrt_multi(spec, width);
            let mesh = &mut self.mesh[..3 * width * k3];
            self.fft.inverse_batch(spec, mesh, 3 * width);
            self.mesh_transforms += 3 * width;
            interpolate_multi(&self.pm, mesh, s, col0, width, out);
            col0 += width;
        }
    }
}

/// Fill one half spectrum (`K x K x (K/2+1)`) with a Hermitian-symmetric
/// complex Gaussian field of unit variance: the inverse c2r transform of
/// the result is a real mesh whose full-spectrum coefficients satisfy
/// `E[h(k) h(k)^*] = 1` and `h(-k) = h(k)^*`.
///
/// * interior `k2` (conjugate partner not stored): free complex Gaussian,
///   `Re, Im ~ N(0, 1/2)`;
/// * boundary planes (`k2 = 0` or `2 k2 = K`), partnered point
///   `(-k0, -k1) mod K` distinct: one of the pair free, the other its
///   conjugate (row-major iteration visits the lexicographically smaller
///   partner first);
/// * self-conjugate points: real `N(0, 1)`.
#[hibd::hot]
fn fill_hermitian_gaussian(rng: &mut StdRng, spec: &mut [Complex64], k: usize, nc: usize) {
    debug_assert_eq!(spec.len(), k * k * nc);
    for k0 in 0..k {
        for k1 in 0..k {
            for k2 in 0..nc {
                let idx = (k0 * k + k1) * nc + k2;
                if k2 != 0 && 2 * k2 != k {
                    spec[idx] = Complex64::new(
                        standard_normal(rng) * FRAC_1_SQRT_2,
                        standard_normal(rng) * FRAC_1_SQRT_2,
                    );
                    continue;
                }
                let p0 = (k - k0) % k;
                let p1 = (k - k1) % k;
                if (p0, p1) == (k0, k1) {
                    spec[idx] = Complex64::new(standard_normal(rng), 0.0);
                } else if (p0, p1) < (k0, k1) {
                    spec[idx] = spec[(p0 * k + p1) * nc + k2].conj();
                } else {
                    spec[idx] = Complex64::new(
                        standard_normal(rng) * FRAC_1_SQRT_2,
                        standard_normal(rng) * FRAC_1_SQRT_2,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PseSplit;
    use hibd_pme::spread::SpreadPlan;
    use hibd_pme::PmeParams;
    use rand::{Rng, SeedableRng};

    fn suspension(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<Vec3> = Vec::with_capacity(n);
        while pos.len() < n {
            let c = Vec3::new(
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
            );
            if pos.iter().all(|p| (*p - c).min_image(box_l).norm() >= 2.0) {
                pos.push(c);
            }
        }
        pos
    }

    fn small_sampler(n: usize, box_l: f64, k: usize, seed: u64) -> (Vec<Vec3>, PseSampler) {
        let pos = suspension(n, box_l, seed);
        let pme = PmeParams { box_l, mesh_dim: k, spline_order: 4, ..PmeParams::default() };
        let params = PseSplit::default().resolve(&pme);
        let sampler = PseSampler::new(&pos, params).unwrap();
        (pos, sampler)
    }

    #[test]
    fn hermitian_fill_makes_real_meshes() {
        // c2r inverse of a properly Hermitian spectrum is exact; verify via
        // forward-inverse round trip: inverse then forward must reproduce
        // K^3 times the spectrum only if the field was consistent. Cheaper
        // and direct: inverse transform, then check against a brute-force
        // full-spectrum sum at a few mesh points.
        let k = 6;
        let nc = k / 2 + 1;
        let fft = Fft3::new([k, k, k]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut spec = vec![Complex64::ZERO; fft.spectrum_len()];
        fill_hermitian_gaussian(&mut rng, &mut spec, k, nc);
        let saved = spec.clone();
        let mut mesh = vec![0.0; k * k * k];
        fft.inverse(&mut spec, &mut mesh);
        // Forward again: must give K^3 * original spectrum (this fails if
        // the boundary planes are not exactly conjugate-symmetric, because
        // the c2r transform would have silently projected them).
        let mut spec2 = vec![Complex64::ZERO; fft.spectrum_len()];
        fft.forward(&mesh, &mut spec2);
        let k3 = (k * k * k) as f64;
        for (a, b) in spec2.iter().zip(&saved) {
            assert!((*a - b.scale(k3)).abs() < 1e-10, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn hermitian_fill_has_unit_variance_per_mode() {
        let k = 4;
        let nc = k / 2 + 1;
        let mut rng = StdRng::seed_from_u64(1);
        let rounds = 20000;
        let mut sum2 = vec![0.0f64; k * k * nc];
        let mut spec = vec![Complex64::ZERO; k * k * nc];
        for _ in 0..rounds {
            fill_hermitian_gaussian(&mut rng, &mut spec, k, nc);
            for (s, v) in sum2.iter_mut().zip(&spec) {
                *s += v.norm2();
            }
        }
        for (idx, s) in sum2.iter().enumerate() {
            let var = s / rounds as f64;
            assert!((var - 1.0).abs() < 0.06, "mode {idx}: E|h|^2 = {var}");
        }
    }

    #[test]
    fn wave_sample_covariance_matches_recip_operator() {
        // Monte-Carlo covariance of the wave sampler against the exact
        // reciprocal-operator matrix built from the *same* P, FFT and
        // clamped influence (spread -> forward -> I(k) -> inverse ->
        // interpolate), column by column.
        let (pos, mut sampler) = small_sampler(4, 4.4, 8, 5);
        let n3 = 3 * pos.len();
        let k = sampler.params.mesh_dim;
        let k3 = k * k * k;
        let plan = SpreadPlan::new(&sampler.pm.scaled, k, sampler.params.spline_order);
        let mut a = vec![0.0; n3 * n3]; // column-major columns of A
        let mut e = vec![0.0; n3];
        let mut mesh = vec![0.0; 3 * k3];
        let mut spec = vec![Complex64::ZERO; 3 * sampler.fft.spectrum_len()];
        for j in 0..n3 {
            e.fill(0.0);
            e[j] = 1.0;
            plan.spread(&sampler.pm, &e, &mut mesh);
            sampler.fft.forward_batch(&mesh, &mut spec, 3);
            sampler.inf.apply(&mut spec);
            sampler.fft.inverse_batch(&mut spec, &mut mesh, 3);
            let mut col = vec![0.0; n3];
            hibd_pme::spread::interpolate(&sampler.pm, &mesh, &mut col);
            a[j * n3..(j + 1) * n3].copy_from_slice(&col);
        }

        let mut rng = StdRng::seed_from_u64(9);
        let s = 8;
        let rounds = 2500; // 20k samples
        let mut cov = vec![0.0; n3 * n3];
        let mut out = vec![0.0; n3 * s];
        for _ in 0..rounds {
            out.fill(0.0);
            sampler.wave_sample_block(&mut rng, &mut out, s);
            for col in 0..s {
                for i in 0..n3 {
                    for j in 0..n3 {
                        cov[i * n3 + j] += out[i * s + col] * out[j * s + col];
                    }
                }
            }
        }
        let samples = (rounds * s) as f64;
        let mut diff2 = 0.0;
        let mut norm2 = 0.0;
        for i in 0..n3 {
            for j in 0..n3 {
                let c = cov[i * n3 + j] / samples;
                let want = a[j * n3 + i];
                diff2 += (c - want).powi(2);
                norm2 += want.powi(2);
            }
        }
        let rel = (diff2 / norm2).sqrt();
        assert!(rel < 0.1, "wave covariance mismatch {rel}");
    }

    #[test]
    fn sample_block_is_deterministic_for_a_seed() {
        let (_, mut sampler) = small_sampler(6, 6.5, 8, 2);
        let n3 = 18;
        let s = 4;
        let kcfg = KrylovConfig::default();
        let draw = |sampler: &mut PseSampler| {
            let mut rng = StdRng::seed_from_u64(77);
            let mut out = vec![0.0; n3 * s];
            sampler.sample_block(&mut rng, &mut out, s, &kcfg).unwrap();
            out
        };
        let a = draw(&mut sampler);
        let b = draw(&mut sampler);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_sample_blocks_do_not_grow_memory() {
        let (pos, mut sampler) = small_sampler(6, 6.5, 8, 3);
        let n3 = 3 * pos.len();
        let s = 4;
        let fresh = sampler.memory_bytes();
        let kcfg = KrylovConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = vec![0.0; n3 * s];
        sampler.sample_block(&mut rng, &mut out, s, &kcfg).unwrap();
        let after_first = sampler.memory_bytes();
        // First draw grows exactly the documented scratch: 3s half spectra,
        // 3s meshes, and the 3n*s Gaussian block (s <= WAVE_CHUNK here).
        let k = sampler.params.mesh_dim;
        let expected = 3 * s * sampler.fft.spectrum_len() * 16 + 3 * s * k * k * k * 8 + n3 * s * 8;
        assert_eq!(after_first, fresh + expected);
        for _ in 0..5 {
            sampler.sample_block(&mut rng, &mut out, s, &kcfg).unwrap();
            assert_eq!(sampler.memory_bytes(), after_first);
        }
        // Rebuild keeps the scratch (no shrink) and stays drawable.
        sampler.rebuild(&pos).unwrap();
        sampler.sample_block(&mut rng, &mut out, s, &kcfg).unwrap();
        assert_eq!(sampler.memory_bytes(), after_first);
    }

    #[test]
    fn counters_track_transforms_and_matvecs() {
        let (pos, mut sampler) = small_sampler(6, 6.5, 8, 6);
        let n3 = 3 * pos.len();
        let s = 4;
        let kcfg = KrylovConfig::default();
        let mut rng = StdRng::seed_from_u64(8);
        let mut out = vec![0.0; n3 * s];
        let stats = sampler.sample_block(&mut rng, &mut out, s, &kcfg).unwrap();
        // Wave: exactly 3 inverse transforms per column, no forwards.
        assert_eq!(sampler.mesh_transforms(), 3 * s);
        // Near: one block apply per Lanczos iteration, s columns each.
        assert_eq!(sampler.near_matvec_columns(), stats.iterations * s);
        sampler.reset_counters();
        assert_eq!(sampler.mesh_transforms(), 0);
        assert_eq!(sampler.near_matvec_columns(), 0);
    }
}
