//! `hibd-pse`: a positively-split Ewald (PSE) Brownian displacement sampler.
//!
//! The paper's Algorithm 2 draws `g = M^{1/2} z` with block Lanczos, paying
//! one full PME apply (six batched FFT passes per column block) per Krylov
//! iteration. Fiore, Balboa Usabiaga, Donev & Swan ("Rapid sampling of
//! stochastic displacements in Brownian dynamics simulations", J. Chem.
//! Phys. 146, 124116 (2017)) observed that the Ewald split itself hands us
//! the square root: in the wave-space sum the RPY operator is *diagonal* in
//! `k` with tensor `I(k) = s(k) (I - k̂k̂ᵀ)`, so `I(k)^{1/2} = s(k)^{1/2}
//! (I - k̂k̂ᵀ)` is exact and sampling costs a single inverse-FFT pass —
//! no forward transforms, no iteration. Krylov iteration survives only on
//! the short-ranged *real-space* part, which is a sparse matrix whose
//! matvecs cost no FFTs at all.
//!
//! Two Beenakker-specific wrinkles (established numerically; see DESIGN.md
//! Sec. 4) shape the implementation:
//!
//! * **Positivity.** Beenakker's reciprocal kernel truncates a square at
//!   `O(k^2)`, so `s(k) < 0` beyond `|k| = sqrt(3)/a`. The sampler runs the
//!   split at its own small `xi` (default `0.25/a`, far below the PME-tuned
//!   `alpha`), where the negative tail carries ~1e-5 of the spectral mass,
//!   and clamps it to zero ([`hibd_pme::influence::Influence::clamp_nonnegative`]).
//! * **SPD near field.** The complementary real-space operator `N = M - W`
//!   is only positive definite while the wave part is small, and the
//!   ceiling is *box-coupled*: dense eigenvalue scans put the break at
//!   `xi L ~ 1.9` across sizes and volume fractions, so the resolved `xi`
//!   is capped at [`XI_BOX_CAP`]` / L` (the price of Beenakker's split not
//!   being positively split — the near field stays dense-ish in small
//!   boxes). An image-summed assembly with a tolerance-driven cutoff keeps
//!   the truncation exact to `~1e-6`;
//!   [`hibd_krylov::KrylovError::NotPositiveSemidefinite`] is the runtime
//!   backstop.
//!
//! [`PseSampler`] packages both halves: near-field block Lanczos writes the
//! output, the wave sampler accumulates on top (mirroring the overwrite +
//! accumulate convention of the PME apply pipeline).

pub mod nearfield;
pub mod sampler;

pub use nearfield::NearFieldOperator;
pub use sampler::{PseError, PseSampler};

use hibd_pme::PmeParams;

/// Default PSE splitting parameter in units of `1/a`: small enough that the
/// clipped wave mass is ~1e-5. [`XI_BOX_CAP`] may lower it further.
pub const DEFAULT_XI_A: f64 = 0.25;

/// SPD ceiling on the *dimensionless* product `xi * L`. Beenakker's split
/// (unlike the Hasimoto split of Fiore et al.) is not positively split: the
/// real-space complement loses positive definiteness once the wave sum
/// grows past the first few lattice modes. Dense eigenvalue scans over
/// suspensions (`n = 15..300`, `phi = 0.05..0.2`, `L = 8.6..20.3`) put the
/// break consistently at `xi L ~ 1.9`; capping at 1.5 keeps the measured
/// minimum eigenvalue of `N` above `+8e-3 ~ 0.16 mu0` on every probed
/// configuration (see DESIGN.md Sec. 4).
pub const XI_BOX_CAP: f64 = 1.5;

/// SPD guard for an explicitly chosen near-field cutoff: require
/// `xi * r_max >= XI_RMAX_GUARD` so the truncated real-space sum stays a
/// small perturbation (`erfc(2.6) ~ 2e-4`).
pub const XI_RMAX_GUARD: f64 = 2.6;

/// User-facing knobs of the PSE split (all optional; defaults follow the
/// numerically validated regime).
#[derive(Clone, Copy, Debug)]
pub struct PseSplit {
    /// Splitting parameter; `None` selects [`DEFAULT_XI_A`]` / a`.
    pub xi: Option<f64>,
    /// Near-field cutoff; `None` derives it from `real_tol` as
    /// `sqrt(ln(1/tol)) * 1.5 / xi` (the same rule as `RpyEwald::new`).
    pub r_max: Option<f64>,
    /// Hard lower bound on the effective `xi`, in units of `1/a`. Guards
    /// both SPD-ness of the truncated near field and the assembly cost
    /// (`r_max ~ 1/xi` controls the image-sum volume).
    pub xi_floor: f64,
    /// Real-space truncation tolerance used when `r_max` is derived.
    pub real_tol: f64,
}

impl Default for PseSplit {
    fn default() -> Self {
        PseSplit { xi: None, r_max: None, xi_floor: 0.15, real_tol: 1e-6 }
    }
}

/// Fully resolved sampler parameters (analogous to [`PmeParams`] for the
/// PME operator).
#[derive(Clone, Copy, Debug)]
pub struct PseParams {
    /// Particle radius.
    pub a: f64,
    /// Solvent viscosity.
    pub eta: f64,
    /// Periodic box edge.
    pub box_l: f64,
    /// PSE splitting parameter (not the PME `alpha`).
    pub xi: f64,
    /// Near-field image cutoff.
    pub r_max: f64,
    /// Mesh dimension `K` (shared with the PME drift operator).
    pub mesh_dim: usize,
    /// B-spline interpolation order `p`.
    pub spline_order: usize,
}

impl PseSplit {
    /// Resolve against the PME parameters in effect: the sampler shares the
    /// mesh and spline order with the drift operator (its much softer
    /// kernel is trivially resolved on a mesh tuned for `alpha`), but runs
    /// its own splitting parameter and cutoff.
    pub fn resolve(&self, pme: &PmeParams) -> PseParams {
        let a = pme.a;
        let mut xi = self.xi.unwrap_or(DEFAULT_XI_A / a).max(self.xi_floor / a);
        // SPD cap: the near field goes indefinite past `xi L ~ 1.9`
        // regardless of the floor (correctness beats assembly cost).
        xi = xi.min(XI_BOX_CAP / pme.box_l);
        if let Some(r_max) = self.r_max {
            // SPD guard: never let an explicit cutoff truncate an
            // un-decayed real-space sum (may exceed the box cap; a user
            // forcing a short cutoff accepts the runtime
            // `NotPositiveSemidefinite` backstop).
            xi = xi.max(XI_RMAX_GUARD / r_max);
        }
        let r_max = self.r_max.unwrap_or_else(|| (1.0 / self.real_tol).ln().sqrt() * 1.5 / xi);
        PseParams {
            a,
            eta: pme.eta,
            box_l: pme.box_l,
            xi,
            r_max,
            mesh_dim: pme.mesh_dim,
            spline_order: pme.spline_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_uses_defaults_floor_and_box_cap() {
        // Small box: the a-scale default survives the box cap.
        let small = PmeParams { box_l: 5.0, ..PmeParams::default() };
        let p = PseSplit::default().resolve(&small);
        assert_eq!(p.xi, DEFAULT_XI_A / small.a);
        assert!((p.r_max - (1e6f64).ln().sqrt() * 1.5 / p.xi).abs() < 1e-12);
        assert_eq!(p.mesh_dim, small.mesh_dim);

        // Default 10^3 box: the SPD cap xi <= 1.5 / L bites.
        let pme = PmeParams::default();
        let capped = PseSplit::default().resolve(&pme);
        assert_eq!(capped.xi, XI_BOX_CAP / pme.box_l);

        let floored = PseSplit { xi: Some(0.01), ..Default::default() }.resolve(&small);
        assert_eq!(floored.xi, 0.15 / small.a);
    }

    #[test]
    fn explicit_cutoff_raises_xi_to_the_guard() {
        let pme = PmeParams::default();
        let p = PseSplit { r_max: Some(4.0), ..Default::default() }.resolve(&pme);
        assert_eq!(p.r_max, 4.0);
        assert!(p.xi >= XI_RMAX_GUARD / 4.0 - 1e-15);
    }
}
