//! Property-based tests of the RPY tensor and its Ewald split.

use hibd_mathx::Vec3;
use hibd_rpy::ewald::RpyEwald;
use hibd_rpy::tensor::{rpy_pair_scalars, rpy_pair_tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rpy_tensor_is_symmetric_psd_2x2(
        (x, y, z) in (0.1f64..8.0, -8.0f64..8.0, -8.0f64..8.0)
    ) {
        let dr = Vec3::new(x, y, z);
        let t = rpy_pair_tensor(dr, 1.0, 1.0);
        // Symmetry of the 3x3 block.
        prop_assert!((t[1] - t[3]).abs() < 1e-15);
        prop_assert!((t[2] - t[6]).abs() < 1e-15);
        prop_assert!((t[5] - t[7]).abs() < 1e-15);
        // The 2-particle mobility [[mu0 I, T],[T, mu0 I]] is PSD iff the
        // pair coupling satisfies |eigenvalues of T| <= mu0, i.e. the RPY
        // scalars obey |fI + frr| <= 1 and |fI| <= 1.
        let r = dr.norm();
        let (fi, frr) = rpy_pair_scalars(r, 1.0);
        prop_assert!(fi.abs() <= 1.0 + 1e-12);
        prop_assert!((fi + frr).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn rpy_scalars_decay_monotonically_beyond_contact(r in 2.0f64..20.0) {
        let (fi1, _) = rpy_pair_scalars(r, 1.0);
        let (fi2, _) = rpy_pair_scalars(r + 0.5, 1.0);
        prop_assert!(fi2 < fi1, "fI must decay: {} !< {}", fi2, fi1);
        prop_assert!(fi1 > 0.0);
    }

    #[test]
    fn ewald_real_kernel_bounded_by_free_space(
        (xi, r) in (0.3f64..1.5, 2.0f64..6.0)
    ) {
        // Screening can only reduce the far-field kernel magnitude.
        let s = RpyEwald::kernel_only(1.0, 1.0, 20.0, xi);
        let (fi_e, _) = s.real_scalars(r);
        let (fi_0, _) = rpy_pair_scalars(r, 1.0);
        prop_assert!(fi_e.abs() <= fi_0.abs() * 1.5 + 1e-6);
        // And must vanish rapidly at large xi*r.
        let (fi_far, frr_far) = s.real_scalars(8.0 / xi);
        prop_assert!(fi_far.abs() < 1e-10);
        prop_assert!(frr_far.abs() < 1e-10);
    }

    #[test]
    fn recip_kernel_positive_at_long_wavelengths(xi in 0.3f64..2.0) {
        let s = RpyEwald::kernel_only(1.0, 1.0, 20.0, xi);
        // For k below 1/a the RPY reciprocal kernel is positive (the
        // negative lobe only exists past k ~ sqrt(3)/a).
        for i in 1..10 {
            let k = 0.1 * i as f64;
            prop_assert!(s.recip_scalar(k * k) > 0.0, "k = {}", k);
        }
    }

    #[test]
    fn total_mobility_xi_independent_random_geometry(
        (x, y, z, xi_a, xi_b) in (0.3f64..4.5, -4.5f64..4.5, -4.5f64..4.5, 0.5f64..0.9, 1.0f64..1.4)
    ) {
        // The defining Ewald property, over random pair geometry.
        let dr = Vec3::new(x, y, z);
        let l = 10.0;
        let ma = RpyEwald::new(1.0, 1.0, l, xi_a, 1e-9).mobility_tensor(dr, false);
        let mb = RpyEwald::new(1.0, 1.0, l, xi_b, 1e-9).mobility_tensor(dr, false);
        for (p, q) in ma.iter().zip(&mb) {
            prop_assert!((p - q).abs() < 1e-7, "{} vs {}", p, q);
        }
    }

    #[test]
    fn overlap_correction_continuous_at_contact(xi in 0.4f64..1.2) {
        let s = RpyEwald::kernel_only(1.0, 1.0, 15.0, xi);
        let eps = 1e-7;
        let below = s.overlap_scalars(2.0 - eps);
        prop_assert!(below.0.abs() < 1e-6);
        prop_assert!(below.1.abs() < 1e-6);
        prop_assert_eq!(s.overlap_scalars(2.0 + eps), (0.0, 0.0));
    }
}
