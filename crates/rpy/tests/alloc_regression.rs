//! Allocation regression for the batched near-field kernels.
//!
//! Both entry points work on caller-provided slices with stack-only state
//! (the treecode calls `rpy_pairs_accumulate` inside its parallel leaf pass,
//! and `real_tensors_with_overlap4` runs inside the real-space assembly
//! loop), so the assertion is zero allocator calls, not a steady-state
//! budget.

use hibd_alloctrack::{exclusive, measure};
use hibd_mathx::Vec3;
use hibd_rpy::{real_tensors_with_overlap4, rpy_pairs_accumulate, RpyEwald, PAIR_TILE};

hibd_alloctrack::install!();

#[test]
fn pair_batch_kernel_never_allocates() {
    let _guard = exclusive();
    // One-time dispatch detection reads HIBD_SIMD (allocates when the
    // variable is set) — keep it outside the measurement window.
    hibd_simd::avx2();
    let a = 1.0;
    let n = PAIR_TILE;
    let mut state = 0x9e3779b97f4a7c15_u64;
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
    };
    let sx: Vec<f64> = (0..n).map(|_| next()).collect();
    let sy: Vec<f64> = (0..n).map(|_| next()).collect();
    let sz: Vec<f64> = (0..n).map(|_| next()).collect();
    let vx: Vec<f64> = (0..n).map(|_| next()).collect();
    let vy: Vec<f64> = (0..n).map(|_| next()).collect();
    let vz: Vec<f64> = (0..n).map(|_| next()).collect();
    let mut out = [0.0f64; 3];
    let (m, ()) = measure(|| {
        for _ in 0..8 {
            rpy_pairs_accumulate(a, 0.1, -0.2, 0.3, &sx, &sy, &sz, &vx, &vy, &vz, &mut out);
        }
    });
    assert_eq!(m.alloc_calls, 0, "pair kernel made {} allocations", m.alloc_calls);
    assert_eq!(m.net_bytes, 0, "pair kernel leaked {} bytes", m.net_bytes);
}

#[test]
fn batched_ewald_kernel_never_allocates() {
    let _guard = exclusive();
    // One-time dispatch detection reads HIBD_SIMD (allocates when the
    // variable is set) — keep it outside the measurement window.
    hibd_simd::avx2();
    let ew = RpyEwald::new(1.0, 1.0, 12.0, 0.8, 1e-8);
    let rv = [
        Vec3::new(1.1, 0.2, -0.4),
        Vec3::new(0.6, -0.7, 0.9), // |r| < 2a: overlap branch
        Vec3::new(2.0, 0.0, 0.0),  // exactly the boundary
        Vec3::new(-2.5, 1.5, 3.0),
    ];
    let mut out = [[0.0f64; 9]; 4];
    let (m, ()) = measure(|| {
        for _ in 0..8 {
            real_tensors_with_overlap4(&ew, &rv, &mut out);
        }
    });
    assert_eq!(m.alloc_calls, 0, "batched Ewald kernel made {} allocations", m.alloc_calls);
    assert_eq!(m.net_bytes, 0, "batched Ewald kernel leaked {} bytes", m.net_bytes);
}
