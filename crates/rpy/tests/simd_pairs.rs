//! Scalar-vs-SIMD equivalence for the batched near-field pair kernels.
//!
//! Source radii are drawn to straddle every branch of the RPY pair kernel:
//! coincident (r = 0), overlapping Yamakawa (0 < r < 2a), the exact r = 2a
//! boundary, and the far branch (r > 2a). The free-space pair kernel uses
//! FMA and blends both branches, so the contract is <= 1e-13 relative error;
//! the batched Beenakker Ewald kernel mirrors the scalar expression tree
//! with unfused ops and must stay *bitwise* identical. The `hibd_simd`
//! override is process-global — toggles serialize on `SIMD_LOCK`.

use hibd_mathx::Vec3;
use hibd_rpy::{real_tensors_with_overlap4, rpy_pairs_accumulate, RpyEwald, PAIR_TILE};
use proptest::prelude::*;
use std::sync::Mutex;

static SIMD_LOCK: Mutex<()> = Mutex::new(());

fn scalar_then_auto<R>(f: impl Fn() -> R) -> (R, R) {
    let _l = SIMD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let scalar = {
        let _g = hibd_simd::ScalarGuard::new();
        f()
    };
    (scalar, f())
}

/// A unit-ish direction from three raw components (rejecting the zero draw).
fn dir(x: f64, y: f64, z: f64) -> Vec3 {
    let v = Vec3::new(x, y, z);
    let n = v.norm();
    if n < 1e-3 {
        Vec3::new(1.0, 0.0, 0.0)
    } else {
        v / n
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pairs_accumulate_matches_scalar_across_overlap_boundary(
        a in 0.5f64..1.5,
        raw in prop::collection::vec(
            ((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 0.0f64..2.2,
             (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0)),
            1..(2 * PAIR_TILE),
        ),
    ) {
        let target = Vec3::new(0.3, -0.2, 0.1);
        let mut sx = Vec::new();
        let mut sy = Vec::new();
        let mut sz = Vec::new();
        let (mut vx, mut vy, mut vz) = (Vec::new(), Vec::new(), Vec::new());
        for (i, &((dx, dy, dz), rfrac, (fx, fy, fz))) in raw.iter().enumerate() {
            // Pin some lanes to the branch edges: every 5th source is
            // coincident, every 7th sits exactly on r = 2a.
            let r = if i % 5 == 0 {
                0.0
            } else if i % 7 == 0 {
                2.0 * a
            } else {
                rfrac * a
            };
            let s = target + dir(dx, dy, dz) * r;
            sx.push(s.x);
            sy.push(s.y);
            sz.push(s.z);
            vx.push(fx);
            vy.push(fy);
            vz.push(fz);
        }
        let (scalar, auto) = scalar_then_auto(|| {
            let mut out = [0.0f64; 3];
            rpy_pairs_accumulate(
                a, target.x, target.y, target.z, &sx, &sy, &sz, &vx, &vy, &vz, &mut out,
            );
            out
        });
        let scale = scalar.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for t in 0..3 {
            prop_assert!(
                (auto[t] - scalar[t]).abs() <= 1e-13 * scale,
                "component {t}: {} vs {}", auto[t], scalar[t]
            );
        }
    }

    #[test]
    fn batched_ewald_tensors_stay_bitwise_scalar(
        xi in 0.4f64..1.2,
        lanes in prop::collection::vec(
            ((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 0.3f64..5.9), 4),
    ) {
        let ew = RpyEwald::new(1.0, 1.0, 12.0, xi, 1e-8);
        let mut rv = [Vec3::ZERO; 4];
        for (t, &((dx, dy, dz), r)) in lanes.iter().enumerate() {
            // Pin lane 1 to the overlap boundary so the r = 2a path is hit.
            rv[t] = dir(dx, dy, dz) * if t == 1 { 2.0 } else { r };
        }
        let (scalar, auto) = scalar_then_auto(|| {
            let mut out = [[0.0f64; 9]; 4];
            real_tensors_with_overlap4(&ew, &rv, &mut out);
            out
        });
        for t in 0..4 {
            prop_assert_eq!(auto[t], scalar[t], "lane {} not bitwise", t);
        }
    }
}
