//! Batched near-field pair kernels (4 target–source pairs per iteration).
//!
//! Two consumers share these kernels:
//!
//! * the treecode near field evaluates the free-space two-branch RPY tensor
//!   for every unseparated pair ([`rpy_pairs_accumulate`]): one target
//!   against a staged SoA tile of sources, four pairs per AVX2 iteration,
//!   with the Yamakawa overlap branch and the coincident `r = 0` limit
//!   handled by lane blends (a coincident lane contributes exactly
//!   `mu0 x_j`, so the self pair `j = k` needs no special casing);
//! * the Ewald real-space assembly evaluates Beenakker's `M^(1)` scalars
//!   for four pair displacements at once ([`real_tensors_with_overlap4`]):
//!   `erfc`/`exp` stay lane-scalar (they are iterative), while the
//!   polynomial prefactors run as 4-lane vectors that replicate the scalar
//!   expression tree operation-for-operation — the batched tensors are
//!   **bitwise identical** to [`RpyEwald::real_tensor_with_overlap`].
//!
//! Dispatch policy (see `hibd-simd`): AVX2+FMA kernels behind runtime
//! detection, `*_scalar` twins that reproduce the historical per-pair loops
//! everywhere else.

use crate::ewald::RpyEwald;
use crate::tensor::{iso_plus_outer, rpy_pair_scalars};
use hibd_hot as hibd;
use hibd_mathx::Vec3;

/// Recommended SoA staging tile for callers of [`rpy_pairs_accumulate`]
/// (stack buffers of this many lanes; loop over tiles beyond it).
pub const PAIR_TILE: usize = 32;

/// Accumulate the free-space RPY action of a tile of sources on one target:
/// `out[theta] += Σ_t fi(r_t) v_t[theta] + frr(r_t) (r̂_t · v_t) r̂_t[theta]`
/// in units of `mu0` (the caller applies `mu0`), where `r_t` is the
/// target−source displacement. Coincident lanes (`r = 0`) use the
/// regularized limit `fi = 1, frr = 0`, i.e. they contribute `v_t` — which
/// is exactly the RPY self term, so a target may appear in its own tile.
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
pub fn rpy_pairs_accumulate(
    a: f64,
    px: f64,
    py: f64,
    pz: f64,
    sx: &[f64],
    sy: &[f64],
    sz: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    out: &mut [f64; 3],
) {
    debug_assert!(
        sx.len() == sy.len()
            && sx.len() == sz.len()
            && sx.len() == vx.len()
            && sx.len() == vy.len()
            && sx.len() == vz.len()
    );
    #[cfg(target_arch = "x86_64")]
    if sx.len() >= 4 && hibd_simd::avx2() {
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        unsafe { pairs_accumulate_avx2(a, px, py, pz, sx, sy, sz, vx, vy, vz, out) };
        return;
    }
    pairs_accumulate_scalar(a, px, py, pz, sx, sy, sz, vx, vy, vz, out);
}

/// Scalar pair loop, reproducing the historical treecode near-field
/// arithmetic per pair (two-branch scalars, normalized `r̂`, coincident
/// limit).
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
fn pairs_accumulate_scalar(
    a: f64,
    px: f64,
    py: f64,
    pz: f64,
    sx: &[f64],
    sy: &[f64],
    sz: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    out: &mut [f64; 3],
) {
    for t in 0..sx.len() {
        let dx = px - sx[t];
        let dy = py - sy[t];
        let dz = pz - sz[t];
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 == 0.0 {
            out[0] += vx[t];
            out[1] += vy[t];
            out[2] += vz[t];
            continue;
        }
        let r = r2.sqrt();
        let (fi, frr) = rpy_pair_scalars(r, a);
        let rhx = dx / r;
        let rhy = dy / r;
        let rhz = dz / r;
        let dot = rhx * vx[t] + rhy * vy[t] + rhz * vz[t];
        out[0] += fi * vx[t] + (frr * dot) * rhx;
        out[1] += fi * vy[t] + (frr * dot) * rhy;
        out[2] += fi * vz[t] + (frr * dot) * rhz;
    }
}

/// AVX2+FMA pair kernel: four pairs per iteration. Both RPY branches are
/// evaluated and blended on `r < 2a`; coincident lanes are then overridden
/// to `fi = 1, frr = 0` (the division guard substitutes `r^2 = 1` in dead
/// lanes so no NaN contaminates the blend). `frr` is folded as `frr / r^2`
/// so the raw displacement replaces the normalized `r̂`.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn pairs_accumulate_avx2(
    a: f64,
    px: f64,
    py: f64,
    pz: f64,
    sx: &[f64],
    sy: &[f64],
    sz: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    out: &mut [f64; 3],
) {
    use core::arch::x86_64::*;

    let len = sx.len();
    let n4 = len & !3;
    let vpx = _mm256_set1_pd(px);
    let vpy = _mm256_set1_pd(py);
    let vpz = _mm256_set1_pd(pz);
    let va = _mm256_set1_pd(a);
    let four_a2 = _mm256_set1_pd(4.0 * a * a);
    let one = _mm256_set1_pd(1.0);
    let zero = _mm256_setzero_pd();
    let c075 = _mm256_set1_pd(0.75);
    let c05 = _mm256_set1_pd(0.5);
    let c15 = _mm256_set1_pd(1.5);
    // Yamakawa overlap branch: fi = 1 - 9r/(32a), frr = 3r/(32a).
    let c9_32a = _mm256_set1_pd(9.0 / (32.0 * a));
    let c3_32a = _mm256_set1_pd(3.0 / (32.0 * a));
    let mut ox = _mm256_setzero_pd();
    let mut oy = _mm256_setzero_pd();
    let mut oz = _mm256_setzero_pd();
    let mut t = 0;
    while t < n4 {
        // SAFETY: `t + 3 < n4 <= len` and all six slices share `len`
        // (debug-asserted by the dispatcher).
        let (dx, dy, dz, wx, wy, wz) = unsafe {
            (
                _mm256_sub_pd(vpx, _mm256_loadu_pd(sx.as_ptr().add(t))),
                _mm256_sub_pd(vpy, _mm256_loadu_pd(sy.as_ptr().add(t))),
                _mm256_sub_pd(vpz, _mm256_loadu_pd(sz.as_ptr().add(t))),
                _mm256_loadu_pd(vx.as_ptr().add(t)),
                _mm256_loadu_pd(vy.as_ptr().add(t)),
                _mm256_loadu_pd(vz.as_ptr().add(t)),
            )
        };
        let r2 = _mm256_fmadd_pd(dz, dz, _mm256_fmadd_pd(dy, dy, _mm256_mul_pd(dx, dx)));
        let zero_mask = _mm256_cmp_pd::<_CMP_EQ_OQ>(r2, zero);
        let near_mask = _mm256_cmp_pd::<_CMP_LT_OQ>(r2, four_a2);
        // Guard dead lanes before the divisions.
        let safe_r2 = _mm256_blendv_pd(r2, one, zero_mask);
        let r = _mm256_sqrt_pd(safe_r2);
        let ir = _mm256_div_pd(one, r);
        let ar = _mm256_mul_pd(va, ir);
        let ar3 = _mm256_mul_pd(_mm256_mul_pd(ar, ar), ar);
        // Far branch: fi = 0.75 ar + 0.5 ar^3, frr = 0.75 ar - 1.5 ar^3.
        let fi_far = _mm256_fmadd_pd(c05, ar3, _mm256_mul_pd(c075, ar));
        let frr_far = _mm256_fnmadd_pd(c15, ar3, _mm256_mul_pd(c075, ar));
        let fi_near = _mm256_fnmadd_pd(c9_32a, r, one);
        let frr_near = _mm256_mul_pd(c3_32a, r);
        let fi = _mm256_blendv_pd(fi_far, fi_near, near_mask);
        let frr = _mm256_blendv_pd(frr_far, frr_near, near_mask);
        // Coincident limit: mu0 I, i.e. fi = 1, frr = 0.
        let fi = _mm256_blendv_pd(fi, one, zero_mask);
        let frr = _mm256_blendv_pd(frr, zero, zero_mask);
        let g = _mm256_div_pd(frr, safe_r2);
        let dot = _mm256_fmadd_pd(dz, wz, _mm256_fmadd_pd(dy, wy, _mm256_mul_pd(dx, wx)));
        let gd = _mm256_mul_pd(g, dot);
        ox = _mm256_fmadd_pd(gd, dx, _mm256_fmadd_pd(fi, wx, ox));
        oy = _mm256_fmadd_pd(gd, dy, _mm256_fmadd_pd(fi, wy, oy));
        oz = _mm256_fmadd_pd(gd, dz, _mm256_fmadd_pd(fi, wz, oz));
        t += 4;
    }
    let hi = _mm256_extractf128_pd::<1>(ox);
    let s = _mm_add_pd(_mm256_castpd256_pd128(ox), hi);
    out[0] += _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    let hi = _mm256_extractf128_pd::<1>(oy);
    let s = _mm_add_pd(_mm256_castpd256_pd128(oy), hi);
    out[1] += _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    let hi = _mm256_extractf128_pd::<1>(oz);
    let s = _mm_add_pd(_mm256_castpd256_pd128(oz), hi);
    out[2] += _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    pairs_accumulate_scalar(
        a,
        px,
        py,
        pz,
        &sx[n4..],
        &sy[n4..],
        &sz[n4..],
        &vx[n4..],
        &vy[n4..],
        &vz[n4..],
        out,
    );
}

/// Evaluate four Ewald real-space pair tensors (overlap correction
/// included) at once: `out[t] = mu0 (fi I + frr r̂r̂ᵀ)` for displacement
/// `rv[t]`, bitwise identical to four calls of
/// [`RpyEwald::real_tensor_with_overlap`].
#[hibd::hot]
pub fn real_tensors_with_overlap4(ew: &RpyEwald, rv: &[Vec3; 4], out: &mut [[f64; 9]; 4]) {
    #[cfg(target_arch = "x86_64")]
    if hibd_simd::avx2() {
        use std::f64::consts::PI;
        let mut r = [0.0; 4];
        let mut e = [0.0; 4];
        let mut erfc_x = [0.0; 4];
        // `erfc` and `exp` are iterative: keep them lane-scalar, exactly as
        // the scalar kernel computes them.
        for t in 0..4 {
            r[t] = rv[t].norm();
            let x = ew.xi * r[t];
            e[t] = (-x * x).exp() / PI.sqrt();
            erfc_x[t] = hibd_mathx::erfc(x);
        }
        let mut fi = [0.0; 4];
        let mut frr = [0.0; 4];
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        unsafe { real_scalars4_avx2(ew.a, ew.xi, &r, &e, &erfc_x, &mut fi, &mut frr) };
        let mu0 = ew.mu0();
        for t in 0..4 {
            let (di, drr) = ew.overlap_scalars(r[t]);
            out[t] = iso_plus_outer(mu0 * (fi[t] + di), mu0 * (frr[t] + drr), rv[t] / r[t]);
        }
        return;
    }
    real_scalars4_scalar(ew, rv, out);
}

/// Scalar fallback: four independent calls of the canonical per-pair
/// kernel.
#[hibd::hot]
fn real_scalars4_scalar(ew: &RpyEwald, rv: &[Vec3; 4], out: &mut [[f64; 9]; 4]) {
    for t in 0..4 {
        out[t] = ew.real_tensor_with_overlap(rv[t]);
    }
}

/// Beenakker real-space scalars for four distances at once, given the
/// staged lane-scalar `e = exp(-(xi r)^2)/sqrt(pi)` and `erfc(xi r)`. The
/// vector expression tree mirrors [`RpyEwald::real_scalars`]
/// operation-for-operation (mul/add/sub/div only, no re-association, no
/// FMA contraction), so the lanes are bitwise identical to the scalar
/// kernel. The Beenakker coefficients are pinned by the xi-independence
/// tests in `ewald.rs`; change them only there.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn real_scalars4_avx2(
    a: f64,
    xi: f64,
    r: &[f64; 4],
    e: &[f64; 4],
    erfc_x: &[f64; 4],
    fi: &mut [f64; 4],
    frr: &mut [f64; 4],
) {
    use core::arch::x86_64::*;

    let a3 = a * a * a;
    let xi3 = xi * xi * xi;
    let xi5 = xi3 * xi * xi;
    let xi7 = xi5 * xi * xi;
    // SAFETY: all arrays are exactly four lanes.
    let (rv, ev, erfcv) = unsafe {
        (_mm256_loadu_pd(r.as_ptr()), _mm256_loadu_pd(e.as_ptr()), _mm256_loadu_pd(erfc_x.as_ptr()))
    };
    let r2 = _mm256_mul_pd(rv, rv);
    let r2r = _mm256_mul_pd(r2, rv);
    // fi = (0.75 a / r + 0.5 a^3 / r^3) erfc
    //    + (4 xi^7 a^3 r^4 + 3 xi^3 a r^2 - 20 xi^5 a^3 r^2 - 4.5 xi a
    //       + 14 xi^3 a^3 + xi a^3 / r^2) e
    let t_erfc = _mm256_add_pd(
        _mm256_div_pd(_mm256_set1_pd(0.75 * a), rv),
        _mm256_div_pd(_mm256_set1_pd(0.5 * a3), r2r),
    );
    // `c * r2 * r2` must round like the scalar's left-to-right chain, so no
    // pre-squared r^4: multiply by r2 twice.
    let mut poly = _mm256_add_pd(
        _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(4.0 * xi7 * a3), r2), r2),
        _mm256_mul_pd(_mm256_set1_pd(3.0 * xi3 * a), r2),
    );
    poly = _mm256_sub_pd(poly, _mm256_mul_pd(_mm256_set1_pd(20.0 * xi5 * a3), r2));
    poly = _mm256_sub_pd(poly, _mm256_set1_pd(4.5 * xi * a));
    poly = _mm256_add_pd(poly, _mm256_set1_pd(14.0 * xi3 * a3));
    poly = _mm256_add_pd(poly, _mm256_div_pd(_mm256_set1_pd(xi * a3), r2));
    let fiv = _mm256_add_pd(_mm256_mul_pd(t_erfc, erfcv), _mm256_mul_pd(poly, ev));
    // frr = (0.75 a / r - 1.5 a^3 / r^3) erfc
    //     + (-4 xi^7 a^3 r^4 - 3 xi^3 a r^2 + 16 xi^5 a^3 r^2 + 1.5 xi a
    //        - 2 xi^3 a^3 - 3 xi a^3 / r^2) e
    let t_erfc = _mm256_sub_pd(
        _mm256_div_pd(_mm256_set1_pd(0.75 * a), rv),
        _mm256_div_pd(_mm256_set1_pd(1.5 * a3), r2r),
    );
    let mut poly = _mm256_sub_pd(
        _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(-4.0 * xi7 * a3), r2), r2),
        _mm256_mul_pd(_mm256_set1_pd(3.0 * xi3 * a), r2),
    );
    poly = _mm256_add_pd(poly, _mm256_mul_pd(_mm256_set1_pd(16.0 * xi5 * a3), r2));
    poly = _mm256_add_pd(poly, _mm256_set1_pd(1.5 * xi * a));
    poly = _mm256_sub_pd(poly, _mm256_set1_pd(2.0 * xi3 * a3));
    poly = _mm256_sub_pd(poly, _mm256_div_pd(_mm256_set1_pd(3.0 * xi * a3), r2));
    let frrv = _mm256_add_pd(_mm256_mul_pd(t_erfc, erfcv), _mm256_mul_pd(poly, ev));
    // SAFETY: four-lane output arrays.
    unsafe {
        _mm256_storeu_pd(fi.as_mut_ptr(), fiv);
        _mm256_storeu_pd(frr.as_mut_ptr(), frrv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_accumulate_matches_per_pair_tensor() {
        // One target against seven sources spanning far, overlap, and
        // coincident lanes; compare against the reference tensor applied
        // per pair.
        let a = 1.0;
        let p = (0.3, -0.2, 0.5);
        let sx = [3.0, 0.3, 1.1, -2.0, 0.4, 5.0, 0.3];
        let sy = [0.0, -0.2, 0.4, 1.0, -0.2, -4.0, -0.2];
        let sz = [1.0, 0.5, -0.3, 0.7, 0.6, 2.0, 0.5];
        let vx = [1.0, -0.5, 0.25, 2.0, -1.0, 0.5, 0.75];
        let vy = [0.5, 1.5, -2.0, 0.1, 0.3, -0.25, 1.0];
        let vz = [-1.0, 0.25, 1.0, -0.4, 0.8, 1.5, -0.6];
        let mut got = [0.0; 3];
        rpy_pairs_accumulate(a, p.0, p.1, p.2, &sx, &sy, &sz, &vx, &vy, &vz, &mut got);
        let mut want = [0.0; 3];
        for t in 0..sx.len() {
            let dr = Vec3::new(p.0 - sx[t], p.1 - sy[t], p.2 - sz[t]);
            let m = if dr.norm2() == 0.0 {
                [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]
            } else {
                let r = dr.norm();
                let (fi, frr) = rpy_pair_scalars(r, a);
                iso_plus_outer(fi, frr, dr / r)
            };
            let v = [vx[t], vy[t], vz[t]];
            for i in 0..3 {
                for j in 0..3 {
                    want[i] += m[3 * i + j] * v[j];
                }
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-13 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn batched_ewald_tensors_match_scalar_kernel_bitwise() {
        let ew = RpyEwald::kernel_only(1.0, 1.0, 10.0, 0.8);
        // Lanes straddle the overlap boundary r = 2a.
        let rv = [
            Vec3::new(1.0, 0.5, -0.3),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(1.4, -1.4, 0.2),
            Vec3::new(3.0, 2.0, -1.0),
        ];
        let mut got = [[0.0; 9]; 4];
        real_tensors_with_overlap4(&ew, &rv, &mut got);
        for t in 0..4 {
            let want = ew.real_tensor_with_overlap(rv[t]);
            assert_eq!(got[t], want, "lane {t}");
        }
    }
}
