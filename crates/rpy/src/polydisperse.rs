//! Polydisperse (unequal-radii) Rotne–Prager–Yamakawa tensor.
//!
//! The paper's PME formulation assumes uniform radii ("Assuming uniform
//! particle radii", Section III-A), but BD codes are routinely applied to
//! mixtures. This module provides the free-space generalization of the RPY
//! tensor to unequal radii — including the overlap regularizations of Zuk,
//! Wajnryb, Mizerski & Szymczak (J. Fluid Mech. 741, 2014) that keep the
//! mobility positive definite for *any* configuration:
//!
//! * `r > a_i + a_j` (no overlap):
//!   `M = 1/(8 pi eta r) [(1 + (a_i^2+a_j^2)/(3 r^2)) I + (1 - (a_i^2+a_j^2)/r^2) r̂r̂ᵀ]`
//! * `|a_i - a_j| < r <= a_i + a_j` (partial overlap): Zuk et al. Eq. (1.2);
//! * `r <= |a_i - a_j|` (one sphere inside the other):
//!   `M = 1/(6 pi eta max(a_i, a_j)) I`.
//!
//! The periodic/PME machinery stays monodisperse, mirroring the paper; the
//! polydisperse tensor supports free-space studies and is validated to be
//! SPD so it can drive the Krylov displacement solvers directly.

use hibd_linalg::DMat;
use hibd_mathx::Vec3;

/// Scalar coefficients `(cI, crr)` such that the pair tensor is
/// `cI I + crr r̂ r̂ᵀ` (absolute units, viscosity `eta`).
pub fn rpy_poly_scalars(r: f64, ai: f64, aj: f64, eta: f64) -> (f64, f64) {
    debug_assert!(r >= 0.0 && ai > 0.0 && aj > 0.0 && eta > 0.0);
    use std::f64::consts::PI;
    let big = ai.max(aj);
    let diff = (ai - aj).abs();
    if r <= diff {
        // Complete engulfment: rigid translation of the inner sphere with
        // the outer one.
        return (1.0 / (6.0 * PI * eta * big), 0.0);
    }
    if r <= ai + aj {
        // Partial overlap (Zuk et al. 2014).
        let r2 = r * r;
        let r3 = r2 * r;
        let pref = 1.0 / (6.0 * PI * eta * ai * aj);
        let ci = (16.0 * r3 * (ai + aj) - (diff * diff + 3.0 * r2).powi(2)) / (32.0 * r3);
        let crr = 3.0 * (diff * diff - r2).powi(2) / (32.0 * r3);
        return (pref * ci, pref * crr);
    }
    // Far field.
    let s2 = ai * ai + aj * aj;
    let pref = 1.0 / (8.0 * PI * eta * r);
    (pref * (1.0 + s2 / (3.0 * r * r)), pref * (1.0 - s2 / (r * r)))
}

/// Full 3x3 pair tensor for displacement `dr = r_i - r_j`.
pub fn rpy_poly_pair_tensor(dr: Vec3, ai: f64, aj: f64, eta: f64) -> [f64; 9] {
    let r = dr.norm();
    let (ci, crr) = rpy_poly_scalars(r, ai, aj, eta);
    if r < 1e-300 {
        // Coincident centers: isotropic engulfment branch.
        return [ci, 0.0, 0.0, 0.0, ci, 0.0, 0.0, 0.0, ci];
    }
    crate::tensor::iso_plus_outer(ci, crr, dr / r)
}

/// Dense free-space mobility for a polydisperse configuration.
pub fn dense_rpy_free_poly(positions: &[Vec3], radii: &[f64], eta: f64) -> DMat {
    assert_eq!(positions.len(), radii.len(), "one radius per particle");
    use std::f64::consts::PI;
    let n = positions.len();
    let mut m = DMat::zeros(3 * n, 3 * n);
    for i in 0..n {
        for j in 0..n {
            let t: [f64; 9] = if i == j {
                let mu = 1.0 / (6.0 * PI * eta * radii[i]);
                [mu, 0.0, 0.0, 0.0, mu, 0.0, 0.0, 0.0, mu]
            } else {
                rpy_poly_pair_tensor(positions[i] - positions[j], radii[i], radii[j], eta)
            };
            for bi in 0..3 {
                for bj in 0..3 {
                    m[(3 * i + bi, 3 * j + bj)] = t[3 * bi + bj];
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::rpy_pair_scalars;
    use hibd_linalg::CholeskyFactor;

    const ETA: f64 = 1.0;

    #[test]
    fn reduces_to_monodisperse_everywhere() {
        let a = 1.3;
        let mu0 = 1.0 / (6.0 * std::f64::consts::PI * ETA * a);
        for r in [0.4, 1.0, 2.0, 2.6 - 1e-9, 2.6 + 1e-9, 4.0, 10.0] {
            let (ci, crr) = rpy_poly_scalars(r, a, a, ETA);
            let (fi, frr) = rpy_pair_scalars(r, a);
            assert!((ci - mu0 * fi).abs() < 1e-13, "r={r}: {ci} vs {}", mu0 * fi);
            assert!((crr - mu0 * frr).abs() < 1e-13, "r={r}");
        }
    }

    #[test]
    fn continuous_at_both_branch_boundaries() {
        let (ai, aj) = (1.0, 2.5);
        let eps = 1e-8;
        // Contact boundary r = ai + aj.
        let contact = ai + aj;
        let below = rpy_poly_scalars(contact - eps, ai, aj, ETA);
        let above = rpy_poly_scalars(contact + eps, ai, aj, ETA);
        assert!((below.0 - above.0).abs() < 1e-6, "{below:?} vs {above:?}");
        assert!((below.1 - above.1).abs() < 1e-6);
        // Engulfment boundary r = |ai - aj|.
        let engulf = (ai - aj).abs();
        let inner = rpy_poly_scalars(engulf - eps, ai, aj, ETA);
        let outer = rpy_poly_scalars(engulf + eps, ai, aj, ETA);
        assert!((inner.0 - outer.0).abs() < 1e-6, "{inner:?} vs {outer:?}");
        assert!(outer.1.abs() < 1e-6, "rr part vanishes at engulfment");
    }

    #[test]
    fn symmetric_under_particle_exchange() {
        for r in [1.0, 2.9, 3.4, 6.0] {
            let a = rpy_poly_scalars(r, 0.8, 2.1, ETA);
            let b = rpy_poly_scalars(r, 2.1, 0.8, ETA);
            assert!((a.0 - b.0).abs() < 1e-15);
            assert!((a.1 - b.1).abs() < 1e-15);
        }
    }

    #[test]
    fn dense_polydisperse_matrix_is_spd_with_overlaps() {
        // The point of the Zuk et al. regularization.
        let positions = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.1, 0.0, 0.0), // overlapping with 0
            Vec3::new(0.3, 0.2, 0.1), // tiny sphere inside sphere 0
            Vec3::new(5.0, 4.0, 3.0),
            Vec3::new(6.5, 4.0, 3.0),
        ];
        let radii = vec![2.0, 0.7, 0.2, 1.0, 1.5];
        let m = dense_rpy_free_poly(&positions, &radii, ETA);
        assert!(m.max_asymmetry() < 1e-14);
        CholeskyFactor::new(&m).expect("polydisperse RPY must be SPD");
    }

    #[test]
    fn larger_partner_slows_the_pair_less_than_far_field_suggests() {
        // Far field decays like 1/r regardless of radii; prefactors differ.
        let near = rpy_poly_scalars(10.0, 1.0, 3.0, ETA).0;
        let far = rpy_poly_scalars(20.0, 1.0, 3.0, ETA).0;
        assert!((near / far - 2.0).abs() < 0.1, "leading 1/r decay");
    }

    #[test]
    fn engulfed_sphere_moves_with_outer_sphere_mobility() {
        let (ci, crr) = rpy_poly_scalars(0.1, 0.2, 3.0, ETA);
        let mu_outer = 1.0 / (6.0 * std::f64::consts::PI * ETA * 3.0);
        assert!((ci - mu_outer).abs() < 1e-15);
        assert_eq!(crr, 0.0);
    }

    #[test]
    fn random_polydisperse_cloud_is_spd() {
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 20;
        let positions: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(next() * 12.0, next() * 12.0, next() * 12.0)).collect();
        let radii: Vec<f64> = (0..n).map(|_| 0.3 + 1.7 * next()).collect();
        let m = dense_rpy_free_poly(&positions, &radii, ETA);
        CholeskyFactor::new(&m).expect("SPD for random polydisperse configuration");
    }
}
