//! `hibd-rpy`: the Rotne–Prager–Yamakawa tensor and its Ewald summation.
//!
//! The mobility matrix `M` of a Brownian dynamics simulation with
//! hydrodynamic interactions has 3x3 tensor entries `M_ij` describing how a
//! force on particle `j` induces a velocity on particle `i` through the
//! fluid. This crate provides:
//!
//! * [`tensor`] — the free-space RPY tensor (paper Section II-A), including
//!   the regularized overlapping form for `r < 2a`;
//! * [`ewald`] — Beenakker's Ewald summation of the RPY tensor under
//!   periodic boundary conditions (paper Section II-B, ref. \[22\]): the
//!   real-space kernels `M^(1)`, the reciprocal-space kernel `M^(2)`, the
//!   self term, and tolerance-driven cutoffs;
//! * [`dense`] — dense mobility-matrix assembly: the periodic Ewald matrix
//!   used by the conventional Algorithm 1 and as the ground truth that PME
//!   is validated against, plus a free-space variant for unit tests.
//!
//! Everything is expressed in absolute mobility units; the natural scale is
//! `mu0 = 1/(6 pi eta a)`, the self-mobility of an isolated sphere.

pub mod dense;
pub mod ewald;
pub mod nearfield;
pub mod polydisperse;
pub mod stokeslet;
pub mod tensor;

pub use dense::{dense_ewald_mobility, dense_rpy_free};
pub use ewald::RpyEwald;
pub use nearfield::{real_tensors_with_overlap4, rpy_pairs_accumulate, PAIR_TILE};
pub use polydisperse::{dense_rpy_free_poly, rpy_poly_pair_tensor};
pub use stokeslet::OseenEwald;
pub use tensor::{rpy_pair_scalars, rpy_pair_tensor, rpy_self_mobility};
