//! The free-space Rotne–Prager–Yamakawa tensor.
//!
//! For two spheres of equal radius `a` in an unbounded fluid of viscosity
//! `eta`, separated by `r = |r_ij|` (paper Section II-A):
//!
//! * `r >= 2a`:
//!   `M_ij = mu0 [ (3a/4r + a^3/2r^3) I + (3a/4r - 3a^3/2r^3) r̂ r̂ᵀ ]`
//! * `r < 2a` (Yamakawa's regularization; keeps `M` positive definite even
//!   for overlapping spheres):
//!   `M_ij = mu0 [ (1 - 9r/32a) I + (3r/32a) r̂ r̂ᵀ ]`
//! * `M_ii = mu0 I`
//!
//! with `mu0 = 1/(6 pi eta a)`.

use hibd_mathx::Vec3;

/// Self-mobility `mu0 = 1/(6 pi eta a)` of an isolated sphere.
#[inline]
pub fn rpy_self_mobility(a: f64, eta: f64) -> f64 {
    1.0 / (6.0 * std::f64::consts::PI * eta * a)
}

/// Scalar RPY pair coefficients `(fI, frr)` in units of `mu0`, such that the
/// pair tensor is `mu0 (fI I + frr r̂ r̂ᵀ)`. Handles both branches.
#[inline]
pub fn rpy_pair_scalars(r: f64, a: f64) -> (f64, f64) {
    debug_assert!(r > 0.0);
    if r >= 2.0 * a {
        let ar = a / r;
        let ar3 = ar * ar * ar;
        (0.75 * ar + 0.5 * ar3, 0.75 * ar - 1.5 * ar3)
    } else {
        let ra = r / a;
        (1.0 - 9.0 * ra / 32.0, 3.0 * ra / 32.0)
    }
}

/// Full 3x3 RPY pair tensor (row-major) for displacement `dr = r_i - r_j`.
pub fn rpy_pair_tensor(dr: Vec3, a: f64, eta: f64) -> [f64; 9] {
    let r = dr.norm();
    assert!(r > 0.0, "RPY tensor is undefined at zero separation");
    let (fi, frr) = rpy_pair_scalars(r, a);
    let mu0 = rpy_self_mobility(a, eta);
    let rh = dr / r;
    iso_plus_outer(mu0 * fi, mu0 * frr, rh)
}

/// Assemble `s1 * I + s2 * u uᵀ` as a row-major 3x3 tensor.
#[inline]
pub fn iso_plus_outer(s1: f64, s2: f64, u: Vec3) -> [f64; 9] {
    [
        s1 + s2 * u.x * u.x,
        s2 * u.x * u.y,
        s2 * u.x * u.z,
        s2 * u.y * u.x,
        s1 + s2 * u.y * u.y,
        s2 * u.y * u.z,
        s2 * u.z * u.x,
        s2 * u.z * u.y,
        s1 + s2 * u.z * u.z,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: f64 = 1.0;
    const ETA: f64 = 1.0;

    #[test]
    fn self_mobility_value() {
        let mu0 = rpy_self_mobility(A, ETA);
        assert!((mu0 - 1.0 / (6.0 * std::f64::consts::PI)).abs() < 1e-16);
        // Scales inversely with radius and viscosity.
        assert!((rpy_self_mobility(2.0, 1.0) - mu0 / 2.0).abs() < 1e-16);
        assert!((rpy_self_mobility(1.0, 3.0) - mu0 / 3.0).abs() < 1e-16);
    }

    #[test]
    fn far_field_approaches_oseen() {
        // At large r the RPY tensor approaches the Oseen tensor
        // (1/(8 pi eta r)) (I + r̂r̂ᵀ).
        let r = 1000.0;
        let dr = Vec3::new(r, 0.0, 0.0);
        let m = rpy_pair_tensor(dr, A, ETA);
        let oseen_par = 2.0 / (8.0 * std::f64::consts::PI * ETA * r); // (I + r̂r̂)_xx = 2
        let oseen_perp = 1.0 / (8.0 * std::f64::consts::PI * ETA * r);
        assert!((m[0] - oseen_par).abs() < 1e-3 * oseen_par);
        assert!((m[4] - oseen_perp).abs() < 1e-3 * oseen_perp);
        assert!(m[1].abs() < 1e-15);
    }

    #[test]
    fn tensor_is_symmetric_and_isotropic_along_axes() {
        let m = rpy_pair_tensor(Vec3::new(0.0, 3.0, 0.0), A, ETA);
        // Only yy differs from xx/zz for a y-separation.
        assert_eq!(m[0], m[8]);
        assert!(m[4] > m[0]);
        for (i, j) in [(1, 3), (2, 6), (5, 7)] {
            assert_eq!(m[i], m[j]);
        }
    }

    #[test]
    fn branches_are_continuous_at_contact() {
        let eps = 1e-9;
        let (fi_in, frr_in) = rpy_pair_scalars(2.0 * A - eps, A);
        let (fi_out, frr_out) = rpy_pair_scalars(2.0 * A + eps, A);
        assert!((fi_in - fi_out).abs() < 1e-8, "{fi_in} vs {fi_out}");
        assert!((frr_in - frr_out).abs() < 1e-8);
        // Known contact values: fI = 7/16, frr = 3/16 at r = 2a.
        assert!((fi_out - 7.0 / 16.0).abs() < 1e-8);
        assert!((frr_out - 3.0 / 16.0).abs() < 1e-8);
    }

    #[test]
    fn overlap_limit_reaches_self_mobility() {
        // As r -> 0 the regularized tensor approaches mu0 I.
        let (fi, frr) = rpy_pair_scalars(1e-12, A);
        assert!((fi - 1.0).abs() < 1e-10);
        assert!(frr.abs() < 1e-10);
    }

    #[test]
    fn tensor_depends_only_on_separation_direction_and_magnitude() {
        let m1 = rpy_pair_tensor(Vec3::new(1.0, 2.0, 2.0), A, ETA);
        let m2 = rpy_pair_tensor(Vec3::new(-1.0, -2.0, -2.0), A, ETA);
        for (a, b) in m1.iter().zip(&m2) {
            assert!((a - b).abs() < 1e-16, "RPY is even in dr");
        }
    }

    #[test]
    fn iso_plus_outer_layout() {
        let t = iso_plus_outer(2.0, 3.0, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(t, [5.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 2.0]);
    }
}
