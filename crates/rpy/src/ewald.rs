//! Beenakker's Ewald summation of the RPY tensor (paper Section II-B).
//!
//! Under periodic boundary conditions the mobility between particles `i` and
//! `j` is an infinite (conditionally convergent) lattice sum. Beenakker
//! (J. Chem. Phys. 85, 1581, 1986) splits it into two rapidly converging
//! parts controlled by the splitting parameter `xi` (the paper's `alpha`):
//!
//! `M = M_real(xi) + M_recip(xi) + M_self(xi)`
//!
//! * the real-space kernel decays like `erfc(xi r)` / `exp(-xi^2 r^2)`;
//! * the reciprocal-space kernel decays like `exp(-k^2 / 4 xi^2)`;
//! * the self term completes the `i = j` diagonal.
//!
//! The sum of the three parts is **independent of `xi`** — the defining
//! correctness property, enforced by unit tests here. Increasing `xi` moves
//! work from the real sum (shorter cutoff `r_max`) into the reciprocal sum
//! (more Fourier modes), which is exactly the load-balancing knob the
//! paper's hybrid implementation tunes (Section IV-E).
//!
//! Beenakker's split reproduces the *non-overlapping* RPY form at all
//! distances; for pairs closer than `2a` an overlap correction (the
//! difference between Yamakawa's regularized tensor and the analytic
//! continuation of the far form) is added to the real-space term.

use crate::tensor::{iso_plus_outer, rpy_pair_scalars, rpy_self_mobility};
use hibd_mathx::{erfc, Vec3};
use std::f64::consts::PI;

/// Beenakker Ewald split of the periodic RPY mobility.
#[derive(Clone, Debug)]
pub struct RpyEwald {
    /// Particle radius.
    pub a: f64,
    /// Fluid viscosity.
    pub eta: f64,
    /// Cubic box side.
    pub box_l: f64,
    /// Ewald splitting parameter (the paper's `alpha`), units 1/length.
    pub xi: f64,
    /// Real-space cutoff: image terms beyond this radius are dropped.
    rcut: f64,
    /// Reciprocal-space cutoff on `|k|`.
    kcut: f64,
    /// Precomputed reciprocal modes `(k, coeff)` with
    /// `coeff = mu0 * m(k) / L^3`; excludes `k = 0`.
    kmodes: Vec<(Vec3, f64)>,
}

impl RpyEwald {
    /// Build a split with truncation tolerance `tol` (relative to `mu0`) for
    /// both sums. `tol = 1e-10` gives reference-quality summation.
    pub fn new(a: f64, eta: f64, box_l: f64, xi: f64, tol: f64) -> RpyEwald {
        assert!(a > 0.0 && eta > 0.0 && box_l > 0.0 && xi > 0.0);
        assert!(tol > 0.0 && tol < 1.0);
        // Gaussian decay: e^{-x^2} ~ tol at x = sqrt(ln 1/tol); pad by 1.5x
        // for the polynomial prefactors of the Beenakker kernels.
        let x = (1.0 / tol).ln().sqrt() * 1.5;
        let rcut = x / xi;
        let kcut = 2.0 * x * xi;
        let mut s = RpyEwald { a, eta, box_l, xi, rcut, kcut, kmodes: Vec::new() };
        s.build_kmodes();
        s
    }

    /// Build a split exposing only the kernels (`real_scalars`,
    /// `recip_scalar`, `self_coefficient`, `real_tensor*`) without
    /// enumerating reciprocal modes. This is what PME uses: it evaluates the
    /// reciprocal kernel on its own FFT mesh, so building the dense-Ewald
    /// mode table would be wasted work. [`Self::mobility_tensor`] must not
    /// be called on a kernel-only split (it would silently miss the
    /// reciprocal sum); debug builds assert this.
    pub fn kernel_only(a: f64, eta: f64, box_l: f64, xi: f64) -> RpyEwald {
        assert!(a > 0.0 && eta > 0.0 && box_l > 0.0 && xi > 0.0);
        RpyEwald { a, eta, box_l, xi, rcut: f64::INFINITY, kcut: 0.0, kmodes: Vec::new() }
    }

    fn build_kmodes(&mut self) {
        let mu0 = self.mu0();
        let l = self.box_l;
        let nmax = (self.kcut * l / (2.0 * PI)).ceil() as i64;
        let mut modes = Vec::new();
        for nx in -nmax..=nmax {
            for ny in -nmax..=nmax {
                for nz in -nmax..=nmax {
                    if nx == 0 && ny == 0 && nz == 0 {
                        continue;
                    }
                    let k = Vec3::new(nx as f64, ny as f64, nz as f64) * (2.0 * PI / l);
                    let k2 = k.norm2();
                    if k2 > self.kcut * self.kcut {
                        continue;
                    }
                    modes.push((k, mu0 * self.recip_scalar(k2) / (l * l * l)));
                }
            }
        }
        self.kmodes = modes;
    }

    /// `mu0 = 1/(6 pi eta a)`.
    pub fn mu0(&self) -> f64 {
        rpy_self_mobility(self.a, self.eta)
    }

    /// Real-space cutoff radius implied by the tolerance.
    pub fn rcut(&self) -> f64 {
        self.rcut
    }

    /// Reciprocal-space cutoff `|k|`.
    pub fn kcut(&self) -> f64 {
        self.kcut
    }

    /// Number of reciprocal modes kept.
    pub fn num_kmodes(&self) -> usize {
        self.kmodes.len()
    }

    /// Beenakker real-space scalars `(fI, frr)` in units of `mu0`:
    /// `M^(1)(r) = mu0 (fI I + frr r̂ r̂ᵀ)`.
    pub fn real_scalars(&self, r: f64) -> (f64, f64) {
        debug_assert!(r > 0.0);
        let (a, xi) = (self.a, self.xi);
        let a3 = a * a * a;
        let x = xi * r;
        let e = (-x * x).exp() / PI.sqrt();
        let erfc_x = erfc(x);
        let r2 = r * r;
        let xi3 = xi * xi * xi;
        let xi5 = xi3 * xi * xi;
        let xi7 = xi5 * xi * xi;
        let fi = (0.75 * a / r + 0.5 * a3 / (r2 * r)) * erfc_x
            + (4.0 * xi7 * a3 * r2 * r2 + 3.0 * xi3 * a * r2 - 20.0 * xi5 * a3 * r2 - 4.5 * xi * a
                + 14.0 * xi3 * a3
                + xi * a3 / r2)
                * e;
        let frr = (0.75 * a / r - 1.5 * a3 / (r2 * r)) * erfc_x
            + (-4.0 * xi7 * a3 * r2 * r2 - 3.0 * xi3 * a * r2
                + 16.0 * xi5 * a3 * r2
                + 1.5 * xi * a
                - 2.0 * xi3 * a3
                - 3.0 * xi * a3 / r2)
                * e;
        (fi, frr)
    }

    /// Overlap correction scalars for `r < 2a` (zero otherwise): the
    /// difference between the Yamakawa regularized tensor and the analytic
    /// continuation of the non-overlapping form that the Ewald split
    /// reproduces.
    pub fn overlap_scalars(&self, r: f64) -> (f64, f64) {
        if r >= 2.0 * self.a {
            return (0.0, 0.0);
        }
        let (fi_over, frr_over) = rpy_pair_scalars(r, self.a); // regularized branch
        let ar = self.a / r;
        let ar3 = ar * ar * ar;
        let fi_std = 0.75 * ar + 0.5 * ar3;
        let frr_std = 0.75 * ar - 1.5 * ar3;
        (fi_over - fi_std, frr_over - frr_std)
    }

    /// Beenakker reciprocal kernel `m(k)` (units of `mu0 / a` folded such
    /// that `M_recip = mu0/L^3 Σ cos(k·r) (I - k̂k̂ᵀ) m(k)`), paper Eq. 5.
    pub fn recip_scalar(&self, k2: f64) -> f64 {
        debug_assert!(k2 > 0.0);
        let (a, xi) = (self.a, self.xi);
        let a3 = a * a * a;
        let xi2 = xi * xi;
        (a - a3 * k2 / 3.0)
            * (1.0 + k2 / (4.0 * xi2) + k2 * k2 / (8.0 * xi2 * xi2))
            * (6.0 * PI / k2)
            * (-k2 / (4.0 * xi2)).exp()
    }

    /// Self-term coefficient: `M_self = mu0 (1 - 6 xi a/sqrt(pi)
    /// + 40 xi^3 a^3 / (3 sqrt(pi))) I`.
    pub fn self_coefficient(&self) -> f64 {
        let (a, xi) = (self.a, self.xi);
        self.mu0()
            * (1.0 - 6.0 * xi * a / PI.sqrt() + 40.0 * xi.powi(3) * a.powi(3) / (3.0 * PI.sqrt()))
    }

    /// Single real-space lattice term `mu0 M^(1)(rv)` for one image vector
    /// `rv` (no overlap correction): used by both the dense reference and
    /// the PME real-space sparse matrix.
    pub fn real_tensor(&self, rv: Vec3) -> [f64; 9] {
        let r = rv.norm();
        let (fi, frr) = self.real_scalars(r);
        let mu0 = self.mu0();
        iso_plus_outer(mu0 * fi, mu0 * frr, rv / r)
    }

    /// Real-space term for a *minimum-image* displacement, including the
    /// overlap correction when `|rv| < 2a`. This is what the PME real-space
    /// operator stores per neighbor pair.
    pub fn real_tensor_with_overlap(&self, rv: Vec3) -> [f64; 9] {
        let r = rv.norm();
        let (mut fi, mut frr) = self.real_scalars(r);
        let (di, drr) = self.overlap_scalars(r);
        fi += di;
        frr += drr;
        let mu0 = self.mu0();
        iso_plus_outer(mu0 * fi, mu0 * frr, rv / r)
    }

    /// Reference periodic mobility tensor between two particles with
    /// minimum-image displacement `dr` (`same = true` for `i = j`, where
    /// `dr` must be zero). Sums all images / modes within the tolerance
    /// cutoffs; `O(rcut^3 + kmodes)` per call — reference use only.
    pub fn mobility_tensor(&self, dr: Vec3, same: bool) -> [f64; 9] {
        debug_assert!(
            !(self.kmodes.is_empty() && self.kcut == 0.0),
            "mobility_tensor called on a kernel_only split"
        );
        let l = self.box_l;
        let mu0 = self.mu0();
        let mut m = [0.0f64; 9];

        // Real-space lattice sum.
        let nmax = (self.rcut / l).ceil() as i64 + 1;
        for lx in -nmax..=nmax {
            for ly in -nmax..=nmax {
                for lz in -nmax..=nmax {
                    let rv = dr + Vec3::new(lx as f64, ly as f64, lz as f64) * l;
                    let r = rv.norm();
                    if r < 1e-12 || r > self.rcut {
                        continue;
                    }
                    let (fi, frr) = self.real_scalars(r);
                    add_iso_outer(&mut m, mu0 * fi, mu0 * frr, rv / r);
                }
            }
        }
        // Overlap correction on the minimum image.
        if !same {
            let mi = dr.min_image(l);
            let r = mi.norm();
            if r > 0.0 && r < 2.0 * self.a {
                let (di, drr) = self.overlap_scalars(r);
                add_iso_outer(&mut m, mu0 * di, mu0 * drr, mi / r);
            }
        }

        // Reciprocal sum over precomputed modes.
        for (k, coeff) in &self.kmodes {
            let c = (k.dot(dr)).cos() * coeff;
            let kh = k.normalized().expect("k modes exclude zero");
            add_iso_outer(&mut m, c, -c, kh);
        }

        if same {
            let s = self.self_coefficient();
            m[0] += s;
            m[4] += s;
            m[8] += s;
        }
        m
    }
}

#[inline]
fn add_iso_outer(m: &mut [f64; 9], s1: f64, s2: f64, u: Vec3) {
    let t = iso_plus_outer(s1, s2, u);
    for (a, b) in m.iter_mut().zip(&t) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: f64 = 1.0;
    const ETA: f64 = 1.0;
    const L: f64 = 10.0;

    fn max_diff(a: &[f64; 9], b: &[f64; 9]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn total_mobility_is_xi_independent() {
        // The defining property of the Ewald split.
        let dr = Vec3::new(2.3, -1.1, 0.7);
        let reference = RpyEwald::new(A, ETA, L, 1.0, 1e-12).mobility_tensor(dr, false);
        for xi in [0.4, 0.7, 1.5] {
            let m = RpyEwald::new(A, ETA, L, xi, 1e-12).mobility_tensor(dr, false);
            assert!(max_diff(&m, &reference) < 1e-10, "xi={xi}: diff {}", max_diff(&m, &reference));
        }
    }

    #[test]
    fn self_mobility_is_xi_independent_and_below_mu0() {
        let reference = RpyEwald::new(A, ETA, L, 1.0, 1e-12).mobility_tensor(Vec3::ZERO, true);
        for xi in [0.5, 1.4] {
            let m = RpyEwald::new(A, ETA, L, xi, 1e-12).mobility_tensor(Vec3::ZERO, true);
            assert!(max_diff(&m, &reference) < 1e-10, "xi={xi}");
        }
        // Known periodic self-mobility: mu0 (1 - 2.8373 a/L + 4.19 (a/L)^3 ...)
        let mu0 = rpy_self_mobility(A, ETA);
        let got = reference[0] / mu0;
        let want = 1.0 - 2.837297 * A / L + 4.19 * (A / L).powi(3);
        assert!((got - want).abs() < 2e-3, "self mobility {got} vs Hasimoto {want}");
        // Isotropy of the diagonal.
        assert!((reference[0] - reference[4]).abs() < 1e-10);
        assert!((reference[0] - reference[8]).abs() < 1e-10);
    }

    #[test]
    fn real_kernel_reduces_to_rpy_when_xi_is_tiny() {
        // xi -> 0 turns off the splitting: M^(1) -> free-space RPY.
        let s = RpyEwald::new(A, ETA, L, 1e-6, 1e-6);
        for r in [2.0f64, 3.5, 4.9] {
            let (fi, frr) = s.real_scalars(r);
            let (fi0, frr0) = rpy_pair_scalars(r, A);
            assert!((fi - fi0).abs() < 1e-5, "r={r}: {fi} vs {fi0}");
            assert!((frr - frr0).abs() < 1e-5);
        }
        // Self coefficient -> mu0.
        assert!((s.self_coefficient() / s.mu0() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn overlap_correction_restores_regularized_tensor() {
        let s = RpyEwald::new(A, ETA, L, 0.8, 1e-10);
        let r = 1.2; // < 2a
        let (di, drr) = s.overlap_scalars(r);
        let ar = A / r;
        let std_fi = 0.75 * ar + 0.5 * ar.powi(3);
        let std_frr = 0.75 * ar - 1.5 * ar.powi(3);
        let (reg_fi, reg_frr) = rpy_pair_scalars(r, A);
        assert!((std_fi + di - reg_fi).abs() < 1e-14);
        assert!((std_frr + drr - reg_frr).abs() < 1e-14);
        // No correction beyond contact.
        assert_eq!(s.overlap_scalars(2.5), (0.0, 0.0));
    }

    #[test]
    fn pair_tensor_is_symmetric_in_components() {
        let s = RpyEwald::new(A, ETA, L, 0.9, 1e-10);
        let m = s.mobility_tensor(Vec3::new(1.7, 2.9, -0.4), false);
        assert!((m[1] - m[3]).abs() < 1e-14);
        assert!((m[2] - m[6]).abs() < 1e-14);
        assert!((m[5] - m[7]).abs() < 1e-14);
    }

    #[test]
    fn mobility_is_periodic_in_dr() {
        let s = RpyEwald::new(A, ETA, L, 1.0, 1e-10);
        let dr = Vec3::new(1.2, -2.0, 3.3);
        let m1 = s.mobility_tensor(dr, false);
        let m2 = s.mobility_tensor(dr + Vec3::new(L, -L, 2.0 * L), false);
        assert!(max_diff(&m1, &m2) < 1e-9);
    }

    #[test]
    fn kmode_count_scales_with_xi() {
        let few = RpyEwald::new(A, ETA, L, 0.3, 1e-8).num_kmodes();
        let many = RpyEwald::new(A, ETA, L, 1.2, 1e-8).num_kmodes();
        assert!(few > 0);
        assert!(many > 8 * few, "kcut ~ xi: {few} vs {many}");
    }

    #[test]
    fn tolerance_controls_accuracy() {
        let dr = Vec3::new(2.0, 1.0, -1.5);
        let tight = RpyEwald::new(A, ETA, L, 1.0, 1e-12).mobility_tensor(dr, false);
        let loose = RpyEwald::new(A, ETA, L, 1.0, 1e-4).mobility_tensor(dr, false);
        let d = max_diff(&tight, &loose);
        assert!(d < 1e-4, "loose sum within its tolerance: {d}");
        assert!(d > 1e-14, "tolerances actually differ");
    }
}
