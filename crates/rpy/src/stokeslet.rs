//! Ewald summation of the Oseen (Stokeslet) tensor.
//!
//! Prior PME-accelerated Stokes-suspension codes (the paper's refs.
//! \[15\]–\[17\]: Guckel; Sierou & Brady; Saintillan, Darve & Shaqfeh) sum the
//! *Stokeslet* `G(r) = (I + r̂r̂ᵀ)/(8 pi eta r)` — the point-force Green's
//! function — rather than the finite-size RPY tensor. This module provides
//! that kernel with the matching Ewald split so the two formulations can be
//! compared directly: Beenakker's RPY split is the Stokeslet split plus
//! `O(a^3)` finite-size corrections, so the Oseen formulas here are exactly
//! the `a`-linear terms of [`crate::ewald::RpyEwald`] (the radius cancels
//! from the final operator).
//!
//! The Stokeslet diverges at `r -> 0` (no self-mobility regularization), so
//! it is only meaningful for *distinct* well-separated particles — one of
//! the practical reasons the paper insists on RPY for BD.

use crate::tensor::iso_plus_outer;
use hibd_mathx::{erfc, Vec3};
use std::f64::consts::PI;

/// Ewald split of the periodic Oseen tensor (Hasimoto-type).
#[derive(Clone, Debug)]
pub struct OseenEwald {
    pub eta: f64,
    pub box_l: f64,
    /// Splitting parameter.
    pub xi: f64,
    rcut: f64,
    kcut: f64,
    kmodes: Vec<(Vec3, f64)>,
}

impl OseenEwald {
    /// Build with truncation tolerance `tol` (units of `1/(8 pi eta)`).
    pub fn new(eta: f64, box_l: f64, xi: f64, tol: f64) -> OseenEwald {
        assert!(eta > 0.0 && box_l > 0.0 && xi > 0.0 && tol > 0.0 && tol < 1.0);
        let x = (1.0 / tol).ln().sqrt() * 1.5;
        let mut s =
            OseenEwald { eta, box_l, xi, rcut: x / xi, kcut: 2.0 * x * xi, kmodes: Vec::new() };
        s.build_kmodes();
        s
    }

    fn build_kmodes(&mut self) {
        let l = self.box_l;
        let nmax = (self.kcut * l / (2.0 * PI)).ceil() as i64;
        for nx in -nmax..=nmax {
            for ny in -nmax..=nmax {
                for nz in -nmax..=nmax {
                    if nx == 0 && ny == 0 && nz == 0 {
                        continue;
                    }
                    let k = Vec3::new(nx as f64, ny as f64, nz as f64) * (2.0 * PI / l);
                    let k2 = k.norm2();
                    if k2 > self.kcut * self.kcut {
                        continue;
                    }
                    self.kmodes.push((k, self.recip_scalar(k2) / (l * l * l)));
                }
            }
        }
    }

    /// Real-space scalars `(gI, grr)` in absolute units:
    /// `G^real(r) = gI I + grr r̂r̂ᵀ` — the `a`-linear part of Beenakker's
    /// split divided by `6 pi eta a`.
    pub fn real_scalars(&self, r: f64) -> (f64, f64) {
        let xi = self.xi;
        let x = xi * r;
        let e = (-x * x).exp() / PI.sqrt();
        let c = 1.0 / (6.0 * PI * self.eta);
        let gi = c * ((0.75 / r) * erfc(x) + (3.0 * xi.powi(3) * r * r - 4.5 * xi) * e);
        let grr = c * ((0.75 / r) * erfc(x) + (-3.0 * xi.powi(3) * r * r + 1.5 * xi) * e);
        (gi, grr)
    }

    /// Reciprocal kernel: `(1 + k^2/4xi^2 + k^4/8xi^4) e^{-k^2/4xi^2} / (eta k^2)`,
    /// applied with the transverse projector `(I - k̂k̂ᵀ)`.
    pub fn recip_scalar(&self, k2: f64) -> f64 {
        let xi2 = self.xi * self.xi;
        (1.0 + k2 / (4.0 * xi2) + k2 * k2 / (8.0 * xi2 * xi2)) * (-k2 / (4.0 * xi2)).exp()
            / (self.eta * k2)
    }

    /// The (divergent-free) self term of the split: `-xi/(sqrt(pi) pi eta)`.
    /// Unlike RPY there is no `mu0 I` to regularize it — the Stokeslet's
    /// self-interaction is infinite, and this constant only completes the
    /// split for the *interaction* part.
    pub fn self_coefficient(&self) -> f64 {
        -self.xi / (PI.sqrt() * PI * self.eta)
    }

    /// Periodic Oseen tensor between two distinct particles (minimum-image
    /// displacement `dr != 0`): real lattice sum + reciprocal sum.
    pub fn interaction_tensor(&self, dr: Vec3) -> [f64; 9] {
        let l = self.box_l;
        let mut m = [0.0f64; 9];
        let nmax = (self.rcut / l).ceil() as i64 + 1;
        for lx in -nmax..=nmax {
            for ly in -nmax..=nmax {
                for lz in -nmax..=nmax {
                    let rv = dr + Vec3::new(lx as f64, ly as f64, lz as f64) * l;
                    let r = rv.norm();
                    if r < 1e-12 || r > self.rcut {
                        continue;
                    }
                    let (gi, grr) = self.real_scalars(r);
                    add(&mut m, gi, grr, rv / r);
                }
            }
        }
        for (k, coeff) in &self.kmodes {
            let c = (k.dot(dr)).cos() * coeff;
            let kh = k.normalized().expect("k modes exclude zero");
            add(&mut m, c, -c, kh);
        }
        m
    }
}

#[inline]
fn add(m: &mut [f64; 9], s1: f64, s2: f64, u: Vec3) {
    let t = iso_plus_outer(s1, s2, u);
    for (a, b) in m.iter_mut().zip(&t) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewald::RpyEwald;

    const ETA: f64 = 1.0;
    const L: f64 = 10.0;

    fn max_diff(a: &[f64; 9], b: &[f64; 9]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn interaction_is_xi_independent() {
        let dr = Vec3::new(2.1, -1.3, 0.9);
        let reference = OseenEwald::new(ETA, L, 1.0, 1e-11).interaction_tensor(dr);
        for xi in [0.5, 1.4] {
            let m = OseenEwald::new(ETA, L, xi, 1e-11).interaction_tensor(dr);
            assert!(max_diff(&m, &reference) < 1e-9, "xi={xi}: {}", max_diff(&m, &reference));
        }
    }

    #[test]
    fn real_kernel_reduces_to_oseen_at_tiny_xi() {
        let s = OseenEwald::new(ETA, L, 1e-6, 1e-4);
        for r in [1.5f64, 3.0, 4.5] {
            let (gi, grr) = s.real_scalars(r);
            let oseen = 1.0 / (8.0 * PI * ETA * r);
            // The residual split terms are O(xi) ~ 1e-6 absolute here.
            assert!((gi - oseen).abs() < 1e-4 * oseen, "r={r}: {gi} vs {oseen}");
            assert!((grr - oseen).abs() < 1e-4 * oseen, "r={r}");
        }
    }

    #[test]
    fn rpy_equals_oseen_plus_a3_corrections() {
        // Beenakker's RPY split = Stokeslet split + O(a^3) terms: comparing
        // the two real-space kernels isolates terms that scale as a^3.
        let xi = 0.8;
        let oseen = OseenEwald::new(ETA, L, xi, 1e-10);
        for a in [0.5f64, 1.0] {
            let rpy = RpyEwald::kernel_only(a, ETA, L, xi);
            let mu0 = 1.0 / (6.0 * PI * ETA * a);
            for r in [2.5f64, 4.0] {
                let (fi, _) = rpy.real_scalars(r);
                let (gi, _) = oseen.real_scalars(r);
                let diff = mu0 * fi - gi;
                // The residual must scale as a^2 relative to mu0*fI ~ a^0
                // (i.e. absolute a^3/(6 pi eta a) = a^2 scaling).
                let x = xi * r;
                let e = (-x * x).exp() / PI.sqrt();
                let expected = mu0
                    * a.powi(3)
                    * ((0.5 / r.powi(3)) * hibd_mathx::erfc(x)
                        + (4.0 * xi.powi(7) * r.powi(4) - 20.0 * xi.powi(5) * r * r
                            + 14.0 * xi.powi(3)
                            + xi / (r * r))
                            * e);
                assert!((diff - expected).abs() < 1e-12, "a={a} r={r}: {diff} vs {expected}");
            }
        }
    }

    #[test]
    fn far_field_dominated_by_one_over_r() {
        let s = OseenEwald::new(ETA, 60.0, 0.5, 1e-8);
        let near = s.interaction_tensor(Vec3::new(3.0, 0.0, 0.0))[0];
        let far = s.interaction_tensor(Vec3::new(6.0, 0.0, 0.0))[0];
        // Periodic corrections bend this, but the leading decay survives.
        assert!(near > 1.5 * far, "near {near} far {far}");
    }

    #[test]
    fn tensor_is_symmetric() {
        let s = OseenEwald::new(ETA, L, 0.9, 1e-9);
        let m = s.interaction_tensor(Vec3::new(1.0, 2.0, -1.5));
        assert!((m[1] - m[3]).abs() < 1e-14);
        assert!((m[2] - m[6]).abs() < 1e-14);
        assert!((m[5] - m[7]).abs() < 1e-14);
    }
}
