//! Dense mobility-matrix assembly (the conventional algorithm's data
//! structure and the PME validation reference).

use crate::ewald::RpyEwald;
use crate::tensor::{rpy_pair_tensor, rpy_self_mobility};
use hibd_linalg::DMat;
use hibd_mathx::Vec3;
use rayon::prelude::*;

/// Assemble the dense `3n x 3n` periodic Ewald mobility matrix
/// (Algorithm 1, line 4). Parallel over block rows.
pub fn dense_ewald_mobility(positions: &[Vec3], ewald: &RpyEwald) -> DMat {
    let n = positions.len();
    let mut m = DMat::zeros(3 * n, 3 * n);
    let ncols = 3 * n;
    // Each thread fills the 3 scalar rows of a particle i for all j >= i;
    // the mirror is applied afterwards.
    m.as_mut_slice().par_chunks_mut(3 * ncols).enumerate().for_each(|(i, rows)| {
        for j in i..n {
            let (dr, same) = if i == j {
                (Vec3::ZERO, true)
            } else {
                ((positions[i] - positions[j]).min_image(ewald.box_l), false)
            };
            let t = ewald.mobility_tensor(dr, same);
            for bi in 0..3 {
                for bj in 0..3 {
                    rows[bi * ncols + 3 * j + bj] = t[3 * bi + bj];
                }
            }
        }
    });
    // Mirror the strictly-lower block triangle.
    for i in 0..3 * n {
        for j in 0..i {
            let v = m[(j, i)];
            m[(i, j)] = v;
        }
    }
    m
}

/// Assemble the dense free-space (non-periodic) RPY mobility matrix; used by
/// unit tests and as a Krylov test operator.
pub fn dense_rpy_free(positions: &[Vec3], a: f64, eta: f64) -> DMat {
    let n = positions.len();
    let mu0 = rpy_self_mobility(a, eta);
    let mut m = DMat::zeros(3 * n, 3 * n);
    for i in 0..n {
        for j in 0..n {
            let t: [f64; 9] = if i == j {
                [mu0, 0.0, 0.0, 0.0, mu0, 0.0, 0.0, 0.0, mu0]
            } else {
                rpy_pair_tensor(positions[i] - positions[j], a, eta)
            };
            for bi in 0..3 {
                for bj in 0..3 {
                    m[(3 * i + bi, 3 * j + bj)] = t[3 * bi + bj];
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_linalg::CholeskyFactor;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn ewald_matrix_is_symmetric() {
        let pos = lcg_positions(6, 10.0, 3);
        let ewald = RpyEwald::new(1.0, 1.0, 10.0, 0.8, 1e-8);
        let m = dense_ewald_mobility(&pos, &ewald);
        assert!(m.max_asymmetry() < 1e-9, "asymmetry {}", m.max_asymmetry());
    }

    #[test]
    fn ewald_matrix_is_positive_definite() {
        // SPD for arbitrary configurations is the property that lets both
        // Cholesky (Alg. 1) and Lanczos (Alg. 2) work.
        let pos = lcg_positions(8, 12.0, 9);
        let ewald = RpyEwald::new(1.0, 1.0, 12.0, 0.7, 1e-8);
        let m = dense_ewald_mobility(&pos, &ewald);
        CholeskyFactor::new(&m).expect("Ewald mobility must be SPD");
    }

    #[test]
    fn ewald_matrix_is_xi_independent() {
        let pos = lcg_positions(5, 9.0, 17);
        let m1 = dense_ewald_mobility(&pos, &RpyEwald::new(1.0, 1.0, 9.0, 0.6, 1e-10));
        let m2 = dense_ewald_mobility(&pos, &RpyEwald::new(1.0, 1.0, 9.0, 1.1, 1e-10));
        assert!(m1.max_abs_diff(&m2) < 1e-8, "diff {}", m1.max_abs_diff(&m2));
    }

    #[test]
    fn large_box_approaches_free_space() {
        // With a huge box the periodic images contribute O(a/L).
        let base = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(3.0, 0.0, 0.0), Vec3::new(0.0, 4.0, 1.0)];
        let box_l = 2000.0;
        let pos: Vec<Vec3> = base.iter().map(|p| *p + Vec3::splat(box_l / 2.0)).collect();
        let ewald = RpyEwald::new(1.0, 1.0, box_l, 4.0 / box_l, 1e-8);
        let per = dense_ewald_mobility(&pos, &ewald);
        let free = dense_rpy_free(&base, 1.0, 1.0);
        // Differences are dominated by the O(mu0 a/L) periodic correction.
        let mu0 = rpy_self_mobility(1.0, 1.0);
        let bound = 5.0 * mu0 * 1.0 / box_l * 2.8373;
        assert!(
            per.max_abs_diff(&free) < bound,
            "diff {} vs bound {bound}",
            per.max_abs_diff(&free)
        );
    }

    #[test]
    fn free_space_matrix_is_spd_even_with_overlaps() {
        // Yamakawa regularization keeps overlapping configurations SPD.
        let pos = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.0, 0.0), // heavily overlapping
            Vec3::new(0.0, 1.2, 0.0),
            Vec3::new(5.0, 5.0, 5.0),
        ];
        let m = dense_rpy_free(&pos, 1.0, 1.0);
        assert!(m.max_asymmetry() < 1e-15);
        CholeskyFactor::new(&m).expect("free-space RPY must be SPD");
    }

    #[test]
    fn periodic_matrix_spd_with_overlaps() {
        let mut pos = lcg_positions(6, 8.0, 21);
        pos.push(pos[0] + Vec3::new(0.7, 0.0, 0.0)); // overlapping pair
        let ewald = RpyEwald::new(1.0, 1.0, 8.0, 0.9, 1e-8);
        let m = dense_ewald_mobility(&pos, &ewald);
        CholeskyFactor::new(&m).expect("periodic RPY with overlap must be SPD");
    }

    #[test]
    fn diagonal_blocks_equal_self_mobility_tensor() {
        let pos = lcg_positions(4, 10.0, 5);
        let ewald = RpyEwald::new(1.0, 1.0, 10.0, 0.8, 1e-8);
        let m = dense_ewald_mobility(&pos, &ewald);
        let t = ewald.mobility_tensor(Vec3::ZERO, true);
        for i in 0..4 {
            for bi in 0..3 {
                for bj in 0..3 {
                    assert!((m[(3 * i + bi, 3 * i + bj)] - t[3 * bi + bj]).abs() < 1e-12);
                }
            }
        }
    }
}
