//! Property-based tests of the sparse kernels against dense references.

use hibd_sparse::{Bcsr3, Bcsr3Builder, Csr, CsrBuilder, FixedCsr};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

fn coo_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(nr, nc)| {
        prop::collection::vec((0..nr, 0..nc, -2.0f64..2.0), 0..40)
            .prop_map(move |entries| CooMatrix { nrows: nr, ncols: nc, entries })
    })
}

fn build_csr(m: &CooMatrix) -> Csr {
    let mut b = CsrBuilder::new(m.nrows, m.ncols);
    for &(r, c, v) in &m.entries {
        b.push(r, c, v);
    }
    b.build()
}

fn dense_of(m: &CooMatrix) -> Vec<f64> {
    let mut d = vec![0.0; m.nrows * m.ncols];
    for &(r, c, v) in &m.entries {
        d[r * m.ncols + c] += v;
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matvec_matches_dense(m in coo_matrix(), xs in prop::collection::vec(-1.0f64..1.0, 12)) {
        let a = build_csr(&m);
        let dense = dense_of(&m);
        let x = &xs[..m.ncols];
        let mut y = vec![0.0; m.nrows];
        a.mul_vec(x, &mut y);
        for r in 0..m.nrows {
            let want: f64 = (0..m.ncols).map(|c| dense[r * m.ncols + c] * x[c]).sum();
            prop_assert!((y[r] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn csr_to_dense_roundtrips_builder(m in coo_matrix()) {
        let a = build_csr(&m);
        // The builder sums duplicates in sorted order, the reference in
        // insertion order: equal up to summation-order rounding.
        for (got, want) in a.to_dense().iter().zip(dense_of(&m)) {
            prop_assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0));
        }
        // nnz never exceeds the entry count.
        prop_assert!(a.nnz() <= m.entries.len());
    }

    #[test]
    fn csr_transpose_product_is_adjoint(
        m in coo_matrix(),
        xs in prop::collection::vec(-1.0f64..1.0, 12),
        ys in prop::collection::vec(-1.0f64..1.0, 12),
    ) {
        // <A x, y> == <x, A^T y>
        let a = build_csr(&m);
        let x = &xs[..m.ncols];
        let y = &ys[..m.nrows];
        let mut ax = vec![0.0; m.nrows];
        a.mul_vec(x, &mut ax);
        let lhs: f64 = ax.iter().zip(y).map(|(p, q)| p * q).sum();
        let mut aty = vec![0.0; m.ncols];
        a.tr_mul_vec_add(y, &mut aty);
        let rhs: f64 = aty.iter().zip(x).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-11);
    }

    #[test]
    fn fixed_csr_matches_equivalent_csr(
        (nr, nc, nnz, cols, vals, xs) in (1usize..10, 2usize..16, 1usize..5)
            .prop_flat_map(|(nr, nc, nnz)| (
                Just(nr), Just(nc), Just(nnz),
                prop::collection::vec(0..nc as u32, nr * nnz),
                prop::collection::vec(-1.0f64..1.0, nr * nnz),
                prop::collection::vec(-1.0f64..1.0, nc),
            ))
    ) {
        let fixed = FixedCsr::from_raw(nr, nc, nnz, cols.clone(), vals.clone());
        let mut b = CsrBuilder::new(nr, nc);
        for r in 0..nr {
            for t in 0..nnz {
                b.push(r, cols[r * nnz + t] as usize, vals[r * nnz + t]);
            }
        }
        let csr = b.build();
        let mut y1 = vec![0.0; nr];
        fixed.mul_vec(&xs, &mut y1);
        let mut y2 = vec![0.0; nr];
        csr.mul_vec(&xs, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        // Transpose path too.
        let xr: Vec<f64> = (0..nr).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut t1 = vec![0.0; nc];
        fixed.tr_mul_vec_add(&xr, &mut t1);
        let mut t2 = vec![0.0; nc];
        csr.tr_mul_vec_add(&xr, &mut t2);
        for (a, b) in t1.iter().zip(&t2) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bcsr_multi_rhs_consistent_with_single(
        (nb, blocks, s, xs) in (1usize..6, prop::collection::vec((0usize..6, 0usize..6, -1.0f64..1.0), 1..12), 1usize..5, prop::collection::vec(-1.0f64..1.0, 18 * 4))
    ) {
        let mut b = Bcsr3Builder::new(nb, nb);
        for &(bi, bj, v) in &blocks {
            if bi < nb && bj < nb {
                let mut blk = [0.0; 9];
                for (t, e) in blk.iter_mut().enumerate() {
                    *e = v + t as f64 * 0.01;
                }
                b.push(bi, bj, blk);
            }
        }
        let a: Bcsr3 = b.build();
        let dim = 3 * nb;
        let x = &xs[..dim * s];
        let mut y = vec![0.0; dim * s];
        a.mul_multi(x, &mut y, s);
        for col in 0..s {
            let xc: Vec<f64> = (0..dim).map(|i| x[i * s + col]).collect();
            let mut yc = vec![0.0; dim];
            a.mul_vec(&xc, &mut yc);
            for i in 0..dim {
                prop_assert!((y[i * s + col] - yc[i]).abs() < 1e-12);
            }
        }
    }
}
