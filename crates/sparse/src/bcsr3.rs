//! Block CSR with dense 3x3 blocks — the real-space RPY operator.
//!
//! The real-space Ewald sum couples each pair of particles within the cutoff
//! `r_max` through a 3x3 tensor (paper Section IV-C). Storing those tensors
//! as dense row-major blocks amortizes index overhead 9x compared to scalar
//! CSR and keeps the inner SpMV kernel fully unrolled, mirroring the BCSR
//! kernels of the paper's refs. \[24\] and \[26\].
//!
//! Block row `i` acts on particle `i`'s 3-vector; the logical scalar matrix
//! is `3*nbrows x 3*nbcols`.

use hibd_hot as hibd;
use rayon::prelude::*;

/// Builder accumulating 3x3 blocks in coordinate form.
#[derive(Clone, Debug)]
pub struct Bcsr3Builder {
    nbrows: usize,
    nbcols: usize,
    entries: Vec<(usize, usize, [f64; 9])>,
}

impl Bcsr3Builder {
    pub fn new(nbrows: usize, nbcols: usize) -> Self {
        Bcsr3Builder { nbrows, nbcols, entries: Vec::new() }
    }

    /// Record `A[bi, bj] += block` (row-major 3x3).
    pub fn push(&mut self, bi: usize, bj: usize, block: [f64; 9]) {
        debug_assert!(bi < self.nbrows && bj < self.nbcols);
        self.entries.push((bi, bj, block));
    }

    /// Number of accumulated (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge entries of several builders (parallel assembly pattern: one
    /// builder per thread, then concatenate).
    pub fn append(&mut self, other: &mut Bcsr3Builder) {
        assert_eq!(self.nbrows, other.nbrows);
        assert_eq!(self.nbcols, other.nbcols);
        self.entries.append(&mut other.entries);
    }

    /// Assemble, summing duplicate blocks, block columns sorted per row.
    pub fn build(mut self) -> Bcsr3 {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut merged: Vec<(usize, usize, [f64; 9])> = Vec::with_capacity(self.entries.len());
        for &(r, c, blk) in &self.entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => {
                    for (a, b) in last.2.iter_mut().zip(&blk) {
                        *a += b;
                    }
                }
                _ => merged.push((r, c, blk)),
            }
        }
        let mut indptr = vec![0usize; self.nbrows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for i in 0..self.nbrows {
            indptr[i + 1] += indptr[i];
        }
        Bcsr3 {
            nbrows: self.nbrows,
            nbcols: self.nbcols,
            indptr,
            indices: merged.iter().map(|e| e.1 as u32).collect(),
            blocks: merged.iter().map(|e| e.2).collect(),
        }
    }
}

/// Block compressed sparse row matrix with 3x3 blocks.
#[derive(Clone, Debug)]
pub struct Bcsr3 {
    nbrows: usize,
    nbcols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    blocks: Vec<[f64; 9]>,
}

impl Bcsr3 {
    /// Number of block rows (particles).
    pub fn nbrows(&self) -> usize {
        self.nbrows
    }

    pub fn nbcols(&self) -> usize {
        self.nbcols
    }

    /// Number of stored 3x3 blocks.
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// Memory footprint in bytes (blocks + indices + row pointers).
    pub fn memory_bytes(&self) -> usize {
        self.blocks.len() * 72 + self.indices.len() * 4 + self.indptr.len() * 8
    }

    /// `(block columns, blocks)` of one block row.
    #[inline]
    pub fn row(&self, br: usize) -> (&[u32], &[[f64; 9]]) {
        let (s, e) = (self.indptr[br], self.indptr[br + 1]);
        (&self.indices[s..e], &self.blocks[s..e])
    }

    /// `y = A x` for `x` of length `3*nbcols`, parallel over block rows.
    #[hibd::hot]
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), 3 * self.nbcols);
        assert_eq!(y.len(), 3 * self.nbrows);
        y.par_chunks_mut(3).enumerate().for_each(|(br, yb)| {
            let (cols, blocks) = self.row(br);
            let mut acc = [0.0f64; 3];
            for (c, b) in cols.iter().zip(blocks) {
                let xb = &x[3 * *c as usize..3 * *c as usize + 3];
                acc[0] += b[0] * xb[0] + b[1] * xb[1] + b[2] * xb[2];
                acc[1] += b[3] * xb[0] + b[4] * xb[1] + b[5] * xb[2];
                acc[2] += b[6] * xb[0] + b[7] * xb[1] + b[8] * xb[2];
            }
            yb.copy_from_slice(&acc);
        });
    }

    /// `Y = A X` for `X` row-major `[3*nbcols][s]` — the paper's
    /// multiple-right-hand-side SpMV (ref. \[24\]), used when the same mobility
    /// operator acts on a block of `lambda_RPY` Krylov vectors.
    #[hibd::hot]
    pub fn mul_multi(&self, x: &[f64], y: &mut [f64], s: usize) {
        assert_eq!(x.len(), 3 * self.nbcols * s);
        assert_eq!(y.len(), 3 * self.nbrows * s);
        y.par_chunks_mut(3 * s).enumerate().for_each(|(br, yb)| {
            yb.fill(0.0);
            let (cols, blocks) = self.row(br);
            let (y0, rest) = yb.split_at_mut(s);
            let (y1, y2) = rest.split_at_mut(s);
            for (c, b) in cols.iter().zip(blocks) {
                let base = 3 * *c as usize * s;
                let x0 = &x[base..base + s];
                let x1 = &x[base + s..base + 2 * s];
                let x2 = &x[base + 2 * s..base + 3 * s];
                for j in 0..s {
                    y0[j] += b[0] * x0[j] + b[1] * x1[j] + b[2] * x2[j];
                    y1[j] += b[3] * x0[j] + b[4] * x1[j] + b[5] * x2[j];
                    y2[j] += b[6] * x0[j] + b[7] * x1[j] + b[8] * x2[j];
                }
            }
        });
    }

    /// Densify to a `3*nbrows x 3*nbcols` row-major matrix (tests only).
    pub fn to_dense(&self) -> Vec<f64> {
        let (nr, nc) = (3 * self.nbrows, 3 * self.nbcols);
        let mut d = vec![0.0; nr * nc];
        for br in 0..self.nbrows {
            let (cols, blocks) = self.row(br);
            for (c, b) in cols.iter().zip(blocks) {
                for i in 0..3 {
                    for j in 0..3 {
                        d[(3 * br + i) * nc + 3 * *c as usize + j] += b[3 * i + j];
                    }
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(v: f64) -> [f64; 9] {
        let mut b = [0.0; 9];
        for (i, x) in b.iter_mut().enumerate() {
            *x = v + i as f64 * 0.1;
        }
        b
    }

    fn example() -> Bcsr3 {
        let mut b = Bcsr3Builder::new(3, 3);
        b.push(0, 0, block(1.0));
        b.push(0, 2, block(2.0));
        b.push(2, 1, block(-1.0));
        b.build()
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = example();
        let dense = a.to_dense();
        let x: Vec<f64> = (0..9).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y = vec![0.0; 9];
        a.mul_vec(&x, &mut y);
        for r in 0..9 {
            let want: f64 = (0..9).map(|c| dense[r * 9 + c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-14, "r={r}");
        }
    }

    #[test]
    fn empty_rows_give_zero() {
        let a = example();
        let x = vec![1.0; 9];
        let mut y = vec![7.0; 9]; // pre-filled garbage must be overwritten
        a.mul_vec(&x, &mut y);
        assert_eq!(&y[3..6], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn duplicate_blocks_sum() {
        let mut b = Bcsr3Builder::new(1, 1);
        b.push(0, 0, block(1.0));
        b.push(0, 0, block(2.0));
        let a = b.build();
        assert_eq!(a.nblocks(), 1);
        let d = a.to_dense();
        assert!((d[0] - 3.0).abs() < 1e-15);
    }

    #[test]
    fn mul_multi_matches_column_wise_mul_vec() {
        let a = example();
        let s = 4;
        let x: Vec<f64> = (0..9 * s).map(|i| (i as f64 * 0.17).cos()).collect();
        let mut y = vec![0.0; 9 * s];
        a.mul_multi(&x, &mut y, s);
        for col in 0..s {
            let xc: Vec<f64> = (0..9).map(|r| x[r * s + col]).collect();
            let mut yc = vec![0.0; 9];
            a.mul_vec(&xc, &mut yc);
            for r in 0..9 {
                assert!((y[r * s + col] - yc[r]).abs() < 1e-13, "r={r} col={col}");
            }
        }
    }

    #[test]
    fn builder_append_merges() {
        let mut b1 = Bcsr3Builder::new(2, 2);
        b1.push(0, 0, block(1.0));
        let mut b2 = Bcsr3Builder::new(2, 2);
        b2.push(1, 1, block(2.0));
        b2.push(0, 0, block(0.5));
        b1.append(&mut b2);
        assert!(b2.is_empty());
        let a = b1.build();
        assert_eq!(a.nblocks(), 2);
        let d = a.to_dense();
        assert!((d[0] - 1.5).abs() < 1e-15);
    }

    #[test]
    fn memory_accounting() {
        let a = example();
        assert_eq!(a.memory_bytes(), 3 * 72 + 3 * 4 + 4 * 8);
    }
}
