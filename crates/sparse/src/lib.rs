//! `hibd-sparse`: sparse matrix kernels for the matrix-free BD pipeline.
//!
//! Three formats, each matching a specific role in the paper:
//!
//! * [`Csr`] — general compressed sparse row; reference format and builder.
//! * [`FixedCsr`] — CSR **without row pointers**: every row has the same
//!   number of nonzeros. This is exactly the storage the paper describes for
//!   the PME interpolation matrix `P` ("the row pointers are not necessary
//!   since all rows of P have the same number of nonzeros", Section IV-B1):
//!   each particle spreads onto `p^3` mesh points. Column indices are `u32`
//!   to halve index memory.
//! * [`Bcsr3`] — block CSR with dense 3x3 blocks, the format used for the
//!   real-space operator `M_real` ("This sparse matrix has 3x3 blocks, owing
//!   to the tensor nature of the RPY tensor. We thus store the sparse matrix
//!   in Block Compressed Sparse Row (BCSR) format", Section IV-C).
//!
//! All formats provide single-vector products and **multi-right-hand-side**
//! products (`A * X` for `X` with `s` columns, stored row-major `[n][s]`),
//! since Algorithm 2 applies the same mobility operator to a block of
//! `lambda_RPY` vectors at once (the paper's ref. \[24\] optimization).

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels

pub mod bcsr3;
pub mod csr;
pub mod fixed;

pub use bcsr3::{Bcsr3, Bcsr3Builder};
pub use csr::{Csr, CsrBuilder};
pub use fixed::FixedCsr;
