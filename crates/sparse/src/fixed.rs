//! CSR with a fixed nonzero count per row — the PME interpolation matrix.
//!
//! Every particle interpolates from / spreads onto exactly `p^3` mesh points
//! (paper Eq. 7), so the matrix `P` (`n` rows, `K^3` columns) needs no row
//! pointers: row `i` occupies `indices[i*nnz .. (i+1)*nnz]`. Column indices
//! are `u32` (a `K^3` mesh fits easily; `400^3 = 6.4e7 < 2^32`) which matches
//! the memory-traffic model of the paper (Section IV-D uses 4-byte indices:
//! `12 p^3 n` bytes for values + indices).

use hibd_hot as hibd;
use rayon::prelude::*;

/// Sparse matrix with exactly `nnz_per_row` nonzeros in every row.
#[derive(Clone, Debug)]
pub struct FixedCsr {
    nrows: usize,
    ncols: usize,
    nnz_per_row: usize,
    indices: Vec<u32>,
    data: Vec<f64>,
}

impl FixedCsr {
    /// Construct from raw arrays: `indices`/`data` of length
    /// `nrows * nnz_per_row`, row-contiguous.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        nnz_per_row: usize,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> FixedCsr {
        assert_eq!(indices.len(), nrows * nnz_per_row);
        assert_eq!(data.len(), nrows * nnz_per_row);
        assert!(indices.iter().all(|&c| (c as usize) < ncols), "column index out of range");
        FixedCsr { nrows, ncols, nnz_per_row, indices, data }
    }

    /// Allocate a zero matrix (all indices 0, all values 0); rows are filled
    /// in-place via [`row_mut`](Self::row_mut).
    pub fn zeros(nrows: usize, ncols: usize, nnz_per_row: usize) -> FixedCsr {
        FixedCsr {
            nrows,
            ncols,
            nnz_per_row,
            indices: vec![0; nrows * nnz_per_row],
            data: vec![0.0; nrows * nnz_per_row],
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz_per_row(&self) -> usize {
        self.nnz_per_row
    }

    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Memory footprint in bytes (values + indices), the `12 p^3 n` of the
    /// paper's performance model.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 8 + self.indices.len() * 4
    }

    /// `(columns, values)` of one row.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let s = r * self.nnz_per_row;
        let e = s + self.nnz_per_row;
        (&self.indices[s..e], &self.data[s..e])
    }

    /// Mutable `(columns, values)` of one row, for in-place assembly.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> (&mut [u32], &mut [f64]) {
        let s = r * self.nnz_per_row;
        let e = s + self.nnz_per_row;
        // Split borrows of the two arrays.
        let idx = &mut self.indices[s..e];
        let dat = &mut self.data[s..e];
        (idx, dat)
    }

    /// Mutable view of all rows at once as `(indices, data)` chunked per row;
    /// used for parallel assembly.
    pub fn rows_mut(
        &mut self,
    ) -> (rayon::slice::ChunksMut<'_, u32>, rayon::slice::ChunksMut<'_, f64>) {
        (self.indices.par_chunks_mut(self.nnz_per_row), self.data.par_chunks_mut(self.nnz_per_row))
    }

    /// `y = A x` — the PME *interpolation* step (paper Eq. 9), parallel over
    /// rows (particles).
    #[hibd::hot]
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let nnz = self.nnz_per_row;
        y.par_iter_mut().zip(self.indices.par_chunks(nnz).zip(self.data.par_chunks(nnz))).for_each(
            |(yr, (cols, vals))| {
                let mut acc = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    acc += v * x[*c as usize];
                }
                *yr = acc;
            },
        );
    }

    /// `y += A^T x` over a contiguous range of rows — one *spreading* stage
    /// (paper Eq. 8). Serial: the caller is responsible for running only
    /// write-disjoint row sets concurrently (the paper's independent sets).
    ///
    /// ## Write-disjointness contract (safe API, unsafe callers)
    /// This method itself is safe — it takes `&mut y` — but callers that
    /// materialize several `&mut y` views from a raw pointer (the
    /// independent-set scatter in `hibd-pme` does) must guarantee the row
    /// ranges they run concurrently touch disjoint column sets. That
    /// guarantee is machine-checked by the `SpreadPlan` schedule verifier.
    #[hibd::hot]
    pub fn tr_mul_vec_add_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        debug_assert!(rows.end <= self.nrows);
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        for r in rows {
            let (cols, vals) = self.row(r);
            let xr = x[r];
            for (c, v) in cols.iter().zip(vals) {
                y[*c as usize] += v * xr;
            }
        }
    }

    /// `y += A^T x` over an explicit row list (an independent-set block).
    ///
    /// # Safety contract (checked only by debug assertions)
    /// Caller must not run two calls concurrently whose rows share columns
    /// — i.e. concurrent row lists must come from one parity class of a
    /// verified `SpreadPlan` schedule (or be disjoint by construction).
    /// The method is safe Rust; the contract guards the aliased-`&mut y`
    /// pattern used by the parallel scatter.
    #[hibd::hot]
    pub fn tr_mul_vec_add_rowlist(&self, rows: &[u32], x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        for &r in rows {
            let (cols, vals) = self.row(r as usize);
            let xr = x[r as usize];
            for (c, v) in cols.iter().zip(vals) {
                y[*c as usize] += v * xr;
            }
        }
    }

    /// Full serial `y += A^T x` (reference path / small systems).
    pub fn tr_mul_vec_add(&self, x: &[f64], y: &mut [f64]) {
        self.tr_mul_vec_add_rows(0..self.nrows, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> FixedCsr {
        // 3 rows x 6 cols, 2 nnz per row:
        // row0: (0, 1.0) (3, 2.0)
        // row1: (1, -1.0) (1, 0.5)  [duplicate col within row is allowed]
        // row2: (5, 4.0) (2, 3.0)
        FixedCsr::from_raw(3, 6, 2, vec![0, 3, 1, 1, 5, 2], vec![1.0, 2.0, -1.0, 0.5, 4.0, 3.0])
    }

    #[test]
    fn mul_vec_reference() {
        let a = example();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut y = [0.0; 3];
        a.mul_vec(&x, &mut y);
        assert_eq!(y[0], 1.0 + 8.0);
        assert_eq!(y[1], -2.0 + 1.0);
        assert_eq!(y[2], 24.0 + 9.0);
    }

    #[test]
    fn tr_mul_matches_dense_transpose() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 6];
        a.tr_mul_vec_add(&x, &mut y);
        assert_eq!(y, [1.0, -1.0, 9.0, 2.0, 0.0, 12.0]);
    }

    #[test]
    fn tr_mul_in_stages_equals_full() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 6];
        a.tr_mul_vec_add(&x, &mut y1);
        let mut y2 = [0.0; 6];
        a.tr_mul_vec_add_rows(0..1, &x, &mut y2);
        a.tr_mul_vec_add_rows(1..3, &x, &mut y2);
        assert_eq!(y1, y2);
        let mut y3 = [0.0; 6];
        a.tr_mul_vec_add_rowlist(&[2, 0], &x, &mut y3);
        a.tr_mul_vec_add_rowlist(&[1], &x, &mut y3);
        assert_eq!(y1, y3);
    }

    #[test]
    fn row_mut_assembly() {
        let mut a = FixedCsr::zeros(2, 4, 3);
        {
            let (cols, vals) = a.row_mut(1);
            cols.copy_from_slice(&[3, 0, 2]);
            vals.copy_from_slice(&[1.0, 2.0, 3.0]);
        }
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut y = [0.0; 2];
        a.mul_vec(&x, &mut y);
        assert_eq!(y, [0.0, 6.0]);
        assert_eq!(a.memory_bytes(), 6 * 8 + 6 * 4);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_out_of_range_column() {
        FixedCsr::from_raw(1, 2, 2, vec![0, 5], vec![1.0, 1.0]);
    }
}
