//! General compressed sparse row matrices.

use hibd_hot as hibd;
use rayon::prelude::*;

/// Coordinate-format accumulator that assembles into [`Csr`].
///
/// Duplicate `(row, col)` entries are summed during assembly.
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CsrBuilder {
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CsrBuilder { nrows, ncols, entries: Vec::new() }
    }

    /// Record `a[row, col] += val`.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.entries.push((row, col, val));
    }

    /// Assemble into CSR, summing duplicates, columns sorted per row.
    pub fn build(mut self) -> Csr {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; self.nrows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            indptr[i + 1] += indptr[i];
        }
        let indices = merged.iter().map(|e| e.1).collect();
        let data = merged.iter().map(|e| e.2).collect();
        Csr { nrows: self.nrows, ncols: self.ncols, indptr, indices, data }
    }
}

/// Compressed sparse row matrix (f64 values, usize indices).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl Csr {
    /// Construct from raw CSR arrays. Panics if the invariants don't hold.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Csr {
        assert_eq!(indptr.len(), nrows + 1);
        assert_eq!(indptr[0], 0);
        assert_eq!(*indptr.last().unwrap(), indices.len());
        assert_eq!(indices.len(), data.len());
        assert!(indptr.windows(2).all(|w| w[0] <= w[1]), "indptr must be nondecreasing");
        assert!(indices.iter().all(|&c| c < ncols), "column index out of range");
        Csr { nrows, ncols, indptr, indices, data }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// `(columns, values)` of one row.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.data[s..e])
    }

    /// `y = A x` (parallel over rows).
    #[hibd::hot]
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c];
            }
            *yr = acc;
        });
    }

    /// `y += A^T x` (serial scatter).
    #[hibd::hot]
    pub fn tr_mul_vec_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let xr = x[r];
            for (c, v) in cols.iter().zip(vals) {
                y[*c] += v * xr;
            }
        }
    }

    /// `Y = A X` for `X` with `ncolsx` columns, both row-major `[n][ncolsx]`.
    #[hibd::hot]
    pub fn mul_multi(&self, x: &[f64], y: &mut [f64], ncolsx: usize) {
        assert_eq!(x.len(), self.ncols * ncolsx);
        assert_eq!(y.len(), self.nrows * ncolsx);
        y.par_chunks_mut(ncolsx).enumerate().for_each(|(r, yr)| {
            yr.fill(0.0);
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let xr = &x[c * ncolsx..(c + 1) * ncolsx];
                for (o, xi) in yr.iter_mut().zip(xr) {
                    *o += v * xi;
                }
            }
        });
    }

    /// Densify (tests / tiny systems only).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[r * self.ncols + c] += v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut b = CsrBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 1, 4.0);
        b.push(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn build_sorts_and_fills_empty_rows() {
        let a = example();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row(0), (&[0usize, 2][..], &[1.0, 2.0][..]));
        assert_eq!(a.row(1), (&[][..], &[][..]));
        assert_eq!(a.row(2), (&[0usize, 1][..], &[3.0, 4.0][..]));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(1, 0, -1.0);
        let a = b.build();
        assert_eq!(a.row(0), (&[1usize][..], &[3.5][..]));
        assert_eq!(a.row(1), (&[0usize][..], &[-1.0][..]));
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.mul_vec(&x, &mut y);
        assert_eq!(y, [7.0, 0.0, 11.0]);
    }

    #[test]
    fn tr_mul_vec_matches_dense_transpose() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.tr_mul_vec_add(&x, &mut y);
        // A^T x: col0: 1*1 + 3*3 = 10; col1: 4*3 = 12; col2: 2*1 = 2
        assert_eq!(y, [10.0, 12.0, 2.0]);
    }

    #[test]
    fn mul_multi_matches_repeated_mul_vec() {
        let a = example();
        let s = 3;
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.5 - 1.0).collect(); // 3x3 row-major
        let mut y = vec![0.0; 9];
        a.mul_multi(&x, &mut y, s);
        for col in 0..s {
            let xc: Vec<f64> = (0..3).map(|r| x[r * s + col]).collect();
            let mut yc = vec![0.0; 3];
            a.mul_vec(&xc, &mut yc);
            for r in 0..3 {
                assert!((y[r * s + col] - yc[r]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn from_raw_validates() {
        let a = Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(a.to_dense(), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_bad_indptr() {
        Csr::from_raw(2, 2, vec![0, 3, 2], vec![0, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn random_matrix_consistency() {
        // Pseudo-random matrix: CSR ops vs dense reference.
        let (nr, nc) = (17, 23);
        let mut b = CsrBuilder::new(nr, nc);
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..120 {
            let r = (next() % nr as u64) as usize;
            let c = (next() % nc as u64) as usize;
            let v = (next() % 1000) as f64 / 500.0 - 1.0;
            b.push(r, c, v);
        }
        let a = b.build();
        let dense = a.to_dense();
        let x: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; nr];
        a.mul_vec(&x, &mut y);
        for r in 0..nr {
            let want: f64 = (0..nc).map(|c| dense[r * nc + c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-12);
        }
        // transpose product
        let xt: Vec<f64> = (0..nr).map(|i| (i as f64 * 0.71).cos()).collect();
        let mut yt = vec![0.0; nc];
        a.tr_mul_vec_add(&xt, &mut yt);
        for c in 0..nc {
            let want: f64 = (0..nr).map(|r| dense[r * nc + c] * xt[r]).sum();
            assert!((yt[c] - want).abs() < 1e-12);
        }
    }
}
