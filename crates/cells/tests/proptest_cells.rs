//! Property: the cell list (periodic and open constructions) finds exactly
//! the brute-force pair set, for any particle configuration, box size, and
//! cutoff.

use hibd_cells::CellList;
use hibd_mathx::Vec3;
use proptest::prelude::*;
use std::collections::HashSet;

fn config() -> impl Strategy<Value = (Vec<(f64, f64, f64)>, f64, f64)> {
    (4.0f64..25.0, 0.5f64..5.0).prop_flat_map(|(box_l, rc)| {
        (
            prop::collection::vec((-5.0f64..30.0, -5.0f64..30.0, -5.0f64..30.0), 0..60),
            Just(box_l),
            Just(rc),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pair_set_matches_brute_force((raw, box_l, rc) in config()) {
        let pos: Vec<Vec3> = raw.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let cl = CellList::new(&pos, box_l, rc);

        let mut visits: Vec<(usize, usize, Vec3, f64)> = Vec::new();
        cl.for_each_pair(|i, j, dr, r2| visits.push((i, j, dr, r2)));

        let mut got = HashSet::new();
        for &(i, j, dr, r2) in &visits {
            prop_assert!(r2 <= rc * rc + 1e-12, "pair beyond cutoff");
            prop_assert!((dr.norm2() - r2).abs() < 1e-12, "inconsistent geometry");
            let key = if i < j { (i, j) } else { (j, i) };
            got.insert(key);
        }
        prop_assert_eq!(visits.len(), got.len(), "each pair visited exactly once");

        let wrapped: Vec<Vec3> = pos.iter().map(|p| p.wrap_into_box(box_l)).collect();
        let mut want = HashSet::new();
        for i in 0..wrapped.len() {
            for j in i + 1..wrapped.len() {
                let d2 = (wrapped[i] - wrapped[j]).min_image(box_l).norm2();
                if d2 <= rc * rc && d2 > 0.0 {
                    want.insert((i, j));
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn open_pair_set_matches_brute_force((raw, _box_l, rc) in config()) {
        // Open construction: no wrap, raw displacements, domain = bounding
        // box of the cloud (positions may be negative).
        let pos: Vec<Vec3> = raw.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let cl = hibd_cells::CellList::new_open(&pos, rc);

        let mut got = HashSet::new();
        let mut visits = 0usize;
        cl.for_each_pair(|i, j, dr, r2| {
            visits += 1;
            let want = pos[i] - pos[j];
            assert!((dr - want).norm() < 1e-12, "open dr must be the raw difference");
            assert!((dr.norm2() - r2).abs() < 1e-12);
            got.insert(if i < j { (i, j) } else { (j, i) });
        });
        prop_assert_eq!(visits, got.len(), "each pair visited exactly once");

        let mut want = HashSet::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d2 = (pos[i] - pos[j]).norm2();
                if d2 <= rc * rc && d2 > 0.0 {
                    want.insert((i, j));
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn cell_decomposition_covers_exactly_once((raw, box_l, rc) in config()) {
        // The per-cell iteration used for parallel assembly must partition
        // the pair set.
        let pos: Vec<Vec3> = raw.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let cl = CellList::new(&pos, box_l, rc);
        let mut whole = Vec::new();
        cl.for_each_pair(|i, j, _, _| whole.push(if i < j { (i, j) } else { (j, i) }));
        let mut by_cell = Vec::new();
        for c in 0..cl.num_cells() {
            cl.for_each_pair_in_cell(c, &mut |i, j, _, _| {
                by_cell.push(if i < j { (i, j) } else { (j, i) });
            });
        }
        prop_assert_eq!(whole.len(), by_cell.len());
        let s1: HashSet<_> = whole.into_iter().collect();
        let s2: HashSet<_> = by_cell.into_iter().collect();
        prop_assert_eq!(s1, s2);
    }
}
