//! `hibd-cells`: periodic and open-boundary Verlet cell lists.
//!
//! Short-range pair interactions — the real-space Ewald sum (cutoff `r_max`)
//! and the repulsive contact force (cutoff `2a`) — are found in linear time
//! by binning particles into cells of side `>= cutoff` and scanning only the
//! 27-cell neighborhoods (paper Section IV-C, ref. \[27\]).
//!
//! Pairs are visited once (unordered) through a half stencil of 13 forward
//! neighbor cells plus the intra-cell pairs. When the box is too small to
//! hold 3 cells per dimension the structure transparently falls back to a
//! brute-force `O(n^2)` minimum-image scan, which is both correct and fast at
//! such sizes.
//!
//! Two constructions share the same iteration interface:
//!
//! * [`CellList::new`] — cubic periodic box, minimum-image displacements;
//! * [`CellList::new_open`] — open (free-space) boundary: the domain is the
//!   bounding box of the particle cloud, nothing wraps, and `dr` is the raw
//!   difference `r_i - r_j`. This is what the treecode near field and the
//!   contact-force path of open-boundary BD must use — a periodic list would
//!   silently pair particles across the bounding-box seam.

pub mod verlet;

pub use verlet::VerletList;

use hibd_mathx::Vec3;

/// A cubic-box periodic cell list.
///
/// ```
/// use hibd_cells::CellList;
/// use hibd_mathx::Vec3;
///
/// // Two particles straddling the periodic boundary are neighbors.
/// let pos = vec![Vec3::new(0.3, 5.0, 5.0), Vec3::new(9.8, 5.0, 5.0)];
/// let cl = CellList::new(&pos, 10.0, 1.0);
/// let mut found = Vec::new();
/// cl.for_each_pair(|i, j, _dr, r2| found.push((i, j, r2)));
/// assert_eq!(found.len(), 1);
/// assert!((found[0].2 - 0.25).abs() < 1e-12); // min-image distance 0.5
/// ```
#[derive(Clone, Debug)]
pub struct CellList {
    box_l: f64,
    cutoff: f64,
    ncell: usize,
    /// Particle indices grouped by cell: `order[start[c]..start[c+1]]`.
    start: Vec<usize>,
    order: Vec<u32>,
    /// Wrapped (periodic) or raw (open) positions, indexable by original
    /// particle id.
    pos: Vec<Vec3>,
    brute_force: bool,
    /// Periodic lists wrap cell neighborhoods and minimum-image `dr`;
    /// open lists do neither.
    periodic: bool,
}

/// The 13 forward neighbor offsets of the half stencil (plus the cell
/// itself handled separately): all `(dx,dy,dz)` that are lexicographically
/// positive.
const FORWARD_OFFSETS: [(i32, i32, i32); 13] = [
    (1, 0, 0),
    (1, 1, 0),
    (0, 1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (1, 1, 1),
    (0, 1, 1),
    (-1, 1, 1),
    (1, -1, 1),
    (0, -1, 1),
    (-1, -1, 1),
    (0, 0, 1),
    (-1, 0, 1),
];

impl CellList {
    /// Build a cell list for `positions` in a cubic box of side `box_l` with
    /// interaction `cutoff`. Positions may lie outside the primary box; they
    /// are wrapped.
    pub fn new(positions: &[Vec3], box_l: f64, cutoff: f64) -> CellList {
        assert!(box_l > 0.0, "box length must be positive");
        assert!(cutoff > 0.0, "cutoff must be positive");
        hibd_telemetry::incr(hibd_telemetry::Counter::NeighborRebuilds, 1);
        let pos: Vec<Vec3> = positions.iter().map(|p| p.wrap_into_box(box_l)).collect();
        let ncell = (box_l / cutoff).floor() as usize;
        if ncell < 3 {
            return Self::brute(pos, box_l, cutoff, true);
        }
        Self::binned(pos, box_l, cutoff, ncell, true, Vec3::ZERO)
    }

    /// Build an open-boundary (free-space) cell list: the binning domain is
    /// the axis-aligned bounding cube of the particle cloud, neighborhoods
    /// never wrap, and pair displacements are the raw `r_i - r_j`.
    pub fn new_open(positions: &[Vec3], cutoff: f64) -> CellList {
        assert!(cutoff > 0.0, "cutoff must be positive");
        hibd_telemetry::incr(hibd_telemetry::Counter::NeighborRebuilds, 1);
        let pos: Vec<Vec3> = positions.to_vec();
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for p in &pos {
            for c in 0..3 {
                lo[c] = lo[c].min(p[c]);
                hi[c] = hi[c].max(p[c]);
            }
        }
        let side =
            if pos.is_empty() { 0.0 } else { (hi.x - lo.x).max(hi.y - lo.y).max(hi.z - lo.z) };
        let ncell = if side > 0.0 { (side / cutoff).floor() as usize } else { 0 };
        if ncell < 2 {
            return Self::brute(pos, side.max(cutoff), cutoff, false);
        }
        Self::binned(pos, side, cutoff, ncell, false, lo)
    }

    fn brute(pos: Vec<Vec3>, box_l: f64, cutoff: f64, periodic: bool) -> CellList {
        CellList {
            box_l,
            cutoff,
            ncell: 1,
            start: vec![0, pos.len()],
            order: (0..pos.len() as u32).collect(),
            pos,
            brute_force: true,
            periodic,
        }
    }

    fn binned(
        pos: Vec<Vec3>,
        box_l: f64,
        cutoff: f64,
        ncell: usize,
        periodic: bool,
        origin: Vec3,
    ) -> CellList {
        let ncell3 = ncell * ncell * ncell;
        let cell_of = |p: Vec3| -> usize {
            let f = |v: f64| -> usize {
                let c = ((v / box_l * ncell as f64).max(0.0)) as usize;
                c.min(ncell - 1)
            };
            (f(p.x - origin.x) * ncell + f(p.y - origin.y)) * ncell + f(p.z - origin.z)
        };
        // Counting sort into cells.
        let mut count = vec![0usize; ncell3 + 1];
        for p in &pos {
            count[cell_of(*p) + 1] += 1;
        }
        for c in 0..ncell3 {
            count[c + 1] += count[c];
        }
        let start = count.clone();
        let mut cursor = count;
        let mut order = vec![0u32; pos.len()];
        for (i, p) in pos.iter().enumerate() {
            let c = cell_of(*p);
            order[cursor[c]] = i as u32;
            cursor[c] += 1;
        }
        CellList { box_l, cutoff, ncell, start, order, pos, brute_force: false, periodic }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Cells per dimension (1 when in brute-force mode).
    pub fn cells_per_dim(&self) -> usize {
        self.ncell
    }

    /// Total number of cells; callers may parallelize over `0..num_cells()`
    /// with [`for_each_pair_in_cell`](Self::for_each_pair_in_cell), since the
    /// half stencil visits every pair exactly once.
    pub fn num_cells(&self) -> usize {
        if self.brute_force {
            1
        } else {
            self.ncell * self.ncell * self.ncell
        }
    }

    /// Whether the brute-force fallback is active.
    pub fn is_brute_force(&self) -> bool {
        self.brute_force
    }

    /// Whether this list wraps (periodic construction) or not (open).
    pub fn is_periodic(&self) -> bool {
        self.periodic
    }

    /// Visit every unordered pair `(i, j)` with `|r_i - r_j| <= cutoff`
    /// exactly once. `dr` is the displacement `r_i - r_j` (minimum-image for
    /// periodic lists, raw for open lists) and `r2 = |dr|^2`. Pairs at
    /// exactly zero distance are skipped (the RPY tensor is singular there
    /// and coincident points are a setup error).
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize, Vec3, f64)) {
        for c in 0..self.num_cells() {
            self.for_each_pair_in_cell(c, &mut f);
        }
    }

    /// Visit the pairs owned by cell `c`: intra-cell pairs and pairs between
    /// `c` and its 13 forward neighbors. Used for cell-parallel assembly.
    pub fn for_each_pair_in_cell(&self, c: usize, f: &mut impl FnMut(usize, usize, Vec3, f64)) {
        let rc2 = self.cutoff * self.cutoff;
        if self.brute_force {
            debug_assert_eq!(c, 0);
            for a in 0..self.pos.len() {
                for b in a + 1..self.pos.len() {
                    self.emit(a, b, rc2, &mut *f);
                }
            }
            return;
        }
        let n = self.ncell;
        let cz = c % n;
        let cy = (c / n) % n;
        let cx = c / (n * n);
        let own = self.cell_slice(c);
        // Intra-cell pairs.
        for (u, &a) in own.iter().enumerate() {
            for &b in &own[u + 1..] {
                self.emit(a as usize, b as usize, rc2, &mut *f);
            }
        }
        // Forward neighbors: wrapped for periodic lists, clipped to the
        // domain for open lists.
        for (dx, dy, dz) in FORWARD_OFFSETS {
            let (nx, ny, nz) = if self.periodic {
                (wrap(cx as i32 + dx, n), wrap(cy as i32 + dy, n), wrap(cz as i32 + dz, n))
            } else {
                let (ix, iy, iz) = (cx as i32 + dx, cy as i32 + dy, cz as i32 + dz);
                let lim = n as i32;
                if ix < 0 || iy < 0 || iz < 0 || ix >= lim || iy >= lim || iz >= lim {
                    continue;
                }
                (ix as usize, iy as usize, iz as usize)
            };
            let nb = (nx * n + ny) * n + nz;
            let other = self.cell_slice(nb);
            for &a in own {
                for &b in other {
                    self.emit(a as usize, b as usize, rc2, &mut *f);
                }
            }
        }
    }

    /// Collect all pairs into a vector (convenience; testing and assembly).
    pub fn pairs(&self) -> Vec<(u32, u32, Vec3, f64)> {
        let mut out = Vec::new();
        self.for_each_pair(|i, j, dr, r2| out.push((i as u32, j as u32, dr, r2)));
        out
    }

    /// The wrapped position of particle `i`.
    pub fn position(&self, i: usize) -> Vec3 {
        self.pos[i]
    }

    #[inline]
    fn cell_slice(&self, c: usize) -> &[u32] {
        &self.order[self.start[c]..self.start[c + 1]]
    }

    #[inline]
    fn emit(&self, a: usize, b: usize, rc2: f64, f: &mut impl FnMut(usize, usize, Vec3, f64)) {
        let raw = self.pos[a] - self.pos[b];
        let dr = if self.periodic { raw.min_image(self.box_l) } else { raw };
        let r2 = dr.norm2();
        if r2 <= rc2 && r2 > 0.0 {
            f(a, b, dr, r2);
        }
    }
}

#[inline]
fn wrap(v: i32, n: usize) -> usize {
    let n = n as i32;
    (((v % n) + n) % n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn brute_force_pairs(pos: &[Vec3], box_l: f64, rc: f64) -> HashSet<(u32, u32)> {
        let rc2 = rc * rc;
        let mut set = HashSet::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let dr = (pos[i] - pos[j]).min_image(box_l);
                if dr.norm2() <= rc2 && dr.norm2() > 0.0 {
                    set.insert((i as u32, j as u32));
                }
            }
        }
        set
    }

    fn normalize(p: (u32, u32)) -> (u32, u32) {
        if p.0 < p.1 {
            p
        } else {
            (p.1, p.0)
        }
    }

    #[test]
    fn matches_brute_force_various_sizes() {
        for (n, box_l, rc) in [
            (50usize, 10.0, 2.0),
            (200, 12.0, 2.5),
            (100, 30.0, 3.0),
            (64, 8.0, 1.1),
            (30, 5.0, 2.4), // exactly 2 cells/dim -> brute-force fallback
            (20, 4.0, 3.0), // 1 cell/dim -> brute-force fallback
        ] {
            let pos = lcg_positions(n, box_l, (n as u64) * 31 + 7);
            let cl = CellList::new(&pos, box_l, rc);
            let got: HashSet<(u32, u32)> =
                cl.pairs().into_iter().map(|(i, j, _, _)| normalize((i, j))).collect();
            let want = brute_force_pairs(&pos, box_l, rc);
            assert_eq!(got.len(), cl.pairs().len(), "no duplicate pairs (n={n})");
            assert_eq!(got, want, "n={n} box={box_l} rc={rc}");
        }
    }

    #[test]
    fn pair_geometry_is_min_image() {
        let box_l = 10.0;
        // Two particles straddling the periodic boundary.
        let pos = vec![Vec3::new(0.2, 5.0, 5.0), Vec3::new(9.9, 5.0, 5.0)];
        let cl = CellList::new(&pos, box_l, 1.0);
        let pairs = cl.pairs();
        assert_eq!(pairs.len(), 1);
        let (i, j, dr, r2) = pairs[0];
        assert!((r2 - 0.09).abs() < 1e-12);
        // dr = r_i - r_j, min-imaged.
        let want = (pos[i as usize] - pos[j as usize]).min_image(box_l);
        assert!((dr - want).norm() < 1e-12);
    }

    #[test]
    fn positions_outside_box_are_wrapped() {
        let box_l = 10.0;
        let pos = vec![Vec3::new(-0.5, 3.0, 3.0), Vec3::new(10.2, 3.0, 3.0)];
        let cl = CellList::new(&pos, box_l, 2.0);
        let pairs = cl.pairs();
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].3 - 0.49).abs() < 1e-9);
    }

    #[test]
    fn no_pairs_beyond_cutoff() {
        let pos = lcg_positions(300, 20.0, 5);
        let rc = 2.2;
        let cl = CellList::new(&pos, 20.0, rc);
        cl.for_each_pair(|_, _, dr, r2| {
            assert!(r2 <= rc * rc + 1e-12);
            assert!((dr.norm2() - r2).abs() < 1e-12);
        });
    }

    #[test]
    fn cell_parallel_decomposition_covers_all_pairs() {
        let pos = lcg_positions(150, 15.0, 99);
        let cl = CellList::new(&pos, 15.0, 2.0);
        let mut by_cell = Vec::new();
        for c in 0..cl.num_cells() {
            cl.for_each_pair_in_cell(c, &mut |i, j, _, _| {
                by_cell.push(normalize((i as u32, j as u32)));
            });
        }
        let whole: Vec<(u32, u32)> =
            cl.pairs().into_iter().map(|(i, j, _, _)| normalize((i, j))).collect();
        let s1: HashSet<_> = by_cell.iter().copied().collect();
        let s2: HashSet<_> = whole.iter().copied().collect();
        assert_eq!(by_cell.len(), whole.len());
        assert_eq!(s1, s2);
    }

    #[test]
    fn empty_and_single_particle() {
        let cl = CellList::new(&[], 10.0, 1.0);
        assert!(cl.is_empty());
        assert!(cl.pairs().is_empty());
        let cl = CellList::new(&[Vec3::new(1.0, 1.0, 1.0)], 10.0, 1.0);
        assert_eq!(cl.len(), 1);
        assert!(cl.pairs().is_empty());
    }

    #[test]
    fn coincident_particles_are_skipped() {
        let p = Vec3::new(2.0, 2.0, 2.0);
        let cl = CellList::new(&[p, p], 10.0, 1.0);
        assert!(cl.pairs().is_empty());
    }

    fn brute_force_pairs_open(pos: &[Vec3], rc: f64) -> HashSet<(u32, u32)> {
        let rc2 = rc * rc;
        let mut set = HashSet::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d2 = (pos[i] - pos[j]).norm2();
                if d2 <= rc2 && d2 > 0.0 {
                    set.insert((i as u32, j as u32));
                }
            }
        }
        set
    }

    #[test]
    fn open_matches_brute_force_various_sizes() {
        for (n, spread, rc) in [
            (50usize, 10.0, 2.0),
            (200, 12.0, 2.5),
            (100, 30.0, 3.0),
            (64, 8.0, 1.1),
            (20, 2.0, 3.0),
        ] {
            let pos = lcg_positions(n, spread, (n as u64) * 17 + 3);
            let cl = CellList::new_open(&pos, rc);
            assert!(!cl.is_periodic());
            let got: HashSet<(u32, u32)> =
                cl.pairs().into_iter().map(|(i, j, _, _)| normalize((i, j))).collect();
            assert_eq!(got.len(), cl.pairs().len(), "no duplicate pairs (n={n})");
            assert_eq!(got, brute_force_pairs_open(&pos, rc), "n={n} spread={spread} rc={rc}");
        }
    }

    #[test]
    fn open_list_never_pairs_across_the_seam() {
        // Two particles at opposite corners of the bounding box: a periodic
        // list over the same extent would wrap them together.
        let pos = vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(9.9, 0.0, 0.0)];
        let cl = CellList::new_open(&pos, 1.0);
        assert!(cl.pairs().is_empty());
        let cl = CellList::new(&pos, 10.0, 1.0);
        assert_eq!(cl.pairs().len(), 1, "sanity: the periodic list does wrap");
    }

    #[test]
    fn open_pair_geometry_is_raw() {
        let pos = vec![Vec3::new(-3.0, 7.0, 1.0), Vec3::new(-2.4, 7.0, 1.0)];
        let cl = CellList::new_open(&pos, 1.0);
        let pairs = cl.pairs();
        assert_eq!(pairs.len(), 1);
        let (i, j, dr, r2) = pairs[0];
        let want = pos[i as usize] - pos[j as usize];
        assert!((dr - want).norm() < 1e-12);
        assert!((r2 - 0.36).abs() < 1e-12);
    }

    #[test]
    fn open_empty_and_coincident() {
        let cl = CellList::new_open(&[], 1.0);
        assert!(cl.is_empty());
        assert!(cl.pairs().is_empty());
        let p = Vec3::new(2.0, 2.0, 2.0);
        let cl = CellList::new_open(&[p, p], 1.0);
        assert!(cl.pairs().is_empty());
    }

    #[test]
    fn open_cell_decomposition_covers_all_pairs() {
        let pos = lcg_positions(150, 15.0, 42);
        let cl = CellList::new_open(&pos, 2.0);
        assert!(!cl.is_brute_force(), "15/2 cells per dim must bin");
        let mut by_cell = Vec::new();
        for c in 0..cl.num_cells() {
            cl.for_each_pair_in_cell(c, &mut |i, j, _, _| {
                by_cell.push(normalize((i as u32, j as u32)));
            });
        }
        let s1: HashSet<_> = by_cell.iter().copied().collect();
        assert_eq!(by_cell.len(), s1.len());
        assert_eq!(s1, brute_force_pairs_open(&pos, 2.0));
    }

    #[test]
    fn dense_cluster_counts() {
        // All particles within cutoff of each other: n*(n-1)/2 pairs.
        let n = 12;
        let pos: Vec<Vec3> = (0..n).map(|i| Vec3::new(5.0 + 0.01 * i as f64, 5.0, 5.0)).collect();
        let cl = CellList::new(&pos, 20.0, 1.0);
        assert_eq!(cl.pairs().len(), n * (n - 1) / 2);
    }
}
