//! Verlet neighbor list with a skin radius.
//!
//! The classic amortization on top of cell lists (ref. \[27\] of the paper):
//! build pairs out to `cutoff + skin` once, then reuse the list while no
//! particle has moved more than `skin / 2` — at BD step sizes a list
//! survives many steps. The stored candidate pairs are re-filtered against
//! the true cutoff with *current* distances on every use, so reuse never
//! changes results, only the cost of finding candidates. Both constructions
//! of [`CellList`] are supported: [`VerletList::new`] wraps (periodic box,
//! minimum-image displacements) and [`VerletList::new_open`] does not (open
//! boundary, raw displacements).

use crate::CellList;
use hibd_mathx::Vec3;

/// A reusable neighbor list.
#[derive(Clone, Debug)]
pub struct VerletList {
    box_l: f64,
    cutoff: f64,
    skin: f64,
    /// Candidate pairs within `cutoff + skin` at build time.
    pairs: Vec<(u32, u32)>,
    /// Positions at build time (wrapped for periodic lists, raw for open),
    /// for displacement tracking.
    reference: Vec<Vec3>,
    periodic: bool,
    rebuilds: usize,
    reuses: usize,
}

impl VerletList {
    /// Build for the given configuration in a cubic periodic box.
    pub fn new(positions: &[Vec3], box_l: f64, cutoff: f64, skin: f64) -> VerletList {
        assert!(skin >= 0.0, "skin must be nonnegative");
        let mut list = VerletList {
            box_l,
            cutoff,
            skin,
            pairs: Vec::new(),
            reference: Vec::new(),
            periodic: true,
            rebuilds: 0,
            reuses: 0,
        };
        list.rebuild(positions);
        list
    }

    /// Build for an open (free-space) boundary: no wrap, raw displacements.
    pub fn new_open(positions: &[Vec3], cutoff: f64, skin: f64) -> VerletList {
        assert!(skin >= 0.0, "skin must be nonnegative");
        let mut list = VerletList {
            box_l: 0.0,
            cutoff,
            skin,
            pairs: Vec::new(),
            reference: Vec::new(),
            periodic: false,
            rebuilds: 0,
            reuses: 0,
        };
        list.rebuild(positions);
        list
    }

    fn rebuild(&mut self, positions: &[Vec3]) {
        let cl = if self.periodic {
            CellList::new(positions, self.box_l, self.cutoff + self.skin)
        } else {
            CellList::new_open(positions, self.cutoff + self.skin)
        };
        self.pairs.clear();
        cl.for_each_pair(|i, j, _, _| self.pairs.push((i as u32, j as u32)));
        self.reference = if self.periodic {
            positions.iter().map(|p| p.wrap_into_box(self.box_l)).collect()
        } else {
            positions.to_vec()
        };
        self.rebuilds += 1;
    }

    /// Whether the list is still valid for `positions`: no particle moved
    /// more than `skin / 2` since the last rebuild.
    pub fn is_valid(&self, positions: &[Vec3]) -> bool {
        if positions.len() != self.reference.len() {
            return false;
        }
        let limit2 = (self.skin / 2.0) * (self.skin / 2.0);
        positions.iter().zip(&self.reference).all(|(p, r)| self.displacement(*p, *r) <= limit2)
    }

    #[inline]
    fn displacement(&self, p: Vec3, r: Vec3) -> f64 {
        if self.periodic {
            (p.wrap_into_box(self.box_l) - r).min_image(self.box_l).norm2()
        } else {
            (p - r).norm2()
        }
    }

    /// Ensure validity (rebuilding if needed), then visit every pair within
    /// the true cutoff at the *current* positions.
    pub fn for_each_pair(
        &mut self,
        positions: &[Vec3],
        mut f: impl FnMut(usize, usize, Vec3, f64),
    ) {
        if !self.is_valid(positions) {
            self.rebuild(positions);
        } else {
            self.reuses += 1;
        }
        let rc2 = self.cutoff * self.cutoff;
        for &(i, j) in &self.pairs {
            let (i, j) = (i as usize, j as usize);
            let raw = positions[i] - positions[j];
            let dr = if self.periodic { raw.min_image(self.box_l) } else { raw };
            let r2 = dr.norm2();
            if r2 <= rc2 && r2 > 0.0 {
                f(i, j, dr, r2);
            }
        }
    }

    /// Candidate pair count (within `cutoff + skin` at build time).
    pub fn candidate_count(&self) -> usize {
        self.pairs.len()
    }

    /// `(rebuilds, reuses)` since construction.
    pub fn stats(&self) -> (usize, usize) {
        (self.rebuilds, self.reuses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn pair_set(pos: &[Vec3], box_l: f64, rc: f64) -> HashSet<(u32, u32)> {
        let cl = CellList::new(pos, box_l, rc);
        let mut s = HashSet::new();
        cl.for_each_pair(|i, j, _, _| {
            s.insert(if i < j { (i as u32, j as u32) } else { (j as u32, i as u32) });
        });
        s
    }

    #[test]
    fn fresh_list_matches_cell_list() {
        let (box_l, rc) = (12.0, 2.5);
        let pos = lcg_positions(150, box_l, 1);
        let mut vl = VerletList::new(&pos, box_l, rc, 0.5);
        let mut got = HashSet::new();
        vl.for_each_pair(&pos, |i, j, _, _| {
            got.insert(if i < j { (i as u32, j as u32) } else { (j as u32, i as u32) });
        });
        assert_eq!(got, pair_set(&pos, box_l, rc));
    }

    #[test]
    fn reuse_stays_exact_under_small_motion() {
        let (box_l, rc, skin) = (10.0, 2.0, 0.8);
        let mut pos = lcg_positions(100, box_l, 2);
        let mut vl = VerletList::new(&pos, box_l, rc, skin);
        let mut state = 7u64;
        let mut nudge = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.1
        };
        for _step in 0..5 {
            for p in &mut pos {
                *p = (*p + Vec3::new(nudge(), nudge(), nudge())).wrap_into_box(box_l);
            }
            let mut got = HashSet::new();
            vl.for_each_pair(&pos, |i, j, _, _| {
                got.insert(if i < j { (i as u32, j as u32) } else { (j as u32, i as u32) });
            });
            assert_eq!(got, pair_set(&pos, box_l, rc), "reused list must stay exact");
        }
        let (rebuilds, reuses) = vl.stats();
        assert_eq!(rebuilds, 1, "small motion must not trigger rebuilds");
        assert_eq!(reuses, 5);
    }

    #[test]
    fn large_motion_triggers_rebuild_and_stays_exact() {
        let (box_l, rc, skin) = (10.0, 2.0, 0.4);
        let mut pos = lcg_positions(80, box_l, 3);
        let mut vl = VerletList::new(&pos, box_l, rc, skin);
        // Move one particle past skin/2.
        pos[0] = (pos[0] + Vec3::new(0.5, 0.0, 0.0)).wrap_into_box(box_l);
        assert!(!vl.is_valid(&pos));
        let mut got = HashSet::new();
        vl.for_each_pair(&pos, |i, j, _, _| {
            got.insert(if i < j { (i as u32, j as u32) } else { (j as u32, i as u32) });
        });
        assert_eq!(got, pair_set(&pos, box_l, rc));
        assert_eq!(vl.stats().0, 2);
    }

    #[test]
    fn zero_skin_always_rebuilds_on_any_motion() {
        let (box_l, rc) = (8.0, 2.0);
        let mut pos = lcg_positions(40, box_l, 4);
        let mut vl = VerletList::new(&pos, box_l, rc, 0.0);
        pos[3] = (pos[3] + Vec3::new(1e-3, 0.0, 0.0)).wrap_into_box(box_l);
        assert!(!vl.is_valid(&pos));
        vl.for_each_pair(&pos, |_, _, _, _| {});
        assert_eq!(vl.stats(), (2, 0));
    }

    fn open_pair_set(pos: &[Vec3], rc: f64) -> HashSet<(u32, u32)> {
        let rc2 = rc * rc;
        let mut s = HashSet::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d2 = (pos[i] - pos[j]).norm2();
                if d2 <= rc2 && d2 > 0.0 {
                    s.insert((i as u32, j as u32));
                }
            }
        }
        s
    }

    #[test]
    fn open_list_matches_brute_force_and_reuses() {
        let rc = 2.0;
        // Positions spread over ~[0,12)^3 but *not* wrapped: the open list
        // must use raw displacements.
        let mut pos = lcg_positions(120, 12.0, 11);
        let mut vl = VerletList::new_open(&pos, rc, 0.8);
        let mut state = 13u64;
        let mut nudge = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.1
        };
        for _step in 0..5 {
            for p in &mut pos {
                *p += Vec3::new(nudge(), nudge(), nudge());
            }
            let mut got = HashSet::new();
            vl.for_each_pair(&pos, |i, j, dr, _| {
                let want = pos[i] - pos[j];
                assert!((dr - want).norm() < 1e-12, "open dr must be raw");
                got.insert(if i < j { (i as u32, j as u32) } else { (j as u32, i as u32) });
            });
            assert_eq!(got, open_pair_set(&pos, rc), "reused open list must stay exact");
        }
        let (rebuilds, reuses) = vl.stats();
        assert_eq!(rebuilds, 1, "small motion must not trigger rebuilds");
        assert_eq!(reuses, 5);
    }

    #[test]
    fn open_list_large_motion_rebuilds() {
        let rc = 2.0;
        let mut pos = lcg_positions(60, 10.0, 21);
        let mut vl = VerletList::new_open(&pos, rc, 0.4);
        pos[0] += Vec3::new(0.5, 0.0, 0.0);
        assert!(!vl.is_valid(&pos));
        let mut got = HashSet::new();
        vl.for_each_pair(&pos, |i, j, _, _| {
            got.insert(if i < j { (i as u32, j as u32) } else { (j as u32, i as u32) });
        });
        assert_eq!(got, open_pair_set(&pos, rc));
        assert_eq!(vl.stats().0, 2);
    }

    #[test]
    fn candidate_count_grows_with_skin() {
        let (box_l, rc) = (12.0, 2.0);
        let pos = lcg_positions(200, box_l, 5);
        let thin = VerletList::new(&pos, box_l, rc, 0.1).candidate_count();
        let fat = VerletList::new(&pos, box_l, rc, 2.0).candidate_count();
        assert!(fat > thin);
    }
}
