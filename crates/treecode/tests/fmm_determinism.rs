//! Bitwise determinism of the FMM downward pass under rayon.
//!
//! The M2L fan-in recurses over node *ordinal ranges* and splits the local
//! expansion buffer at node boundaries (`split_at_mut`), accumulating each
//! target's interaction list sequentially in traversal order; L2L is a
//! serial preorder sweep and L2P reuses the leaf-ordinal pattern. The
//! result must therefore be bitwise identical across thread counts — open
//! checkpoint resume replays windows and compares trajectories bitwise, so
//! "close to" is not good enough. Every comparison here is `to_bits`.

use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_treecode::{TreeEval, TreeOperator, TreeParams};

fn cloud(n: usize, spread: f64, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pos =
        (0..n).map(|_| Vec3::new(next() * spread, next() * spread, next() * spread)).collect();
    let x = (0..3 * n).map(|_| 2.0 * next() - 1.0).collect();
    (pos, x)
}

fn apply_in_pool(pos: &[Vec3], x: &[f64], threads: usize) -> Vec<f64> {
    let params = TreeParams { eval: TreeEval::Fmm, ..TreeParams::default() };
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| {
        let mut op = TreeOperator::new(pos, params);
        let mut y = vec![0.0; x.len()];
        op.apply(x, &mut y);
        y
    })
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (va, vb)) in a.iter().zip(b).enumerate() {
        assert!(va.to_bits() == vb.to_bits(), "{what}: component {i} differs: {va:e} vs {vb:e}");
    }
}

#[test]
fn fmm_apply_is_bitwise_identical_serial_vs_rayon() {
    let (pos, x) = cloud(600, 24.0, 9001);
    let serial = apply_in_pool(&pos, &x, 1);
    for threads in [2, 4, 7] {
        let parallel = apply_in_pool(&pos, &x, threads);
        assert_bitwise_eq(&serial, &parallel, &format!("1 vs {threads} threads"));
    }
}

#[test]
fn fmm_apply_is_bitwise_reproducible_across_repeats_and_rebuilds() {
    let (pos, x) = cloud(400, 20.0, 31);
    let params = TreeParams { eval: TreeEval::Fmm, ..TreeParams::default() };

    // Same operator, repeated applies: steady-state scratch reuse must not
    // perturb a single bit.
    let mut op = TreeOperator::new(&pos, params);
    let mut y1 = vec![0.0; 3 * pos.len()];
    let mut y2 = vec![0.0; 3 * pos.len()];
    op.apply(&x, &mut y1);
    op.apply(&x, &mut y2);
    assert_bitwise_eq(&y1, &y2, "repeat apply on one operator");

    // A freshly built operator over the same cloud: setup is a pure
    // function of (positions, params).
    let mut fresh = TreeOperator::new(&pos, params);
    let mut y3 = vec![0.0; 3 * pos.len()];
    fresh.apply(&x, &mut y3);
    assert_bitwise_eq(&y1, &y3, "fresh rebuild");
}

#[test]
fn fmm_apply_multi_columns_are_bitwise_identical_to_single_applies() {
    // The downward pass runs once per column; batching must not change the
    // expression trees. Column `j` of `apply_multi` == standalone `apply`.
    let (pos, x) = cloud(150, 14.0, 77);
    let n3 = 3 * pos.len();
    let s = 3;
    let params = TreeParams { eval: TreeEval::Fmm, ..TreeParams::default() };
    let mut op = TreeOperator::new(&pos, params);

    // Multi-RHS layout is row-major [dim][s].
    let mut xs = vec![0.0; n3 * s];
    for j in 0..s {
        for d in 0..n3 {
            xs[d * s + j] = x[d] * (1.0 + j as f64);
        }
    }
    let mut ys = vec![0.0; n3 * s];
    op.apply_multi(&xs, &mut ys, s);

    for j in 0..s {
        let xj: Vec<f64> = (0..n3).map(|d| xs[d * s + j]).collect();
        let mut yj = vec![0.0; n3];
        op.apply(&xj, &mut yj);
        let col: Vec<f64> = (0..n3).map(|d| ys[d * s + j]).collect();
        assert_bitwise_eq(&yj, &col, &format!("multi column {j}"));
    }
}
