//! Allocation regression for the treecode steady state.
//!
//! Construction builds the octree, traversal lists and anterpolation tables;
//! after one warm-up apply (which lets rayon finish lazy pool setup),
//! repeated applies must cause no net heap growth and `memory_bytes` must
//! not move — the apply path is strictly reuse-only operator-owned scratch.

use hibd_alloctrack::{exclusive, measure};
use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_treecode::{TreeEval, TreeOperator, TreeParams};

hibd_alloctrack::install!();

const TOL: isize = 16 * 1024;

fn cloud(n: usize, spread: f64, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * spread
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

#[test]
fn apply_is_allocation_free_at_steady_state() {
    let _guard = exclusive();
    let n = 400;
    let pos = cloud(n, 30.0, 3);
    let params = TreeParams { leaf_capacity: 16, ..TreeParams::default() };
    let mut op = TreeOperator::new(&pos, params);
    let x = vec![0.5; 3 * n];
    let mut y = vec![0.0; 3 * n];
    op.apply(&x, &mut y); // warm-up (rayon pool, lazy growth)
    let mem = op.memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..5 {
            op.apply(&x, &mut y);
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "5 warm applies leaked {} net bytes", m.net_bytes);
    assert_eq!(op.memory_bytes(), mem, "operator scratch grew after warm-up");
}

#[test]
fn apply_multi_is_allocation_free_at_steady_state() {
    let _guard = exclusive();
    let n = 200;
    let s = 4;
    let pos = cloud(n, 20.0, 9);
    let params = TreeParams { leaf_capacity: 16, ..TreeParams::default() };
    let mut op = TreeOperator::new(&pos, params);
    let x = vec![0.25; 3 * n * s];
    let mut y = vec![0.0; 3 * n * s];
    op.apply_multi(&x, &mut y, s); // warm-up grows the column scratch
    let mem = op.memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..3 {
            op.apply_multi(&x, &mut y, s);
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "3 warm block applies leaked {} net bytes", m.net_bytes);
    assert_eq!(op.memory_bytes(), mem, "block scratch grew after warm-up");
}

#[test]
fn fmm_apply_is_allocation_free_at_steady_state() {
    // The downward pass adds M2L tables, an interaction-list index and the
    // local-expansion buffer — all built at construction or grown by the
    // warm-up; repeated applies must stay heap-silent like the treecode's.
    let _guard = exclusive();
    let n = 400;
    let pos = cloud(n, 30.0, 5);
    let params = TreeParams { leaf_capacity: 16, eval: TreeEval::Fmm, ..TreeParams::default() };
    let mut op = TreeOperator::new(&pos, params);
    let x = vec![0.5; 3 * n];
    let mut y = vec![0.0; 3 * n];
    op.apply(&x, &mut y); // warm-up (rayon pool, lazy growth)
    let mem = op.memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..5 {
            op.apply(&x, &mut y);
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "5 warm FMM applies leaked {} net bytes", m.net_bytes);
    assert_eq!(op.memory_bytes(), mem, "FMM operator scratch grew after warm-up");
}

#[test]
fn fmm_memory_bytes_covers_the_translation_tables() {
    // Self-audit against the allocator: building the FMM operator instead
    // of the treecode one must raise `memory_bytes` by at least the M2L +
    // L2L storage the allocator saw it request — the report may not hide
    // the new tables. `state_memory_bytes` carries the per-tree part (M2L
    // entries + locals); the L2L octant tables live in the shared plans.
    let _guard = exclusive();
    let n = 500;
    let pos = cloud(n, 28.0, 13);
    let tree_params = TreeParams { leaf_capacity: 8, ..TreeParams::default() };
    let fmm_params = TreeParams { eval: TreeEval::Fmm, ..tree_params };

    let tree_op = TreeOperator::new(&pos, tree_params);
    let (built, mut fmm_op) = measure(|| TreeOperator::new(&pos, fmm_params));
    assert!(
        built.net_bytes > 0,
        "FMM construction should allocate tables (net {})",
        built.net_bytes
    );

    let (pairs, entries) = fmm_op.fmm_stats().expect("FMM operator reports stats");
    assert!(entries > 0 && pairs >= entries);
    let q3 = fmm_params.cheb_order.pow(3);
    // Every deduplicated entry stores at least its two q^3 x q^3 blocks.
    let table_floor = entries * 2 * q3 * q3 * std::mem::size_of::<f64>();
    let extra = fmm_op.state_memory_bytes() as isize - tree_op.state_memory_bytes() as isize;
    assert!(extra >= table_floor as isize, "state grew {extra}, table floor {table_floor}");
    assert!(fmm_op.memory_bytes() > tree_op.memory_bytes(), "plans + state must outweigh");
    // And the allocator agrees the tables are real, not just reported.
    assert!(built.net_bytes >= table_floor as isize, "allocator saw {}", built.net_bytes);

    // The first apply may grow the local-expansion scratch it owns, but the
    // report must track it: memory_bytes after a warm apply is stable.
    let x = vec![1.0; 3 * n];
    let mut y = vec![0.0; 3 * n];
    fmm_op.apply(&x, &mut y);
    let warmed = fmm_op.memory_bytes();
    fmm_op.apply(&x, &mut y);
    assert_eq!(fmm_op.memory_bytes(), warmed, "FMM apply grew scratch after warm-up");
}

#[test]
fn memory_bytes_accounts_for_the_dominant_storage() {
    // Self-audit: the report must cover at least the storage we can bound
    // from first principles (positions + order + per-particle weights +
    // the Morton scratch), and construction must not under-report scratch
    // that the first apply then grows.
    let _guard = exclusive();
    let n = 300;
    let pos = cloud(n, 25.0, 11);
    let params = TreeParams::default();
    let q = params.cheb_order;
    let mut op = TreeOperator::new(&pos, params);
    let floor = n * std::mem::size_of::<Vec3>()      // Morton positions
        + n * std::mem::size_of::<u32>()             // order
        + n * 3 * q * std::mem::size_of::<f64>()     // anterpolation weights
        + 2 * 3 * n * std::mem::size_of::<f64>(); // xr + yr
    assert!(op.memory_bytes() >= floor, "{} < floor {}", op.memory_bytes(), floor);
    let before = op.memory_bytes();
    let x = vec![1.0; 3 * n];
    let mut y = vec![0.0; 3 * n];
    op.apply(&x, &mut y);
    assert_eq!(op.memory_bytes(), before, "single-vector apply grew scratch");
}
