//! Accuracy acceptance: the treecode must match the dense free-space RPY
//! matvec to a relative error of `1e-3` at the default parameters, across
//! cloud sizes and densities — including the property-based sweep. The FMM
//! far field is held to the same schedule tolerances as the treecode.

use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_rpy::dense_rpy_free;
use hibd_treecode::{measured_rel_error, TreeEval, TreeOperator, TreeParams, SCHEDULE};
use proptest::prelude::*;

fn cloud(n: usize, spread: f64, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * spread
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

#[test]
fn default_params_meet_1e3_across_sizes_and_densities() {
    // The ISSUE acceptance criterion: rel error <= 1e-3 at default theta on
    // randomized clouds. Spread ~ n^{1/3} * pitch keeps density comparable.
    for (n, spread, seed) in
        [(100, 12.0, 1u64), (250, 18.0, 2), (500, 22.0, 3), (500, 10.0, 4), (800, 26.0, 5)]
    {
        let pos = cloud(n, spread, seed);
        let err = measured_rel_error(&pos, TreeParams::default(), 3);
        assert!(err <= 1e-3, "n={n} spread={spread}: rel err {err}");
    }
}

#[test]
fn schedule_entries_meet_their_advertised_tolerance() {
    let pos = cloud(300, 20.0, 42);
    for &(tol, theta, q) in &SCHEDULE {
        let params = TreeParams { theta, cheb_order: q, ..TreeParams::default() };
        let err = measured_rel_error(&pos, params, 3);
        assert!(err <= tol, "schedule ({theta}, {q}): measured {err} > {tol}");
    }
}

#[test]
fn fmm_meets_every_schedule_tier_against_dense() {
    // The ISSUE acceptance criterion: each `tuner::SCHEDULE` tier keeps its
    // advertised tolerance when the far field runs as an FMM.
    let pos = cloud(300, 20.0, 42);
    for &(tol, theta, q) in &SCHEDULE {
        let params =
            TreeParams { theta, cheb_order: q, eval: TreeEval::Fmm, ..TreeParams::default() };
        let err = measured_rel_error(&pos, params, 3);
        assert!(err <= tol, "FMM schedule ({theta}, {q}): measured {err} > {tol}");
    }
}

#[test]
fn fmm_default_params_meet_1e3_across_sizes_and_densities() {
    for (n, spread, seed) in [(100, 12.0, 1u64), (250, 18.0, 2), (500, 22.0, 3), (500, 10.0, 4)] {
        let pos = cloud(n, spread, seed);
        let params = TreeParams { eval: TreeEval::Fmm, ..TreeParams::default() };
        let err = measured_rel_error(&pos, params, 3);
        assert!(err <= 1e-3, "FMM n={n} spread={spread}: rel err {err}");
    }
}

#[test]
fn error_decreases_with_stricter_parameters() {
    let pos = cloud(400, 20.0, 77);
    let loose = measured_rel_error(
        &pos,
        TreeParams { theta: 0.75, cheb_order: 3, ..TreeParams::default() },
        2,
    );
    let tight = measured_rel_error(
        &pos,
        TreeParams { theta: 0.5, cheb_order: 5, ..TreeParams::default() },
        2,
    );
    assert!(tight < loose, "tight {tight} !< loose {loose}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property sweep of the acceptance criterion: arbitrary clouds (any
    /// aspect ratio, any density, overlaps allowed), arbitrary force
    /// vectors — the treecode stays within the default-parameter tolerance
    /// of the dense two-branch RPY matrix.
    #[test]
    fn tree_apply_matches_dense_within_default_tolerance(
        n in 4usize..90,
        sx in 2.0f64..30.0,
        sy in 2.0f64..30.0,
        sz in 2.0f64..30.0,
        seed in 0u64..1u64 << 48,
        leaf in 1usize..24,
    ) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(13);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pos: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(next() * sx, next() * sy, next() * sz)).collect();
        let x: Vec<f64> = (0..3 * n).map(|_| 2.0 * next() - 1.0).collect();

        let dense = dense_rpy_free(&pos, 1.0, 1.0);
        let params = TreeParams { leaf_capacity: leaf, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        let mut yt = vec![0.0; 3 * n];
        let mut yd = vec![0.0; 3 * n];
        op.apply(&x, &mut yt);
        dense.mul_vec(&x, &mut yd);

        let err2: f64 = yt.iter().zip(&yd).map(|(t, d)| (t - d) * (t - d)).sum();
        let ref2: f64 = yd.iter().map(|d| d * d).sum();
        let err = (err2 / ref2.max(f64::MIN_POSITIVE)).sqrt();
        prop_assert!(err <= 1e-3, "n={} leaf={} rel err {}", n, leaf, err);
    }

    /// The same sweep for the FMM far field: arbitrary clouds and leaf
    /// capacities, the M2L/L2L/L2P pipeline stays within the default
    /// tolerance of the dense two-branch RPY matrix.
    #[test]
    fn fmm_apply_matches_dense_within_default_tolerance(
        n in 4usize..90,
        sx in 2.0f64..30.0,
        sy in 2.0f64..30.0,
        sz in 2.0f64..30.0,
        seed in 0u64..1u64 << 48,
        leaf in 1usize..24,
    ) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(29);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pos: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(next() * sx, next() * sy, next() * sz)).collect();
        let x: Vec<f64> = (0..3 * n).map(|_| 2.0 * next() - 1.0).collect();

        let dense = dense_rpy_free(&pos, 1.0, 1.0);
        let params =
            TreeParams { leaf_capacity: leaf, eval: TreeEval::Fmm, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        let mut yt = vec![0.0; 3 * n];
        let mut yd = vec![0.0; 3 * n];
        op.apply(&x, &mut yt);
        dense.mul_vec(&x, &mut yd);

        let err2: f64 = yt.iter().zip(&yd).map(|(t, d)| (t - d) * (t - d)).sum();
        let ref2: f64 = yd.iter().map(|d| d * d).sum();
        let err = (err2 / ref2.max(f64::MIN_POSITIVE)).sqrt();
        prop_assert!(err <= 1e-3, "FMM n={} leaf={} rel err {}", n, leaf, err);
    }
}
