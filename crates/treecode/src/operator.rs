//! The hierarchical free-space RPY mobility operator.
//!
//! `TreeOperator` approximates `y = M x` for the free-space RPY tensor over
//! a fixed particle cloud in `O(n log n)`:
//!
//! 1. **Upward pass** ([`hibd_telemetry::Phase::Upward`]): particle source
//!    strengths (3-vectors) are anterpolated onto each leaf's `q^3`
//!    Chebyshev proxy grid (P2M), then merged up the tree through the eight
//!    universal child→parent transfer matrices (M2M).
//! 2. **Far field** ([`hibd_telemetry::Phase::FarField`]): for every
//!    (target-leaf, source-node) pair accepted by the multipole acceptance
//!    criterion, each target particle sums the far-branch RPY kernel against
//!    the source node's proxy weights. The MAC — `r_s < theta (d - r_t)` in
//!    both directions *and* `d - r_t - r_s >= 2a`, with `r = sqrt(3) half`
//!    the circumscribed radius — bounds each side's proxy spread over the
//!    other's nearest evaluation distance and guarantees every
//!    particle-proxy distance is at least `2a`, so the smooth far branch is
//!    exact there.
//! 3. **Near field** ([`hibd_telemetry::Phase::NearField`]): every pair the
//!    traversal could not separate is evaluated directly with the two-branch
//!    RPY tensor (Yamakawa overlap regularization included), plus the
//!    `mu0 I` diagonal.
//!
//! The dual tree traversal and its flattening into per-leaf interaction
//! lists happen once at construction ([`hibd_telemetry::Phase::TreeBuild`]);
//! `apply` is allocation-free at steady state (operator-owned scratch only)
//! and parallelizes over leaves, whose Morton ranges partition the output.
//!
//! With [`TreeEval::Fmm`] the far field runs as a true kernel-independent
//! FMM instead: the MAC-accepted pairs stay at the *node* level and are
//! translated multipole-to-local ([`hibd_telemetry::Phase::M2l`]), locals
//! are pushed down by the transposed octant matrices and interpolated once
//! per particle ([`hibd_telemetry::Phase::Downward`]) — `O(n)` far-field
//! work, level-independent per particle. See the [`crate::fmm`] module docs
//! for the table construction and the determinism argument.

use crate::cheb;
use crate::fmm;
use crate::tree::{Node, Octree, NO_CHILD};
use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_rpy::{rpy_pairs_accumulate, rpy_self_mobility, PAIR_TILE};
use hibd_telemetry::{Counter, Phase};
use std::sync::Arc;

use hibd_hot as hibd;

/// Largest supported Chebyshev order (stack buffers in the hot kernels).
pub const MAX_CHEB_ORDER: usize = 8;

/// Largest proxy-grid size (`MAX_CHEB_ORDER^3`), for hot-kernel stack buffers.
const MAX_Q3: usize = MAX_CHEB_ORDER * MAX_CHEB_ORDER * MAX_CHEB_ORDER;

/// Treecode accuracy/geometry parameters.
///
/// Convention: the MAC accepts a pair when `r_s < theta * (d - r_t)` in both
/// directions (with `r = sqrt(3) * half`), so *smaller* `theta` means
/// stricter acceptance and higher accuracy; `cheb_order` is the number of
/// proxy points per dimension
/// (`q^3` per node). The defaults keep the relative matvec error below
/// `1e-3` with roughly a 2x margin against the dense free-space RPY matrix
/// on uniform clouds up to `n ~ 10^4` (see `tuner`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeParams {
    /// Multipole acceptance parameter in `(0, 1)`.
    pub theta: f64,
    /// Maximum particles per leaf.
    pub leaf_capacity: usize,
    /// Chebyshev points per dimension (`2..=MAX_CHEB_ORDER`).
    pub cheb_order: usize,
    /// Particle radius.
    pub a: f64,
    /// Fluid viscosity.
    pub eta: f64,
    /// Far-field evaluation strategy.
    pub eval: TreeEval,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            theta: 0.4,
            leaf_capacity: 32,
            cheb_order: 3,
            a: 1.0,
            eta: 1.0,
            eval: TreeEval::Tree,
        }
    }
}

/// Far-field evaluation strategy of the hierarchical operator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TreeEval {
    /// Node-to-particle treecode: each target particle sums every accepted
    /// source node's proxies directly — `O(n log n)`, no downward pass.
    #[default]
    Tree,
    /// Kernel-independent FMM: M2L translations between proxy grids, L2L
    /// child shifts, one L2P interpolation per particle — `O(n)` far field.
    Fmm,
}

/// Cumulative phase timings of one operator instance, in seconds. The
/// `far_field` slot is used by the treecode path; `m2l`/`downward` by the
/// FMM path — the other mode's slots stay zero.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeTimings {
    pub build: f64,
    pub upward: f64,
    pub far_field: f64,
    pub m2l: f64,
    pub downward: f64,
    pub near_field: f64,
}

/// Position-independent treecode setup artifacts, shareable across
/// operators: the validated parameters, the 1-D Chebyshev node set, and the
/// eight universal child→parent (M2M) transfer matrices. All of it is a
/// pure function of [`TreeParams`] (only `cheb_order` matters numerically),
/// so one `Arc<TreePlans>` serves every rebuild of one trajectory and every
/// replica of an ensemble.
pub struct TreePlans {
    params: TreeParams,
    /// 1-D Chebyshev nodes (length `q`).
    cheb_t: Vec<f64>,
    /// Eight `q^3 x q^3` octant M2M matrices.
    m2m: Vec<Vec<f64>>,
    /// The eight transposed octant matrices (parent→child L2L transfers);
    /// built only for [`TreeEval::Fmm`] parameters, empty otherwise.
    l2l: Vec<Vec<f64>>,
}

impl TreePlans {
    /// Validate the parameters and build the shared Chebyshev tables.
    pub fn new(params: TreeParams) -> TreePlans {
        assert!(params.theta > 0.0 && params.theta < 1.0, "theta must be in (0, 1)");
        assert!(params.leaf_capacity >= 1, "leaf capacity must be positive");
        assert!(
            (2..=MAX_CHEB_ORDER).contains(&params.cheb_order),
            "cheb_order must be in 2..={MAX_CHEB_ORDER}"
        );
        assert!(params.a > 0.0 && params.eta > 0.0);
        let cheb_t = cheb::nodes(params.cheb_order);
        let m2m = cheb::m2m_octants(&cheb_t);
        // L2L is interpolation from the parent grid onto a child grid — the
        // transpose of the child→parent anterpolation, octant by octant.
        let l2l = if params.eval == TreeEval::Fmm {
            let q3 = cheb_t.len().pow(3);
            m2m.iter()
                .map(|m| {
                    let mut t = vec![0.0; q3 * q3];
                    for r in 0..q3 {
                        for c in 0..q3 {
                            t[c * q3 + r] = m[r * q3 + c];
                        }
                    }
                    t
                })
                .collect()
        } else {
            Vec::new()
        };
        TreePlans { params, cheb_t, m2m, l2l }
    }

    /// The validated parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Resident bytes of the shared tables.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.cheb_t.capacity() * size_of::<f64>()
            + self.m2m.iter().map(|m| m.capacity() * size_of::<f64>()).sum::<usize>()
            + self.m2m.capacity() * size_of::<Vec<f64>>()
            + self.l2l.iter().map(|m| m.capacity() * size_of::<f64>()).sum::<usize>()
            + self.l2l.capacity() * size_of::<Vec<f64>>()
    }
}

/// The matrix-free hierarchical RPY operator (see module docs).
pub struct TreeOperator {
    plans: Arc<TreePlans>,
    tree: Octree,
    n: usize,
    q3: usize,
    /// Per-particle anterpolation weights `[particle][dim][q]` (Morton
    /// order), toward the particle's leaf grid.
    pw: Vec<f64>,
    /// Proxy source strengths, planar per node: `[node][comp][q^3]` (the
    /// planar layout keeps the M2M and far-field inner loops unit-stride).
    weights: Vec<f64>,
    /// CSR per-leaf far interaction lists (source node ids).
    far_off: Vec<u32>,
    far_src: Vec<u32>,
    /// CSR per-leaf near interaction lists (source *leaf node* ids; a
    /// leaf's own id marks the self block).
    near_off: Vec<u32>,
    near_src: Vec<u32>,
    /// FMM far-field state ([`TreeEval::Fmm`] only): node-level interaction
    /// lists with deduplicated M2L tables, plus the local-expansion scratch
    /// (grown once at build, never shrunk — applies stay allocation-free).
    fmm: Option<FmmState>,
    /// Interactions per apply (near particle pairs + far particle-proxy
    /// evaluations; for FMM, `q^6` per M2L translation + `q^3` per particle
    /// L2P), for `Counter::TreeInteractions`.
    interactions: u64,
    /// Morton-ordered input/output scratch (length `3n`).
    xr: Vec<f64>,
    yr: Vec<f64>,
    /// Column scratch for `apply_multi`.
    xcol: Vec<f64>,
    ycol: Vec<f64>,
    timings: TreeTimings,
}

/// Per-operator FMM far-field state (see [`TreeOperator::fmm`]).
struct FmmState {
    data: fmm::FmmData,
    /// Local expansions, planar per node: `[node][comp][q^3]`.
    locals: Vec<f64>,
}

impl TreeOperator {
    /// Build the octree, traversal lists, and anterpolation tables for a
    /// fixed particle cloud, including its own Chebyshev tables.
    pub fn new(positions: &[Vec3], params: TreeParams) -> TreeOperator {
        Self::with_plans(positions, Arc::new(TreePlans::new(params)))
    }

    /// Build the position-dependent part of the operator (octree, traversal
    /// lists, anterpolation weights, scratch) on top of shared Chebyshev
    /// tables — the per-window / per-replica construction path.
    pub fn with_plans(positions: &[Vec3], plans: Arc<TreePlans>) -> TreeOperator {
        let params = plans.params;
        let sw = hibd_telemetry::start(Phase::TreeBuild);

        let n = positions.len();
        let q = params.cheb_order;
        let q3 = q * q * q;
        let tree = Octree::build(positions, params.leaf_capacity);
        let cheb_t = &plans.cheb_t;

        // Per-particle anterpolation weights toward the owning leaf's grid.
        let mut pw = vec![0.0; n * 3 * q];
        for &l in &tree.leaves {
            let node = &tree.nodes[l as usize];
            let h = node.half.max(f64::MIN_POSITIVE);
            for k in node.start..node.end {
                let p = tree.pos[k as usize];
                let base = k as usize * 3 * q;
                cheb::weights_into(cheb_t, (p.x - node.center.x) / h, &mut pw[base..base + q]);
                cheb::weights_into(
                    cheb_t,
                    (p.y - node.center.y) / h,
                    &mut pw[base + q..base + 2 * q],
                );
                cheb::weights_into(
                    cheb_t,
                    (p.z - node.center.z) / h,
                    &mut pw[base + 2 * q..base + 3 * q],
                );
            }
        }

        // Dual traversal -> ordered (target, source) pair lists.
        let mut far_pairs: Vec<(u32, u32)> = Vec::new();
        let mut near_pairs: Vec<(u32, u32)> = Vec::new();
        if !tree.nodes.is_empty() {
            dual_traverse(
                &tree,
                0,
                0,
                params.theta,
                2.0 * params.a,
                &mut far_pairs,
                &mut near_pairs,
            );
        }

        let nleaves = tree.leaves.len();
        let mut leaf_index = vec![u32::MAX; tree.nodes.len()];
        for (li, &l) in tree.leaves.iter().enumerate() {
            leaf_index[l as usize] = li as u32;
        }
        let mut near_by_leaf: Vec<Vec<u32>> = vec![Vec::new(); nleaves];
        for &(t, s) in &near_pairs {
            near_by_leaf[leaf_index[t as usize] as usize].push(s);
        }
        let (near_off, near_src) = csr(&near_by_leaf);

        // Far-field structure: flatten accepted pairs to per-leaf lists
        // (treecode), or keep them at the node level and build the M2L
        // tables (FMM). `far_evals` is the far workload per apply.
        let (far_off, far_src, fmm, far_evals) = match params.eval {
            TreeEval::Tree => {
                let mut far_by_leaf: Vec<Vec<u32>> = vec![Vec::new(); nleaves];
                let mut stack: Vec<u32> = Vec::new();
                for &(t, s) in &far_pairs {
                    stack.push(t);
                    while let Some(ni) = stack.pop() {
                        let node = &tree.nodes[ni as usize];
                        if node.leaf {
                            far_by_leaf[leaf_index[ni as usize] as usize].push(s);
                        } else {
                            stack.extend(node.children.iter().copied().filter(|&c| c != NO_CHILD));
                        }
                    }
                }
                let mut far_evals: u64 = 0;
                for (li, &l) in tree.leaves.iter().enumerate() {
                    let tlen = tree.nodes[l as usize].len() as u64;
                    far_evals += tlen * (far_by_leaf[li].len() as u64) * (q3 as u64);
                }
                let (far_off, far_src) = csr(&far_by_leaf);
                (far_off, far_src, None, far_evals)
            }
            TreeEval::Fmm => {
                let data = fmm::FmmData::build(&tree, &far_pairs, cheb_t, params.a);
                // `q^6` kernel-table entries per M2L translation plus one
                // `q^3` interpolation per particle (L2P): per-particle far
                // work is level-independent.
                let far_evals = (data.num_pairs() as u64) * (q3 as u64) * (q3 as u64)
                    + (n as u64) * (q3 as u64);
                let locals = vec![0.0; tree.nodes.len() * q3 * 3];
                (vec![0u32; nleaves + 1], Vec::new(), Some(FmmState { data, locals }), far_evals)
            }
        };

        // Workload per apply: far field plus direct near pairs.
        let mut interactions: u64 = far_evals;
        for (li, &l) in tree.leaves.iter().enumerate() {
            let tlen = tree.nodes[l as usize].len() as u64;
            for &s in &near_by_leaf[li] {
                interactions += tlen * tree.nodes[s as usize].len() as u64;
            }
        }

        let mut op = TreeOperator {
            plans,
            tree,
            n,
            q3,
            pw,
            weights: Vec::new(),
            far_off,
            far_src,
            near_off,
            near_src,
            fmm,
            interactions,
            xr: Vec::new(),
            yr: Vec::new(),
            xcol: Vec::new(),
            ycol: Vec::new(),
            timings: TreeTimings::default(),
        };
        op.weights.resize(op.tree.nodes.len() * q3 * 3, 0.0);
        op.xr.resize(3 * n, 0.0);
        op.yr.resize(3 * n, 0.0);
        op.timings.build = sw.stop();
        op
    }

    /// The parameters the operator was built with.
    pub fn params(&self) -> &TreeParams {
        &self.plans.params
    }

    /// The shared setup artifacts backing this operator.
    pub fn plans(&self) -> &Arc<TreePlans> {
        &self.plans
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.tree.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.tree.leaves.len()
    }

    /// Deepest tree level (`0` for a single-leaf or empty tree).
    pub fn max_depth(&self) -> u32 {
        self.tree.max_depth()
    }

    /// `(M2L translations per apply, distinct deduplicated tables)` when
    /// the operator was built with [`TreeEval::Fmm`], `None` otherwise.
    pub fn fmm_stats(&self) -> Option<(usize, usize)> {
        self.fmm.as_ref().map(|st| (st.data.num_pairs(), st.data.num_entries()))
    }

    /// Near + far interaction evaluations per apply (the value added to
    /// `Counter::TreeInteractions`).
    pub fn interactions_per_apply(&self) -> u64 {
        self.interactions
    }

    /// Cumulative phase timings.
    pub fn timings(&self) -> TreeTimings {
        self.timings
    }

    /// Total bytes of operator-owned storage (tree, tables, lists, scratch),
    /// counting the shared plans in full — the standalone footprint. An
    /// ensemble sums [`TreeOperator::state_memory_bytes`] and counts each
    /// distinct [`TreePlans`] once.
    pub fn memory_bytes(&self) -> usize {
        self.state_memory_bytes() + self.plans.memory_bytes()
    }

    /// Resident bytes of the per-job part only (everything except the
    /// shared [`TreePlans`]).
    pub fn state_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.tree.order.capacity() * size_of::<u32>()
            + self.tree.pos.capacity() * size_of::<Vec3>()
            + self.tree.nodes.capacity() * size_of::<Node>()
            + self.tree.leaves.capacity() * size_of::<u32>()
            + self.pw.capacity() * size_of::<f64>()
            + self.weights.capacity() * size_of::<f64>()
            + self.far_off.capacity() * size_of::<u32>()
            + self.far_src.capacity() * size_of::<u32>()
            + self.near_off.capacity() * size_of::<u32>()
            + self.near_src.capacity() * size_of::<u32>()
            + self.xr.capacity() * size_of::<f64>()
            + self.yr.capacity() * size_of::<f64>()
            + self.xcol.capacity() * size_of::<f64>()
            + self.ycol.capacity() * size_of::<f64>()
            + match &self.fmm {
                Some(st) => st.data.memory_bytes() + st.locals.capacity() * size_of::<f64>(),
                None => 0,
            }
    }

    /// One full tree apply into the Morton scratch, then scatter to `y`.
    fn apply_inner(&mut self, x: &[f64], y: &mut [f64]) {
        if self.n == 0 {
            return;
        }
        let sw = hibd_telemetry::start(Phase::Upward);
        gather(&self.tree.order, x, &mut self.xr);
        self.upward();
        self.timings.upward += sw.stop();

        // Move the output scratch out so the leaf passes can borrow `self`
        // shared while writing disjoint slices of it (no allocation: `take`
        // swaps in an empty vec).
        let mut yr = std::mem::take(&mut self.yr);
        let nleaves = self.tree.leaves.len();
        yr.iter_mut().for_each(|v| *v = 0.0);

        if self.fmm.is_some() {
            // FMM far field: M2L into the locals (node-parallel, disjoint
            // slices), serial L2L push-down, then one L2P pass per leaf.
            // The state is taken out so the M2L pass can borrow `self`
            // shared, and restored before L2P reads the locals through it.
            let mut st = self.fmm.take().expect("checked above");
            let m2l_pairs = st.data.num_pairs() as u64;

            let sw = hibd_telemetry::start(Phase::M2l);
            st.locals.iter_mut().for_each(|v| *v = 0.0);
            par_m2l(self, &st.data, 0, self.tree.nodes.len(), &mut st.locals);
            self.timings.m2l += sw.stop();

            let sw = hibd_telemetry::start(Phase::Downward);
            self.l2l(&mut st.locals);
            self.fmm = Some(st);
            par_leaf_pass(self, LeafPass::L2p, 0, nleaves, &mut yr);
            self.timings.downward += sw.stop();
            hibd_telemetry::incr(Counter::M2lTranslations, m2l_pairs);
        } else {
            let sw = hibd_telemetry::start(Phase::FarField);
            par_leaf_pass(self, LeafPass::Far, 0, nleaves, &mut yr);
            self.timings.far_field += sw.stop();
        }

        let sw = hibd_telemetry::start(Phase::NearField);
        par_leaf_pass(self, LeafPass::Near, 0, nleaves, &mut yr);
        self.timings.near_field += sw.stop();

        scatter(&self.tree.order, &yr, y);
        self.yr = yr;
        hibd_telemetry::incr(Counter::TreeInteractions, self.interactions);
    }

    /// Upward pass: P2M on the leaves, then child→parent M2M merges in
    /// reverse preorder (children precede parents in that order).
    fn upward(&mut self) {
        self.weights.iter_mut().for_each(|v| *v = 0.0);
        let q = self.plans.params.cheb_order;
        let q3 = self.q3;
        let stride = q3 * 3;
        for &l in &self.tree.leaves {
            let node = &self.tree.nodes[l as usize];
            let w = &mut self.weights[l as usize * stride..(l as usize + 1) * stride];
            p2m_leaf(node, &self.pw, &self.xr, q, w);
        }
        for ni in (0..self.tree.nodes.len()).rev() {
            if self.tree.nodes[ni].leaf {
                continue;
            }
            for c in self.tree.nodes[ni].children {
                if c == NO_CHILD {
                    continue;
                }
                let ci = c as usize;
                let (head, tail) = self.weights.split_at_mut(ci * stride);
                let parent = &mut head[ni * stride..(ni + 1) * stride];
                let child = &tail[..stride];
                m2m_accumulate(
                    &self.plans.m2m[self.tree.nodes[ci].octant as usize],
                    child,
                    q3,
                    parent,
                );
            }
        }
    }

    /// L2L: push each node's local expansion onto its children's grids
    /// through the transposed octant matrices, in preorder (parents are
    /// final before any child reads them). A serial sweep — `O(nodes q^6)`
    /// is negligible next to M2L, and serial order keeps the downward pass
    /// trivially deterministic.
    fn l2l(&self, locals: &mut [f64]) {
        let q3 = self.q3;
        let stride = q3 * 3;
        for ni in 0..self.tree.nodes.len() {
            if self.tree.nodes[ni].leaf {
                continue;
            }
            for c in self.tree.nodes[ni].children {
                if c == NO_CHILD {
                    continue;
                }
                let ci = c as usize;
                let (head, tail) = locals.split_at_mut(ci * stride);
                let parent = &head[ni * stride..(ni + 1) * stride];
                let child = &mut tail[..stride];
                // The transposed-GEMV shape is identical to M2M, so the
                // same kernel serves with the L2L table and the roles of
                // parent/child swapped.
                m2m_accumulate(
                    &self.plans.l2l[self.tree.nodes[ci].octant as usize],
                    parent,
                    q3,
                    child,
                );
            }
        }
    }
}

/// Gather `x` (original particle order) into Morton order.
#[hibd::hot]
fn gather(order: &[u32], x: &[f64], xr: &mut [f64]) {
    for (k, &i) in order.iter().enumerate() {
        let i = i as usize;
        xr[3 * k] = x[3 * i];
        xr[3 * k + 1] = x[3 * i + 1];
        xr[3 * k + 2] = x[3 * i + 2];
    }
}

/// Scatter the Morton-ordered result back to the original order.
#[hibd::hot]
fn scatter(order: &[u32], yr: &[f64], y: &mut [f64]) {
    for (k, &i) in order.iter().enumerate() {
        let i = i as usize;
        y[3 * i] = yr[3 * k];
        y[3 * i + 1] = yr[3 * k + 1];
        y[3 * i + 2] = yr[3 * k + 2];
    }
}

/// P2M: anterpolate the leaf's particle strengths onto its proxy grid.
#[hibd::hot]
fn p2m_leaf(node: &Node, pw: &[f64], xr: &[f64], q: usize, w: &mut [f64]) {
    for k in node.start as usize..node.end as usize {
        let base = k * 3 * q;
        let (wx, rest) = pw[base..base + 3 * q].split_at(q);
        let (wy, wz) = rest.split_at(q);
        let sx = xr[3 * k];
        let sy = xr[3 * k + 1];
        let sz = xr[3 * k + 2];
        let q3 = q * q * q;
        let mut m = 0;
        for &ax in wx {
            for &ay in wy {
                let axy = ax * ay;
                for &az in wz {
                    let s = axy * az;
                    w[m] += s * sx;
                    w[q3 + m] += s * sy;
                    w[2 * q3 + m] += s * sz;
                    m += 1;
                }
            }
        }
    }
}

/// M2M: `parent += T_octant * child`, one unit-stride `q^3 x q^3` GEMV per
/// weight component plane.
#[hibd::hot]
fn m2m_accumulate(mat: &[f64], child: &[f64], q3: usize, parent: &mut [f64]) {
    for c in 0..3 {
        let cp = &child[c * q3..(c + 1) * q3];
        let pp = &mut parent[c * q3..(c + 1) * q3];
        for (m, pv) in pp.iter_mut().enumerate() {
            let row = &mat[m * q3..(m + 1) * q3];
            let mut acc = 0.0;
            for (t, x) in row.iter().zip(cp) {
                acc += t * x;
            }
            *pv += acc;
        }
    }
}

/// Dual tree traversal emitting ordered far pairs (both directions) and
/// ordered near leaf pairs (both directions; `(l, l)` once). The MAC is the
/// two-sided ratio criterion (see inline comment), so an accepted pair is
/// admissible as source *and* as target.
fn dual_traverse(
    tree: &Octree,
    a: usize,
    b: usize,
    theta: f64,
    two_a: f64,
    far: &mut Vec<(u32, u32)>,
    near: &mut Vec<(u32, u32)>,
) {
    let na = &tree.nodes[a];
    let nb = &tree.nodes[b];
    if a == b {
        if na.leaf {
            near.push((a as u32, a as u32));
            return;
        }
        let kids: Vec<u32> = na.children.iter().copied().filter(|&c| c != NO_CHILD).collect();
        for (i, &ci) in kids.iter().enumerate() {
            for &cj in &kids[i..] {
                dual_traverse(tree, ci as usize, cj as usize, theta, two_a, far, near);
            }
        }
        return;
    }
    let d = (na.center - nb.center).norm();
    let (ra, rb) = (na.radius(), nb.radius());
    // Ratio MAC, both directions (each side's proxy spread over the other's
    // nearest evaluation distance): distant regions coarsen to few large
    // source nodes instead of many small ones. `theta < 1` makes either
    // clause imply `d > ra + rb`; the `2a` clause keeps the far branch exact.
    if rb < theta * (d - ra) && ra < theta * (d - rb) && d - ra - rb >= two_a {
        far.push((a as u32, b as u32));
        far.push((b as u32, a as u32));
        return;
    }
    if na.leaf && nb.leaf {
        near.push((a as u32, b as u32));
        near.push((b as u32, a as u32));
        return;
    }
    // Split the internal one; of two internals, the larger (ties: `a`).
    if nb.leaf || (!na.leaf && na.half >= nb.half) {
        for c in na.children {
            if c != NO_CHILD {
                dual_traverse(tree, c as usize, b, theta, two_a, far, near);
            }
        }
    } else {
        for c in nb.children {
            if c != NO_CHILD {
                dual_traverse(tree, a, c as usize, theta, two_a, far, near);
            }
        }
    }
}

/// Test-only handle on the traversal: the `fmm` unit tests build realistic
/// MAC-accepted pair lists without constructing a full operator.
#[cfg(test)]
pub(crate) fn dual_traverse_for_tests(
    tree: &Octree,
    theta: f64,
    two_a: f64,
    far: &mut Vec<(u32, u32)>,
    near: &mut Vec<(u32, u32)>,
) {
    if !tree.nodes.is_empty() {
        dual_traverse(tree, 0, 0, theta, two_a, far, near);
    }
}

/// Flatten per-leaf lists into CSR (offsets, indices).
fn csr(by_leaf: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut off = Vec::with_capacity(by_leaf.len() + 1);
    off.push(0u32);
    let total: usize = by_leaf.iter().map(Vec::len).sum();
    let mut idx = Vec::with_capacity(total);
    for list in by_leaf {
        idx.extend_from_slice(list);
        off.push(idx.len() as u32);
    }
    (off, idx)
}

/// Which per-leaf kernel a [`par_leaf_pass`] sweep runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LeafPass {
    /// Treecode far field: particles against accepted source proxy grids.
    Far,
    /// Direct near field (both modes).
    Near,
    /// FMM L2P: interpolate each leaf's local expansion at its particles.
    L2p,
}

/// Recursive leaf-parallel evaluation over the leaf-ordinal range
/// `lo..hi`: the leaves' Morton ranges partition `0..n`, so the output is
/// split at leaf boundaries and the two halves recurse under `rayon::join`
/// — every leaf writes a disjoint `yr` slice. `yr` covers exactly the
/// particles of leaves `lo..hi`.
fn par_leaf_pass(op: &TreeOperator, pass: LeafPass, lo: usize, hi: usize, yr: &mut [f64]) {
    if lo >= hi {
        return;
    }
    if hi - lo == 1 {
        let node = &op.tree.nodes[op.tree.leaves[lo] as usize];
        debug_assert_eq!(yr.len(), 3 * node.len());
        match pass {
            LeafPass::Far => far_leaf(op, lo, node, yr),
            LeafPass::Near => near_leaf(op, lo, node, yr),
            LeafPass::L2p => l2p_leaf(op, lo, node, yr),
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let first = op.tree.nodes[op.tree.leaves[lo] as usize].start as usize;
    let boundary = op.tree.nodes[op.tree.leaves[mid] as usize].start as usize;
    let (left, right) = yr.split_at_mut(3 * (boundary - first));
    rayon::join(
        || par_leaf_pass(op, pass, lo, mid, left),
        || par_leaf_pass(op, pass, mid, hi, right),
    );
}

/// Recursive node-parallel M2L over the preorder node range `lo..hi`:
/// `locals` covers exactly nodes `lo..hi` (stride `3 q^3` each) and splits
/// at node boundaries under `rayon::join`; each target node accumulates its
/// interaction list sequentially, so the result is bitwise independent of
/// the rayon schedule (same structure as [`par_leaf_pass`]).
fn par_m2l(op: &TreeOperator, data: &fmm::FmmData, lo: usize, hi: usize, locals: &mut [f64]) {
    if lo >= hi {
        return;
    }
    if hi - lo == 1 {
        m2l_node(op, data, lo, locals);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let (left, right) = locals.split_at_mut((mid - lo) * 3 * op.q3);
    rayon::join(|| par_m2l(op, data, lo, mid, left), || par_m2l(op, data, mid, hi, right));
}

/// M2L for one target node: translate every listed source node's proxy
/// weights into the target's local expansion, in list order.
#[hibd::hot]
fn m2l_node(op: &TreeOperator, data: &fmm::FmmData, ni: usize, out: &mut [f64]) {
    let q = op.plans.params.cheb_order;
    let q3 = op.q3;
    let lo = data.m2l_off[ni] as usize;
    let hi = data.m2l_off[ni + 1] as usize;
    for k in lo..hi {
        let s = data.m2l_src[k] as usize;
        let entry = &data.entries[data.pair_entry[k] as usize];
        let w = &op.weights[s * 3 * q3..(s + 1) * 3 * q3];
        fmm::m2l_apply(entry, q, w, out);
    }
}

/// L2P for one leaf: interpolate the leaf's local expansion at each of its
/// particles with the same per-particle `pw` weights P2M anterpolates with
/// (interpolation is the transpose of anterpolation), scaled by `mu0` like
/// every far-field contribution.
#[hibd::hot]
fn l2p_leaf(op: &TreeOperator, ord: usize, node: &Node, y: &mut [f64]) {
    let q = op.plans.params.cheb_order;
    let q3 = op.q3;
    let mu0 = rpy_self_mobility(op.plans.params.a, op.plans.params.eta);
    let Some(st) = &op.fmm else { return };
    let li = op.tree.leaves[ord] as usize;
    let loc = &st.locals[li * 3 * q3..(li + 1) * 3 * q3];
    let (lx, rest) = loc.split_at(q3);
    let (ly, lz) = rest.split_at(q3);
    for k in node.start as usize..node.end as usize {
        let base = k * 3 * q;
        let (wx, rest) = op.pw[base..base + 3 * q].split_at(q);
        let (wy, wz) = rest.split_at(q);
        let (mut ox, mut oy, mut oz) = (0.0f64, 0.0f64, 0.0f64);
        let mut m = 0;
        for &ax in wx {
            for &ay in wy {
                let axy = ax * ay;
                for &az in wz {
                    let s = axy * az;
                    ox += s * lx[m];
                    oy += s * ly[m];
                    oz += s * lz[m];
                    m += 1;
                }
            }
        }
        let o = 3 * (k - node.start as usize);
        y[o] += mu0 * ox;
        y[o + 1] += mu0 * oy;
        y[o + 2] += mu0 * oz;
    }
}

/// Far field for one target leaf: particles against accepted source-node
/// proxy grids, far-branch RPY only (the MAC guarantees `r >= 2a`).
///
/// The per-proxy kernel is staged through stack buffers so the `sqrt`/`div`
/// pass and the accumulation pass are straight unit-stride loops the
/// compiler can vectorize; `frr` is folded as `frr / r^2` so the raw
/// displacement replaces the normalized `r_hat` (no per-proxy division).
#[hibd::hot]
fn far_leaf(op: &TreeOperator, ord: usize, node: &Node, y: &mut [f64]) {
    let q = op.plans.params.cheb_order;
    let q3 = op.q3;
    let mu0 = rpy_self_mobility(op.plans.params.a, op.plans.params.eta);
    let a = op.plans.params.a;
    let srcs = &op.far_src[op.far_off[ord] as usize..op.far_off[ord + 1] as usize];
    let mut px = [0.0f64; MAX_CHEB_ORDER];
    let mut py = [0.0f64; MAX_CHEB_ORDER];
    let mut pz = [0.0f64; MAX_CHEB_ORDER];
    let mut r2b = [0.0f64; MAX_Q3];
    let mut irb = [0.0f64; MAX_Q3];
    for &s in srcs {
        let sn = &op.tree.nodes[s as usize];
        for m in 0..q {
            px[m] = sn.center.x + sn.half * op.plans.cheb_t[m];
            py[m] = sn.center.y + sn.half * op.plans.cheb_t[m];
            pz[m] = sn.center.z + sn.half * op.plans.cheb_t[m];
        }
        let w = &op.weights[s as usize * q3 * 3..(s as usize + 1) * q3 * 3];
        let (wx, wyz) = w.split_at(q3);
        let (wy, wz) = wyz.split_at(q3);
        for k in node.start as usize..node.end as usize {
            let p = op.tree.pos[k];
            let mut m = 0;
            for &cx in &px[..q] {
                let dx2 = (p.x - cx) * (p.x - cx);
                for &cy in &py[..q] {
                    let dxy2 = dx2 + (p.y - cy) * (p.y - cy);
                    for &cz in &pz[..q] {
                        let dz = p.z - cz;
                        r2b[m] = dxy2 + dz * dz;
                        m += 1;
                    }
                }
            }
            for (ir, r2) in irb[..q3].iter_mut().zip(&r2b[..q3]) {
                *ir = 1.0 / r2.sqrt();
            }
            let (mut ox, mut oy, mut oz) = (0.0f64, 0.0f64, 0.0f64);
            let mut m = 0;
            for &cx in &px[..q] {
                let dx = p.x - cx;
                for &cy in &py[..q] {
                    let dy = p.y - cy;
                    for &cz in &pz[..q] {
                        let dz = p.z - cz;
                        // Far branch of RPY (guaranteed r >= 2a by the MAC).
                        let ir = irb[m];
                        let ar = a * ir;
                        let ar3 = ar * ar * ar;
                        let fi = 0.75 * ar + 0.5 * ar3;
                        let fr = (0.75 * ar - 1.5 * ar3) * (ir * ir);
                        let dot = dx * wx[m] + dy * wy[m] + dz * wz[m];
                        ox += fi * wx[m] + fr * dot * dx;
                        oy += fi * wy[m] + fr * dot * dy;
                        oz += fi * wz[m] + fr * dot * dz;
                        m += 1;
                    }
                }
            }
            let o = 3 * (k - node.start as usize);
            y[o] += mu0 * ox;
            y[o + 1] += mu0 * oy;
            y[o + 2] += mu0 * oz;
        }
    }
}

/// Near field for one target leaf: direct two-branch RPY against every
/// source leaf in the near list via the batched pair kernel
/// ([`hibd_rpy::rpy_pairs_accumulate`], four pairs per AVX2 iteration).
/// Sources are staged once per SoA tile and reused by every target of the
/// leaf. The self block needs no special casing: the kernel's coincident
/// (`r = 0`) lanes contribute exactly the `mu0 I` diagonal.
#[hibd::hot]
fn near_leaf(op: &TreeOperator, ord: usize, node: &Node, y: &mut [f64]) {
    let mu0 = rpy_self_mobility(op.plans.params.a, op.plans.params.eta);
    let a = op.plans.params.a;
    let srcs = &op.near_src[op.near_off[ord] as usize..op.near_off[ord + 1] as usize];
    let mut sx = [0.0f64; PAIR_TILE];
    let mut sy = [0.0f64; PAIR_TILE];
    let mut sz = [0.0f64; PAIR_TILE];
    let mut vx = [0.0f64; PAIR_TILE];
    let mut vy = [0.0f64; PAIR_TILE];
    let mut vz = [0.0f64; PAIR_TILE];
    for &s in srcs {
        let sn = &op.tree.nodes[s as usize];
        let mut j0 = sn.start as usize;
        while j0 < sn.end as usize {
            let l = (sn.end as usize - j0).min(PAIR_TILE);
            for (t, j) in (j0..j0 + l).enumerate() {
                let pj = op.tree.pos[j];
                sx[t] = pj.x;
                sy[t] = pj.y;
                sz[t] = pj.z;
                vx[t] = op.xr[3 * j];
                vy[t] = op.xr[3 * j + 1];
                vz[t] = op.xr[3 * j + 2];
            }
            for k in node.start as usize..node.end as usize {
                let p = op.tree.pos[k];
                let mut acc = [0.0f64; 3];
                rpy_pairs_accumulate(
                    a,
                    p.x,
                    p.y,
                    p.z,
                    &sx[..l],
                    &sy[..l],
                    &sz[..l],
                    &vx[..l],
                    &vy[..l],
                    &vz[..l],
                    &mut acc,
                );
                let o = 3 * (k - node.start as usize);
                y[o] += mu0 * acc[0];
                y[o + 1] += mu0 * acc[1];
                y[o + 2] += mu0 * acc[2];
            }
            j0 += l;
        }
    }
}

impl LinearOperator for TreeOperator {
    fn dim(&self) -> usize {
        3 * self.n
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), 3 * self.n);
        assert_eq!(y.len(), 3 * self.n);
        self.apply_inner(x, y);
    }

    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        let n = self.dim();
        assert_eq!(x.len(), n * s);
        assert_eq!(y.len(), n * s);
        self.xcol.resize(n, 0.0);
        self.ycol.resize(n, 0.0);
        for col in 0..s {
            for i in 0..n {
                self.xcol[i] = x[i * s + col];
            }
            let xcol = std::mem::take(&mut self.xcol);
            let mut ycol = std::mem::take(&mut self.ycol);
            self.apply_inner(&xcol, &mut ycol);
            for i in 0..n {
                y[i * s + col] = ycol[i];
            }
            self.xcol = xcol;
            self.ycol = ycol;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_rpy::{dense_rpy_free, rpy_pair_scalars};

    fn cloud(n: usize, spread: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * spread
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn test_vec(dim: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..dim)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
            })
            .collect()
    }

    fn rel_err(got: &[f64], want: &[f64]) -> f64 {
        let err2: f64 = got.iter().zip(want).map(|(g, w)| (g - w) * (g - w)).sum();
        let ref2: f64 = want.iter().map(|w| w * w).sum();
        (err2 / ref2.max(f64::MIN_POSITIVE)).sqrt()
    }

    #[test]
    fn apply_matches_dense_on_a_small_cloud() {
        let pos = cloud(60, 12.0, 17);
        let dense = dense_rpy_free(&pos, 1.0, 1.0);
        // Tiny leaves force real traversal structure even at this size.
        let params = TreeParams { leaf_capacity: 4, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        assert_eq!(op.dim(), 180);
        let x = test_vec(180, 3);
        let mut yt = vec![0.0; 180];
        let mut yd = vec![0.0; 180];
        op.apply(&x, &mut yt);
        dense.mul_vec(&x, &mut yd);
        let err = rel_err(&yt, &yd);
        assert!(err <= 1e-3, "rel err {err}");
        assert!(op.interactions_per_apply() > 0);
        assert!(op.memory_bytes() > 0);
        assert!(op.timings().build > 0.0);
    }

    #[test]
    fn dense_comparable_cloud_with_overlaps() {
        // Dense cluster: many pairs in the Yamakawa overlap branch go
        // through the near field; the tree must still match the dense
        // two-branch matrix.
        let pos = cloud(50, 4.0, 23);
        let dense = dense_rpy_free(&pos, 1.0, 1.0);
        let params = TreeParams { leaf_capacity: 8, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        let x = test_vec(150, 5);
        let mut yt = vec![0.0; 150];
        let mut yd = vec![0.0; 150];
        op.apply(&x, &mut yt);
        dense.mul_vec(&x, &mut yd);
        let err = rel_err(&yt, &yd);
        assert!(err <= 1e-3, "rel err {err}");
    }

    #[test]
    fn single_particle_is_self_mobility() {
        let pos = vec![Vec3::new(1.0, -2.0, 0.5)];
        let mut op = TreeOperator::new(&pos, TreeParams::default());
        let mu0 = rpy_self_mobility(1.0, 1.0);
        let x = [1.0, 2.0, -3.0];
        let mut y = [0.0; 3];
        op.apply(&x, &mut y);
        for (g, w) in y.iter().zip(&x) {
            assert!((g - mu0 * w).abs() < 1e-14);
        }
    }

    #[test]
    fn coincident_particles_use_the_regularized_limit() {
        let p = Vec3::new(0.3, 0.3, 0.3);
        let pos = vec![p, p, p + Vec3::new(5.0, 0.0, 0.0)];
        let mut op = TreeOperator::new(&pos, TreeParams::default());
        let dense_ref = {
            // r -> 0 overlap limit is mu0 I; build the expected matrix by
            // hand from the pair tensor where defined.
            let mu0 = rpy_self_mobility(1.0, 1.0);
            move |x: &[f64], y: &mut [f64]| {
                y.iter_mut().for_each(|v| *v = 0.0);
                for i in 0..3 {
                    for j in 0..3 {
                        let (fi, frr, rh) = if i == j {
                            (1.0, 0.0, Vec3::ZERO)
                        } else {
                            let dr = pos[i] - pos[j];
                            let r2 = dr.norm2();
                            if r2 == 0.0 {
                                (1.0, 0.0, Vec3::ZERO)
                            } else {
                                let r = r2.sqrt();
                                let (fi, frr) = rpy_pair_scalars(r, 1.0);
                                (fi, frr, dr / r)
                            }
                        };
                        let xj = Vec3::new(x[3 * j], x[3 * j + 1], x[3 * j + 2]);
                        let dot = rh.dot(xj);
                        y[3 * i] += mu0 * (fi * xj.x + frr * dot * rh.x);
                        y[3 * i + 1] += mu0 * (fi * xj.y + frr * dot * rh.y);
                        y[3 * i + 2] += mu0 * (fi * xj.z + frr * dot * rh.z);
                    }
                }
            }
        };
        let x = test_vec(9, 7);
        let mut yt = vec![0.0; 9];
        let mut yd = vec![0.0; 9];
        op.apply(&x, &mut yt);
        dense_ref(&x, &mut yd);
        assert!(rel_err(&yt, &yd) < 1e-3);
    }

    #[test]
    fn apply_multi_matches_column_by_column_apply() {
        let pos = cloud(30, 8.0, 31);
        let params = TreeParams { leaf_capacity: 4, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        let dim = op.dim();
        let s = 3;
        let xm = test_vec(dim * s, 11);
        let mut ym = vec![0.0; dim * s];
        op.apply_multi(&xm, &mut ym, s);
        let mut x = vec![0.0; dim];
        let mut y = vec![0.0; dim];
        for col in 0..s {
            for i in 0..dim {
                x[i] = xm[i * s + col];
            }
            op.apply(&x, &mut y);
            for i in 0..dim {
                assert!((ym[i * s + col] - y[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn operator_is_numerically_symmetric_to_mac_accuracy() {
        // M is exactly symmetric; the treecode is symmetric up to the far
        // field approximation error, which block Lanczos tolerates.
        let pos = cloud(40, 10.0, 41);
        let params = TreeParams { leaf_capacity: 4, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        let u = test_vec(120, 1);
        let v = test_vec(120, 2);
        let mut mu = vec![0.0; 120];
        let mut mv = vec![0.0; 120];
        op.apply(&u, &mut mu);
        op.apply(&v, &mut mv);
        let vmu: f64 = v.iter().zip(&mu).map(|(a, b)| a * b).sum();
        let umv: f64 = u.iter().zip(&mv).map(|(a, b)| a * b).sum();
        let scale: f64 = mu.iter().map(|a| a * a).sum::<f64>().sqrt()
            * v.iter().map(|a| a * a).sum::<f64>().sqrt();
        assert!((vmu - umv).abs() <= 1e-3 * scale, "asymmetry {}", (vmu - umv).abs() / scale);
    }

    #[test]
    fn empty_operator_is_a_no_op() {
        let mut op = TreeOperator::new(&[], TreeParams::default());
        assert_eq!(op.dim(), 0);
        op.apply(&[], &mut []);
        assert_eq!(op.interactions_per_apply(), 0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        let _ =
            TreeOperator::new(&[Vec3::ZERO], TreeParams { theta: 1.5, ..TreeParams::default() });
    }

    #[test]
    fn fmm_apply_matches_dense_on_a_small_cloud() {
        let pos = cloud(120, 16.0, 19);
        let dense = dense_rpy_free(&pos, 1.0, 1.0);
        let params = TreeParams { leaf_capacity: 4, eval: TreeEval::Fmm, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        let x = test_vec(360, 3);
        let mut yf = vec![0.0; 360];
        let mut yd = vec![0.0; 360];
        op.apply(&x, &mut yf);
        dense.mul_vec(&x, &mut yd);
        let err = rel_err(&yf, &yd);
        assert!(err <= 1e-3, "rel err {err}");
        let (pairs, entries) = op.fmm_stats().expect("FMM mode carries stats");
        assert!(pairs > 0, "traversal must accept far pairs at this size");
        assert!(entries <= pairs, "dedup cannot grow the table set");
        assert!(op.memory_bytes() > op.state_memory_bytes());
        assert!(op.timings().m2l >= 0.0 && op.timings().downward >= 0.0);
        assert_eq!(op.timings().far_field, 0.0, "FMM mode never runs far_leaf");
    }

    #[test]
    fn fmm_and_treecode_agree_on_the_same_cloud() {
        // Same MAC, same upward pass: the two far-field evaluations differ
        // only by the target-side interpolation, which the two-sided MAC
        // bounds at the same order as the source-side one.
        let pos = cloud(200, 20.0, 29);
        let base = TreeParams { leaf_capacity: 8, ..TreeParams::default() };
        let mut tree_op = TreeOperator::new(&pos, base);
        let mut fmm_op = TreeOperator::new(&pos, TreeParams { eval: TreeEval::Fmm, ..base });
        let x = test_vec(600, 13);
        let mut yt = vec![0.0; 600];
        let mut yf = vec![0.0; 600];
        tree_op.apply(&x, &mut yt);
        fmm_op.apply(&x, &mut yf);
        assert!(rel_err(&yf, &yt) <= 2e-3, "rel err {}", rel_err(&yf, &yt));
    }

    #[test]
    fn fmm_empty_and_single_particle_degenerate_cases() {
        let params = TreeParams { eval: TreeEval::Fmm, ..TreeParams::default() };
        let mut empty = TreeOperator::new(&[], params);
        empty.apply(&[], &mut []);
        let pos = vec![Vec3::new(1.0, -2.0, 0.5)];
        let mut op = TreeOperator::new(&pos, params);
        let mu0 = rpy_self_mobility(1.0, 1.0);
        let x = [1.0, 2.0, -3.0];
        let mut y = [0.0; 3];
        op.apply(&x, &mut y);
        for (g, w) in y.iter().zip(&x) {
            assert!((g - mu0 * w).abs() < 1e-14);
        }
    }

    #[test]
    fn fmm_apply_multi_matches_column_by_column_apply() {
        let pos = cloud(40, 9.0, 37);
        let params = TreeParams { leaf_capacity: 4, eval: TreeEval::Fmm, ..TreeParams::default() };
        let mut op = TreeOperator::new(&pos, params);
        let dim = op.dim();
        let s = 3;
        let xm = test_vec(dim * s, 11);
        let mut ym = vec![0.0; dim * s];
        op.apply_multi(&xm, &mut ym, s);
        let mut x = vec![0.0; dim];
        let mut y = vec![0.0; dim];
        for col in 0..s {
            for i in 0..dim {
                x[i] = xm[i * s + col];
            }
            op.apply(&x, &mut y);
            for i in 0..dim {
                assert!((ym[i * s + col] - y[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fmm_interactions_count_m2l_and_l2p_work() {
        let pos = cloud(500, 24.0, 43);
        let params = TreeParams { leaf_capacity: 8, eval: TreeEval::Fmm, ..TreeParams::default() };
        let op = TreeOperator::new(&pos, params);
        let (pairs, _) = op.fmm_stats().unwrap();
        let q3 = 27u64; // default cheb_order = 3
        let far = pairs as u64 * q3 * q3 + 500 * q3;
        assert!(op.interactions_per_apply() >= far, "near work must only add");
        assert!(op.max_depth() >= 2);
    }
}
