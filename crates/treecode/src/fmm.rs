//! The FMM downward-pass machinery: M2L interaction lists and translation
//! tables between Chebyshev proxy grids.
//!
//! The treecode evaluates every MAC-accepted (target, source) node pair
//! *node-to-particle*: each particle under the target sums the far-branch
//! RPY kernel over the source's `q^3` proxies, so the far-field work per
//! particle grows with the number of accepted ancestors — one ring of
//! sources per tree level, the `O(n log n)` signature. The FMM keeps the
//! pair at the *node* level instead: a multipole-to-local (M2L) translation
//! maps the source node's proxy weights to field values at the target
//! node's own Chebyshev points (its *local expansion*), locals are pushed
//! to children by L2L interpolation (the transposed M2M octant matrices),
//! and each particle finally interpolates its leaf's local once (L2P). Far
//! work per particle is then a level-independent constant — `O(n)`.
//!
//! **M2L tables.** The translation matrix for a pair depends only on the
//! two cube geometries, and node centers live on the dyadic lattice of the
//! root cube: node `a` at level `l` has integer cell coordinates
//! `c in [0, 2^l)^3` with `center = lo + (2c + 1) * root_half / 2^l`. The
//! relative geometry of a pair is therefore exactly captured by the integer
//! key `(l_a, l_b, 2^(d-l_a)(2c_a+1) - 2^(d-l_b)(2c_b+1))` with
//! `d = max(l_a, l_b)`, and tables are deduplicated on that key — a few
//! hundred distinct configurations serve hundreds of thousands of pairs.
//! Each table is reconstructed *from the key* (not from a representative
//! pair's floating-point centers), so every pair sharing a key uses
//! bit-identical coefficients. Because the RPY kernel is not scale
//! invariant (lengths are measured in particle radii), the tables depend on
//! the absolute root size: they are per-tree state, not shareable plans.
//!
//! **Storage.** A full dense M2L matrix is `(3q^3)^2` entries; the RPY
//! tensor block for a point pair is `fi I + fr d dᵀ` with `d` separable
//! across dimensions, so each table stores only the two scalar coefficient
//! grids (`fi`, `fr`, `q^6` each) plus three 1-D displacement factor tables
//! (`q^2` each) — 4.5x smaller and sqrt-free at apply time.
//!
//! The MAC's `d - r_t - r_s >= 2a` clause bounds every proxy-proxy distance
//! below by `2a`, so the smooth far branch is exact on every table entry.

use crate::tree::Octree;
use std::collections::BTreeMap;

use hibd_hot as hibd;

/// Exact integer identity of a pair's relative geometry (see module docs):
/// levels of target and source plus the center offset on the common dyadic
/// lattice `root_half / 2^max(level)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct GeomKey {
    la: u8,
    lb: u8,
    di: [i64; 3],
}

impl GeomKey {
    /// Key for the (target `a`, source `b`) node pair.
    fn of(tree: &Octree, a: usize, b: usize) -> GeomKey {
        let na = &tree.nodes[a];
        let nb = &tree.nodes[b];
        let dmax = na.level.max(nb.level);
        let mut di = [0i64; 3];
        for (c, d) in di.iter_mut().enumerate() {
            let ca = i64::from(2 * na.cell[c] + 1) << (dmax - na.level);
            let cb = i64::from(2 * nb.cell[c] + 1) << (dmax - nb.level);
            *d = ca - cb;
        }
        GeomKey { la: na.level, lb: nb.level, di }
    }
}

/// One deduplicated M2L translation table (target grid × source grid).
///
/// Layout: grid index `i = (i_x q + i_y) q + i_z` on both sides; `fi`/`fr`
/// are row-major `[i * q^3 + j]`; the displacement factors are separable,
/// `dxs[i_x * q + j_x] = x_i - x_j` (likewise `dys`, `dzs`), so the apply
/// kernel reconstructs the rank-one term without any per-entry geometry.
pub struct M2lEntry {
    pub(crate) fi: Vec<f64>,
    pub(crate) fr: Vec<f64>,
    pub(crate) dxs: Vec<f64>,
    pub(crate) dys: Vec<f64>,
    pub(crate) dzs: Vec<f64>,
}

impl M2lEntry {
    /// Build the table for `key` on the tree whose root cube half-side is
    /// `root_half`. A pure function of `(key, root_half, cheb_t, a)`: every
    /// pair sharing the key gets bit-identical coefficients.
    fn build(key: &GeomKey, root_half: f64, cheb_t: &[f64], a: f64) -> M2lEntry {
        let q = cheb_t.len();
        let q3 = q * q * q;
        // Exact dyadic scales: divisions by powers of two are lossless.
        let ha = root_half / f64::from(1u32 << key.la);
        let hb = root_half / f64::from(1u32 << key.lb);
        let unit = root_half / f64::from(1u32 << key.la.max(key.lb));
        let mut dxs = vec![0.0; q * q];
        let mut dys = vec![0.0; q * q];
        let mut dzs = vec![0.0; q * q];
        for (c, out) in [&mut dxs, &mut dys, &mut dzs].into_iter().enumerate() {
            let d = key.di[c] as f64 * unit;
            for m in 0..q {
                for p in 0..q {
                    out[m * q + p] = d + ha * cheb_t[m] - hb * cheb_t[p];
                }
            }
        }
        let mut fi = vec![0.0; q3 * q3];
        let mut fr = vec![0.0; q3 * q3];
        let mut i = 0;
        for mx in 0..q {
            for my in 0..q {
                for mz in 0..q {
                    let row_fi = &mut fi[i * q3..(i + 1) * q3];
                    let row_fr = &mut fr[i * q3..(i + 1) * q3];
                    let mut j = 0;
                    for px in 0..q {
                        let dx2 = dxs[mx * q + px] * dxs[mx * q + px];
                        for py in 0..q {
                            let dy = dys[my * q + py];
                            let dxy2 = dx2 + dy * dy;
                            for pz in 0..q {
                                let dz = dzs[mz * q + pz];
                                let r2 = dxy2 + dz * dz;
                                // Far branch of RPY, mirroring `far_leaf`'s
                                // expression tree; `fr` is folded by `1/r^2`
                                // so the raw displacement replaces the
                                // normalized direction at apply time.
                                let ir = 1.0 / r2.sqrt();
                                let ar = a * ir;
                                let ar3 = ar * ar * ar;
                                row_fi[j] = 0.75 * ar + 0.5 * ar3;
                                row_fr[j] = (0.75 * ar - 1.5 * ar3) * (ir * ir);
                                j += 1;
                            }
                        }
                    }
                    i += 1;
                }
            }
        }
        M2lEntry { fi, fr, dxs, dys, dzs }
    }

    /// Resident bytes of this table.
    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.fi.capacity()
            + self.fr.capacity()
            + self.dxs.capacity()
            + self.dys.capacity()
            + self.dzs.capacity())
            * size_of::<f64>()
    }
}

/// The per-tree FMM far-field data: node-level M2L interaction lists (CSR
/// over the preorder node array, sources in dual-traversal emission order)
/// and the deduplicated translation tables they reference.
pub struct FmmData {
    /// CSR offsets, one row per tree node.
    pub(crate) m2l_off: Vec<u32>,
    /// Source node ids, concatenated per target node.
    pub(crate) m2l_src: Vec<u32>,
    /// Index into `entries` for each listed pair (parallel to `m2l_src`).
    pub(crate) pair_entry: Vec<u32>,
    /// Deduplicated translation tables.
    pub(crate) entries: Vec<M2lEntry>,
}

impl FmmData {
    /// Group the dual-traversal far pairs by target node and build the
    /// deduplicated M2L tables. `far_pairs` is the (target, source) list in
    /// traversal order — grouping preserves that order within each target,
    /// so the per-node accumulation order is deterministic.
    pub fn build(tree: &Octree, far_pairs: &[(u32, u32)], cheb_t: &[f64], a: f64) -> FmmData {
        let nnodes = tree.nodes.len();
        if nnodes == 0 {
            return FmmData {
                m2l_off: vec![0],
                m2l_src: Vec::new(),
                pair_entry: Vec::new(),
                entries: Vec::new(),
            };
        }
        let root_half = tree.nodes[0].half;
        let mut by_node: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nnodes];
        let mut index: BTreeMap<GeomKey, u32> = BTreeMap::new();
        let mut entries: Vec<M2lEntry> = Vec::new();
        for &(t, s) in far_pairs {
            let key = GeomKey::of(tree, t as usize, s as usize);
            let e = *index.entry(key).or_insert_with(|| {
                entries.push(M2lEntry::build(&key, root_half, cheb_t, a));
                (entries.len() - 1) as u32
            });
            by_node[t as usize].push((s, e));
        }
        let total: usize = by_node.iter().map(Vec::len).sum();
        let mut m2l_off = Vec::with_capacity(nnodes + 1);
        let mut m2l_src = Vec::with_capacity(total);
        let mut pair_entry = Vec::with_capacity(total);
        m2l_off.push(0u32);
        for list in &by_node {
            for &(s, e) in list {
                m2l_src.push(s);
                pair_entry.push(e);
            }
            m2l_off.push(m2l_src.len() as u32);
        }
        FmmData { m2l_off, m2l_src, pair_entry, entries }
    }

    /// Number of M2L translations per apply.
    pub fn num_pairs(&self) -> usize {
        self.m2l_src.len()
    }

    /// Number of distinct translation tables backing those pairs.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Resident bytes of the lists and tables.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.m2l_off.capacity() + self.m2l_src.capacity() + self.pair_entry.capacity())
            * size_of::<u32>()
            + self.entries.iter().map(M2lEntry::memory_bytes).sum::<usize>()
            + self.entries.capacity() * size_of::<M2lEntry>()
    }
}

/// M2L: accumulate one source node's proxy weights `w` (planar `[comp][q^3]`)
/// into a target node's local expansion `out` (same layout) through a
/// translation table. Pure table lookups plus the separable rank-one
/// reconstruction — no square roots on the apply path.
#[hibd::hot]
pub(crate) fn m2l_apply(entry: &M2lEntry, q: usize, w: &[f64], out: &mut [f64]) {
    let q3 = q * q * q;
    let (wx, wyz) = w.split_at(q3);
    let (wy, wz) = wyz.split_at(q3);
    let (ox, oyz) = out.split_at_mut(q3);
    let (oy, oz) = oyz.split_at_mut(q3);
    let mut i = 0;
    for mx in 0..q {
        for my in 0..q {
            for mz in 0..q {
                let row_fi = &entry.fi[i * q3..(i + 1) * q3];
                let row_fr = &entry.fr[i * q3..(i + 1) * q3];
                let (mut ax, mut ay, mut az) = (0.0f64, 0.0f64, 0.0f64);
                let mut j = 0;
                for px in 0..q {
                    let dx = entry.dxs[mx * q + px];
                    for py in 0..q {
                        let dy = entry.dys[my * q + py];
                        for pz in 0..q {
                            let dz = entry.dzs[mz * q + pz];
                            let fi = row_fi[j];
                            let fr = row_fr[j];
                            let dot = dx * wx[j] + dy * wy[j] + dz * wz[j];
                            ax += fi * wx[j] + fr * dot * dx;
                            ay += fi * wy[j] + fr * dot * dy;
                            az += fi * wz[j] + fr * dot * dz;
                            j += 1;
                        }
                    }
                }
                ox[i] += ax;
                oy[i] += ay;
                oz[i] += az;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cheb;
    use hibd_mathx::Vec3;

    fn cloud(n: usize, spread: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * spread
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn geom_key_is_translation_invariant() {
        // Two same-level sibling pairs with the same lattice offset must
        // share a key even though their absolute cells differ.
        let pos = cloud(600, 16.0, 21);
        let tree = Octree::build(&pos, 8);
        let mut seen: BTreeMap<GeomKey, (usize, usize)> = BTreeMap::new();
        let mut shared = 0;
        for a in 0..tree.nodes.len() {
            for b in 0..tree.nodes.len() {
                if a == b || tree.nodes[a].level != 2 || tree.nodes[b].level != 2 {
                    continue;
                }
                let key = GeomKey::of(&tree, a, b);
                if let Some(&(pa, pb)) = seen.get(&key) {
                    // Same key ⇒ identical relative geometry.
                    let d1 = tree.nodes[a].center - tree.nodes[b].center;
                    let d2 = tree.nodes[pa].center - tree.nodes[pb].center;
                    assert!((d1 - d2).norm() < 1e-9, "{key:?}");
                    shared += 1;
                } else {
                    seen.insert(key, (a, b));
                }
            }
        }
        assert!(shared > 0, "a level-2 slice must reuse offsets");
    }

    #[test]
    fn m2l_table_matches_direct_kernel_evaluation() {
        // The table applied to a unit source must equal the far-branch RPY
        // kernel evaluated proxy-to-proxy (same expression tree).
        let pos = cloud(400, 20.0, 5);
        let tree = Octree::build(&pos, 16);
        let q = 3;
        let t = cheb::nodes(q);
        let q3 = q * q * q;
        let a = 1.0;
        // Find one admissible far pair at matching levels.
        let mut pair = None;
        'outer: for ai in 0..tree.nodes.len() {
            for bi in 0..tree.nodes.len() {
                let (na, nb) = (&tree.nodes[ai], &tree.nodes[bi]);
                let d = (na.center - nb.center).norm();
                if ai != bi && d - na.radius() - nb.radius() >= 2.0 * a {
                    pair = Some((ai, bi));
                    break 'outer;
                }
            }
        }
        let (ai, bi) = pair.expect("cloud admits a separated pair");
        let key = GeomKey::of(&tree, ai, bi);
        let entry = M2lEntry::build(&key, tree.nodes[0].half, &t, a);

        let proxy = |node: &crate::tree::Node, g: usize| {
            let gx = g / (q * q);
            let gy = (g / q) % q;
            let gz = g % q;
            Vec3::new(
                node.center.x + node.half * t[gx],
                node.center.y + node.half * t[gy],
                node.center.z + node.half * t[gz],
            )
        };
        let mut w = vec![0.0; 3 * q3];
        let mut out = vec![0.0; 3 * q3];
        for j in 0..q3 {
            for comp in 0..3 {
                w.iter_mut().for_each(|v| *v = 0.0);
                out.iter_mut().for_each(|v| *v = 0.0);
                w[comp * q3 + j] = 1.0;
                m2l_apply(&entry, q, &w, &mut out);
                let src = proxy(&tree.nodes[bi], j);
                for i in 0..q3 {
                    let tgt = proxy(&tree.nodes[ai], i);
                    let dr = tgt - src;
                    let r = dr.norm();
                    let ar = a / r;
                    let ar3 = ar * ar * ar;
                    let fi = 0.75 * ar + 0.5 * ar3;
                    let frr = (0.75 * ar - 1.5 * ar3) / (r * r);
                    let mut want = [0.0; 3];
                    let e = [dr.x, dr.y, dr.z];
                    for (c, wv) in want.iter_mut().enumerate() {
                        *wv = frr * e[c] * e[comp];
                        if c == comp {
                            *wv += fi;
                        }
                    }
                    for (c, wv) in want.iter().enumerate() {
                        let got = out[c * q3 + i];
                        assert!(
                            (got - wv).abs() <= 1e-12 * (1.0 + wv.abs()),
                            "i={i} j={j} comp={comp} c={c}: {got} vs {wv}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tables_deduplicate_across_pairs() {
        let pos = cloud(2000, 30.0, 9);
        let tree = Octree::build(&pos, 16);
        let t = cheb::nodes(3);
        // Reuse the operator's traversal to get realistic far pairs.
        let mut far = Vec::new();
        let mut near = Vec::new();
        crate::operator::dual_traverse_for_tests(&tree, 0.4, 2.0, &mut far, &mut near);
        let data = FmmData::build(&tree, &far, &t, 1.0);
        assert_eq!(data.num_pairs(), far.len());
        assert!(
            data.num_entries() < data.num_pairs() / 4,
            "dedup must compress: {} entries for {} pairs",
            data.num_entries(),
            data.num_pairs()
        );
        assert!(data.memory_bytes() > 0);
    }
}
