//! Chebyshev anterpolation: the kernel-independent far-field machinery.
//!
//! Each tree node carries a `q^3` tensor grid of proxy sources at Chebyshev
//! points of its cube. A point source at `x` inside the cube is *anterpolated*
//! onto the grid with the Chebyshev interpolation weights
//!
//! `S_m(x̂) = 1/q + (2/q) sum_{k=1}^{q-1} T_k(t_m) T_k(x̂)`
//!
//! (`t_m` the 1-D Chebyshev nodes, `x̂` the coordinate normalized to
//! `[-1, 1]`, weights taken as the product over the three dimensions). Since
//! `sum_m S_m(x̂) = 1` exactly, the proxies conserve the total source
//! strength; smoothness of the far-branch RPY kernel then bounds the
//! approximation error by the Chebyshev interpolation error of the kernel on
//! the source cube. Vector (3-component) source strengths are carried
//! per proxy because RPY is a tensor kernel.
//!
//! M2M (child proxies -> parent proxies) reuses the same weights: a child
//! proxy is just a point source at a known position inside the parent cube,
//! so the eight child->parent transfer matrices are universal (geometry is
//! self-similar) and are precomputed once per operator.

/// 1-D Chebyshev nodes `t_m = cos((2m+1)π/(2q))` on `[-1, 1]`.
pub fn nodes(q: usize) -> Vec<f64> {
    assert!(q >= 2, "need at least two Chebyshev nodes");
    (0..q)
        .map(|m| (std::f64::consts::PI * (2.0 * m as f64 + 1.0) / (2.0 * q as f64)).cos())
        .collect()
}

/// Evaluate the `q` anterpolation weights `S_m(x̂)` at normalized coordinate
/// `x̂` into `out` (allocation-free; `out.len() == q`).
#[inline]
pub fn weights_into(t: &[f64], xh: f64, out: &mut [f64]) {
    let q = t.len();
    debug_assert_eq!(out.len(), q);
    let x = xh.clamp(-1.0, 1.0);
    for (m, o) in out.iter_mut().enumerate() {
        // Accumulate 1/q + (2/q) Σ_k T_k(t_m) T_k(x) by the Chebyshev
        // three-term recurrence in both arguments.
        let (mut tk_m_prev, mut tk_m) = (1.0, t[m]);
        let (mut tk_x_prev, mut tk_x) = (1.0, x);
        let mut s = 1.0 / q as f64;
        for _k in 1..q {
            s += 2.0 / q as f64 * tk_m * tk_x;
            let next_m = 2.0 * t[m] * tk_m - tk_m_prev;
            tk_m_prev = tk_m;
            tk_m = next_m;
            let next_x = 2.0 * x * tk_x - tk_x_prev;
            tk_x_prev = tk_x;
            tk_x = next_x;
        }
        *o = s;
    }
}

/// The two 1-D child->parent transfer matrices (`[child_bit][m * q + p]`):
/// entry `(m, p)` is `S_m` evaluated at child node `p`'s position in parent
/// coordinates, `x̂ = ±1/2 + t_p / 2`.
pub fn m2m_1d(t: &[f64]) -> [Vec<f64>; 2] {
    let q = t.len();
    let mut lo = vec![0.0; q * q];
    let mut hi = vec![0.0; q * q];
    let mut row = vec![0.0; q];
    for p in 0..q {
        for (half, out) in [(-0.5, &mut lo), (0.5, &mut hi)] {
            weights_into(t, half + 0.5 * t[p], &mut row);
            for m in 0..q {
                out[m * q + p] = row[m];
            }
        }
    }
    [lo, hi]
}

/// Assemble the eight dense `q^3 x q^3` octant transfer matrices from the
/// 1-D factors: `T_o[m][p] = s_x[m_x][p_x] s_y[m_y][p_y] s_z[m_z][p_z]`
/// with the octant bit convention of [`crate::morton::octant_of`]
/// (bit 2 = x). Row-major `[m * q^3 + p]`, grid index `m = (m_x q + m_y) q
/// + m_z`.
pub fn m2m_octants(t: &[f64]) -> Vec<Vec<f64>> {
    let q = t.len();
    let q3 = q * q * q;
    let oned = m2m_1d(t);
    let mut out = Vec::with_capacity(8);
    for o in 0..8usize {
        let sx = &oned[(o >> 2) & 1];
        let sy = &oned[(o >> 1) & 1];
        let sz = &oned[o & 1];
        let mut m2m = vec![0.0; q3 * q3];
        for mx in 0..q {
            for my in 0..q {
                for mz in 0..q {
                    let m = (mx * q + my) * q + mz;
                    for px in 0..q {
                        for py in 0..q {
                            for pz in 0..q {
                                let p = (px * q + py) * q + pz;
                                m2m[m * q3 + p] =
                                    sx[mx * q + px] * sy[my * q + py] * sz[mz * q + pz];
                            }
                        }
                    }
                }
            }
        }
        out.push(m2m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_in_range_and_decreasing() {
        for q in [2, 3, 4, 5, 8] {
            let t = nodes(q);
            assert_eq!(t.len(), q);
            assert!(t.iter().all(|v| v.abs() < 1.0));
            assert!(t.windows(2).all(|w| w[0] > w[1]));
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let t = nodes(5);
        let mut w = vec![0.0; 5];
        for xh in [-1.0, -0.33, 0.0, 0.5, 0.99] {
            weights_into(&t, xh, &mut w);
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "xh={xh} sum={s}");
        }
    }

    #[test]
    fn weights_interpolate_at_nodes() {
        // At x̂ = t_j the weight vector is the Kronecker delta.
        let t = nodes(4);
        let mut w = vec![0.0; 4];
        for j in 0..4 {
            weights_into(&t, t[j], &mut w);
            for (m, &wm) in w.iter().enumerate() {
                let want = if m == j { 1.0 } else { 0.0 };
                assert!((wm - want).abs() < 1e-10, "j={j} m={m} w={wm}");
            }
        }
    }

    #[test]
    fn anterpolation_reproduces_low_degree_moments() {
        // Σ_m S_m(x̂) f(t_m) equals f(x̂) exactly for polynomials of degree
        // < q; check monomials.
        let q = 4;
        let t = nodes(q);
        let mut w = vec![0.0; q];
        for xh in [-0.8, -0.1, 0.4, 0.77] {
            weights_into(&t, xh, &mut w);
            for deg in 0..q {
                let got: f64 = (0..q).map(|m| w[m] * t[m].powi(deg as i32)).sum();
                assert!((got - xh.powi(deg as i32)).abs() < 1e-12, "deg={deg} xh={xh}");
            }
        }
    }

    #[test]
    fn m2m_rows_sum_to_one_per_child_node() {
        // Each child proxy is a unit source: its parent weights must sum
        // to 1 (columns of the 1-D factors sum to 1).
        let t = nodes(4);
        let [lo, hi] = m2m_1d(&t);
        for p in 0..4 {
            for mat in [&lo, &hi] {
                let s: f64 = (0..4).map(|m| mat[m * 4 + p]).sum();
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn octant_matrices_factorize() {
        let t = nodes(3);
        let q3 = 27;
        let mats = m2m_octants(&t);
        assert_eq!(mats.len(), 8);
        // Unit source at child proxy p: column p must sum to 1.
        for mat in &mats {
            for p in 0..q3 {
                let s: f64 = (0..q3).map(|m| mat[m * q3 + p]).sum();
                assert!((s - 1.0).abs() < 1e-10);
            }
        }
    }
}
