//! Morton (Z-order) encoding of particle positions.
//!
//! Positions are normalized into the root cube and quantized to 21 bits per
//! dimension (63 bits total), then bit-interleaved so that sorting by code
//! groups particles by octant at every level of the octree simultaneously:
//! the 3-bit group at depth `d` (counted from the root) is the octant index
//! at that depth, so every node of the tree owns a *contiguous* range of the
//! sorted particle array.

use hibd_mathx::Vec3;

/// Bits per dimension (tree depth limit).
pub const MORTON_BITS: u32 = 21;

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn spread(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x1f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Interleave three 21-bit coordinates; `x` occupies the highest bit of each
/// 3-bit group, matching the octant convention of [`octant_of`].
#[inline]
pub fn interleave(x: u64, y: u64, z: u64) -> u64 {
    (spread(x) << 2) | (spread(y) << 1) | spread(z)
}

/// Quantize a position inside the root cube (`lo`, side `side`) to a Morton
/// code. Coordinates on the upper faces clamp into the last cell.
#[inline]
pub fn encode(p: Vec3, lo: Vec3, side: f64) -> u64 {
    let scale = f64::from(1u32 << MORTON_BITS) / side;
    let max = u64::from((1u32 << MORTON_BITS) - 1);
    let q = |v: f64, l: f64| -> u64 { (((v - l) * scale) as u64).min(max) };
    interleave(q(p.x, lo.x), q(p.y, lo.y), q(p.z, lo.z))
}

/// The 3-bit octant group of `code` at tree depth `d` (root children are
/// depth 0). Bit 2 is x, bit 1 is y, bit 0 is z.
#[inline]
pub fn octant_at_depth(code: u64, d: u32) -> u64 {
    debug_assert!(d < MORTON_BITS);
    (code >> (3 * (MORTON_BITS - 1 - d))) & 0b111
}

/// Geometric octant of `p` relative to `center` under the same bit
/// convention as the Morton code (bit 2 = x, set when the coordinate is in
/// the upper half).
#[inline]
pub fn octant_of(p: Vec3, center: Vec3) -> usize {
    (usize::from(p.x >= center.x) << 2)
        | (usize::from(p.y >= center.y) << 1)
        | usize::from(p.z >= center.z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_places_bits_three_apart() {
        assert_eq!(spread(0b1), 0b1);
        assert_eq!(spread(0b10), 0b1000);
        assert_eq!(spread(0b11), 0b1001);
        assert_eq!(spread(0x1f_ffff), 0x1249_2492_4924_9249);
    }

    #[test]
    fn interleave_round_trips_per_level() {
        let (x, y, z) = (0b1_0110_1010_1100_0011_0101u64, 0x0f_0f0f, 0x15_5555);
        let code = interleave(x, y, z);
        for d in 0..MORTON_BITS {
            let oct = octant_at_depth(code, d);
            let shift = MORTON_BITS - 1 - d;
            let want = (((x >> shift) & 1) << 2) | (((y >> shift) & 1) << 1) | ((z >> shift) & 1);
            assert_eq!(oct, want, "depth {d}");
        }
    }

    #[test]
    fn top_octant_matches_geometry() {
        let lo = Vec3::new(-1.0, -1.0, -1.0);
        let side = 2.0;
        let center = Vec3::ZERO;
        for p in [
            Vec3::new(-0.5, -0.5, -0.5),
            Vec3::new(0.5, -0.5, -0.5),
            Vec3::new(-0.5, 0.5, 0.5),
            Vec3::new(0.9, 0.9, 0.9),
            Vec3::new(-0.9, 0.1, -0.1),
        ] {
            let code = encode(p, lo, side);
            assert_eq!(octant_at_depth(code, 0) as usize, octant_of(p, center), "{p:?}");
        }
    }

    #[test]
    fn sorting_by_code_groups_octants_contiguously() {
        // Deterministic pseudo-random cloud.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let lo = Vec3::ZERO;
        let side = 8.0;
        let pts: Vec<Vec3> =
            (0..500).map(|_| Vec3::new(next() * 8.0, next() * 8.0, next() * 8.0)).collect();
        let mut codes: Vec<u64> = pts.iter().map(|p| encode(*p, lo, side)).collect();
        codes.sort_unstable();
        for d in 0..4 {
            // Octant ids at each depth must be non-decreasing within each
            // prefix group; check depth 0 globally.
            if d == 0 {
                let octs: Vec<u64> = codes.iter().map(|c| octant_at_depth(*c, 0)).collect();
                assert!(octs.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }
}
