//! Accuracy tuner: pick `(theta, cheb_order)` for a target matvec error.
//!
//! The Chebyshev far field converges geometrically in the order `q` with a
//! rate set by the MAC parameter `theta` (smaller `theta` pushes source
//! cubes further away relative to their size). Rather than trusting an
//! asymptotic error model, the tuner *measures*: it walks an escalating
//! schedule of `(theta, q)` pairs and returns the first whose worst-case
//! relative error against the dense free-space RPY matrix — on the given
//! cloud or a subsample of it — meets the target. This is the validation
//! required to claim a tolerance, and tests pin the schedule to it.

use crate::operator::{TreeEval, TreeOperator, TreeParams};
use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_rpy::dense_rpy_free;

/// The escalation schedule: `(guaranteed_tol, theta, cheb_order)`, loosest
/// first. Tolerances are conservative relative to measured errors on random
/// clouds for *both* evaluation strategies — the FMM's extra target-side
/// interpolation converges at the same geometric rate under the two-sided
/// MAC, and `tests/accuracy.rs` pins each tier against `dense_rpy_free`
/// for treecode and FMM alike.
pub const SCHEDULE: [(f64, f64, usize); 4] =
    [(1e-2, 0.7, 3), (1e-3, 0.4, 3), (1e-4, 0.4, 4), (1e-5, 0.4, 5)];

/// Measure the worst relative error `max_t ||(M_tree - M_dense) x_t|| /
/// ||M_dense x_t||` over `trials` deterministic pseudo-random unit vectors.
pub fn measured_rel_error(positions: &[Vec3], params: TreeParams, trials: usize) -> f64 {
    assert!(!positions.is_empty() && trials > 0);
    let n = positions.len();
    let dense = dense_rpy_free(positions, params.a, params.eta);
    let mut tree = TreeOperator::new(positions, params);
    let mut x = vec![0.0; 3 * n];
    let mut yt = vec![0.0; 3 * n];
    let mut yd = vec![0.0; 3 * n];
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut worst = 0.0f64;
    for _ in 0..trials {
        for v in &mut x {
            // SplitMix64 into [-1, 1).
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *v = (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
        }
        tree.apply(&x, &mut yt);
        dense.mul_vec(&x, &mut yd);
        let (mut err2, mut ref2) = (0.0, 0.0);
        for (t, d) in yt.iter().zip(&yd) {
            err2 += (t - d) * (t - d);
            ref2 += d * d;
        }
        worst = worst.max((err2 / ref2.max(f64::MIN_POSITIVE)).sqrt());
    }
    worst
}

/// Choose parameters for `rel_tol` by measuring the schedule against the
/// dense matrix on (a subsample of) `positions`, for the requested far-field
/// strategy (the measurement runs with that strategy, so an FMM tier is
/// validated as an FMM). Falls back to the strictest entry when even it
/// misses the target.
pub fn tune(positions: &[Vec3], rel_tol: f64, a: f64, eta: f64, eval: TreeEval) -> TreeParams {
    assert!(rel_tol > 0.0);
    // Cap the dense reference at ~250 particles; the error is a local
    // property of the MAC geometry, not of the cloud size.
    let sample: Vec<Vec3> = if positions.len() > 250 {
        let stride = positions.len().div_ceil(250);
        positions.iter().copied().step_by(stride).collect()
    } else {
        positions.to_vec()
    };
    let mut chosen = None;
    for &(tol, theta, q) in &SCHEDULE {
        if tol > rel_tol {
            continue;
        }
        let params = TreeParams { theta, cheb_order: q, a, eta, eval, ..TreeParams::default() };
        if sample.len() < 2 || measured_rel_error(&sample, params, 3) <= rel_tol {
            chosen = Some(params);
            break;
        }
    }
    chosen.unwrap_or_else(|| {
        let (_, theta, q) = SCHEDULE[SCHEDULE.len() - 1];
        TreeParams { theta, cheb_order: q, a, eta, eval, ..TreeParams::default() }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, spread: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * spread
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn tune_returns_schedule_entries_in_tolerance_order() {
        let pos = cloud(120, 20.0, 4);
        let loose = tune(&pos, 1e-2, 1.0, 1.0, TreeEval::Tree);
        let tight = tune(&pos, 1e-4, 1.0, 1.0, TreeEval::Tree);
        assert!(loose.theta >= tight.theta);
        assert!(loose.cheb_order <= tight.cheb_order);
    }

    #[test]
    fn tuned_params_meet_their_target() {
        let pos = cloud(100, 15.0, 8);
        for eval in [TreeEval::Tree, TreeEval::Fmm] {
            for tol in [1e-2, 1e-3] {
                let params = tune(&pos, tol, 1.0, 1.0, eval);
                assert_eq!(params.eval, eval);
                let err = measured_rel_error(&pos, params, 2);
                assert!(err <= tol, "{eval:?} tol {tol}: measured {err}");
            }
        }
    }
}
