//! Linearized octree over a particle cloud.
//!
//! Particles are sorted by Morton code once; every node then owns a
//! contiguous range `start..end` of the sorted order, found by binary
//! searching octant prefixes. Nodes are stored in preorder (parents before
//! children), so a single reverse sweep of the node array is the upward
//! pass. Empty octants produce no node.

use crate::morton;
use hibd_mathx::Vec3;

/// Sentinel for "no child".
pub const NO_CHILD: u32 = u32::MAX;

/// One octree node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Geometric center of the node's cube.
    pub center: Vec3,
    /// Half the cube side.
    pub half: f64,
    /// Owned range of the Morton-sorted particle order.
    pub start: u32,
    pub end: u32,
    /// Child node indices (preorder positions), `NO_CHILD` when absent.
    pub children: [u32; 8],
    /// Octant of this node within its parent (`0` for the root).
    pub octant: u8,
    /// Depth of the node (root = `0`).
    pub level: u8,
    /// Integer lattice coordinates of the node's cell at its level
    /// (`cell[c] in 0..2^level`, x/y/z order). Two nodes' *relative*
    /// geometry is an exact function of their levels and cell coordinates,
    /// which is what the FMM M2L table deduplicates on.
    pub cell: [u32; 3],
    /// True when the node has no children (its range is evaluated directly).
    pub leaf: bool,
}

impl Node {
    /// Number of particles in the node.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Circumscribed-sphere radius `sqrt(3) * half` used by the MAC.
    #[inline]
    pub fn radius(&self) -> f64 {
        3f64.sqrt() * self.half
    }
}

/// The linearized octree: sorted order, nodes in preorder, leaf index.
#[derive(Clone, Debug)]
pub struct Octree {
    /// Particle indices in Morton order (`order[k]` = original id).
    pub order: Vec<u32>,
    /// Positions in Morton order (`pos[k] = positions[order[k]]`).
    pub pos: Vec<Vec3>,
    /// Nodes in preorder; `nodes[0]` is the root (when any particles exist).
    pub nodes: Vec<Node>,
    /// Preorder indices of the leaves, in increasing `start` order.
    pub leaves: Vec<u32>,
}

impl Octree {
    /// Build over `positions` with the given leaf capacity. The root cube is
    /// the bounding cube of the cloud (centered on the bounding box).
    pub fn build(positions: &[Vec3], leaf_capacity: usize) -> Octree {
        assert!(leaf_capacity >= 1);
        let n = positions.len();
        if n == 0 {
            return Octree {
                order: Vec::new(),
                pos: Vec::new(),
                nodes: Vec::new(),
                leaves: Vec::new(),
            };
        }
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for p in positions {
            for c in 0..3 {
                lo[c] = lo[c].min(p[c]);
                hi[c] = hi[c].max(p[c]);
            }
        }
        let side = ((hi.x - lo.x).max(hi.y - lo.y).max(hi.z - lo.z)).max(f64::MIN_POSITIVE);
        // Center the cube on the bounding box so slab-like clouds stay inside.
        let center = Vec3::new(0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y), 0.5 * (lo.z + hi.z));
        let cube_lo = center - Vec3::splat(side / 2.0);

        let mut keyed: Vec<(u64, u32)> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| (morton::encode(*p, cube_lo, side), i as u32))
            .collect();
        keyed.sort_unstable();
        let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();
        let codes: Vec<u64> = keyed.iter().map(|&(c, _)| c).collect();
        let pos: Vec<Vec3> = order.iter().map(|&i| positions[i as usize]).collect();

        let mut tree = Octree { order, pos, nodes: Vec::new(), leaves: Vec::new() };
        tree.nodes.push(Node {
            center,
            half: side / 2.0,
            start: 0,
            end: n as u32,
            children: [NO_CHILD; 8],
            octant: 0,
            level: 0,
            cell: [0; 3],
            leaf: true,
        });
        tree.split(0, 0, &codes, leaf_capacity);
        tree
    }

    /// Deepest level of any node (`0` for a single-leaf or empty tree).
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| u32::from(n.level)).max().unwrap_or(0)
    }

    /// Recursively split node `ni` (at depth `depth`) while it exceeds the
    /// leaf capacity and the Morton resolution allows.
    fn split(&mut self, ni: usize, depth: u32, codes: &[u64], leaf_capacity: usize) {
        let (start, end) = (self.nodes[ni].start as usize, self.nodes[ni].end as usize);
        if end - start <= leaf_capacity || depth >= morton::MORTON_BITS {
            self.nodes[ni].leaf = true;
            self.leaves.push(ni as u32);
            return;
        }
        self.nodes[ni].leaf = false;
        let (center, half) = (self.nodes[ni].center, self.nodes[ni].half);
        let (level, cell) = (self.nodes[ni].level, self.nodes[ni].cell);
        let mut cursor = start;
        for oct in 0..8u64 {
            // Contiguity by Morton sort: the octant group at this depth is
            // non-decreasing over the range, so each octant is one slice.
            let sub = &codes[cursor..end];
            let len = sub.partition_point(|&c| morton::octant_at_depth(c, depth) <= oct);
            if len == 0 {
                continue;
            }
            let child_half = half / 2.0;
            let off = |bit: u64| if bit != 0 { child_half } else { -child_half };
            let child_center = Vec3::new(
                center.x + off((oct >> 2) & 1),
                center.y + off((oct >> 1) & 1),
                center.z + off(oct & 1),
            );
            let ci = self.nodes.len();
            self.nodes.push(Node {
                center: child_center,
                half: child_half,
                start: cursor as u32,
                end: (cursor + len) as u32,
                children: [NO_CHILD; 8],
                octant: oct as u8,
                level: level + 1,
                cell: [
                    2 * cell[0] + ((oct >> 2) & 1) as u32,
                    2 * cell[1] + ((oct >> 1) & 1) as u32,
                    2 * cell[2] + (oct & 1) as u32,
                ],
                leaf: true,
            });
            self.nodes[ni].children[oct as usize] = ci as u32;
            self.split(ci, depth + 1, codes, leaf_capacity);
            cursor += len;
        }
        debug_assert_eq!(cursor, end, "octant slices must partition the range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, spread: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * spread
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn leaves_partition_the_cloud() {
        let pos = cloud(500, 10.0, 1);
        let tree = Octree::build(&pos, 16);
        let mut covered = 0usize;
        let mut prev_end = 0u32;
        for &l in &tree.leaves {
            let node = &tree.nodes[l as usize];
            assert!(node.leaf);
            assert_eq!(node.start, prev_end, "leaves are contiguous in order");
            prev_end = node.end;
            covered += node.len();
            assert!(node.len() <= 16, "random cloud must respect the leaf capacity");
        }
        assert_eq!(covered, 500);
        assert_eq!(prev_end, 500);
    }

    #[test]
    fn nodes_contain_their_particles() {
        let pos = cloud(300, 7.0, 3);
        let tree = Octree::build(&pos, 8);
        for node in &tree.nodes {
            let eps = 1e-9 * (1.0 + node.half);
            for k in node.start..node.end {
                let p = tree.pos[k as usize];
                assert!((p.x - node.center.x).abs() <= node.half + eps, "{p:?} {node:?}");
                assert!((p.y - node.center.y).abs() <= node.half + eps);
                assert!((p.z - node.center.z).abs() <= node.half + eps);
            }
        }
    }

    #[test]
    fn children_partition_parents() {
        let pos = cloud(400, 12.0, 7);
        let tree = Octree::build(&pos, 10);
        for node in &tree.nodes {
            if node.leaf {
                continue;
            }
            let mut total = 0;
            for &c in &node.children {
                if c != NO_CHILD {
                    let ch = &tree.nodes[c as usize];
                    total += ch.len();
                    assert!(ch.start >= node.start && ch.end <= node.end);
                    assert!((ch.half - node.half / 2.0).abs() < 1e-12);
                }
            }
            assert_eq!(total, node.len());
        }
    }

    #[test]
    fn preorder_children_follow_parents() {
        let pos = cloud(200, 5.0, 9);
        let tree = Octree::build(&pos, 4);
        for (i, node) in tree.nodes.iter().enumerate() {
            for &c in &node.children {
                if c != NO_CHILD {
                    assert!((c as usize) > i, "preorder: child after parent");
                }
            }
        }
    }

    #[test]
    fn cells_and_levels_match_the_geometry() {
        // The integer lattice identity must reproduce each node's center:
        // center = root_lo + (cell + 1/2) * side / 2^level, per dimension.
        let pos = cloud(350, 9.0, 13);
        let tree = Octree::build(&pos, 8);
        let root = &tree.nodes[0];
        let side = 2.0 * root.half;
        let lo = root.center - Vec3::splat(root.half);
        for node in &tree.nodes {
            let w = side / f64::from(1u32 << node.level);
            for c in 0..3 {
                assert!(node.cell[c] < (1u32 << node.level));
                let want = lo[c] + (f64::from(node.cell[c]) + 0.5) * w;
                assert!((node.center[c] - want).abs() < 1e-9 * (1.0 + side), "{node:?}");
            }
        }
        assert!(tree.max_depth() >= 2);
        for node in &tree.nodes {
            if !node.leaf {
                for &c in &node.children {
                    if c != NO_CHILD {
                        assert_eq!(tree.nodes[c as usize].level, node.level + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_clouds_are_single_leaves() {
        let pos = cloud(5, 3.0, 11);
        let tree = Octree::build(&pos, 16);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.leaves.len(), 1);
        assert!(tree.nodes[0].leaf);
        let empty = Octree::build(&[], 16);
        assert!(empty.nodes.is_empty());
    }

    #[test]
    fn coincident_particles_terminate_at_depth_cap() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        let pos = vec![p; 20];
        let tree = Octree::build(&pos, 4);
        // All particles share one Morton code: the tree cannot split them,
        // so some leaf holds more than the capacity — but the build ends.
        let total: usize = tree.leaves.iter().map(|&l| tree.nodes[l as usize].len()).sum();
        assert_eq!(total, 20);
    }
}
