//! `hibd-treecode`: hierarchical `O(n log n)` free-space RPY mobility.
//!
//! The periodic backends of the workspace (dense Ewald, PME, PSE) all
//! presuppose a cubic box; the workload class that motivates the paper's
//! biomolecular examples — finite clusters, polymers and proteins in an
//! unbounded solvent — needs the *free-space* RPY tensor instead. Its far
//! field is smooth, so a kernel-independent treecode in the RPYFMM lineage
//! applies: a linearized octree over the cloud (Morton order, leaf capacity
//! `s`), Chebyshev anterpolation proxies per cell carrying 3-vector source
//! strengths, a multipole acceptance criterion `theta`, and exact direct
//! evaluation (two-branch RPY with Yamakawa overlap regularization) for
//! everything the traversal cannot separate.
//!
//! [`TreeOperator`] implements the same [`hibd_linalg::LinearOperator`]
//! trait as the PME and dense operators, so block Lanczos, the BD drivers,
//! telemetry, and the audit/alloc tooling consume it unchanged. Accuracy is
//! governed by [`TreeParams`] (`theta`, `cheb_order`) and the [`tune`]
//! schedule, which is validated by measurement against the dense free-space
//! RPY matrix — not by an asymptotic error bound.
//!
//! Module map: [`morton`] (Z-order codes), [`tree`] (linearized octree),
//! [`cheb`] (anterpolation weights and the universal M2M transfer
//! matrices), [`operator`] (the matrix-free apply), [`tuner`] (accuracy
//! schedule).

pub mod cheb;
pub mod morton;
pub mod operator;
pub mod tree;
pub mod tuner;

pub use operator::{TreeOperator, TreeParams, TreePlans, TreeTimings, MAX_CHEB_ORDER};
pub use tree::Octree;
pub use tuner::{measured_rel_error, tune, SCHEDULE};
