//! `hibd-treecode`: hierarchical `O(n log n)` free-space RPY mobility.
//!
//! The periodic backends of the workspace (dense Ewald, PME, PSE) all
//! presuppose a cubic box; the workload class that motivates the paper's
//! biomolecular examples — finite clusters, polymers and proteins in an
//! unbounded solvent — needs the *free-space* RPY tensor instead. Its far
//! field is smooth, so a kernel-independent treecode in the RPYFMM lineage
//! applies: a linearized octree over the cloud (Morton order, leaf capacity
//! `s`), Chebyshev anterpolation proxies per cell carrying 3-vector source
//! strengths, a multipole acceptance criterion `theta`, and exact direct
//! evaluation (two-branch RPY with Yamakawa overlap regularization) for
//! everything the traversal cannot separate.
//!
//! [`TreeOperator`] implements the same [`hibd_linalg::LinearOperator`]
//! trait as the PME and dense operators, so block Lanczos, the BD drivers,
//! telemetry, and the audit/alloc tooling consume it unchanged. Accuracy is
//! governed by [`TreeParams`] (`theta`, `cheb_order`) and the [`tune`]
//! schedule, which is validated by measurement against the dense free-space
//! RPY matrix — not by an asymptotic error bound.
//!
//! Two far-field evaluation strategies share that machinery
//! ([`TreeEval`]): the node-to-particle treecode (`O(n log n)`) and a true
//! kernel-independent FMM with an M2L/L2L/L2P downward pass (`O(n)`, see
//! [`fmm`]).
//!
//! Module map: [`morton`] (Z-order codes), [`tree`] (linearized octree),
//! [`cheb`] (anterpolation weights and the universal M2M transfer
//! matrices), [`fmm`] (M2L interaction lists and translation tables),
//! [`operator`] (the matrix-free apply), [`tuner`] (accuracy schedule).

pub mod cheb;
pub mod fmm;
pub mod morton;
pub mod operator;
pub mod tree;
pub mod tuner;

pub use operator::{TreeEval, TreeOperator, TreeParams, TreePlans, TreeTimings, MAX_CHEB_ORDER};
pub use tree::Octree;
pub use tuner::{measured_rel_error, tune, SCHEDULE};
