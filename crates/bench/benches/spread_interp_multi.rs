//! Criterion bench: scalar vs SIMD for the B-spline spread/interpolate
//! kernels, single-RHS and the batched multi-RHS (`[dim][s]`) variants.
//!
//! The "scalar" group forces the pre-SIMD fallback via the process-global
//! `hibd_simd` override; Criterion runs groups sequentially, so the toggle
//! cannot race.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_mathx::Vec3;
use hibd_pme::pmat::build_interp_matrix;
use hibd_pme::spread::{interpolate, interpolate_multi, SpreadPlan};

fn positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

fn vector(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn bench_spread_interp(c: &mut Criterion) {
    let (n, k, p, box_l, s) = (400usize, 32usize, 6usize, 12.0f64, 8usize);
    let pos = positions(n, box_l, 7);
    let pm = build_interp_matrix(&pos, box_l, k, p);
    let plan = SpreadPlan::new(&pm.scaled, k, p);
    let k3 = k * k * k;
    let f = vector(3 * n, 11);
    let fs = vector(3 * n * s, 13);
    let mut mesh = vec![0.0; 3 * k3];
    let mut mesh_s = vec![0.0; 3 * s * k3];
    let mut u = vec![0.0; 3 * n];
    let mut us = vec![0.0; 3 * n * s];

    let mut group = c.benchmark_group("spread_interp_multi");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for simd in [false, true] {
        let mode = if simd { "simd" } else { "scalar" };
        let guard = (!simd).then(hibd_simd::ScalarGuard::new);
        group.bench_with_input(BenchmarkId::new(mode, "spread_interp_1"), &p, |b, _| {
            b.iter(|| {
                plan.spread(&pm, &f, &mut mesh);
                interpolate(&pm, &mesh, &mut u);
            });
        });
        group.bench_with_input(
            BenchmarkId::new(mode, format!("spread_interp_s{s}")),
            &p,
            |b, _| {
                b.iter(|| {
                    plan.spread_multi(&pm, &fs, s, 0, s, &mut mesh_s);
                    interpolate_multi(&pm, &mesh_s, s, 0, s, &mut us);
                });
            },
        );
        drop(guard);
    }
    group.finish();
}

criterion_group!(benches, bench_spread_interp);
criterion_main!(benches);
