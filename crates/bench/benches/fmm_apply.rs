//! Criterion bench: FMM operator applications vs the treecode far field
//! (open-boundary backend, DESIGN.md §13). Same clouds as `treecode_apply`
//! so the two groups are directly comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_bench::cluster;
use hibd_linalg::LinearOperator;
use hibd_treecode::{TreeEval, TreeOperator, TreeParams};

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("fmm_apply");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1000usize, 5000] {
        let sys = cluster(n, 0.1, 5);
        let params = TreeParams { eval: TreeEval::Fmm, ..TreeParams::default() };
        let mut op = TreeOperator::new(sys.positions(), params);
        let f: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut u = vec![0.0; 3 * n];
        group.bench_with_input(BenchmarkId::new("fmm", n), &n, |b, _| {
            b.iter(|| op.apply(&f, &mut u));
        });
        let s = 4;
        let fs: Vec<f64> = (0..3 * n * s).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut us = vec![0.0; 3 * n * s];
        group.bench_with_input(BenchmarkId::new("fmm_block_x4", n), &n, |b, _| {
            b.iter(|| op.apply_multi(&fs, &mut us, s));
        });
        let mut tree = TreeOperator::new(sys.positions(), TreeParams::default());
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| tree.apply(&f, &mut u));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
