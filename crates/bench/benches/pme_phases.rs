//! Criterion bench: the five reciprocal-space PME phases in isolation
//! (the bars of Figure 5), plus precomputed-P vs on-the-fly spreading
//! (Figure 4's kernel-level view).

use criterion::{criterion_group, criterion_main, Criterion};
use hibd_bench::suspension;
use hibd_fft::{Complex64, Fft3};
use hibd_pme::influence::Influence;
use hibd_pme::onthefly::spread_on_the_fly;
use hibd_pme::pmat::build_interp_matrix;
use hibd_pme::spread::{interpolate, SpreadPlan};
use hibd_rpy::RpyEwald;

fn bench_phases(c: &mut Criterion) {
    let (n, k, p) = (2000usize, 64usize, 6usize);
    let sys = suspension(n, 0.2, 3);
    let ewald = RpyEwald::kernel_only(1.0, 1.0, sys.box_l, 0.5);
    let pm = build_interp_matrix(sys.positions(), sys.box_l, k, p);
    let plan = SpreadPlan::new(&pm.scaled, k, p);
    let inf = Influence::new(&ewald, k, p);
    let fft = Fft3::new([k, k, k]).unwrap();
    let k3 = k * k * k;
    let s_len = fft.spectrum_len();

    let f: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.19).sin()).collect();
    let mut mesh = vec![0.0; 3 * k3];
    let mut spec = vec![Complex64::ZERO; 3 * s_len];
    let mut u = vec![0.0; 3 * n];

    let mut group = c.benchmark_group("pme_phases");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("spreading", |b| b.iter(|| plan.spread(&pm, &f, &mut mesh)));
    group.bench_function("spreading_on_the_fly", |b| {
        b.iter(|| spread_on_the_fly(&plan, &pm, &f, &mut mesh));
    });
    plan.spread(&pm, &f, &mut mesh);
    group.bench_function("forward_fft_x3", |b| {
        b.iter(|| {
            for theta in 0..3 {
                fft.forward(
                    &mesh[theta * k3..(theta + 1) * k3],
                    &mut spec[theta * s_len..(theta + 1) * s_len],
                );
            }
        });
    });
    group.bench_function("influence", |b| b.iter(|| inf.apply(&mut spec)));
    group.bench_function("inverse_fft_x3", |b| {
        b.iter(|| {
            for theta in 0..3 {
                fft.inverse(
                    &mut spec[theta * s_len..(theta + 1) * s_len],
                    &mut mesh[theta * k3..(theta + 1) * k3],
                );
            }
        });
    });
    group.bench_function("interpolation", |b| b.iter(|| interpolate(&pm, &mesh, &mut u)));
    group.bench_function("construct_p", |b| {
        b.iter(|| build_interp_matrix(sys.positions(), sys.box_l, k, p));
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
