//! Criterion bench: whole BD steps — conventional Ewald BD vs matrix-free.

use criterion::{criterion_group, criterion_main, Criterion};
use hibd_bench::suspension;
use hibd_core::ewald_bd::{EwaldBd, EwaldBdConfig};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};

fn bench_bd_step(c: &mut Criterion) {
    let n = 500;
    let mut group = c.benchmark_group("bd_step");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let sys = suspension(n, 0.2, 13);
    let mut dense = EwaldBd::new(sys.clone(), EwaldBdConfig::default(), 17);
    dense.add_force(RepulsiveHarmonic::default());
    dense.step().unwrap(); // pay the first factorization outside the loop
    group.bench_function("ewald_bd_step_n500", |b| {
        b.iter(|| dense.step().unwrap());
    });

    let mut mf = MatrixFreeBd::new(sys, MatrixFreeConfig::default(), 17).unwrap();
    mf.add_force(RepulsiveHarmonic::default());
    mf.step().unwrap();
    group.bench_function("matrix_free_step_n500", |b| {
        b.iter(|| mf.step().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_bd_step);
criterion_main!(benches);
