//! Criterion bench: Brownian displacement computation — Cholesky (dense,
//! Algorithm 1) vs block Lanczos over PME (matrix-free, Algorithm 2), the
//! latter through both the batched multi-RHS reciprocal pipeline and the
//! per-column baseline it replaced.

use criterion::{criterion_group, criterion_main, Criterion};
use hibd_bench::suspension;
use hibd_krylov::{block_lanczos_sqrt, KrylovConfig};
use hibd_linalg::{CholeskyFactor, LinearOperator};
use hibd_mathx::fill_standard_normal;
use hibd_pme::{tune, PmeOperator};
use hibd_rpy::{dense_ewald_mobility, RpyEwald};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forwards block applications to the per-column PME baseline, so block
/// Lanczos can be timed against the pre-batching behavior.
struct ColumnwiseOp(PmeOperator);

impl LinearOperator for ColumnwiseOp {
    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn apply(&mut self, f: &[f64], u: &mut [f64]) {
        self.0.apply(f, u);
    }

    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        self.0.apply_multi_columnwise(x, y, s);
    }
}

fn bench_displacements(c: &mut Criterion) {
    let n = 200;
    let lambda = 8;
    let sys = suspension(n, 0.2, 7);
    let mut rng = StdRng::seed_from_u64(11);
    let mut z = vec![0.0; 3 * n * lambda];
    fill_standard_normal(&mut rng, &mut z);

    let mut group = c.benchmark_group("brownian_displacements");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Conventional: Cholesky factor + triangular multi-product.
    let xi_bal = std::f64::consts::PI.sqrt() * (n as f64).powf(1.0 / 6.0) / sys.box_l;
    let ewald = RpyEwald::new(1.0, 1.0, sys.box_l, xi_bal, 1e-4);
    let m = dense_ewald_mobility(sys.positions(), &ewald);
    group.bench_function("cholesky_factor", |b| b.iter(|| CholeskyFactor::new(&m).unwrap()));
    let chol = CholeskyFactor::new(&m).unwrap();
    let mut d = vec![0.0; 3 * n * lambda];
    group
        .bench_function("cholesky_sample_block", |b| b.iter(|| chol.mul_multi(&z, &mut d, lambda)));

    // Matrix-free: block Lanczos over the PME operator, batched multi-RHS
    // reciprocal pipeline (the production path).
    let params = tune(n, 0.2, 1.0, 1.0, 1e-3).params;
    let mut op = PmeOperator::new(sys.positions(), params).unwrap();
    let cfg = KrylovConfig { tol: 1e-2, max_iter: 60, check_interval: 2 };
    group.bench_function("block_lanczos_pme", |b| {
        b.iter(|| block_lanczos_sqrt(&mut op, &z, lambda, &cfg).unwrap());
    });

    // Same solve through the per-column baseline the batched path replaced.
    let mut colwise = ColumnwiseOp(PmeOperator::new(sys.positions(), params).unwrap());
    group.bench_function("block_lanczos_pme_columnwise", |b| {
        b.iter(|| block_lanczos_sqrt(&mut colwise, &z, lambda, &cfg).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_displacements);
criterion_main!(benches);
