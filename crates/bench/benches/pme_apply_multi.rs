//! Criterion bench: batched multi-RHS PME block application vs the
//! per-column baseline vs `s` single-RHS applies (the Sec. III-B "no
//! batched 3D FFT" gap, now filled). Table III-style configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_bench::suspension;
use hibd_linalg::LinearOperator;
use hibd_pme::{tune, PmeOperator};

fn bench_apply_multi(c: &mut Criterion) {
    let n = 1000;
    let params = tune(n, 0.2, 1.0, 1.0, 1e-3).params;
    let sys = suspension(n, 0.2, 13);

    let mut group = c.benchmark_group("pme_apply_multi");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for s in [1usize, 4, 8, 16] {
        let mut op = PmeOperator::new(sys.positions(), params).unwrap();
        let x: Vec<f64> = (0..3 * n * s).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; 3 * n * s];
        group.bench_with_input(BenchmarkId::new("batched", s), &s, |b, &s| {
            b.iter(|| op.apply_multi(&x, &mut y, s));
        });
        group.bench_with_input(BenchmarkId::new("per_column", s), &s, |b, &s| {
            b.iter(|| op.apply_multi_columnwise(&x, &mut y, s));
        });
        // `s` independent single-RHS applies on contiguous vectors: the
        // no-block-structure-at-all lower bound the paper's Algorithm 1
        // loop would pay.
        let xc: Vec<Vec<f64>> =
            (0..s).map(|j| (0..3 * n).map(|i| x[i * s + j]).collect()).collect();
        let mut uc = vec![0.0; 3 * n];
        group.bench_with_input(BenchmarkId::new("single_rhs_loop", s), &s, |b, &s| {
            b.iter(|| {
                for xj in xc.iter().take(s) {
                    op.apply(xj, &mut uc);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply_multi);
criterion_main!(benches);
