//! Criterion bench: full PME operator applications (Algorithm 2's inner
//! kernel), sequential and overlapped.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_bench::suspension;
use hibd_linalg::LinearOperator;
use hibd_pme::{tune, PmeOperator};

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("pme_apply");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1000usize, 5000] {
        let params = tune(n, 0.2, 1.0, 1.0, 1e-3).params;
        let sys = suspension(n, 0.2, 5);
        let mut op = PmeOperator::new(sys.positions(), params).unwrap();
        let f: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut u = vec![0.0; 3 * n];
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| op.apply(&f, &mut u));
        });
        group.bench_with_input(BenchmarkId::new("overlapped", n), &n, |b, _| {
            b.iter(|| op.apply_overlapped(&f, &mut u));
        });
        let s = 4;
        let fs: Vec<f64> = (0..3 * n * s).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut us = vec![0.0; 3 * n * s];
        group.bench_with_input(BenchmarkId::new("block_x4", n), &n, |b, _| {
            b.iter(|| op.apply_multi(&fs, &mut us, s));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
