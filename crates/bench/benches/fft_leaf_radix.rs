//! Criterion bench: scalar vs SIMD for the 1D mixed-radix combine kernels.
//!
//! Sizes are chosen so one leaf radix dominates the combine work: 256 = 4^4,
//! 162 = 2 * 3^4 (radix-2 top stage over radix-3), 243 = 3^5, 625 = 5^4.
//! The "scalar" group forces the pre-SIMD fallback via the process-global
//! `hibd_simd` override; Criterion runs groups sequentially, so the toggle
//! cannot race.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_fft::{Complex64, FftPlan};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n).map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos())).collect()
}

fn bench_fft_leaf_radix(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_leaf_radix");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (label, n) in
        [("radix4_256", 256usize), ("radix2_162", 162), ("radix3_243", 243), ("radix5_625", 625)]
    {
        let plan = FftPlan::new(n).unwrap();
        let x = signal(n);
        let mut data = x.clone();
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        group.bench_with_input(BenchmarkId::new("scalar", label), &n, |b, _| {
            let _g = hibd_simd::ScalarGuard::new();
            b.iter(|| {
                data.copy_from_slice(&x);
                plan.forward(&mut data, &mut scratch);
            });
        });
        group.bench_with_input(BenchmarkId::new("simd", label), &n, |b, _| {
            b.iter(|| {
                data.copy_from_slice(&x);
                plan.forward(&mut data, &mut scratch);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft_leaf_radix);
criterion_main!(benches);
