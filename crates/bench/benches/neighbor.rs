//! Criterion bench: neighbor search — fresh cell lists vs a skinned Verlet
//! list reused across BD-step-sized displacements.

use criterion::{criterion_group, criterion_main, Criterion};
use hibd_bench::suspension;
use hibd_cells::{CellList, VerletList};
use hibd_mathx::Vec3;

fn bench_neighbor(c: &mut Criterion) {
    let n = 5000;
    let sys = suspension(n, 0.2, 21);
    let box_l = sys.box_l;
    let cutoff = 2.0;
    let mut group = c.benchmark_group("neighbor_search");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let pos: Vec<Vec3> = sys.positions().to_vec();
    group.bench_function("cell_list_rebuild_and_scan", |b| {
        b.iter(|| {
            let cl = CellList::new(&pos, box_l, cutoff);
            let mut acc = 0.0;
            cl.for_each_pair(|_, _, _, r2| acc += r2);
            std::hint::black_box(acc);
        });
    });

    let mut vl = VerletList::new(&pos, box_l, cutoff, 0.3);
    group.bench_function("verlet_list_reuse_scan", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            vl.for_each_pair(&pos, |_, _, _, r2| acc += r2);
            std::hint::black_box(acc);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_neighbor);
criterion_main!(benches);
