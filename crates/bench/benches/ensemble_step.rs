//! Criterion bench: one lockstep ensemble step over `R` same-shape
//! replicas vs `R` sequential standalone steps. The archival counterpart
//! (construction included) is `cargo run --release -p hibd-bench --bin
//! bench_pr7`.

use criterion::{criterion_group, criterion_main, Criterion};
use hibd_bench::suspension;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_engine::EnsembleRunner;

fn bench_ensemble_step(c: &mut Criterion) {
    let n = 200;
    let mut group = c.benchmark_group("ensemble_step");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let cfg = MatrixFreeConfig { lambda_rpy: 8, ..Default::default() };
    let sys = suspension(n, 0.15, 13);
    for replicas in [1usize, 4] {
        let mut solo: Vec<MatrixFreeBd> = (0..replicas as u64)
            .map(|r| MatrixFreeBd::new(sys.clone(), cfg, 17 + r).unwrap())
            .collect();
        for bd in &mut solo {
            bd.step().unwrap(); // pay the first window outside the loop
        }
        group.bench_function(format!("sequential_r{replicas}_n{n}"), |b| {
            b.iter(|| {
                for bd in &mut solo {
                    bd.step().unwrap();
                }
            });
        });

        let jobs: Vec<_> = (0..replicas as u64).map(|r| (sys.clone(), 17 + r)).collect();
        let mut runner = EnsembleRunner::new(cfg, jobs).unwrap();
        runner.step().unwrap();
        group.bench_function(format!("ensemble_r{replicas}_n{n}"), |b| {
            b.iter(|| runner.step().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ensemble_step);
criterion_main!(benches);
