//! Criterion bench: 3D r2c/c2r FFT throughput (the dominant PME phase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_fft::{Complex64, Fft3};

fn bench_fft3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3d");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [32usize, 64] {
        let fft = Fft3::new([k, k, k]).unwrap();
        let real: Vec<f64> = (0..k * k * k).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut spec = vec![Complex64::ZERO; fft.spectrum_len()];
        group.bench_with_input(BenchmarkId::new("forward_r2c", k), &k, |b, _| {
            b.iter(|| fft.forward(&real, &mut spec));
        });
        fft.forward(&real, &mut spec);
        let mut out = vec![0.0; k * k * k];
        let template = spec.clone();
        group.bench_with_input(BenchmarkId::new("inverse_c2r", k), &k, |b, _| {
            b.iter(|| {
                spec.copy_from_slice(&template);
                fft.inverse(&mut spec, &mut out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft3d);
criterion_main!(benches);
