//! Criterion bench: scalar vs SIMD for the batched RPY near-field kernels —
//! the free-space pair accumulator the treecode leaf pass runs, and the
//! 4-lane Beenakker real-space tensor batch the PME real-space assembly
//! runs.
//!
//! The "scalar" group forces the pre-SIMD fallback via the process-global
//! `hibd_simd` override; Criterion runs groups sequentially, so the toggle
//! cannot race.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_mathx::Vec3;
use hibd_rpy::{real_tensors_with_overlap4, rpy_pairs_accumulate, RpyEwald, PAIR_TILE};

fn bench_nearfield_pairs(c: &mut Criterion) {
    let a = 1.0;
    let ntiles = 64;
    let n = ntiles * PAIR_TILE;
    let mut state = 0x243f6a8885a308d3_u64;
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 * 6.0 - 3.0
    };
    let sx: Vec<f64> = (0..n).map(|_| next()).collect();
    let sy: Vec<f64> = (0..n).map(|_| next()).collect();
    let sz: Vec<f64> = (0..n).map(|_| next()).collect();
    let vx: Vec<f64> = (0..n).map(|_| next()).collect();
    let vy: Vec<f64> = (0..n).map(|_| next()).collect();
    let vz: Vec<f64> = (0..n).map(|_| next()).collect();
    let ew = RpyEwald::new(1.0, 1.0, 12.0, 0.8, 1e-8);
    let rv: Vec<[Vec3; 4]> = (0..256)
        .map(|_| {
            [
                Vec3::new(next().abs() + 0.3, next(), next()),
                Vec3::new(next(), next().abs() + 0.3, next()),
                Vec3::new(next(), next(), next().abs() + 0.3),
                Vec3::new(next().abs() + 0.3, next(), next()),
            ]
        })
        .collect();

    let mut group = c.benchmark_group("nearfield_pairs");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for simd in [false, true] {
        let mode = if simd { "simd" } else { "scalar" };
        let guard = (!simd).then(hibd_simd::ScalarGuard::new);
        group.bench_with_input(BenchmarkId::new(mode, format!("pairs_{n}")), &n, |b, _| {
            b.iter(|| {
                let mut out = [0.0f64; 3];
                for t in 0..ntiles {
                    let lo = t * PAIR_TILE;
                    let hi = lo + PAIR_TILE;
                    rpy_pairs_accumulate(
                        a,
                        0.1,
                        -0.2,
                        0.3,
                        &sx[lo..hi],
                        &sy[lo..hi],
                        &sz[lo..hi],
                        &vx[lo..hi],
                        &vy[lo..hi],
                        &vz[lo..hi],
                        &mut out,
                    );
                }
                out
            });
        });
        group.bench_with_input(
            BenchmarkId::new(mode, format!("ewald4_{}", 4 * rv.len())),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    let mut out = [[0.0f64; 9]; 4];
                    for quad in &rv {
                        real_tensors_with_overlap4(&ew, quad, &mut out);
                        acc += out[0][0];
                    }
                    acc
                });
            },
        );
        drop(guard);
    }
    group.finish();
}

criterion_group!(benches, bench_nearfield_pairs);
criterion_main!(benches);
