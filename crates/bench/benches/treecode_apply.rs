//! Criterion bench: treecode operator applications vs the dense free-space
//! RPY matvec (open-boundary backend, DESIGN.md §10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_bench::cluster;
use hibd_linalg::LinearOperator;
use hibd_rpy::dense_rpy_free;
use hibd_treecode::{TreeOperator, TreeParams};

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("treecode_apply");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1000usize, 5000] {
        let sys = cluster(n, 0.1, 5);
        let mut op = TreeOperator::new(sys.positions(), TreeParams::default());
        let f: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut u = vec![0.0; 3 * n];
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| op.apply(&f, &mut u));
        });
        let s = 4;
        let fs: Vec<f64> = (0..3 * n * s).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut us = vec![0.0; 3 * n * s];
        group.bench_with_input(BenchmarkId::new("tree_block_x4", n), &n, |b, _| {
            b.iter(|| op.apply_multi(&fs, &mut us, s));
        });
        if n <= 1000 {
            let m = dense_rpy_free(sys.positions(), 1.0, 1.0);
            let mut v = vec![0.0; 3 * n];
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
                b.iter(|| m.mul_vec(&f, &mut v));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
