//! Criterion bench: BCSR real-space SpMV, single vector vs multi-RHS
//! (the paper's ref. \[24\] optimization exploited by block Krylov).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hibd_bench::suspension;
use hibd_pme::real::assemble_real_space;
use hibd_rpy::RpyEwald;

fn bench_spmv(c: &mut Criterion) {
    let n = 5000;
    let sys = suspension(n, 0.2, 1);
    let ewald = RpyEwald::kernel_only(1.0, 1.0, sys.box_l, 0.5);
    let m = assemble_real_space(sys.positions(), &ewald, 4.0);
    let mut group = c.benchmark_group("bcsr_spmv");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let x: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.11).cos()).collect();
    let mut y = vec![0.0; 3 * n];
    group.bench_function("single_vector", |b| {
        b.iter(|| m.mul_vec(&x, &mut y));
    });

    for s in [4usize, 16] {
        let xs: Vec<f64> = (0..3 * n * s).map(|i| (i as f64 * 0.07).sin()).collect();
        let mut ys = vec![0.0; 3 * n * s];
        group.bench_with_input(BenchmarkId::new("multi_rhs", s), &s, |b, &s| {
            b.iter(|| m.mul_multi(&xs, &mut ys, s));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
