//! Table III: PME simulation configurations.
//!
//! For each particle count at volume fraction 0.2, runs the tuner targeting
//! `e_p < 1e-3` and prints the chosen `(K, p, r_max, alpha)` plus the
//! *measured* PME relative error against a reference operator:
//! the tight-tolerance dense Ewald matrix where affordable (n <= 500), an
//! over-resolved PME operator otherwise.

use hibd_bench::{suspension, table3_sizes, Opts};
use hibd_linalg::DenseOp;
use hibd_pme::tuner::{measure_ep, reference_operator};
use hibd_pme::{tune, PmeOperator};
use hibd_rpy::{dense_ewald_mobility, RpyEwald};

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let target = 1e-3;

    println!("# Table III: tuned PME configurations (phi = {phi}, target e_p < {target:e})");
    println!(
        "{:>8} {:>6} {:>3} {:>7} {:>8} {:>12}  reference",
        "n", "K", "p", "r_max", "alpha", "e_p(meas)"
    );
    for n in table3_sizes(opts.full) {
        let cfg = tune(n, phi, 1.0, 1.0, target);
        let p = cfg.params;
        // Measuring e_p on the full system is expensive for large n; use a
        // smaller surrogate with the same parameter-selection inputs when
        // n is large (the error is configuration-independent to first
        // order; the paper likewise reports one e_p per configuration).
        let (ep, reference) = if n <= 500 {
            let sys = suspension(n, phi, opts.seed);
            let mut op = PmeOperator::new(sys.positions(), p).expect("operator");
            // Reference with the classic cost-balanced splitting parameter
            // (the total is xi-independent; the PME alpha would make the
            // reference's reciprocal table enormous).
            let xi_bal = std::f64::consts::PI.sqrt() * (n as f64).powf(1.0 / 6.0) / p.box_l;
            let dense = dense_ewald_mobility(
                sys.positions(),
                &RpyEwald::new(p.a, p.eta, p.box_l, xi_bal, 1e-6),
            );
            (measure_ep(&mut op, &mut DenseOp::new(dense), 2, opts.seed), "dense Ewald")
        } else if n <= 20_000 {
            let sys = suspension(n, phi, opts.seed);
            let mut op = PmeOperator::new(sys.positions(), p).expect("operator");
            let mut refop = reference_operator(sys.positions(), &p);
            (measure_ep(&mut op, &mut refop, 1, opts.seed), "over-resolved PME")
        } else {
            (f64::NAN, "(skipped: surrogate at n<=20k covers it)")
        };
        if ep.is_nan() {
            println!(
                "{n:>8} {:>6} {:>3} {:>7.2} {:>8.4} {:>12}  {reference}",
                p.mesh_dim, p.spline_order, p.r_max, p.alpha, "-"
            );
        } else {
            println!(
                "{n:>8} {:>6} {:>3} {:>7.2} {:>8.4} {:>12.2e}  {reference}",
                p.mesh_dim, p.spline_order, p.r_max, p.alpha, ep
            );
        }
    }
    println!();
    println!("# Paper shape: K grows from 32 to 400 over n = 500..500k, p in {{4,6}},");
    println!("# r_max grows slowly, alpha falls, and every measured e_p stays < 1e-3.");
}
