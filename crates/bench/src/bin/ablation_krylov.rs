//! Ablation: block Lanczos vs single-vector Lanczos displacements.
//!
//! The paper (Section III-B, ref. \[8\]) motivates the block method by (a)
//! fewer total iterations and (b) multi-RHS SpMV efficiency. This harness
//! quantifies both on the PME operator: total Krylov iterations (= operator
//! block/single applications) and wall-clock per operator refresh.

use hibd_bench::{flush_stdout, fmt_secs, suspension, Opts};
use hibd_core::mf_bd::{DisplacementMode, MatrixFreeBd, MatrixFreeConfig};

fn run(n: usize, lambda: usize, mode: DisplacementMode, seed: u64) -> (usize, f64) {
    let sys = suspension(n, 0.2, seed);
    let cfg =
        MatrixFreeConfig { lambda_rpy: lambda, displacement_mode: mode, ..Default::default() };
    let mut bd = MatrixFreeBd::new(sys, cfg, seed).expect("driver");
    bd.run(1).expect("one refresh"); // one operator refresh + one step
    let t = bd.timings();
    (t.krylov_iterations, t.displacements)
}

fn main() {
    let opts = Opts::parse();
    let n = if opts.full { 5000 } else { 1000 };

    println!("# Ablation: displacement solvers (n = {n})");
    println!(
        "{:>7} | {:>11} {:>11} | {:>12} {:>12} | {:>11} {:>11}",
        "lambda",
        "block iters",
        "block time",
        "single iters",
        "single time",
        "cheb applies",
        "cheb time"
    );
    for lambda in [4usize, 8, 16] {
        let (bi, bt) = run(n, lambda, DisplacementMode::BlockKrylov, opts.seed);
        let (si, st) = run(n, lambda, DisplacementMode::SingleKrylov, opts.seed);
        let (ci, ct) = run(n, lambda, DisplacementMode::Chebyshev, opts.seed);
        println!(
            "{lambda:>7} | {bi:>11} {:>11} | {si:>12} {:>12} | {ci:>11} {:>11}",
            fmt_secs(bt),
            fmt_secs(st),
            fmt_secs(ct),
        );
        flush_stdout();
    }
    println!();
    println!("# Expected: block iterations ~ constant in lambda and far below the");
    println!("# summed single-vector iterations (paper ref. [8] benefit (a));");
    println!("# Fixman's Chebyshev (ref. [25]) needs the most operator applies,");
    println!("# which is why the paper's Krylov choice wins.");
}
