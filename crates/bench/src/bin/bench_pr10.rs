//! Service-vs-sequential throughput for the `hibd serve` daemon: a
//! mixed-shape spool drained by the resident worker (shared plans, jobs of
//! the same shape grouped into one lockstep `EnsembleRunner` batch)
//! against the same jobs run back to back through the standalone
//! `hibd run` path (`run_simulation`, one fresh operator per job).
//!
//! Both sides do identical physics and identical output work (streamed
//! trajectory frames plus periodic checkpoints at the same intervals), so
//! the difference is structural: the daemon pays plan construction once
//! per *shape* instead of once per *job* and fuses same-shape drift FFTs
//! into wider batches, while the sequential baseline rebuilds tuned plans
//! from scratch for every job. The daemon's polling/status machinery is
//! deliberately inside the timed region — this is service throughput, not
//! kernel throughput.
//!
//! Writes `results/BENCH_pr10.json` (when `results/` exists) plus the same
//! document on stdout. Usage: `bench_pr10 [--quick|--full] [--seed N]`.

use hibd_bench::Opts;
use hibd_cli::config::SimSpec;
use hibd_cli::runner::run_simulation;
use hibd_serve::{serve, shutdown, ServeSpec};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

struct JobDef {
    name: String,
    spec: SimSpec,
}

/// The mixed-shape workload: `count` seeds per particle count, so the
/// daemon can batch same-shape jobs while the shapes still force plan
/// diversity.
fn jobs(full: bool, seed: u64) -> (Vec<JobDef>, usize) {
    let shapes: &[(usize, usize)] =
        if full { &[(150, 3), (250, 2), (350, 1)] } else { &[(60, 3), (100, 2)] };
    let steps = if full { 40 } else { 24 };
    let mut out = Vec::new();
    let mut k = 0u64;
    for &(n, count) in shapes {
        for _ in 0..count {
            out.push(JobDef {
                name: format!("job{k}_n{n}"),
                spec: SimSpec {
                    particles: n,
                    seed: seed + k,
                    steps,
                    lambda_rpy: 4,
                    trajectory_interval: 4,
                    checkpoint_interval: 16,
                    report_interval: 0,
                    ..SimSpec::default()
                },
            });
            k += 1;
        }
    }
    (out, shapes.len())
}

/// The jobs back to back through the standalone runner, each with its own
/// trajectory and checkpoint files (the same output work the daemon does).
fn run_sequential(jobs: &[JobDef], root: &Path) -> f64 {
    std::fs::remove_dir_all(root).ok();
    std::fs::create_dir_all(root).unwrap();
    let t0 = Instant::now();
    for j in jobs {
        let spec = SimSpec {
            trajectory: Some(root.join(format!("{}.xyz", j.name)).to_string_lossy().into_owned()),
            checkpoint: Some(root.join(format!("{}.hibd", j.name)).to_string_lossy().into_owned()),
            ..j.spec.clone()
        };
        run_simulation(&spec, None, |_| {}).unwrap();
    }
    t0.elapsed().as_secs_f64()
}

/// The same jobs spooled into a fresh daemon that drains and exits.
fn run_service(jobs: &[JobDef], root: &Path) -> f64 {
    std::fs::remove_dir_all(root).ok();
    let spool = root.join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    for j in jobs {
        std::fs::write(spool.join(format!("{}.conf", j.name)), j.spec.to_config_text()).unwrap();
    }
    shutdown::reset();
    let spec = ServeSpec {
        spool: spool.to_string_lossy().into_owned(),
        output: root.join("out").to_string_lossy().into_owned(),
        workers: 1,
        queue: 16,
        poll_ms: 2,
        status: None,
        status_ms: 200,
        throttle_ms: 0,
        plan_cache: 0,
        exit_when_idle: true,
    };
    let t0 = Instant::now();
    let report = serve(&spec, |_| {}).unwrap();
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(report.done, jobs.len(), "every spooled job must finish: {report:?}");
    seconds
}

fn main() {
    let opts = Opts::parse();
    let (jobs, shapes) = jobs(opts.full, opts.seed);
    let steps = jobs[0].spec.steps;
    let total_steps: usize = jobs.iter().map(|j| j.spec.steps).sum();
    let reps = if opts.full { 3 } else { 2 };
    let root = std::env::temp_dir().join("hibd_bench_pr10");

    // Best-of-reps: interference on a shared host only ever adds time.
    let mut sequential_s = f64::INFINITY;
    let mut service_s = f64::INFINITY;
    for _ in 0..reps {
        sequential_s = sequential_s.min(run_sequential(&jobs, &root.join("seq")));
        service_s = service_s.min(run_service(&jobs, &root.join("serve")));
    }
    std::fs::remove_dir_all(&root).ok();

    eprintln!(
        "{} jobs ({shapes} shapes) x {steps} steps: sequential {sequential_s:.2} s, \
         service {service_s:.2} s ({:.3}x)",
        jobs.len(),
        sequential_s / service_s
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"hibd-bench-pr10-v1\",");
    let _ = writeln!(json, "  \"jobs\": {},", jobs.len());
    let _ = writeln!(json, "  \"shapes\": {shapes},");
    let _ = writeln!(json, "  \"steps_per_job\": {steps},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"sequential_s\": {sequential_s:.3},");
    let _ = writeln!(json, "  \"service_s\": {service_s:.3},");
    let _ =
        writeln!(json, "  \"sequential_steps_per_s\": {:.2},", total_steps as f64 / sequential_s);
    let _ = writeln!(json, "  \"service_steps_per_s\": {:.2},", total_steps as f64 / service_s);
    let _ = writeln!(
        json,
        "  \"sequential_jobs_per_hour\": {:.1},",
        jobs.len() as f64 * 3600.0 / sequential_s
    );
    let _ = writeln!(
        json,
        "  \"service_jobs_per_hour\": {:.1},",
        jobs.len() as f64 * 3600.0 / service_s
    );
    let _ = writeln!(json, "  \"speedup\": {:.3}", sequential_s / service_s);
    json.push_str("}\n");

    print!("{json}");
    if Path::new("results").is_dir() {
        std::fs::write("results/BENCH_pr10.json", &json).expect("write results/BENCH_pr10.json");
        eprintln!("wrote results/BENCH_pr10.json");
    }
}
