//! Ablation: B-spline order vs mesh density (the accuracy/cost frontier of
//! Section V-B's "larger r_max, K and/or p gives a more accurate result
//! with a more expensive calculation").
//!
//! At fixed Ewald split, sweeps `(p, K)` and reports the measured PME error
//! against the dense Ewald reference plus the reciprocal-pipeline time.

use hibd_bench::{fmt_secs, suspension, time_mean, Opts};
use hibd_linalg::DenseOp;
use hibd_pme::tuner::{measure_ep, next_smooth_even};
use hibd_pme::{PmeOperator, PmeParams};
use hibd_rpy::{dense_ewald_mobility, RpyEwald};

fn main() {
    let opts = Opts::parse();
    let n = if opts.full { 200 } else { 80 };
    let phi = 0.2;
    let sys = suspension(n, phi, opts.seed);
    let box_l = sys.box_l;
    let alpha = 0.9;
    let r_max = (4.5f64).min(box_l / 2.0);
    let dense =
        dense_ewald_mobility(sys.positions(), &RpyEwald::new(1.0, 1.0, box_l, alpha, 1e-11));

    println!("# Ablation: spline order p and mesh K at fixed alpha = {alpha} (n = {n})");
    println!("{:>4} {:>6} | {:>12} | {:>12}", "p", "K", "e_p", "recip time");
    let base_k = next_smooth_even((2.0 * box_l) as usize);
    for p in [4usize, 6, 8] {
        for scale in [1.0f64, 1.5, 2.0] {
            let k = next_smooth_even((base_k as f64 * scale) as usize).max(4 * p);
            let params =
                PmeParams { a: 1.0, eta: 1.0, box_l, alpha, mesh_dim: k, spline_order: p, r_max };
            let mut op = PmeOperator::new(sys.positions(), params).expect("operator");
            let ep = measure_ep(&mut op, &mut DenseOp::new(dense.clone()), 2, opts.seed);
            let f: Vec<f64> = (0..3 * n).map(|i| ((i * 31 + 7) % 61) as f64 / 30.0 - 1.0).collect();
            let mut u = vec![0.0; 3 * n];
            let t = time_mean(3, || {
                u.fill(0.0);
                op.recip_apply_add(&f, &mut u);
            });
            println!("{p:>4} {k:>6} | {ep:>12.2e} | {:>12}", fmt_secs(t));
        }
    }
    println!();
    println!("# Expected: error falls with both p and K; higher p buys more");
    println!("# accuracy per mesh point (steeper convergence), at slightly higher");
    println!("# spreading/interpolation cost (p^3 stencil).");
}
