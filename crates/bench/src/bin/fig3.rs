//! Figure 3: diffusion coefficients vs volume fraction.
//!
//! Matrix-free BD runs (lambda_RPY = 16, e_k = 1e-2, e_p ~ 1e-3) at several
//! volume fractions; the measured short-time self-diffusion coefficient
//! D/D0 is compared with the Beenakker–Mazur-style theoretical trend
//! `D/D0 ~ 1 - 1.832 phi + 0.88 phi^2` for hard-sphere suspensions.

use hibd_bench::{flush_stdout, run_bd_diffusion, suspension, Opts};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};

fn main() {
    let opts = Opts::parse();
    let (n, steps) = if opts.full { (5000, 10_000) } else { (400, 400) };
    let phis = [0.1, 0.2, 0.3, 0.4];
    let mu0 = 1.0 / (6.0 * std::f64::consts::PI);

    println!("# Figure 3: D/D0 vs volume fraction (n = {n}, {steps} steps)");
    println!("{:>5} {:>12} {:>10} {:>12} {:>10}", "Phi", "D/D0", "err", "theory", "krylov its");
    for &phi in &phis {
        let sys = suspension(n, phi, opts.seed);
        let cfg = MatrixFreeConfig { e_k: 1e-2, target_ep: 1e-3, ..Default::default() };
        let mut bd = MatrixFreeBd::new(sys, cfg, opts.seed).expect("driver");
        bd.add_force(RepulsiveHarmonic::default());
        let run = run_bd_diffusion(&mut bd, steps);
        let theory = 1.0 - 1.832 * phi + 0.88 * phi * phi;
        println!(
            "{phi:>5.2} {:>12.4} {:>10.4} {:>12.4} {:>10}",
            run.d / mu0,
            run.d_err / mu0,
            theory,
            run.krylov_iterations
        );
        flush_stdout();
    }
    println!();
    println!("# Paper shape: D decreases with phi (crowding slows diffusion),");
    println!("# in good agreement with theory at low-to-moderate phi.");
}
