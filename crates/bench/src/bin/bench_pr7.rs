//! Ensemble-vs-sequential throughput for the resident engine: stepping `R`
//! same-shape replicas in lockstep through one `EnsembleRunner` (shared
//! plans, lane-batched drift FFTs) against `R` standalone `MatrixFreeBd`
//! steppers advanced back to back.
//!
//! Each case times the *steady-state* lockstep step — every replica advances
//! one BD step — with the Krylov mobility window already warm and `lambda`
//! chosen large enough that no window refresh lands inside the timed region.
//! That isolates the engine's structural advantage: the ensemble fuses the
//! replicas' drift transforms into `3R`-mesh FFT batches, which the
//! lane-batched quad path (`hibd-fft`, groups of four meshes per transform)
//! accelerates, while a standalone step only ever has three meshes in
//! flight and cannot fill a lane group. Replicas stay bitwise identical to
//! standalone runs, so this is pure throughput, not a different algorithm.
//!
//! Criterion covers the same comparison interactively (`cargo bench --bench
//! ensemble_step`); this binary is the archival path and writes
//! `results/BENCH_pr7.json` (when `results/` exists) plus the same document
//! on stdout.
//!
//! Usage: `bench_pr7 [--quick|--full] [--seed N]`.

use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_core::system::ParticleSystem;
use hibd_engine::EnsembleRunner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Best (minimum) seconds of `f` over `reps` runs — the robust estimator
/// on a shared host, since interference only ever adds time.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Case {
    replicas: usize,
    sequential_s: f64,
    ensemble_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2014);

    let (n, phi, reps, timed_steps) = if full { (300, 0.2, 5, 8) } else { (150, 0.15, 3, 6) };
    // One warm-up step pays the Krylov window; keep every timed step (reps
    // rounds of timed_steps) inside the same window so no refresh is timed.
    let lambda = 2 + reps * timed_steps;
    let cfg = MatrixFreeConfig { lambda_rpy: lambda, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(seed);
    let base = ParticleSystem::random_suspension(n, phi, &mut rng);

    let mut cases = Vec::new();
    for replicas in [1usize, 2, 4, 8] {
        let mut solo: Vec<MatrixFreeBd> = (0..replicas as u64)
            .map(|r| MatrixFreeBd::new(base.clone(), cfg, seed + r).unwrap())
            .collect();
        for bd in &mut solo {
            bd.step().unwrap();
        }
        let sequential_s = time_best(reps, || {
            for _ in 0..timed_steps {
                for bd in &mut solo {
                    bd.step().unwrap();
                }
            }
        }) / timed_steps as f64;

        let jobs: Vec<_> = (0..replicas as u64).map(|r| (base.clone(), seed + r)).collect();
        let mut runner = EnsembleRunner::new(cfg, jobs).unwrap();
        runner.step().unwrap();
        let ensemble_s = time_best(reps, || {
            for _ in 0..timed_steps {
                runner.step().unwrap();
            }
        }) / timed_steps as f64;

        eprintln!(
            "R = {replicas}: sequential {:.1} ms, ensemble {:.1} ms per lockstep step ({:.3}x)",
            sequential_s * 1e3,
            ensemble_s * 1e3,
            sequential_s / ensemble_s
        );
        cases.push(Case { replicas, sequential_s, ensemble_s });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"hibd-bench-pr7-v1\",");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"lambda\": {lambda},");
    let _ = writeln!(json, "  \"timed_steps\": {timed_steps},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let sep = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"replicas\": {}, \"sequential_ms\": {:.2}, \"ensemble_ms\": {:.2}, \
             \"speedup\": {:.3}}}{sep}",
            c.replicas,
            c.sequential_s * 1e3,
            c.ensemble_s * 1e3,
            c.sequential_s / c.ensemble_s,
        );
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if std::path::Path::new("results").is_dir() {
        std::fs::write("results/BENCH_pr7.json", &json).expect("write results/BENCH_pr7.json");
        eprintln!("wrote results/BENCH_pr7.json");
    }
}
