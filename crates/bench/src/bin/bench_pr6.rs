//! Scalar-vs-SIMD kernel timings for the vectorized kernel layer
//! (fft_leaf_radix / spread_interp_multi / nearfield_pairs), in a plain
//! timing harness that emits machine-readable JSON.
//!
//! Criterion covers the same three groups interactively (`cargo bench`);
//! this binary is the archival path: it runs each case under the forced
//! scalar override and under auto-detection, takes the best of repeated
//! timed blocks, and writes `results/BENCH_pr6.json` (when `results/`
//! exists in the working directory) plus the same document on stdout.

use hibd_fft::{Complex64, FftPlan};
use hibd_mathx::Vec3;
use hibd_pme::pmat::build_interp_matrix;
use hibd_pme::spread::{interpolate, interpolate_multi, SpreadPlan};
use hibd_rpy::{real_tensors_with_overlap4, rpy_pairs_accumulate, RpyEwald, PAIR_TILE};
use std::fmt::Write as _;
use std::time::Instant;

/// Best (minimum) seconds per call of `f` over `reps` timed blocks of
/// `iters` calls. The minimum is the robust estimator on a shared host:
/// scheduler preemption and cache pollution only ever add time, so the
/// fastest block is the closest to the kernel's intrinsic cost.
fn time_best(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

struct Case {
    group: &'static str,
    name: String,
    scalar_s: f64,
    simd_s: f64,
}

fn run_case(
    cases: &mut Vec<Case>,
    group: &'static str,
    name: impl Into<String>,
    reps: usize,
    iters: usize,
    mut f: impl FnMut(),
) {
    // Warm up once so lazily grown scratch and branch predictors settle
    // before either measured pass.
    f();
    let scalar_s = {
        let _g = hibd_simd::ScalarGuard::new();
        time_best(reps, iters, &mut f)
    };
    let simd_s = time_best(reps, iters, &mut f);
    cases.push(Case { group, name: name.into(), scalar_s, simd_s });
}

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

fn fft_cases(cases: &mut Vec<Case>) {
    for (label, n) in
        [("radix4_256", 256usize), ("radix2_162", 162), ("radix3_243", 243), ("radix5_625", 625)]
    {
        let plan = FftPlan::new(n).unwrap();
        let mut next = lcg(n as u64);
        let x: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let mut data = x.clone();
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        run_case(cases, "fft_leaf_radix", label, 15, 2000, || {
            data.copy_from_slice(&x);
            plan.forward(&mut data, &mut scratch);
        });
    }
}

fn spread_cases(cases: &mut Vec<Case>) {
    let (n, k, p, box_l, s) = (400usize, 32usize, 6usize, 12.0f64, 8usize);
    let mut next = lcg(7);
    let pos: Vec<Vec3> = (0..n)
        .map(|_| Vec3::new((next() + 0.5) * box_l, (next() + 0.5) * box_l, (next() + 0.5) * box_l))
        .collect();
    let pm = build_interp_matrix(&pos, box_l, k, p);
    let plan = SpreadPlan::new(&pm.scaled, k, p);
    let k3 = k * k * k;
    let f: Vec<f64> = (0..3 * n).map(|_| next()).collect();
    let fs: Vec<f64> = (0..3 * n * s).map(|_| next()).collect();
    let mut mesh = vec![0.0; 3 * k3];
    let mut mesh_s = vec![0.0; 3 * s * k3];
    let mut u = vec![0.0; 3 * n];
    let mut us = vec![0.0; 3 * n * s];
    run_case(cases, "spread_interp_multi", format!("single_n{n}_k{k}_p{p}"), 15, 40, || {
        plan.spread(&pm, &f, &mut mesh);
        interpolate(&pm, &mesh, &mut u);
    });
    run_case(cases, "spread_interp_multi", format!("multi_s{s}_n{n}_k{k}_p{p}"), 15, 8, || {
        plan.spread_multi(&pm, &fs, s, 0, s, &mut mesh_s);
        interpolate_multi(&pm, &mesh_s, s, 0, s, &mut us);
    });
}

fn nearfield_cases(cases: &mut Vec<Case>) {
    let a = 1.0;
    let ntiles = 64;
    let n = ntiles * PAIR_TILE;
    let mut next = lcg(0x9e37);
    let scale6 = |v: f64| v * 6.0;
    let sx: Vec<f64> = (0..n).map(|_| scale6(next())).collect();
    let sy: Vec<f64> = (0..n).map(|_| scale6(next())).collect();
    let sz: Vec<f64> = (0..n).map(|_| scale6(next())).collect();
    let vx: Vec<f64> = (0..n).map(|_| next()).collect();
    let vy: Vec<f64> = (0..n).map(|_| next()).collect();
    let vz: Vec<f64> = (0..n).map(|_| next()).collect();
    let mut sink = [0.0f64; 3];
    run_case(cases, "nearfield_pairs", format!("pairs_{n}"), 15, 400, || {
        for t in 0..ntiles {
            let lo = t * PAIR_TILE;
            let hi = lo + PAIR_TILE;
            rpy_pairs_accumulate(
                a,
                0.1,
                -0.2,
                0.3,
                &sx[lo..hi],
                &sy[lo..hi],
                &sz[lo..hi],
                &vx[lo..hi],
                &vy[lo..hi],
                &vz[lo..hi],
                &mut sink,
            );
        }
    });
    let ew = RpyEwald::new(1.0, 1.0, 12.0, 0.8, 1e-8);
    let rv: Vec<[Vec3; 4]> = (0..256)
        .map(|_| {
            [
                Vec3::new(scale6(next()).abs() + 0.3, scale6(next()), scale6(next())),
                Vec3::new(scale6(next()), scale6(next()).abs() + 0.3, scale6(next())),
                Vec3::new(scale6(next()), scale6(next()), scale6(next()).abs() + 0.3),
                Vec3::new(scale6(next()).abs() + 0.3, scale6(next()), scale6(next())),
            ]
        })
        .collect();
    let mut out = [[0.0f64; 9]; 4];
    run_case(cases, "nearfield_pairs", format!("ewald4_{}", 4 * rv.len()), 15, 200, || {
        for quad in &rv {
            real_tensors_with_overlap4(&ew, quad, &mut out);
        }
    });
}

fn main() {
    let mut cases = Vec::new();
    fft_cases(&mut cases);
    spread_cases(&mut cases);
    nearfield_cases(&mut cases);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"hibd-bench-pr6-v1\",");
    let _ = writeln!(json, "  \"simd_level\": \"{:?}\",", hibd_simd::level());
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let sep = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"scalar_ns\": {:.1}, \
             \"simd_ns\": {:.1}, \"speedup\": {:.3}}}{sep}",
            c.group,
            c.name,
            c.scalar_s * 1e9,
            c.simd_s * 1e9,
            c.scalar_s / c.simd_s,
        );
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if std::path::Path::new("results").is_dir() {
        std::fs::write("results/BENCH_pr6.json", &json).expect("write results/BENCH_pr6.json");
        eprintln!("wrote results/BENCH_pr6.json");
    }
}
