//! Ablation: split-Ewald (PSE) sampling vs block Lanczos on the PME
//! operator.
//!
//! The PSE wave-space sampler replaces the Krylov iteration over full PME
//! applies (one forward + one inverse batch FFT each) with a single
//! inverse transform of a shaped Gaussian spectrum — half an FFT round
//! trip per displacement block, independent of the accuracy target. The
//! price is a Lanczos iteration on the FFT-free sparse near field. This
//! harness counts both currencies at matched Krylov tolerance `e_k` on the
//! standard phi = 0.2 workload.

use hibd_bench::{flush_stdout, fmt_bytes, fmt_secs, suspension, time_once, Opts};
use hibd_krylov::{block_lanczos_sqrt, KrylovConfig};
use hibd_mathx::fill_standard_normal;
use hibd_pme::{tune, PmeOperator};
use hibd_pse::{PseSampler, PseSplit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Opts::parse();
    let n = if opts.full { 1000 } else { 300 };
    let phi = 0.2;
    let lambda = 16;

    let sys = suspension(n, phi, opts.seed);
    let params = tune(n, phi, 1.0, 1.0, 1e-3).params;
    let pse = PseSplit::default().resolve(&params);

    let mut op = PmeOperator::new(sys.positions(), params).expect("PME operator");
    let (mut sampler, t_near) =
        time_once(|| PseSampler::new(sys.positions(), pse).expect("PSE sampler"));

    println!("# Ablation: PSE sampler vs block Lanczos (n = {n}, phi = {phi}, lambda = {lambda})");
    println!(
        "# PME: K = {}, alpha = {:.4} | PSE: K = {}, xi = {:.4}, r_max = {:.1}, \
         clip = {:.2e}, near assembly {} ({})",
        params.mesh_dim,
        params.alpha,
        pse.mesh_dim,
        pse.xi,
        pse.r_max,
        sampler.clipped_fraction(),
        fmt_secs(t_near),
        fmt_bytes(sampler.memory_bytes()),
    );
    println!(
        "{:>6} | {:>11} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>12} {:>10} {:>10}",
        "e_k",
        "block iters",
        "roundtrips",
        "meshFFTs",
        "time",
        "roundtrips",
        "meshFFTs",
        "near matvec",
        "near iters",
        "time"
    );

    let dim = 3 * n;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xab1a);
    let mut z = vec![0.0; dim * lambda];
    let mut d = vec![0.0; dim * lambda];
    for e_k in [1e-2, 1e-3, 1e-4] {
        let kcfg = KrylovConfig { tol: e_k, max_iter: 200, check_interval: 1 };

        // Block Lanczos: each iteration applies the PME operator to the
        // lambda-column block — one forward + one inverse batch of 3*lambda
        // meshes, i.e. one full FFT round trip (6*lambda mesh transforms).
        fill_standard_normal(&mut rng, &mut z);
        let ((_, bstats), bt) =
            time_once(|| block_lanczos_sqrt(&mut op, &z, lambda, &kcfg).expect("block Lanczos"));

        // PSE: half a round trip (3*lambda inverse-only transforms) plus the
        // FFT-free near-field Lanczos.
        sampler.reset_counters();
        d.iter_mut().for_each(|x| *x = 0.0);
        let (pstats, pt) =
            time_once(|| sampler.sample_block(&mut rng, &mut d, lambda, &kcfg).expect("PSE"));
        assert_eq!(sampler.mesh_transforms(), 3 * lambda);

        println!(
            "{e_k:>6.0e} | {:>11} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>12} {:>10} {:>10}",
            bstats.iterations,
            bstats.iterations,
            bstats.iterations * 6 * lambda,
            fmt_secs(bt),
            0.5,
            3 * lambda,
            sampler.near_matvec_columns(),
            pstats.iterations,
            fmt_secs(pt),
        );
        flush_stdout();
    }
    println!();
    println!("# Round trips: forward + inverse batch FFT of the 3*lambda displacement");
    println!("# meshes. PSE always pays exactly half of one (inverse only), so it beats");
    println!("# block Lanczos whenever the latter needs >= 1 iteration; the near-field");
    println!("# matvecs it pays instead never touch the mesh.");
}
