//! Ablation: the mobility reuse interval `lambda_RPY`.
//!
//! Algorithm 2 rebuilds the PME operator and redraws displacements every
//! `lambda_RPY` steps (paper: 10–100). Larger lambda amortizes setup and
//! Krylov cost over more steps but uses a staler mobility. This harness
//! measures amortized time per step across lambda, and the mobility
//! staleness proxy: how far particles move (in units of `a`) within one
//! reuse window.

use hibd_bench::{flush_stdout, fmt_secs, suspension, Opts};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_mathx::Vec3;

fn main() {
    let opts = Opts::parse();
    let n = if opts.full { 5000 } else { 800 };
    let windows = 2; // measure over two reuse windows

    println!("# Ablation: mobility reuse interval lambda_RPY (n = {n})");
    println!(
        "{:>7} | {:>10} {:>12} {:>12} {:>12} | {:>14}",
        "lambda", "steps", "setup", "krylov", "t/step", "drift/window"
    );
    for lambda in [1usize, 4, 8, 16, 32] {
        let sys = suspension(n, 0.2, opts.seed);
        let cfg = MatrixFreeConfig { lambda_rpy: lambda, ..Default::default() };
        let mut bd = MatrixFreeBd::new(sys, cfg, opts.seed).expect("driver");
        bd.add_force(RepulsiveHarmonic::default());
        let steps = lambda * windows;
        let before: Vec<Vec3> = bd.system().unwrapped().to_vec();
        bd.run(steps).expect("run");
        let t = bd.timings();
        // RMS displacement accumulated per reuse window, in radii.
        let msd: f64 = bd
            .system()
            .unwrapped()
            .iter()
            .zip(&before)
            .map(|(u, p)| (*u - *p).norm2())
            .sum::<f64>()
            / n as f64;
        let drift_per_window = (msd / windows as f64).sqrt();
        println!(
            "{lambda:>7} | {steps:>10} {:>12} {:>12} {:>12} | {drift_per_window:>13.4}a",
            fmt_secs(t.setup),
            fmt_secs(t.displacements),
            fmt_secs(t.per_step()),
        );
        flush_stdout();
    }
    println!();
    println!("# Expected: time/step falls steeply up to lambda ~ 16 then flattens;");
    println!("# the per-window drift stays a small fraction of a radius, which is");
    println!("# why reusing the mobility over 10-100 steps is admissible.");
}
