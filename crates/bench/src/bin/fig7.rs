//! Figure 7: conventional Ewald BD vs the matrix-free algorithm —
//! (a) memory and (b) execution time per step, as functions of n.
//!
//! The dense algorithm's memory is the `(3n)^2` mobility matrix; its time
//! per step amortizes assembly + Cholesky + lambda_RPY propagation steps.
//! The matrix-free side measures the PME operator footprint and the
//! amortized Algorithm 2 step.
//!
//! Scaled down by default: the dense baseline is O(n^3) on one core (the
//! paper's 32 GB / 10,000-particle ceiling corresponds to hours here).

use hibd_bench::{flush_stdout, fmt_bytes, fmt_secs, suspension, Opts};
use hibd_core::ewald_bd::{EwaldBd, EwaldBdConfig};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let sizes: Vec<usize> =
        if opts.full { vec![500, 1000, 2000, 3000, 5000] } else { vec![125, 250, 500, 1000] };
    let lambda = 16;

    println!("# Figure 7: Ewald BD (dense) vs matrix-free BD");
    println!(
        "{:>7} | {:>10} {:>10} | {:>11} {:>11} | {:>8}",
        "n", "mem dense", "mem m-free", "t/step dense", "t/step m-free", "speedup"
    );
    for &n in &sizes {
        // Dense baseline: one full cache refresh + lambda steps.
        let sys = suspension(n, phi, opts.seed);
        let mut ewald = EwaldBd::new(
            sys.clone(),
            EwaldBdConfig { lambda_rpy: lambda, ..Default::default() },
            opts.seed,
        );
        ewald.add_force(RepulsiveHarmonic::default());
        ewald.run(lambda).expect("dense BD");
        let dense_mem = ewald.mobility_memory_bytes();
        let dense_per_step = ewald.timings().per_step();

        // Matrix-free: same workload.
        let mut mf = MatrixFreeBd::new(
            sys,
            MatrixFreeConfig { lambda_rpy: lambda, ..Default::default() },
            opts.seed,
        )
        .expect("mf driver");
        mf.add_force(RepulsiveHarmonic::default());
        mf.run(lambda).expect("matrix-free BD");
        let mf_mem = mf.operator_memory_bytes();
        let mf_per_step = mf.timings().per_step();

        println!(
            "{n:>7} | {:>10} {:>10} | {:>11} {:>11} | {:>7.1}x",
            fmt_bytes(dense_mem),
            fmt_bytes(mf_mem),
            fmt_secs(dense_per_step),
            fmt_secs(mf_per_step),
            dense_per_step / mf_per_step
        );
        flush_stdout();
    }
    println!();
    println!("# Paper shape: dense memory grows ~n^2 (32 GB at n = 10,000) while the");
    println!("# matrix-free footprint grows ~n; the time advantage grows past 35x at");
    println!("# the dense algorithm's memory ceiling.");
}
