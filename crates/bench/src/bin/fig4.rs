//! Figure 4: precomputed P vs on-the-fly weights.
//!
//! Times the reciprocal-space PME pipeline with the interpolation matrix
//! precomputed once and reused (Algorithm 2's setting, where the operator is
//! applied 300+ times per configuration) against recomputing B-spline
//! weights at every application.

use hibd_bench::{flush_stdout, fmt_secs, suspension, table3_sizes, time_mean, Opts};
use hibd_pme::{tune, PmeOperator};

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let reps = if opts.full { 10 } else { 3 };

    println!("# Figure 4: reciprocal-space PME, precomputed P vs on-the-fly");
    println!(
        "{:>8} {:>6} {:>3} {:>12} {:>12} {:>9}",
        "n", "K", "p", "precomp", "on-the-fly", "speedup"
    );
    for n in table3_sizes(opts.full) {
        let params = tune(n, phi, 1.0, 1.0, 1e-3).params;
        let sys = suspension(n, phi, opts.seed);
        let mut op = PmeOperator::new(sys.positions(), params).expect("operator");
        let f: Vec<f64> = (0..3 * n).map(|i| ((i * 37 + 11) % 101) as f64 / 50.0 - 1.0).collect();
        let mut u = vec![0.0; 3 * n];

        let t_pre = time_mean(reps, || {
            u.fill(0.0);
            op.recip_apply_add(&f, &mut u);
        });
        let t_fly = time_mean(reps, || {
            u.fill(0.0);
            op.recip_apply_add_on_the_fly(&f, &mut u);
        });
        println!(
            "{n:>8} {:>6} {:>3} {:>12} {:>12} {:>8.2}x",
            params.mesh_dim,
            params.spline_order,
            fmt_secs(t_pre),
            fmt_secs(t_fly),
            t_fly / t_pre
        );
        flush_stdout();
    }
    println!();
    println!("# Paper shape: precomputing P is ~1.5x faster on average, with the");
    println!("# largest gains where p^3 n / K^3 is largest.");
}
