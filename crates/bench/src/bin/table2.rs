//! Table II: accuracy/cost trade-off of the matrix-free algorithm.
//!
//! Reruns the paper's experiment: 1000-particle suspensions at volume
//! fractions 0.1–0.4, simulated with the matrix-free BD algorithm at four
//! `(e_k, e_p)` settings. Reported per cell: the relative error (%) of the
//! measured diffusion coefficient against the tightest setting
//! (`e_k = 1e-6, e_p ~ 1e-6`), and the wall-clock seconds per step.
//!
//! Quick mode shrinks the system and the trajectory; expect larger
//! statistical error bars than the paper's long runs.

use hibd_bench::{flush_stdout, fmt_secs, run_bd_diffusion, suspension, Opts};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};

fn measure_d(n: usize, phi: f64, e_k: f64, e_p: f64, steps: usize, seed: u64) -> (f64, f64) {
    let sys = suspension(n, phi, seed);
    let cfg = MatrixFreeConfig { e_k, target_ep: e_p, ..Default::default() };
    let mut bd = MatrixFreeBd::new(sys, cfg, seed).expect("driver setup");
    bd.add_force(RepulsiveHarmonic::default());
    // Equilibration (steps/10) and the measured window live in the shared
    // telemetry-backed loop.
    let run = run_bd_diffusion(&mut bd, steps);
    (run.d, run.seconds_per_step)
}

fn main() {
    let opts = Opts::parse();
    // Full mode uses the paper's tolerances; quick mode relaxes the "tight"
    // column from 1e-6 to 1e-4 (otherwise the reference runs alone take
    // hours on one core) — the tight-vs-loose contrast is preserved.
    let (n, steps) = if opts.full { (1000, 4000) } else { (150, 160) };
    let phis: &[f64] = if opts.full { &[0.1, 0.2, 0.3, 0.4] } else { &[0.1, 0.4] };
    let (tight_k, tight_p) = if opts.full { (1e-6, 1e-6) } else { (1e-4, 1e-4) };
    let configs = [(tight_k, tight_p), (1e-2, tight_p), (tight_k, 1e-3), (1e-2, 1e-3)];

    println!("# Table II: diffusion-coefficient errors (%) and time/step (s)");
    println!("# n = {n}, steps = {steps}, reference column: e_k={tight_k:.0e} e_p~{tight_p:.0e}");
    println!(
        "{:>5} | {:>22} | {:>22} | {:>22} | {:>22}",
        "Phi",
        format!("ek={tight_k:.0e} ep={tight_p:.0e}"),
        format!("ek=1e-2 ep={tight_p:.0e}"),
        format!("ek={tight_k:.0e} ep=1e-3"),
        "ek=1e-2 ep=1e-3"
    );
    println!("{:->105}", "");
    for &phi in phis {
        let mut cells = Vec::new();
        let mut d_ref = 0.0;
        for (ci, &(ek, ep)) in configs.iter().enumerate() {
            let (d, t) = measure_d(n, phi, ek, ep, steps, opts.seed);
            if ci == 0 {
                d_ref = d;
                cells.push(format!("{:>8} {:>12}", "ref", fmt_secs(t)));
            } else {
                let err = 100.0 * (d - d_ref).abs() / d_ref.abs().max(1e-300);
                cells.push(format!("{err:>7.2}% {:>12}", fmt_secs(t)));
            }
        }
        println!(
            "{phi:>5.2} | {:>22} | {:>22} | {:>22} | {:>22}",
            cells[0], cells[1], cells[2], cells[3]
        );
        flush_stdout();
    }
    println!();
    println!("# Paper shape: errors < 0.25% at the tight settings, < 3% even at");
    println!("# ek=1e-2/ep~1e-3, while the loose settings are several times faster.");
}
