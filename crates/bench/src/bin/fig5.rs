//! Figure 5: reciprocal-space PME phase breakdown vs n and vs K,
//! measured against the Section IV-D performance model.
//!
//! (a) fixed mesh `K`, sweep particle count `n`;
//! (b) fixed `n`, sweep mesh dimension `K`.
//!
//! Both the measured per-phase seconds (spreading / forward FFT / influence
//! / inverse FFT / interpolation) and the model's prediction for *this host*
//! (calibrated bandwidth and FFT rate) are printed.

use hibd_bench::{calibrate_host, flush_stdout, fmt_secs, suspension, time_mean, Opts};
use hibd_pme::perf::PerfModel;
use hibd_pme::{PmeOperator, PmeParams};

fn breakdown(n: usize, k: usize, p: usize, phi: f64, seed: u64, reps: usize, host: &PerfModel) {
    let box_l = hibd_pme::tuner::box_from_volume_fraction(n, phi, 1.0);
    let params = PmeParams {
        a: 1.0,
        eta: 1.0,
        box_l,
        alpha: 0.5, // fixed split: this experiment times the pipeline only
        mesh_dim: k,
        spline_order: p,
        r_max: (4.0f64).min(box_l / 2.0),
    };
    let sys = suspension(n, phi, seed);
    let mut op = PmeOperator::new(sys.positions(), params).expect("operator");
    let f: Vec<f64> = (0..3 * n).map(|i| ((i * 13 + 7) % 97) as f64 / 48.0 - 1.0).collect();
    let mut u = vec![0.0; 3 * n];
    op.take_times();
    let total = time_mean(reps, || {
        u.fill(0.0);
        op.recip_apply_add(&f, &mut u);
    });
    let t = op.take_times();
    let cnt = (reps + 1) as f64; // warmup included in the accumulators
    println!(
        "{n:>8} {k:>5} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>9} | {:>9}",
        fmt_secs(t.spreading / cnt),
        fmt_secs(t.forward_fft / cnt),
        fmt_secs(t.influence / cnt),
        fmt_secs(t.inverse_fft / cnt),
        fmt_secs(t.interpolation / cnt),
        fmt_secs(total),
        fmt_secs(host.t_recip()),
    );
}

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let reps = if opts.full { 5 } else { 2 };
    let host = calibrate_host();
    eprintln!(
        "# host calibration: bandwidth {:.1} GB/s, fft {:.1} GF/s, ifft {:.1} GF/s",
        host.bandwidth / 1e9,
        host.fft_flops / 1e9,
        host.ifft_flops / 1e9
    );

    let header = || {
        println!(
            "{:>8} {:>5} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>9} | {:>9}",
            "n", "K", "spread", "fft", "influence", "ifft", "interp", "measured", "model"
        );
        flush_stdout();
    };

    println!("# Figure 5a: fixed K, sweeping n (p = 6)");
    let (k_a, ns) = if opts.full {
        (256usize, vec![10_000usize, 50_000, 100_000, 300_000, 500_000])
    } else {
        (64, vec![1000, 5000, 20_000, 50_000])
    };
    header();
    for &n in &ns {
        let pm = PerfModel::new(host, k_a, 6, n);
        breakdown(n, k_a, 6, phi, opts.seed, reps, &pm);
    }

    println!();
    println!("# Figure 5b: fixed n, sweeping K (p = 6)");
    let (n_b, ks) = if opts.full {
        (5000usize, vec![64usize, 128, 256, 400])
    } else {
        (2000, vec![32, 64, 96, 128])
    };
    header();
    for &k in &ks {
        let pm = PerfModel::new(host, k, 6, n_b);
        breakdown(n_b, k, 6, phi, opts.seed, reps, &pm);
    }

    println!();
    println!("# Paper shape: FFTs dominate, but spreading/interpolation grow with n");
    println!("# and the influence function grows with K; measured ~ model.");
}
