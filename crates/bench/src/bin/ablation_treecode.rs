//! Ablation: open-boundary treecode vs dense free-space RPY.
//!
//! The treecode (DESIGN.md §10) replaces the O(n^2) dense free-space RPY
//! matvec with an O(n log n) hierarchical apply. This harness locates the
//! dense-vs-tree crossover and checks the scaling is O(n log n)-consistent:
//! `evals/n` (kernel evaluations per particle) should grow by roughly a
//! constant per added tree level while the dense matvec does n per particle.

use hibd_bench::{cluster, flush_stdout, fmt_bytes, fmt_secs, time_mean, time_once, Opts};
use hibd_linalg::LinearOperator;
use hibd_rpy::dense_rpy_free;
use hibd_treecode::{measured_rel_error, TreeOperator, TreeParams};

/// Dense matrices hold 9 n^2 doubles; past this the reference is unaffordable.
const DENSE_CAP: usize = 4000;

fn main() {
    let opts = Opts::parse();
    let sizes: &[usize] = if opts.full {
        &[250, 500, 1000, 2000, 4000, 8000, 16_000, 32_000]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };
    let phi = 0.1;
    let params = TreeParams::default();

    println!(
        "# Ablation: treecode vs dense free-space RPY (phi = {phi}, theta = {}, q = {})",
        params.theta, params.cheb_order
    );
    println!(
        "{:>7} | {:>11} {:>11} | {:>11} {:>11} {:>9} | {:>8} {:>8} {:>9}",
        "n",
        "dense build",
        "dense mv",
        "tree build",
        "tree apply",
        "tree mem",
        "speedup",
        "evals/n",
        "rel err"
    );

    for &n in sizes {
        let sys = cluster(n, phi, opts.seed);
        let pos = sys.positions();
        let f: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut u = vec![0.0; 3 * n];

        let (mut op, t_tree_build) = time_once(|| TreeOperator::new(pos, params));
        let reps = (20_000 / n).clamp(2, 40);
        let t_tree = time_mean(reps, || {
            op.apply(&f, &mut u);
            std::hint::black_box(&u);
        });

        let (dense_cols, speedup) = if n <= DENSE_CAP {
            let (m, t_build) = time_once(|| dense_rpy_free(pos, 1.0, 1.0));
            let mut v = vec![0.0; 3 * n];
            let t_mv = time_mean(reps, || {
                m.mul_vec(&f, &mut v);
                std::hint::black_box(&v);
            });
            (
                format!("{:>11} {:>11}", fmt_secs(t_build), fmt_secs(t_mv)),
                format!("{:.1}x", t_mv / t_tree),
            )
        } else {
            (format!("{:>11} {:>11}", "-", "-"), "-".to_string())
        };
        let rel = if n <= DENSE_CAP {
            format!("{:.1e}", measured_rel_error(pos, params, 3))
        } else {
            "-".to_string()
        };

        println!(
            "{n:>7} | {dense_cols} | {:>11} {:>11} {:>9} | {speedup:>8} {:>8.0} {rel:>9}",
            fmt_secs(t_tree_build),
            fmt_secs(t_tree),
            fmt_bytes(op.memory_bytes()),
            op.interactions_per_apply() as f64 / n as f64,
        );
        flush_stdout();
    }
    println!();
    println!("# Expected: the tree apply overtakes the dense matvec near n ~ 1e3,");
    println!("# and the dense O(n^2) *build* costs ~1000x the tree build well before");
    println!("# that. evals/n (kernel evaluations per particle) grows by roughly a");
    println!("# constant per added tree level — the O(n log n) signature — while the");
    println!("# dense matvec does n evals per particle; rel err <= 1e-3 at the");
    println!("# default theta. Dense columns stop where 9 n^2 doubles stop fitting.");
}
