//! Ablation: open-boundary treecode vs FMM far field, dense reference.
//!
//! The treecode (DESIGN.md §10) replaces the O(n^2) dense free-space RPY
//! matvec with an O(n log n) hierarchical apply; the FMM downward pass
//! (DESIGN.md §13) turns the far field into O(n) by translating multipoles
//! into local expansions instead of evaluating proxy-to-target directly.
//! This harness reports `evals/n` against tree depth for both strategies:
//! the treecode's grows by a constant per added level (the log factor),
//! the FMM's stays level-constant. It also locates the tree-vs-FMM apply
//! crossover and, under `--full`, pushes to n = 1e5 for the scaling row.

use hibd_bench::{cluster, flush_stdout, fmt_bytes, fmt_secs, time_mean, time_once, Opts};
use hibd_linalg::LinearOperator;
use hibd_rpy::dense_rpy_free;
use hibd_treecode::{measured_rel_error, TreeEval, TreeOperator, TreeParams};

/// Dense matrices hold 9 n^2 doubles; past this the reference is unaffordable.
const DENSE_CAP: usize = 4000;

fn main() {
    let opts = Opts::parse();
    let sizes: &[usize] = if opts.full {
        &[250, 500, 1000, 2000, 4000, 8000, 16_000, 32_000, 100_000]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };
    let phi = 0.1;
    let tree_params = TreeParams::default();
    let fmm_params = TreeParams { eval: TreeEval::Fmm, ..tree_params };

    println!(
        "# Ablation: treecode vs FMM far field (phi = {phi}, theta = {}, q = {})",
        tree_params.theta, tree_params.cheb_order
    );
    println!(
        "{:>7} {:>5} | {:>11} | {:>11} {:>8} | {:>11} {:>8} {:>9} | {:>8} {:>8} {:>8}",
        "n",
        "depth",
        "dense mv",
        "tree apply",
        "evals/n",
        "fmm apply",
        "evals/n",
        "fmm mem",
        "fmm/tree",
        "err(t)",
        "err(f)"
    );

    let mut races: Vec<(usize, f64, f64)> = Vec::new();
    for &n in sizes {
        let sys = cluster(n, phi, opts.seed);
        let pos = sys.positions();
        let f: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut u = vec![0.0; 3 * n];
        let reps = (20_000 / n).clamp(2, 40);

        let (mut tree_op, _) = time_once(|| TreeOperator::new(pos, tree_params));
        let t_tree = time_mean(reps, || {
            tree_op.apply(&f, &mut u);
            std::hint::black_box(&u);
        });
        let (mut fmm_op, _) = time_once(|| TreeOperator::new(pos, fmm_params));
        let t_fmm = time_mean(reps, || {
            fmm_op.apply(&f, &mut u);
            std::hint::black_box(&u);
        });
        races.push((n, t_tree, t_fmm));

        let t_dense = if n <= DENSE_CAP {
            let (m, _) = time_once(|| dense_rpy_free(pos, 1.0, 1.0));
            let mut v = vec![0.0; 3 * n];
            let t = time_mean(reps, || {
                m.mul_vec(&f, &mut v);
                std::hint::black_box(&v);
            });
            fmt_secs(t)
        } else {
            "-".to_string()
        };
        let (err_t, err_f) = if n <= DENSE_CAP {
            (
                format!("{:.1e}", measured_rel_error(pos, tree_params, 3)),
                format!("{:.1e}", measured_rel_error(pos, fmm_params, 3)),
            )
        } else {
            ("-".to_string(), "-".to_string())
        };

        println!(
            "{n:>7} {:>5} | {t_dense:>11} | {:>11} {:>8.0} | {:>11} {:>8.0} {:>9} | {:>7.1}x {err_t:>8} {err_f:>8}",
            tree_op.max_depth(),
            fmt_secs(t_tree),
            tree_op.interactions_per_apply() as f64 / n as f64,
            fmt_secs(t_fmm),
            fmm_op.interactions_per_apply() as f64 / n as f64,
            fmt_bytes(fmm_op.memory_bytes()),
            t_tree / t_fmm,
        );
        flush_stdout();
    }
    println!();
    // Sustained crossover: the smallest n from which the FMM apply stays
    // ahead on every larger size (single wins at tiny n are timer noise).
    let crossover = races
        .iter()
        .rev()
        .take_while(|&&(_, t_tree, t_fmm)| t_fmm < t_tree)
        .last()
        .map(|&(n, _, _)| n);
    match crossover {
        Some(n) => println!("# FMM apply crossover: ahead of the treecode from n = {n} on."),
        None => println!("# FMM apply crossover: not reached on these sizes."),
    }
    println!("# Expected: tree evals/n climbs monotonically — a roughly constant");
    println!("# increment per added depth level, the O(n log n) signature. fmm");
    println!("# evals/n (table multiply-adds, no kernel calls) jumps when a new");
    println!("# depth level opens, then *falls* as n fills the level — the M2L");
    println!("# pair list saturates per level, so the per-particle far work is");
    println!("# bounded by a level constant instead of climbing: the O(n)");
    println!("# signature. Both strategies hold rel err <= 1e-3 at the default");
    println!("# theta; dense columns stop where 9 n^2 doubles stop fitting.");
}
