//! Figure 6: reciprocal-space PME on Westmere-EP vs Xeon Phi (KNC).
//!
//! **Hardware substitution** (see DESIGN.md): this host has neither
//! machine, so both columns come from the Section IV-D performance model
//! with the Table I machine descriptions — the same model the paper's
//! hybrid scheduler uses — plus a measured column for this host as a
//! sanity anchor.

use hibd_bench::{
    calibrate_host, flush_stdout, fmt_secs, suspension, table3_sizes, time_mean, Opts,
};
use hibd_pme::perf::{Machine, PerfModel};
use hibd_pme::{tune, PmeOperator};

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let host = calibrate_host();
    let reps = if opts.full { 5 } else { 2 };

    println!("# Figure 6: reciprocal PME time, Westmere-EP vs KNC (modeled) + host (measured)");
    println!(
        "{:>8} {:>6} | {:>11} {:>11} {:>9} | {:>11}",
        "n", "K", "westmere", "knc", "knc gain", "host meas"
    );
    for n in table3_sizes(opts.full) {
        let params = tune(n, phi, 1.0, 1.0, 1e-3).params;
        let w = PerfModel::new(Machine::westmere(), params.mesh_dim, params.spline_order, n);
        let k = PerfModel::new(Machine::knc(), params.mesh_dim, params.spline_order, n);

        // Measure on the host only where it is quick enough.
        let measured = if n <= if opts.full { 100_000 } else { 10_000 } {
            let sys = suspension(n, phi, opts.seed);
            let mut op = PmeOperator::new(sys.positions(), params).expect("operator");
            let f: Vec<f64> = (0..3 * n).map(|i| ((i * 29 + 3) % 89) as f64 / 44.0 - 1.0).collect();
            let mut u = vec![0.0; 3 * n];
            fmt_secs(time_mean(reps, || {
                u.fill(0.0);
                op.recip_apply_add(&f, &mut u);
            }))
        } else {
            "-".to_string()
        };
        println!(
            "{n:>8} {:>6} | {:>11} {:>11} {:>8.2}x | {:>11}",
            params.mesh_dim,
            fmt_secs(w.t_recip()),
            fmt_secs(k.t_recip()),
            w.t_recip() / k.t_recip(),
            measured
        );
        flush_stdout();
    }
    let _ = host;
    println!();
    println!("# Paper shape: KNC is no faster (or slower) than the CPU for small");
    println!("# meshes, and up to ~1.6x faster for the largest configurations.");
}
