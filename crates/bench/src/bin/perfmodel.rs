//! Section IV-D performance model: calibrate, then predict a held-out run.
//!
//! Phase 1 calibrates the four model constants (bandwidth, forward/inverse
//! FFT rates, real-space rate) from telemetry spans of bare block PME
//! applies at two small shapes. Phase 2 runs a matrix-free BD window at a
//! *different* shape and prints the measured-vs-predicted table for all six
//! model phases plus the reciprocal-space total — a genuine out-of-sample
//! test of the paper's cost model on this host.

use hibd_bench::{columns_applied, flush_stdout, suspension, telemetry_window, Opts};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_linalg::LinearOperator;
use hibd_pme::PmeOperator;
use hibd_telemetry::{CalibrationSample, PerfModel};

/// One calibration shape: `reps` block applies of `s` columns on an
/// `n`-particle suspension.
fn calibration_sample(n: usize, s: usize, reps: usize, seed: u64) -> CalibrationSample {
    let sys = suspension(n, 0.2, seed);
    let params = hibd_pme::tune(n, 0.2, 1.0, 1.0, 1e-3).params;
    let mut op = PmeOperator::new(sys.positions(), params).expect("operator");
    let dim = 3 * n;
    let x: Vec<f64> =
        (0..dim * s).map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5).collect();
    let mut y = vec![0.0; dim * s];
    // Warm the scratch (allocation and page faults) outside the window.
    op.apply_multi(&x, &mut y, s);
    let ((), snap) = telemetry_window(|| {
        for _ in 0..reps {
            op.apply_multi(&x, &mut y, s);
        }
    });
    CalibrationSample::from_snapshot(
        n,
        params.mesh_dim,
        params.spline_order,
        (reps * s) as f64,
        1,
        &snap,
    )
}

fn main() {
    let opts = Opts::parse();
    let (cal_shapes, bd_n, bd_steps): (&[(usize, usize, usize)], usize, usize) = if opts.full {
        (&[(2000, 16, 4), (8000, 8, 2)], 20_000, 16)
    } else {
        (&[(300, 8, 3), (1000, 4, 2)], 2000, 8)
    };

    println!("# Section IV-D model: calibrate on block applies, predict an mf-BD run");
    let mut samples = Vec::new();
    for &(n, s, reps) in cal_shapes {
        let sample = calibration_sample(n, s, reps, opts.seed);
        println!(
            "# calibration shape: n = {n}, K = {}, p = {}, {} columns",
            sample.k, sample.p, sample.cols
        );
        samples.push(sample);
        flush_stdout();
    }
    let model = PerfModel::calibrate(&samples);

    // Held-out measurement: a matrix-free BD window at a different shape.
    let sys = suspension(bd_n, 0.2, opts.seed);
    let mut bd = MatrixFreeBd::new(sys, MatrixFreeConfig::default(), opts.seed).expect("driver");
    bd.add_force(RepulsiveHarmonic::default());
    let ((), snap) = telemetry_window(|| bd.run(bd_steps).expect("run"));
    let p = *bd.pme_params().expect("periodic run has PME params");
    let cols = columns_applied(&snap);
    println!(
        "# measured run: n = {bd_n}, K = {}, p = {}, {bd_steps} steps, {cols} columns",
        p.mesh_dim, p.spline_order
    );
    println!();
    let report = model.report(bd_n, p.mesh_dim, p.spline_order, cols, 1, &snap);
    print!("{}", report.to_text());
    println!();
    println!("# ratio = measured / predicted; the FFT and real-space rows test");
    println!("# shape transfer (constants fitted at other n, K), the bandwidth");
    println!("# rows additionally test the single-bandwidth assumption.");
}
