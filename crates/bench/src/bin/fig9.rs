//! Figure 9: hybrid (CPU + 2 Xeon Phi) vs CPU-only BD step time.
//!
//! **Hardware substitution** (see DESIGN.md): the accelerators are modeled
//! devices (Table I parameters) driven by the same Section IV-E scheduler —
//! alpha balancing and static column partitioning — that would drive real
//! offload. A genuinely executed overlapped apply on this host is measured
//! as a sanity anchor for the concurrency mechanism.

use hibd_bench::{flush_stdout, fmt_secs, suspension, table3_sizes, Opts};
use hibd_core::hybrid::HybridModel;
use hibd_pme::perf::Machine;
use hibd_pme::{tune, PmeOperator};

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let lambda = 16;
    let krylov_iters = 22; // paper: 19-25 iterations at these tolerances

    println!("# Figure 9: hybrid (2x KNC) vs CPU-only, modeled BD step times");
    println!(
        "{:>8} {:>6} | {:>12} {:>12} {:>9} | {:>14}",
        "n", "K", "cpu-only", "hybrid", "speedup", "cols (a,a,cpu)"
    );
    for n in table3_sizes(opts.full) {
        let params = tune(n, phi, 1.0, 1.0, 1e-3).params;
        let model =
            HybridModel::new(params, n, Machine::westmere(), vec![Machine::knc(), Machine::knc()]);
        let (cpu_only, hybrid) = model.step_times(lambda, krylov_iters);
        let (cols, _) = model.partition_block(lambda);
        println!(
            "{n:>8} {:>6} | {:>12} {:>12} {:>8.2}x | {:>14}",
            params.mesh_dim,
            fmt_secs(cpu_only),
            fmt_secs(hybrid),
            cpu_only / hybrid,
            format!("{cols:?}")
        );
        flush_stdout();
    }

    // Sanity anchor: genuinely overlapped real/reciprocal execution here.
    let n = if opts.full { 10_000 } else { 2000 };
    let params = tune(n, phi, 1.0, 1.0, 1e-3).params;
    let sys = suspension(n, phi, opts.seed);
    let mut op = PmeOperator::new(sys.positions(), params).expect("operator");
    let f: Vec<f64> = (0..3 * n).map(|i| ((i * 17 + 5) % 83) as f64 / 41.0 - 1.0).collect();
    let mut u = vec![0.0; 3 * n];
    let (t_real, t_recip) = op.apply_overlapped(&f, &mut u);
    println!();
    println!(
        "# overlapped-apply anchor at n = {n}: real {} || recip {} (concurrent branches)",
        fmt_secs(t_real),
        fmt_secs(t_recip)
    );
    println!("# Paper shape: ~2.5x average speedup, marginal for small systems and");
    println!("# greater than 3.5x for the largest configurations.");
}
