//! Figure 8: matrix-free BD time per step as a function of n.
//!
//! Each point runs one operator refresh (PME setup + block Krylov
//! displacements for lambda_RPY = 16 steps) plus the lambda propagation
//! steps, and reports amortized seconds per step. Full mode runs the
//! paper's range up to 500,000 particles (several hours on one core);
//! quick mode stops at 50,000 with the same scaling visible.

use hibd_bench::{
    flush_stdout, fmt_bytes, fmt_secs, step_seconds, suspension, telemetry_window, Opts,
};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_telemetry::{Counter, Phase};

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let sizes: Vec<usize> = if opts.full {
        vec![1000, 5000, 10_000, 50_000, 100_000, 200_000, 500_000]
    } else {
        vec![1000, 5000, 10_000, 20_000]
    };
    let lambda = 16;

    println!("# Figure 8: matrix-free BD time per step vs n (phi = {phi})");
    println!(
        "{:>8} {:>6} {:>3} | {:>10} {:>10} {:>10} {:>11} | {:>10} {:>6} {:>6}",
        "n", "K", "p", "setup", "krylov", "stepping", "t/step", "op mem", "iters", "ffts"
    );
    for &n in &sizes {
        let sys = suspension(n, phi, opts.seed);
        let mut mf = MatrixFreeBd::new(
            sys,
            MatrixFreeConfig { lambda_rpy: lambda, ..Default::default() },
            opts.seed,
        )
        .expect("driver");
        mf.add_force(RepulsiveHarmonic::default());
        // Each row is one fresh telemetry window; phase totals and workload
        // counters come from the shared recorder instead of ad-hoc sums.
        let ((), snap) = telemetry_window(|| mf.run(lambda).expect("run"));
        let p = *mf.pme_params().expect("periodic run has PME params");
        println!(
            "{n:>8} {:>6} {:>3} | {:>10} {:>10} {:>10} {:>11} | {:>10} {:>6} {:>6}",
            p.mesh_dim,
            p.spline_order,
            fmt_secs(snap.phase(Phase::PmeSetup).total_secs()),
            fmt_secs(snap.phase(Phase::Displacements).total_secs()),
            fmt_secs(snap.phase(Phase::Stepping).total_secs()),
            fmt_secs(step_seconds(&snap, lambda)),
            fmt_bytes(snap.counter(Counter::PmeScratchBytes) as usize),
            snap.counter(Counter::LanczosIterations),
            snap.counter(Counter::ForwardFfts) + snap.counter(Counter::InverseFfts)
        );
        flush_stdout();
    }
    println!();
    println!("# Paper shape: near-linear growth of time per step (O(n log n)),");
    println!("# memory O(n) — 500,000 particles are feasible where the dense");
    println!("# algorithm stops near 10,000.");
}
