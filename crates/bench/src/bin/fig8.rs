//! Figure 8: matrix-free BD time per step as a function of n.
//!
//! Each point runs one operator refresh (PME setup + block Krylov
//! displacements for lambda_RPY = 16 steps) plus the lambda propagation
//! steps, and reports amortized seconds per step. Full mode runs the
//! paper's range up to 500,000 particles (several hours on one core);
//! quick mode stops at 50,000 with the same scaling visible.

use hibd_bench::{flush_stdout, fmt_bytes, fmt_secs, suspension, Opts};
use hibd_core::forces::RepulsiveHarmonic;
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};

fn main() {
    let opts = Opts::parse();
    let phi = 0.2;
    let sizes: Vec<usize> = if opts.full {
        vec![1000, 5000, 10_000, 50_000, 100_000, 200_000, 500_000]
    } else {
        vec![1000, 5000, 10_000, 20_000]
    };
    let lambda = 16;

    println!("# Figure 8: matrix-free BD time per step vs n (phi = {phi})");
    println!(
        "{:>8} {:>6} {:>3} | {:>10} {:>10} {:>10} {:>11} | {:>10} {:>6}",
        "n", "K", "p", "setup", "krylov", "stepping", "t/step", "op mem", "iters"
    );
    for &n in &sizes {
        let sys = suspension(n, phi, opts.seed);
        let mut mf = MatrixFreeBd::new(
            sys,
            MatrixFreeConfig { lambda_rpy: lambda, ..Default::default() },
            opts.seed,
        )
        .expect("driver");
        mf.add_force(RepulsiveHarmonic::default());
        mf.run(lambda).expect("run");
        let t = *mf.timings();
        let p = *mf.pme_params();
        println!(
            "{n:>8} {:>6} {:>3} | {:>10} {:>10} {:>10} {:>11} | {:>10} {:>6}",
            p.mesh_dim,
            p.spline_order,
            fmt_secs(t.setup),
            fmt_secs(t.displacements),
            fmt_secs(t.stepping),
            fmt_secs(t.per_step()),
            fmt_bytes(mf.operator_memory_bytes()),
            t.krylov_iterations
        );
        flush_stdout();
    }
    println!();
    println!("# Paper shape: near-linear growth of time per step (O(n log n)),");
    println!("# memory O(n) — 500,000 particles are feasible where the dense");
    println!("# algorithm stops near 10,000.");
}
