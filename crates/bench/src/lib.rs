//! Shared helpers for the hibd experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index). All binaries accept:
//!
//! * `--quick` — scaled-down workloads (default on this 1-core host);
//! * `--full`  — paper-scale workloads (hours of wall clock);
//! * `--seed N` — RNG seed.

use hibd_core::diffusion::DiffusionEstimator;
use hibd_core::mf_bd::MatrixFreeBd;
use hibd_core::system::ParticleSystem;
use hibd_pme::perf::Machine;
use hibd_telemetry::{self as telemetry, Phase, Snapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Parsed command-line options shared by all harnesses.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    pub full: bool,
    pub seed: u64,
}

impl Opts {
    pub fn parse() -> Opts {
        let mut full = false;
        let mut seed = 2014;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => full = true,
                "--quick" => full = false,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed requires an integer");
                }
                "--help" | "-h" => {
                    eprintln!("options: --quick (default) | --full | --seed N");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        Opts { full, seed }
    }
}

/// Build the standard monodisperse test suspension.
pub fn suspension(n: usize, phi: f64, seed: u64) -> ParticleSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    ParticleSystem::random_suspension(n, phi, &mut rng)
}

/// Build the standard open-boundary test cluster (free-space RPY backends).
pub fn cluster(n: usize, phi: f64, seed: u64) -> ParticleSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    ParticleSystem::random_cluster_with(n, phi, 1.0, 1.0, &mut rng)
}

/// Paper Table III particle counts (quick subset vs full list).
pub fn table3_sizes(full: bool) -> Vec<usize> {
    if full {
        vec![
            500, 600, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 10_000, 20_000, 50_000,
            80_000, 100_000, 200_000, 300_000, 500_000,
        ]
    } else {
        vec![500, 1000, 2000, 5000, 10_000]
    }
}

/// One telemetry-recorded measurement window: resets the global recorder,
/// enables it, runs `f`, and returns its result together with the window's
/// snapshot. Replaces the per-harness `Instant` bookkeeping — every phase
/// and counter recorded inside `f` lands in one mergeable [`Snapshot`].
pub fn telemetry_window<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    telemetry::reset();
    telemetry::enable();
    let r = f();
    let snap = telemetry::snapshot();
    telemetry::disable();
    (r, snap)
}

/// Amortized seconds per BD step from a window covering `steps` steps:
/// operator setup + displacement sampling + force/propagation phases.
#[must_use]
pub fn step_seconds(snap: &Snapshot, steps: usize) -> f64 {
    let total = snap.phase(Phase::PmeSetup).total_secs()
        + snap.phase(Phase::Displacements).total_secs()
        + snap.phase(Phase::Stepping).total_secs();
    total / steps.max(1) as f64
}

/// Total mobility columns pushed through the reciprocal PME pipeline during
/// a window (each column costs exactly three forward mesh transforms).
#[must_use]
pub fn columns_applied(snap: &Snapshot) -> f64 {
    snap.counter(telemetry::Counter::ForwardFfts) as f64 / 3.0
}

/// Result of a telemetry-windowed diffusion run ([`run_bd_diffusion`]).
pub struct BdRun {
    /// Short-time self-diffusion coefficient.
    pub d: f64,
    /// Statistical error of `d`.
    pub d_err: f64,
    /// Amortized seconds per BD step (telemetry phase totals).
    pub seconds_per_step: f64,
    /// Cumulative Krylov iterations of the driver.
    pub krylov_iterations: usize,
    /// The measurement window's telemetry snapshot.
    pub snap: Snapshot,
}

/// The shared Table II / Figure 3 measurement loop: equilibrate `steps/10`,
/// then run `steps` recorded steps with diffusion sampling in a fresh
/// telemetry window.
pub fn run_bd_diffusion(bd: &mut MatrixFreeBd, steps: usize) -> BdRun {
    bd.run(steps / 10).expect("equilibration");
    let mut est = DiffusionEstimator::new(bd.config().dt, 8);
    let ((), snap) = telemetry_window(|| {
        est.record(bd.system().unwrapped());
        for _ in 0..steps {
            bd.step().expect("step");
            est.record(bd.system().unwrapped());
        }
    });
    let (d, d_err) = est.diffusion().expect("diffusion estimate");
    BdRun {
        d,
        d_err,
        seconds_per_step: step_seconds(&snap, steps),
        krylov_iterations: bd.timings().krylov_iterations,
        snap,
    }
}

/// Time a closure once (seconds).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

/// Time a closure with one warmup and `reps` measured repetitions; returns
/// the mean seconds.
pub fn time_mean(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Calibrate a [`Machine`] description for *this* host: STREAM-like triad
/// bandwidth and an achieved FFT rate, so the Section IV-D model can be
/// compared against measurements on the machine actually running.
pub fn calibrate_host() -> Machine {
    // Bandwidth: out-of-cache triad a[i] = b[i] + s*c[i].
    let n = 8 << 20; // 8 Mi doubles per array, 192 MiB total traffic per pass
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let t = time_mean(3, || {
        for ((x, y), z) in a.iter_mut().zip(&b).zip(&c) {
            *x = y + 0.5 * z;
        }
        std::hint::black_box(&a);
    });
    let bandwidth = (3 * n * 8) as f64 / t;

    // FFT rate: one 3D r2c transform at K = 64.
    let k = 64;
    let fft = hibd_fft::Fft3::new([k, k, k]).expect("smooth size");
    let real = vec![0.1f64; k * k * k];
    let mut spec = vec![hibd_fft::Complex64::ZERO; fft.spectrum_len()];
    let t_fft = time_mean(3, || {
        fft.forward(&real, &mut spec);
        std::hint::black_box(&spec);
    });
    let k3 = (k * k * k) as f64;
    let flops = 2.5 * k3 * k3.log2() / 2.0; // r2c at half the c2c flops
    let fft_flops = flops / t_fft;

    let mut inv_spec = spec.clone();
    let mut out = vec![0.0f64; k * k * k];
    let t_ifft = time_mean(3, || {
        inv_spec.copy_from_slice(&spec);
        fft.inverse(&mut inv_spec, &mut out);
        std::hint::black_box(&out);
    });
    let ifft_flops = flops / t_ifft;

    Machine {
        name: "this host (calibrated)",
        bandwidth,
        fft_flops,
        ifft_flops,
        fft_sat_k3: 32.0 * 32.0 * 32.0,
        peak_flops: 0.0,
    }
}

/// Flush stdout (harness rows must survive a timeout kill).
pub fn flush_stdout() {
    use std::io::Write;
    let _ = std::io::stdout().flush();
}

/// Format seconds for table output.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format bytes with binary units.
pub fn fmt_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1}{}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(123.0), "123");
        assert_eq!(fmt_secs(1.5), "1.50");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-5), "25.0us");
        assert_eq!(fmt_bytes(512), "512.0B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
    }

    #[test]
    fn suspension_builder_is_seeded() {
        let a = suspension(20, 0.1, 7);
        let b = suspension(20, 0.1, 7);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn table3_lists() {
        assert!(table3_sizes(false).len() < table3_sizes(true).len());
        assert!(table3_sizes(true).contains(&500_000));
    }

    #[test]
    fn timing_helpers_run() {
        let (v, t) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let m = time_mean(2, || {
            std::hint::black_box(1 + 1);
        });
        assert!(m >= 0.0);
    }
}
