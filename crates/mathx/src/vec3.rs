//! A minimal 3-vector used for particle positions, displacements and forces.
//!
//! Kept deliberately tiny (24 bytes, `Copy`) so that `Vec<Vec3>` is a dense
//! `3n` array with no indirection; the solver kernels reinterpret such arrays
//! as flat `&[f64]` slices where convenient.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component double-precision vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the direction of `self`. Returns `None` for a zero
    /// vector (within `1e-300` of zero) instead of producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn mul_elem(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Minimum-image displacement in a cubic periodic box of side `l`:
    /// every component is wrapped into `[-l/2, l/2)`.
    #[inline]
    pub fn min_image(self, l: f64) -> Vec3 {
        #[inline]
        fn wrap(v: f64, l: f64) -> f64 {
            v - l * (v / l).round()
        }
        Vec3::new(wrap(self.x, l), wrap(self.y, l), wrap(self.z, l))
    }

    /// Wrap a position into the primary box `[0, l)^3`.
    #[inline]
    pub fn wrap_into_box(self, l: f64) -> Vec3 {
        #[inline]
        fn wrap(v: f64, l: f64) -> f64 {
            let w = v - l * (v / l).floor();
            // Guard against `v/l` rounding such that `w == l` exactly.
            if w >= l {
                w - l
            } else {
                w
            }
        }
        Vec3::new(wrap(self.x, l), wrap(self.y, l), wrap(self.z, l))
    }

    /// Outer product `self * oᵀ` as a row-major 3x3 tensor.
    #[inline]
    pub fn outer(self, o: Vec3) -> [f64; 9] {
        [
            self.x * o.x,
            self.x * o.y,
            self.x * o.z,
            self.y * o.x,
            self.y * o.y,
            self.y * o.z,
            self.z * o.x,
            self.z * o.y,
            self.z * o.z,
        ]
    }

    /// View as a fixed-size array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Reinterpret a slice of `Vec3` as a flat `&[f64]` of length `3n`.
#[inline]
pub fn as_flat(v: &[Vec3]) -> &[f64] {
    // SAFETY: Vec3 is #[repr(C)] with exactly three f64 fields, so a slice of
    // n Vec3 has the same layout as a slice of 3n f64.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<f64>(), v.len() * 3) }
}

/// Reinterpret a mutable slice of `Vec3` as a flat `&mut [f64]`.
#[inline]
pub fn as_flat_mut(v: &mut [Vec3]) -> &mut [f64] {
    // SAFETY: see `as_flat`.
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<f64>(), v.len() * 3) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), -1.0 + 1.0 + 6.0);
    }

    #[test]
    fn norm_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm2(), 25.0);
        assert_eq!(v.norm(), 5.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn min_image_wraps_to_half_box() {
        let l = 10.0;
        let d = Vec3::new(9.0, -9.0, 4.9).min_image(l);
        assert!((d.x - -1.0).abs() < 1e-12);
        assert!((d.y - 1.0).abs() < 1e-12);
        assert!((d.z - 4.9).abs() < 1e-12);
        // Invariant: wrapped components are within [-l/2, l/2].
        for v in [-123.4, -5.0, 0.0, 5.0, 7.5, 123.4] {
            let w = Vec3::splat(v).min_image(l);
            assert!(w.x.abs() <= l / 2.0 + 1e-12);
        }
    }

    #[test]
    fn wrap_into_box_is_idempotent_and_in_range() {
        let l = 7.5;
        for v in [-20.0, -7.5, -0.1, 0.0, 3.0, 7.5, 7.4999999, 22.6] {
            let p = Vec3::splat(v).wrap_into_box(l);
            assert!(p.x >= 0.0 && p.x < l, "v={v} -> {}", p.x);
            let q = p.wrap_into_box(l);
            assert!((p - q).norm() < 1e-12);
        }
    }

    #[test]
    fn outer_product_layout() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let o = a.outer(b);
        assert_eq!(o[0], 4.0); // xx
        assert_eq!(o[1], 5.0); // xy
        assert_eq!(o[3], 8.0); // yx
        assert_eq!(o[8], 18.0); // zz
    }

    #[test]
    fn flat_views_alias_components() {
        let mut v = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        assert_eq!(as_flat(&v), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        as_flat_mut(&mut v)[4] = 50.0;
        assert_eq!(v[1].y, 50.0);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], 3.0);
        v[1] = -2.0;
        assert_eq!(v.y, -2.0);
    }
}
