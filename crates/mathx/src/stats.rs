//! Running statistics, compensated summation, and block averaging.
//!
//! Used by the diffusion-coefficient estimator (paper Eq. 12): mean-squared
//! displacements are averaged over many time origins, and block averaging
//! provides an error bar that is honest about the correlations between
//! successive configurations.

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (assumes independent samples).
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Kahan–Babuska compensated summation.
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    c: f64,
}

impl KahanSum {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.c += (self.sum - t) + x;
        } else {
            self.c += (x - t) + self.sum;
        }
        self.sum = t;
    }

    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.c
    }
}

/// Block-average a correlated time series: split into `nblocks` contiguous
/// blocks, average each, and return `(mean, standard error of block means)`.
///
/// Returns `(mean, 0.0)` when there are fewer than two full blocks.
pub fn block_average(series: &[f64], nblocks: usize) -> (f64, f64) {
    assert!(nblocks > 0, "nblocks must be positive");
    let total_mean =
        if series.is_empty() { 0.0 } else { series.iter().sum::<f64>() / series.len() as f64 };
    let bs = series.len() / nblocks;
    if bs == 0 || nblocks < 2 {
        return (total_mean, 0.0);
    }
    let mut stats = RunningStats::new();
    for b in 0..nblocks {
        let blk = &series[b * bs..(b + 1) * bs];
        stats.push(blk.iter().sum::<f64>() / bs as f64);
    }
    (stats.mean(), stats.std_err())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-14);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-13);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), a.mean());
    }

    #[test]
    fn kahan_beats_naive_on_ill_conditioned_sum() {
        let mut k = KahanSum::new();
        let mut naive = 0.0f64;
        // 1 + 1e16 - 1e16 repeated: naive drops the ones.
        for _ in 0..1000 {
            for x in [1.0, 1e16, -1e16] {
                k.add(x);
                naive += x;
            }
        }
        assert_eq!(k.value(), 1000.0);
        assert_ne!(naive, 1000.0);
    }

    #[test]
    fn block_average_basic() {
        let series: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { 3.0 }).collect();
        let (mean, err) = block_average(&series, 10);
        assert!((mean - 2.0).abs() < 1e-12);
        assert!(err < 1e-12); // every block has the same mean
    }

    #[test]
    fn block_average_degenerate_inputs() {
        assert_eq!(block_average(&[], 4), (0.0, 0.0));
        let (m, e) = block_average(&[5.0], 4);
        assert_eq!((m, e), (5.0, 0.0));
    }
}
