//! `hibd-mathx`: small numerical substrate shared by the whole workspace.
//!
//! The paper's reference implementation leans on Intel MKL (vector math,
//! random number generation) for these pieces; here everything is implemented
//! from scratch:
//!
//! * [`Vec3`] — a plain 3-vector with the periodic minimum-image helpers used
//!   throughout the Brownian-dynamics code;
//! * [`special`] — `erf`/`erfc` in double precision (series + continued
//!   fraction), needed by the Beenakker real-space Ewald kernels;
//! * [`gaussian`] — standard-normal sampling (Marsaglia polar method) on top
//!   of any [`rand::Rng`], used to generate the random vectors `z` of the
//!   Brownian displacement computation;
//! * [`stats`] — Welford running statistics, Kahan summation and block
//!   averaging for the diffusion-coefficient estimates.

pub mod gaussian;
pub mod special;
pub mod stats;
pub mod vec3;

pub use gaussian::{fill_standard_normal, standard_normal};
pub use special::{erf, erfc};
pub use stats::{block_average, KahanSum, RunningStats};
pub use vec3::Vec3;
