//! Error function and complementary error function in double precision.
//!
//! The Beenakker Ewald split of the Rotne–Prager–Yamakawa tensor needs
//! `erfc(xi * r)` in its real-space kernels; the Rust standard library does
//! not provide it, so it is implemented here:
//!
//! * `erf`: Maclaurin series for `|x| <= 3` (full double precision there,
//!   worst-case ~3 digits of cancellation at the boundary), `1 - erfc` above;
//! * `erfc`: backward-evaluated continued fraction for `|x| >= 1` (no
//!   cancellation), `1 - erf` series below.
//!
//! Accuracy is verified in the tests against high-precision reference values
//! and the identity `erf(x) + erfc(x) = 1`.

const FRAC_2_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// The error function `erf(x) = 2/sqrt(pi) * ∫_0^x exp(-t^2) dt`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax <= 3.0 {
        erf_series(x)
    } else {
        let e = 1.0 - erfc_cf(ax);
        if x > 0.0 {
            e
        } else {
            -e
        }
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed without cancellation for large positive `x`, where
/// `erfc(x) ~ exp(-x^2)/(x sqrt(pi))` underflows gracefully.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 1.0 {
        erfc_cf(x)
    } else if x <= -1.0 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf_series(x)
    }
}

/// Maclaurin series `erf(x) = 2/sqrt(pi) Σ (-1)^n x^(2n+1) / (n! (2n+1))`,
/// valid (fast, accurate) for `|x| <= 3`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^(2n+1) / n!
    let mut sum = x; // term / (2n+1) accumulated
    for n in 1..200 {
        term *= -x2 / n as f64;
        let add = term / (2.0 * n as f64 + 1.0);
        sum += add;
        if add.abs() <= sum.abs() * 1e-18 + 1e-300 {
            break;
        }
    }
    FRAC_2_SQRT_PI * sum
}

/// Continued fraction for `erfc(x)`, `x > 0`:
/// `erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + (1/2)/(x + (2/2)/(x + (3/2)/(x + ...))))`.
///
/// Evaluated backwards with a depth that over-converges for every `x >= 1`
/// (at the switch point `x = 1` the tail is below double rounding by depth
/// 200; convergence improves rapidly with `x`).
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    // Convergence depth scales like 1/x^2: ~200 terms suffice at the x = 1
    // switch point, ~26 at x = 3, a couple dozen beyond (verified against
    // high-precision references across the switch range in the tests).
    let depth = ((260.0 / (x * x)) as usize).clamp(24, 260);
    let mut f = 0.0;
    for i in (1..=depth).rev() {
        f = (i as f64 / 2.0) / (x + f);
    }
    let k = 1.0 / (x + f);
    (-x * x).exp() * k / std::f64::consts::PI.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values computed with mpmath (50 digits, rounded to f64).
    const REF: &[(f64, f64)] = &[
        (0.0, 0.0),
        (1e-8, 1.1283791670955126e-8),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (2.5, 0.999593047982555),
        (3.0, 0.9999779095030014),
        (3.5, 0.9999992569016276),
        (4.0, 0.9999999845827421),
        (5.0, 0.9999999999984626),
    ];

    const REF_ERFC_LARGE: &[(f64, f64)] = &[
        (3.0, 2.2090496998585445e-5),
        (4.0, 1.541725790028002e-8),
        (5.0, 1.537_459_794_428_035e-12),
        (6.0, 2.1519736712498913e-17),
        (8.0, 1.1224297172982928e-29),
        (10.0, 2.088_487_583_762_545e-45),
        (15.0, 7.212994172451207e-100),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in REF {
            let got = erf(x);
            let err = (got - want).abs() / want.abs().max(1e-30);
            assert!(
                err < 5e-14 || (got - want).abs() < 1e-300,
                "erf({x}) = {got}, want {want}, rel err {err:.3e}"
            );
        }
    }

    #[test]
    fn erfc_matches_reference_large_x() {
        for &(x, want) in REF_ERFC_LARGE {
            let got = erfc(x);
            let err = (got - want).abs() / want;
            assert!(err < 1e-13, "erfc({x}) = {got:e}, want {want:e}, rel err {err:.3e}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.9, 4.2, 7.7] {
            assert_eq!(erf(-x), -erf(x));
        }
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for i in 0..200 {
            let x = -6.0 + 0.06 * i as f64;
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 6e-14, "x={x}: erf+erfc={s}");
        }
    }

    #[test]
    fn erfc_negative_arguments() {
        assert!((erfc(-2.0) - (2.0 - erfc(2.0))).abs() < 1e-15);
        assert!((erfc(-5.0) - 2.0).abs() < 1e-11);
    }

    #[test]
    fn limits() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(30.0) - 1.0).abs() < 1e-16);
        assert_eq!(erfc(40.0), 0.0); // underflows to zero
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn continuity_at_branch_boundary() {
        // The implementation switches algorithms at |x| = 1. Across the
        // switch the two branches must agree up to the true local slope
        // erfc'(1) = -2/sqrt(pi) * e^{-1}.
        let h = 1e-9;
        let below = erfc(1.0 - h);
        let above = erfc(1.0 + h);
        let slope = -FRAC_2_SQRT_PI * (-1.0f64).exp();
        let jump = (above - below) - 2.0 * h * slope;
        assert!(jump.abs() < 1e-15, "branch mismatch {jump:e}");
    }
}
