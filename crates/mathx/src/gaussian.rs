//! Standard-normal sampling on top of any [`rand::Rng`].
//!
//! The Brownian displacement computation consumes blocks of i.i.d. standard
//! Gaussian vectors `z ~ N(0, I)` (Section II-C of the paper). We implement
//! the Marsaglia polar method, which needs no tables and no transcendental
//! functions beyond `ln`/`sqrt`.

use hibd_hot as hibd;
use rand::Rng;

/// Draw a single standard-normal variate.
///
/// Uses the Marsaglia polar method; one of the two generated variates is
/// discarded, which keeps the API stateless. Use [`fill_standard_normal`]
/// when filling whole vectors — it uses both.
#[hibd::hot]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return u * factor;
        }
    }
}

/// Fill `out` with i.i.d. standard-normal variates.
#[hibd::hot]
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut i = 0;
    while i + 1 < out.len() {
        let (a, b) = polar_pair(rng);
        out[i] = a;
        out[i + 1] = b;
        i += 2;
    }
    if i < out.len() {
        out[i] = standard_normal(rng);
    }
}

#[inline]
fn polar_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return (u * factor, v * factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::erf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut v = vec![0.0; n];
        fill_standard_normal(&mut rng, &mut v);
        let mean: f64 = v.iter().sum::<f64>() / n as f64;
        let var: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let skew: f64 = v.iter().map(|x| x.powi(3)).sum::<f64>() / n as f64;
        let kurt: f64 = v.iter().map(|x| x.powi(4)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skew {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn cdf_matches_erf_at_quartiles() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mut v = vec![0.0; n];
        fill_standard_normal(&mut rng, &mut v);
        for t in [-1.5f64, -0.5, 0.0, 0.5, 1.5] {
            let emp = v.iter().filter(|&&x| x <= t).count() as f64 / n as f64;
            let exact = 0.5 * (1.0 + erf(t / std::f64::consts::SQRT_2));
            assert!((emp - exact).abs() < 0.01, "t={t}: emp {emp} vs {exact}");
        }
    }

    #[test]
    fn odd_length_fill_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = vec![0.0; 7];
        fill_standard_normal(&mut rng, &mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        fill_standard_normal(&mut StdRng::seed_from_u64(42), &mut a);
        fill_standard_normal(&mut StdRng::seed_from_u64(42), &mut b);
        assert_eq!(a, b);
    }
}
