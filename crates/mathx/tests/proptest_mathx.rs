//! Property-based tests of the numerical utilities.

use hibd_mathx::{block_average, erf, erfc, KahanSum, RunningStats, Vec3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn erf_is_odd_and_bounded(x in -20.0f64..20.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((0.0..=2.0).contains(&erfc(x)));
    }

    #[test]
    fn erf_is_monotone(x in -5.0f64..5.0, d in 1e-6f64..0.5) {
        // Strictly monotone where the values are representably away from
        // the saturation limits +-1 (|x| < ~5.8 in double precision).
        prop_assert!(erf(x + d) > erf(x));
        prop_assert!(erfc(x + d) < erfc(x));
    }

    #[test]
    fn erf_is_weakly_monotone_everywhere(x in -30.0f64..30.0, d in 1e-6f64..2.0) {
        prop_assert!(erf(x + d) >= erf(x));
        prop_assert!(erfc(x + d) <= erfc(x));
    }

    #[test]
    fn erf_erfc_complementary(x in -10.0f64..10.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn min_image_is_shortest_representative(
        (x, y, z, l) in (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0, 1.0f64..20.0)
    ) {
        let v = Vec3::new(x, y, z);
        let m = v.min_image(l);
        // Components in [-l/2, l/2].
        for c in 0..3 {
            prop_assert!(m[c].abs() <= l / 2.0 + 1e-9);
            // Same residue class.
            let diff = (v[c] - m[c]) / l;
            prop_assert!((diff - diff.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_into_box_preserves_residue(
        (x, l) in (-100.0f64..100.0, 0.5f64..25.0)
    ) {
        let w = Vec3::splat(x).wrap_into_box(l);
        prop_assert!(w.x >= 0.0 && w.x < l);
        let diff = (x - w.x) / l;
        prop_assert!((diff - diff.round()).abs() < 1e-9);
    }

    #[test]
    fn running_stats_merge_equals_sequential(
        data in prop::collection::vec(-100.0f64..100.0, 2..60),
        split in 0usize..60,
    ) {
        let split = split.min(data.len());
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - all.variance()).abs() < 1e-7 * (1.0 + all.variance()));
    }

    #[test]
    fn kahan_matches_exact_rational_sums(data in prop::collection::vec(-1000i64..1000, 0..200)) {
        // Integer-valued doubles sum exactly; Kahan must agree.
        let mut k = KahanSum::new();
        let mut exact = 0i64;
        for &v in &data {
            k.add(v as f64);
            exact += v;
        }
        prop_assert_eq!(k.value(), exact as f64);
    }

    #[test]
    fn block_average_mean_is_series_mean_when_divisible(
        (blocks, per_block) in (2usize..8, 1usize..16),
        seed in 0u64..1000,
    ) {
        let n = blocks * per_block;
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(12345);
        let series: Vec<f64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(12345);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let (mean, err) = block_average(&series, blocks);
        let direct: f64 = series.iter().sum::<f64>() / n as f64;
        prop_assert!((mean - direct).abs() < 1e-12);
        prop_assert!(err >= 0.0);
    }
}
