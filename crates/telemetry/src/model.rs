//! The Section IV-D cost model with constants calibrated from recorded spans.
//!
//! The paper models each PME phase as either bandwidth-bound (spreading,
//! influence scaling, interpolation: a byte count over an effective memory
//! bandwidth) or throughput-bound (the two FFT sweeps: a flop count over an
//! effective FFT rate). `hibd_pme::perf` implements that model *a priori*
//! from quoted machine constants; this module fits the same constants from
//! telemetry spans instead, so measured-vs-predicted tables test the model's
//! *structure* (does one bandwidth number explain all three bandwidth-bound
//! phases?) rather than tautologically reproducing the measurement.
//!
//! Workloads per mobility column (`s` columns per block apply):
//!
//! - spreading:      `24 K^3 + 36 p^3 n` bytes
//! - forward FFT:    `3 * 2.5 K^3 log2(K^3)` flops
//! - influence:      `(8 + 2*48) K^3 / 2` bytes
//! - inverse FFT:    `3 * 2.5 K^3 log2(K^3)` flops
//! - interpolation:  `36 p^3 n` bytes
//! - real space:     `n` particle-columns (the calibrated rate absorbs the
//!   mean neighbor count and per-pair byte traffic)
//!
//! All workloads divide by the thread count; calibrating and predicting with
//! the same `threads` makes the constants absorb parallel efficiency.

use crate::stats::Snapshot;
use crate::Phase;

/// The six phases covered by the model, in pipeline order.
pub const MODEL_PHASES: [Phase; 6] = [
    Phase::Spreading,
    Phase::ForwardFft,
    Phase::Influence,
    Phase::InverseFft,
    Phase::Interpolation,
    Phase::RealSpace,
];

/// Per-phase workloads for `cols` mobility columns, in each phase's natural
/// unit (bytes, flops, particle-columns), divided by `threads`.
fn phase_work(n: usize, k: usize, p: usize, cols: f64, threads: usize) -> [f64; 6] {
    let k3 = (k * k * k) as f64;
    let p3n = (p * p * p * n) as f64;
    let th = threads.max(1) as f64;
    let fft = 3.0 * 2.5 * k3 * k3.log2();
    [
        cols * (24.0 * k3 + 36.0 * p3n) / th,
        cols * fft / th,
        cols * ((8.0 + 2.0 * 48.0) * k3 / 2.0) / th,
        cols * fft / th,
        cols * (36.0 * p3n) / th,
        cols * n as f64 / th,
    ]
}

/// One calibration observation: a shape, how many mobility columns were
/// pushed through it, and the measured per-phase seconds.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationSample {
    /// Particle count.
    pub n: usize,
    /// PME mesh dimension (cells per side).
    pub k: usize,
    /// B-spline interpolation order.
    pub p: usize,
    /// Total mobility columns applied while the sample was recorded
    /// (block applies of width `s` contribute `s` each).
    pub cols: f64,
    /// Worker threads active during the sample.
    pub threads: usize,
    /// Measured seconds for each of [`MODEL_PHASES`].
    pub seconds: [f64; 6],
}

impl CalibrationSample {
    /// Extract the model-phase totals from a telemetry snapshot.
    #[must_use]
    pub fn from_snapshot(
        n: usize,
        k: usize,
        p: usize,
        cols: f64,
        threads: usize,
        snap: &Snapshot,
    ) -> Self {
        let mut seconds = [0.0; 6];
        for (sec, ph) in seconds.iter_mut().zip(MODEL_PHASES) {
            *sec = snap.phase(ph).total_secs();
        }
        CalibrationSample { n, k, p, cols, threads, seconds }
    }
}

/// The calibrated Section IV-D performance model.
///
/// Four fitted constants cover six phases, so predictions are falsifiable:
/// deviations in the measured-vs-predicted [`Report`] show where the
/// single-bandwidth assumption breaks on the host machine.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerfModel {
    /// Effective memory bandwidth, bytes/s (spreading, influence, interp).
    pub bandwidth: f64,
    /// Effective forward-FFT throughput, flops/s.
    pub fft_rate: f64,
    /// Effective inverse-FFT throughput, flops/s.
    pub ifft_rate: f64,
    /// Real-space throughput, particle-columns/s.
    pub real_rate: f64,
}

/// Predicted seconds per phase for one block apply.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhasePrediction {
    /// Spreading seconds.
    pub spreading: f64,
    /// Forward FFT seconds (3 transforms).
    pub forward_fft: f64,
    /// Influence scaling seconds.
    pub influence: f64,
    /// Inverse FFT seconds (3 transforms).
    pub inverse_fft: f64,
    /// Interpolation seconds.
    pub interpolation: f64,
    /// Real-space apply seconds.
    pub real_space: f64,
}

impl PhasePrediction {
    /// Reciprocal-space total (everything except the real-space apply).
    #[must_use]
    pub fn recip_total(&self) -> f64 {
        self.spreading + self.forward_fft + self.influence + self.inverse_fft + self.interpolation
    }

    /// Whole-apply total.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.recip_total() + self.real_space
    }

    /// Per-phase values in [`MODEL_PHASES`] order.
    #[must_use]
    pub fn as_array(&self) -> [f64; 6] {
        [
            self.spreading,
            self.forward_fft,
            self.influence,
            self.inverse_fft,
            self.interpolation,
            self.real_space,
        ]
    }
}

fn rate_or_zero(work: f64, secs: f64) -> f64 {
    if secs > 0.0 && work > 0.0 {
        work / secs
    } else {
        0.0
    }
}

fn div_or_zero(work: f64, rate: f64) -> f64 {
    if rate > 0.0 {
        work / rate
    } else {
        0.0
    }
}

impl PerfModel {
    /// Fit the four machine constants from calibration samples by pooled
    /// least squares through the origin (equivalently: total workload over
    /// total measured time per constant).
    #[must_use]
    pub fn calibrate(samples: &[CalibrationSample]) -> PerfModel {
        let (mut bw_work, mut bw_secs) = (0.0, 0.0);
        let (mut fft_work, mut fft_secs) = (0.0, 0.0);
        let (mut ifft_work, mut ifft_secs) = (0.0, 0.0);
        let (mut real_work, mut real_secs) = (0.0, 0.0);
        for s in samples {
            let w = phase_work(s.n, s.k, s.p, s.cols, s.threads);
            bw_work += w[0] + w[2] + w[4];
            bw_secs += s.seconds[0] + s.seconds[2] + s.seconds[4];
            fft_work += w[1];
            fft_secs += s.seconds[1];
            ifft_work += w[3];
            ifft_secs += s.seconds[3];
            real_work += w[5];
            real_secs += s.seconds[5];
        }
        PerfModel {
            bandwidth: rate_or_zero(bw_work, bw_secs),
            fft_rate: rate_or_zero(fft_work, fft_secs),
            ifft_rate: rate_or_zero(ifft_work, ifft_secs),
            real_rate: rate_or_zero(real_work, real_secs),
        }
    }

    /// Predict per-phase seconds for one apply of `s` mobility columns on a
    /// system of `n` particles, mesh `K^3`, spline order `p`, using
    /// `threads` workers.
    #[must_use]
    pub fn predict(
        &self,
        n: usize,
        k: usize,
        p: usize,
        s: usize,
        threads: usize,
    ) -> PhasePrediction {
        let w = phase_work(n, k, p, s as f64, threads);
        PhasePrediction {
            spreading: div_or_zero(w[0], self.bandwidth),
            forward_fft: div_or_zero(w[1], self.fft_rate),
            influence: div_or_zero(w[2], self.bandwidth),
            inverse_fft: div_or_zero(w[3], self.ifft_rate),
            interpolation: div_or_zero(w[4], self.bandwidth),
            real_space: div_or_zero(w[5], self.real_rate),
        }
    }

    /// Build a measured-vs-predicted table for a recorded run: `cols` total
    /// mobility columns were applied at shape `(n, K, p)` with `threads`
    /// workers, and `snap` holds the measured spans.
    #[must_use]
    pub fn report(
        &self,
        n: usize,
        k: usize,
        p: usize,
        cols: f64,
        threads: usize,
        snap: &Snapshot,
    ) -> Report {
        let w = phase_work(n, k, p, cols, threads);
        let rates = [
            self.bandwidth,
            self.fft_rate,
            self.bandwidth,
            self.ifft_rate,
            self.bandwidth,
            self.real_rate,
        ];
        let mut rows = Vec::with_capacity(MODEL_PHASES.len() + 1);
        let (mut recip_meas, mut recip_pred) = (0.0, 0.0);
        for i in 0..MODEL_PHASES.len() {
            let phase = MODEL_PHASES[i];
            let measured_s = snap.phase(phase).total_secs();
            let predicted_s = div_or_zero(w[i], rates[i]);
            if phase != Phase::RealSpace {
                recip_meas += measured_s;
                recip_pred += predicted_s;
            }
            rows.push(ReportRow { name: phase.name(), measured_s, predicted_s });
        }
        rows.push(ReportRow {
            name: "recip_total",
            measured_s: recip_meas,
            predicted_s: recip_pred,
        });
        Report { model: *self, rows }
    }
}

/// One row of a measured-vs-predicted table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReportRow {
    /// Phase name (or the synthesized `recip_total`).
    pub name: &'static str,
    /// Measured seconds from the telemetry snapshot.
    pub measured_s: f64,
    /// Model-predicted seconds.
    pub predicted_s: f64,
}

/// A measured-vs-predicted table plus the calibrated constants behind it.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// The calibrated model used for the predictions.
    pub model: PerfModel,
    /// Rows for every model phase plus `recip_total`.
    pub rows: Vec<ReportRow>,
}

impl Report {
    /// Human-readable aligned table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "calibrated constants: bandwidth {:.2} GB/s, fft {:.2} GF/s, ifft {:.2} GF/s, real {:.3e} cols*n/s\n",
            self.model.bandwidth * 1e-9,
            self.model.fft_rate * 1e-9,
            self.model.ifft_rate * 1e-9,
            self.model.real_rate,
        ));
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>8}\n",
            "phase", "measured", "predicted", "ratio"
        ));
        for r in &self.rows {
            let ratio = if r.predicted_s > 0.0 { r.measured_s / r.predicted_s } else { f64::NAN };
            out.push_str(&format!(
                "{:<14} {:>10.4}ms {:>10.4}ms {:>8.3}\n",
                r.name,
                r.measured_s * 1e3,
                r.predicted_s * 1e3,
                ratio
            ));
        }
        out
    }

    /// JSON object: `{"model": {...}, "rows": [{...}, ...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"model\":{");
        out.push_str(&format!(
            "\"bandwidth_bytes_per_s\":{:e},\"fft_flops_per_s\":{:e},\"ifft_flops_per_s\":{:e},\"real_cols_n_per_s\":{:e}}},\"rows\":[",
            self.model.bandwidth, self.model.fft_rate, self.model.ifft_rate, self.model.real_rate
        ));
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":\"{}\",\"measured_s\":{:e},\"predicted_s\":{:e}}}",
                r.name, r.measured_s, r.predicted_s
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_sample(
        n: usize,
        k: usize,
        p: usize,
        cols: f64,
        model: &PerfModel,
    ) -> CalibrationSample {
        // Seconds generated from the model itself: calibration must recover
        // the constants exactly (single-parameter linear fits).
        let w = phase_work(n, k, p, cols, 1);
        CalibrationSample {
            n,
            k,
            p,
            cols,
            threads: 1,
            seconds: [
                w[0] / model.bandwidth,
                w[1] / model.fft_rate,
                w[2] / model.bandwidth,
                w[3] / model.ifft_rate,
                w[4] / model.bandwidth,
                w[5] / model.real_rate,
            ],
        }
    }

    #[test]
    fn calibration_recovers_planted_constants() {
        let truth =
            PerfModel { bandwidth: 12.5e9, fft_rate: 40.0e9, ifft_rate: 35.0e9, real_rate: 2.0e8 };
        let samples = [
            synthetic_sample(500, 32, 4, 64.0, &truth),
            synthetic_sample(2000, 64, 6, 16.0, &truth),
        ];
        let fit = PerfModel::calibrate(&samples);
        assert!((fit.bandwidth - truth.bandwidth).abs() / truth.bandwidth < 1e-12);
        assert!((fit.fft_rate - truth.fft_rate).abs() / truth.fft_rate < 1e-12);
        assert!((fit.ifft_rate - truth.ifft_rate).abs() / truth.ifft_rate < 1e-12);
        assert!((fit.real_rate - truth.real_rate).abs() / truth.real_rate < 1e-12);
    }

    #[test]
    fn prediction_scales_linearly_in_columns_and_inverse_in_threads() {
        let m = PerfModel { bandwidth: 1e10, fft_rate: 1e10, ifft_rate: 1e10, real_rate: 1e8 };
        let one = m.predict(1000, 64, 6, 1, 1);
        let eight = m.predict(1000, 64, 6, 8, 1);
        let eight_t4 = m.predict(1000, 64, 6, 8, 4);
        for ((a, b), c) in one.as_array().iter().zip(eight.as_array()).zip(eight_t4.as_array()) {
            assert!((b - 8.0 * a).abs() <= 1e-12 * b.abs());
            assert!((c - b / 4.0).abs() <= 1e-12 * b.abs());
        }
        assert!(one.total() > one.recip_total());
    }

    #[test]
    fn empty_calibration_predicts_zero() {
        let m = PerfModel::calibrate(&[]);
        let p = m.predict(100, 32, 4, 1, 1);
        assert_eq!(p.total(), 0.0);
    }

    #[test]
    fn report_rows_cover_all_model_phases() {
        let m = PerfModel { bandwidth: 1e10, fft_rate: 1e10, ifft_rate: 1e10, real_rate: 1e8 };
        let snap = crate::Snapshot::empty();
        let rep = m.report(100, 32, 4, 10.0, 1, &snap);
        assert_eq!(rep.rows.len(), 7);
        assert_eq!(rep.rows.last().unwrap().name, "recip_total");
        let text = rep.to_text();
        for ph in MODEL_PHASES {
            assert!(text.contains(ph.name()), "missing {} in report text", ph.name());
        }
        let parsed = crate::json::parse(&rep.to_json()).expect("report JSON parses");
        assert!(parsed.get("model").is_some());
        assert_eq!(parsed.get("rows").and_then(crate::json::Value::as_array).unwrap().len(), 7);
    }
}
