//! Pure aggregation types: per-phase statistics and whole-process snapshots.
//!
//! All fields are exact integers (u64 nanoseconds / counts), so merging is
//! associative, commutative, and order-independent across threads — the
//! property the proptests in `tests/merge_props.rs` pin down. Floating-point
//! views (`total_secs`, `mean_ns`) are derived on read only.

use crate::{Counter, Phase, NUM_COUNTERS, NUM_PHASES};

/// Number of log2 nanosecond histogram buckets. Bucket `b` holds durations
/// with bit length `b` (i.e. `2^(b-1) <= d < 2^b`; bucket 0 is `d == 0`),
/// saturating at the top bucket (~>= 1 s).
pub const NUM_BUCKETS: usize = 32;

/// Histogram bucket index for a duration in nanoseconds.
#[inline]
#[must_use]
pub fn bucket_of(d_ns: u64) -> usize {
    ((u64::BITS - d_ns.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Statistics for one phase: count, total, min/max, log2 histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds (`u64::MAX` while empty).
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
    /// Log2 duration histogram, see [`bucket_of`].
    pub hist: [u64; NUM_BUCKETS],
}

impl Default for PhaseStats {
    fn default() -> Self {
        Self::empty()
    }
}

impl PhaseStats {
    /// Stats with no spans recorded.
    #[must_use]
    pub const fn empty() -> Self {
        PhaseStats { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0, hist: [0; NUM_BUCKETS] }
    }

    /// Accumulate one span duration (pure mirror of the recorder's atomics).
    pub fn record(&mut self, d_ns: u64) {
        self.count += 1;
        self.total_ns += d_ns;
        self.min_ns = self.min_ns.min(d_ns);
        self.max_ns = self.max_ns.max(d_ns);
        self.hist[bucket_of(d_ns)] += 1;
    }

    /// Fold another stats block into this one. Exact and associative.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += *b;
        }
    }

    /// Total time in seconds.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }

    /// Mean span duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Aggregated statistics for every phase plus the workload counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-phase stats, indexed by `Phase as usize`.
    pub phases: [PhaseStats; NUM_PHASES],
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; NUM_COUNTERS],
}

impl Default for Snapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl Snapshot {
    /// A snapshot with nothing recorded.
    #[must_use]
    pub const fn empty() -> Self {
        Snapshot { phases: [PhaseStats::empty(); NUM_PHASES], counters: [0; NUM_COUNTERS] }
    }

    /// Stats for one phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        &self.phases[phase as usize]
    }

    /// Value of one counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Fold another snapshot into this one (gauges merge by max).
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
        for c in Counter::ALL {
            let i = c as usize;
            self.counters[i] = if c.is_gauge() {
                self.counters[i].max(other.counters[i])
            } else {
                self.counters[i] + other.counters[i]
            };
        }
    }

    /// Render the non-empty phase statistics as a JSON object, the shared
    /// encoding of the `hibd-profile-v1` and `hibd-serve-v1` documents.
    #[must_use]
    pub fn phases_to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let mut first = true;
        for ph in Phase::ALL {
            let st = self.phase(ph);
            if st.count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write!(
                out,
                "\"{}\":{{\"count\":{},\"total_s\":{:e},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{:e},\"hist\":[",
                ph.name(),
                st.count,
                st.total_secs(),
                st.min_ns,
                st.max_ns,
                st.mean_ns()
            )
            .unwrap();
            for (i, b) in st.hist.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "{b}").unwrap();
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }

    /// Render every counter as a JSON object (zero counters included, so
    /// consumers can rely on the full registry being present).
    #[must_use]
    pub fn counters_to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":{}", c.name(), self.counter(*c)).unwrap();
        }
        out.push('}');
        out
    }
}

/// A [`Snapshot`] tagged with a job / replica label, the unit the ensemble
/// profile aggregates ("r0", "r1", ..., "shared").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabeledSnapshot {
    /// Job label; snapshots with equal labels merge into one.
    pub label: String,
    /// The per-job statistics.
    pub snapshot: Snapshot,
}

impl LabeledSnapshot {
    /// An empty snapshot under `label`.
    #[must_use]
    pub fn empty(label: impl Into<String>) -> LabeledSnapshot {
        LabeledSnapshot { label: label.into(), snapshot: Snapshot::empty() }
    }
}

/// Fold `other` into `into`, merging label-wise: snapshots whose label is
/// already present merge via [`Snapshot::merge`] (exact, associative);
/// unseen labels are appended in order of first appearance. Because the
/// per-label fold is [`Snapshot::merge`] and the label set is a union,
/// grouping does not matter — the associativity proptests in
/// `tests/merge_props.rs` pin this down.
pub fn merge_labeled(into: &mut Vec<LabeledSnapshot>, other: &[LabeledSnapshot]) {
    for ls in other {
        if let Some(existing) = into.iter_mut().find(|e| e.label == ls.label) {
            existing.snapshot.merge(&ls.snapshot);
        } else {
            into.push(ls.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_matches_merge_of_singletons() {
        let durations = [0u64, 1, 5, 1_000, 123_456_789, u64::MAX / 2];
        let mut direct = PhaseStats::empty();
        let mut merged = PhaseStats::empty();
        for &d in &durations {
            direct.record(d);
            let mut single = PhaseStats::empty();
            single.record(d);
            merged.merge(&single);
        }
        assert_eq!(direct, merged);
        assert_eq!(direct.count, durations.len() as u64);
        assert_eq!(direct.min_ns, 0);
        assert_eq!(direct.max_ns, u64::MAX / 2);
    }
}
