//! Unified low-overhead phase tracing plus the Section IV-D performance
//! model as a live subsystem.
//!
//! The crate has three layers:
//!
//! 1. **Recorder** ([`span`], [`start`], [`timed`], [`incr`], [`gauge_max`]):
//!    a lock-free, allocation-free-at-steady-state span recorder. Each OS
//!    thread claims a static slot holding relaxed atomic per-phase stats and
//!    a small ring buffer of raw `(phase, t_start, t_stop)` spans. When
//!    recording is disabled (the default, toggled at runtime by [`enable`] /
//!    [`disable`], or compiled out by building without the `record` feature)
//!    the record path is a single relaxed load.
//! 2. **Aggregation** ([`snapshot`], [`Snapshot`], [`PhaseStats`]): merges
//!    all slots into per-phase count/total/min/max plus fixed-bucket log2
//!    nanosecond histograms, and the workload counters of [`Counter`].
//!    Merging is exact (u64 nanoseconds), associative and order-independent.
//! 3. **Model** ([`PerfModel`]): the paper's Section IV-D cost model with
//!    constants *calibrated from recorded spans* instead of quoted machine
//!    specs, and a measured-vs-predicted [`Report`] (text + JSON).
//!
//! Timing sites elsewhere in the workspace use [`start`]/[`Stopwatch::stop`]
//! (or the [`timed`] closure wrapper): the stopwatch always returns elapsed
//! seconds — feeding the existing per-instance `timings()` views — and
//! additionally records the span into the global recorder when enabled.
//! This is the sanctioned way to time `#[hibd::hot]` code; the `xtask` audit
//! rejects raw `Instant::now()` inside hot functions.

pub mod json;
mod model;
mod recorder;
mod stats;

pub use model::{CalibrationSample, PerfModel, PhasePrediction, Report, ReportRow, MODEL_PHASES};
pub use recorder::{disable, enable, enabled, gauge_max, incr, reset, snapshot, trace, SpanRecord};
pub use stats::{bucket_of, merge_labeled, LabeledSnapshot, PhaseStats, Snapshot, NUM_BUCKETS};

/// Phases of the simulation pipeline, a static registry.
///
/// The first six are the Section IV-D model phases (the PME apply); the rest
/// cover the Brownian-dynamics drivers so `MfTimings` / `EwaldBdTimings`
/// dedup onto the same recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Spreading forces onto the PME mesh (B-spline scatter).
    Spreading = 0,
    /// Forward real-to-complex FFTs (3 per apply, one per component).
    ForwardFft = 1,
    /// Influence-function scaling in reciprocal space.
    Influence = 2,
    /// Inverse complex-to-real FFTs (3 per apply).
    InverseFft = 3,
    /// Interpolating mesh velocities back to particles.
    Interpolation = 4,
    /// Real-space (near-field) sparse apply.
    RealSpace = 5,
    /// Matrix-free operator construction (tuning, spreading plan, BCSR).
    PmeSetup = 6,
    /// Brownian displacement sampling (Krylov / Chebyshev / PSE).
    Displacements = 7,
    /// Force evaluation + drift + position update.
    Stepping = 8,
    /// Dense Ewald mobility assembly.
    Assembly = 9,
    /// Dense Cholesky factorization.
    Cholesky = 10,
    /// Treecode octree construction (Morton sort, traversal lists, proxies).
    TreeBuild = 11,
    /// Treecode upward pass (P2M anterpolation + M2M transfers).
    Upward = 12,
    /// Treecode far field (source-proxy to target-particle kernel sums).
    FarField = 13,
    /// Treecode near field (direct two-branch RPY over leaf pairs).
    NearField = 14,
    /// FMM multipole-to-local translations (per-target-node GEMVs against
    /// the precomputed interaction-list tables).
    M2l = 15,
    /// FMM downward pass (L2L child shifts plus L2P leaf interpolation).
    Downward = 16,
}

/// Number of phases in the registry.
pub const NUM_PHASES: usize = 17;

impl Phase {
    /// Every phase, in `repr` order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Spreading,
        Phase::ForwardFft,
        Phase::Influence,
        Phase::InverseFft,
        Phase::Interpolation,
        Phase::RealSpace,
        Phase::PmeSetup,
        Phase::Displacements,
        Phase::Stepping,
        Phase::Assembly,
        Phase::Cholesky,
        Phase::TreeBuild,
        Phase::Upward,
        Phase::FarField,
        Phase::NearField,
        Phase::M2l,
        Phase::Downward,
    ];

    /// Stable snake_case name (used in JSON profiles).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Spreading => "spreading",
            Phase::ForwardFft => "forward_fft",
            Phase::Influence => "influence",
            Phase::InverseFft => "inverse_fft",
            Phase::Interpolation => "interpolation",
            Phase::RealSpace => "real_space",
            Phase::PmeSetup => "pme_setup",
            Phase::Displacements => "displacements",
            Phase::Stepping => "stepping",
            Phase::Assembly => "assembly",
            Phase::Cholesky => "cholesky",
            Phase::TreeBuild => "tree_build",
            Phase::Upward => "upward",
            Phase::FarField => "far_field",
            Phase::NearField => "near_field",
            Phase::M2l => "m2l",
            Phase::Downward => "downward",
        }
    }
}

/// Monotonic workload counters (and one gauge) aggregated next to the spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Forward FFT mesh transforms executed (batch calls count each mesh).
    ForwardFfts = 0,
    /// Inverse FFT mesh transforms executed.
    InverseFfts = 1,
    /// Lanczos iterations across all square-root solves.
    LanczosIterations = 2,
    /// Lanczos solver restarts (fresh Krylov spaces built).
    LanczosRestarts = 3,
    /// Neighbor-list (cell list / Verlet) rebuilds.
    NeighborRebuilds = 4,
    /// Peak PME operator scratch footprint in bytes (a gauge: merged by max).
    PmeScratchBytes = 5,
    /// Treecode traversal interactions evaluated per apply: direct
    /// particle-particle near-field pairs plus proxy-to-particle far-field
    /// kernel evaluations.
    TreeInteractions = 6,
    /// Engine plan-cache lookups that reused an existing `Arc<...Plans>`.
    PlanCacheHits = 7,
    /// Engine plan-cache lookups that had to build fresh plans.
    PlanCacheMisses = 8,
    /// FMM multipole-to-local translations applied (one per accepted
    /// target-node/source-node pair per apply).
    M2lTranslations = 9,
    /// Engine plan-cache entries evicted by the LRU capacity bound.
    PlanCacheEvictions = 10,
}

/// Number of counters in the registry.
pub const NUM_COUNTERS: usize = 11;

impl Counter {
    /// Every counter, in `repr` order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::ForwardFfts,
        Counter::InverseFfts,
        Counter::LanczosIterations,
        Counter::LanczosRestarts,
        Counter::NeighborRebuilds,
        Counter::PmeScratchBytes,
        Counter::TreeInteractions,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::M2lTranslations,
        Counter::PlanCacheEvictions,
    ];

    /// Stable snake_case name (used in JSON profiles).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Counter::ForwardFfts => "forward_ffts",
            Counter::InverseFfts => "inverse_ffts",
            Counter::LanczosIterations => "lanczos_iterations",
            Counter::LanczosRestarts => "lanczos_restarts",
            Counter::NeighborRebuilds => "neighbor_rebuilds",
            Counter::PmeScratchBytes => "pme_scratch_bytes",
            Counter::TreeInteractions => "tree_interactions",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::M2lTranslations => "m2l_translations",
            Counter::PlanCacheEvictions => "plan_cache_evictions",
        }
    }

    /// Gauges merge by `max`; plain counters merge by `+`.
    #[must_use]
    pub const fn is_gauge(self) -> bool {
        matches!(self, Counter::PmeScratchBytes)
    }
}

/// A scope guard recording a span on drop (only when recording is enabled).
///
/// Use [`Stopwatch`] instead when the caller also needs the elapsed seconds.
#[must_use = "dropping the span immediately records a zero-length interval"]
pub struct Span {
    phase: Phase,
    start_ns: u64,
    armed: bool,
}

/// Open a span for `phase`. When recording is disabled this does not even
/// read the clock.
#[inline]
pub fn span(phase: Phase) -> Span {
    if enabled() {
        Span { phase, start_ns: recorder::now_ns(), armed: true }
    } else {
        Span { phase, start_ns: 0, armed: false }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            recorder::record_span(self.phase, self.start_ns, recorder::now_ns());
        }
    }
}

/// A started phase timer that *always* measures (the clock is read whether or
/// not recording is enabled) so call sites can keep feeding their local
/// `timings()` views, and that additionally records the span globally when
/// recording is enabled.
#[must_use = "a stopwatch does nothing until stopped"]
pub struct Stopwatch {
    phase: Phase,
    start_ns: u64,
}

/// Start a [`Stopwatch`] for `phase`.
#[inline]
pub fn start(phase: Phase) -> Stopwatch {
    Stopwatch { phase, start_ns: recorder::now_ns() }
}

impl Stopwatch {
    /// Stop, record the span (when enabled), and return elapsed seconds.
    #[inline]
    pub fn stop(self) -> f64 {
        let stop_ns = recorder::now_ns();
        recorder::record_span(self.phase, self.start_ns, stop_ns);
        (stop_ns.saturating_sub(self.start_ns)) as f64 * 1e-9
    }
}

/// Run `f` under a [`Stopwatch`]; returns its result and the elapsed seconds.
#[inline]
pub fn timed<R>(phase: Phase, f: impl FnOnce() -> R) -> (R, f64) {
    let sw = start(phase);
    let r = f();
    let dt = sw.stop();
    (r, dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The recorder is process-global; serialize the tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn registry_names_are_unique_and_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.extend(Counter::ALL.iter().map(|c| c.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn stopwatch_feeds_snapshot_when_enabled() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        let sw = start(Phase::Spreading);
        std::hint::black_box(1 + 1);
        let dt = sw.stop();
        assert!(dt >= 0.0);
        incr(Counter::ForwardFfts, 3);
        gauge_max(Counter::PmeScratchBytes, 1024);
        gauge_max(Counter::PmeScratchBytes, 512);
        let snap = snapshot();
        disable();
        assert_eq!(snap.phase(Phase::Spreading).count, 1);
        assert_eq!(snap.counter(Counter::ForwardFfts), 3);
        assert_eq!(snap.counter(Counter::PmeScratchBytes), 1024);
        assert!(snap.phase(Phase::Spreading).total_ns >= snap.phase(Phase::Spreading).min_ns);
    }

    #[test]
    fn disabled_recording_leaves_no_trace() {
        let _g = LOCK.lock().unwrap();
        reset();
        disable();
        let (_, dt) = timed(Phase::Influence, || std::hint::black_box(42));
        assert!(dt >= 0.0);
        {
            let _s = span(Phase::Influence);
        }
        incr(Counter::InverseFfts, 7);
        let snap = snapshot();
        assert_eq!(snap.phase(Phase::Influence).count, 0);
        assert_eq!(snap.counter(Counter::InverseFfts), 0);
    }

    #[test]
    fn spans_show_up_in_trace() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        for _ in 0..4 {
            let _s = span(Phase::Cholesky);
        }
        let spans = trace();
        disable();
        let chol = spans.iter().filter(|s| s.phase == Phase::Cholesky).count();
        assert_eq!(chol, 4);
        for s in &spans {
            assert!(s.stop_ns >= s.start_ns);
        }
    }
}
