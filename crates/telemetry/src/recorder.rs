//! The lock-free span recorder: static per-thread slots of relaxed atomics.
//!
//! Design notes:
//!
//! - Every recording thread claims one of [`MAX_THREADS`] static slots on
//!   first use (a compare-exchange sweep) and releases it when the thread
//!   exits, so slots are recycled across short-lived threads (`thread::scope`
//!   inside `apply_overlapped`, test harness threads, ...). If more than
//!   `MAX_THREADS` threads record concurrently, the surplus threads share the
//!   last slot — all fields are atomics, so sharing is merely contended, not
//!   unsound.
//! - Claiming touches only `Cell`s in a `const`-initialized `thread_local!`
//!   and static atomics: the steady-state record path performs **zero heap
//!   allocation** (enforced by `tests/alloc_regression.rs`).
//! - All counters are relaxed: the recorder never synchronizes application
//!   memory, and [`snapshot`] taken concurrently with recording is only
//!   approximately consistent (exact once recording threads are quiescent,
//!   which is when harnesses read it).
//! - Raw spans additionally go into a per-slot ring buffer of
//!   `(phase, t_start, t_stop)` for trace export. A reader racing a writer
//!   may observe a torn (mixed-generation) record; [`trace`] is a debugging
//!   aid, the statistics above are the source of truth.

use crate::stats::{bucket_of, PhaseStats, Snapshot, NUM_BUCKETS};
use crate::{Counter, Phase, NUM_COUNTERS, NUM_PHASES};
use std::cell::Cell;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::OnceLock;
use std::time::Instant;

/// Maximum number of threads recording without slot sharing.
const MAX_THREADS: usize = 32;
/// Raw spans retained per slot (newest overwrite oldest).
const RING_CAP: usize = 64;

struct Slot {
    claimed: AtomicBool,
    count: [AtomicU64; NUM_PHASES],
    total_ns: [AtomicU64; NUM_PHASES],
    min_ns: [AtomicU64; NUM_PHASES],
    max_ns: [AtomicU64; NUM_PHASES],
    hist: [[AtomicU64; NUM_BUCKETS]; NUM_PHASES],
    counters: [AtomicU64; NUM_COUNTERS],
    ring_head: AtomicU64,
    /// `[phase as u64, start_ns, stop_ns]` triples.
    ring: [[AtomicU64; 3]; RING_CAP],
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as array-repeat seed
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const NS_MAX: AtomicU64 = AtomicU64::new(u64::MAX);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; NUM_BUCKETS] = [ZERO; NUM_BUCKETS];
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_TRIPLE: [AtomicU64; 3] = [ZERO; 3];
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    claimed: AtomicBool::new(false),
    count: [ZERO; NUM_PHASES],
    total_ns: [ZERO; NUM_PHASES],
    min_ns: [NS_MAX; NUM_PHASES],
    max_ns: [ZERO; NUM_PHASES],
    hist: [ZERO_ROW; NUM_PHASES],
    counters: [ZERO; NUM_COUNTERS],
    ring_head: ZERO,
    ring: [ZERO_TRIPLE; RING_CAP],
};

static SLOTS: [Slot; MAX_THREADS] = [EMPTY_SLOT; MAX_THREADS];

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn global recording on. Cheap; affects all threads.
pub fn enable() {
    #[cfg(feature = "record")]
    ENABLED.store(true, Relaxed);
}

/// Turn global recording off. [`Stopwatch`](crate::Stopwatch) timers keep
/// returning elapsed seconds; they just stop feeding the global recorder.
pub fn disable() {
    ENABLED.store(false, Relaxed);
}

/// Whether spans and counters are currently being recorded.
///
/// Without the `record` cargo feature this is a constant `false` and the
/// whole record path compiles away.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "record") && ENABLED.load(Relaxed)
}

/// Monotonic nanoseconds since the first telemetry call in the process.
///
/// Backed by a process-wide `Instant` epoch; does not allocate.
#[inline]
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Per-thread claimed slot index, plus whether this thread owns the claim
/// (overflow threads share the last slot without owning it).
struct SlotHandle {
    idx: Cell<usize>,
    owned: Cell<bool>,
}

impl Drop for SlotHandle {
    fn drop(&mut self) {
        let i = self.idx.get();
        if i < MAX_THREADS && self.owned.get() {
            SLOTS[i].claimed.store(false, Relaxed);
        }
    }
}

thread_local! {
    static HANDLE: SlotHandle = const { SlotHandle { idx: Cell::new(usize::MAX), owned: Cell::new(false) } };
}

fn claim_slot() -> (usize, bool) {
    for (i, s) in SLOTS.iter().enumerate() {
        if s.claimed.compare_exchange(false, true, Relaxed, Relaxed).is_ok() {
            return (i, true);
        }
    }
    (MAX_THREADS - 1, false)
}

/// Run `f` against this thread's slot. Skips silently if thread-local storage
/// is already being torn down (recording during thread exit).
#[inline]
fn with_slot(f: impl FnOnce(&'static Slot)) {
    let _ = HANDLE.try_with(|h| {
        let mut i = h.idx.get();
        if i == usize::MAX {
            let (idx, owned) = claim_slot();
            h.idx.set(idx);
            h.owned.set(owned);
            i = idx;
        }
        f(&SLOTS[i]);
    });
}

/// Record one completed span. No-op unless [`enabled`].
#[inline]
pub(crate) fn record_span(phase: Phase, start_ns: u64, stop_ns: u64) {
    if !enabled() {
        return;
    }
    let d = stop_ns.saturating_sub(start_ns);
    let p = phase as usize;
    with_slot(|s| {
        s.count[p].fetch_add(1, Relaxed);
        s.total_ns[p].fetch_add(d, Relaxed);
        s.min_ns[p].fetch_min(d, Relaxed);
        s.max_ns[p].fetch_max(d, Relaxed);
        s.hist[p][bucket_of(d)].fetch_add(1, Relaxed);
        let head = (s.ring_head.fetch_add(1, Relaxed) as usize) % RING_CAP;
        s.ring[head][0].store(phase as u64, Relaxed);
        s.ring[head][1].store(start_ns, Relaxed);
        s.ring[head][2].store(stop_ns, Relaxed);
    });
}

/// Add `by` to a counter. No-op unless [`enabled`].
#[inline]
pub fn incr(counter: Counter, by: u64) {
    if !enabled() {
        return;
    }
    with_slot(|s| {
        s.counters[counter as usize].fetch_add(by, Relaxed);
    });
}

/// Raise a gauge counter to at least `value`. No-op unless [`enabled`].
#[inline]
pub fn gauge_max(counter: Counter, value: u64) {
    if !enabled() {
        return;
    }
    with_slot(|s| {
        s.counters[counter as usize].fetch_max(value, Relaxed);
    });
}

/// Aggregate every slot into a [`Snapshot`]. Does not stop recording; take
/// snapshots at quiescent points for exact numbers.
#[must_use]
pub fn snapshot() -> Snapshot {
    let mut out = Snapshot::empty();
    for s in &SLOTS {
        for p in 0..NUM_PHASES {
            let mut ps = PhaseStats::empty();
            ps.count = s.count[p].load(Relaxed);
            ps.total_ns = s.total_ns[p].load(Relaxed);
            ps.min_ns = s.min_ns[p].load(Relaxed);
            ps.max_ns = s.max_ns[p].load(Relaxed);
            for (b, h) in ps.hist.iter_mut().zip(&s.hist[p]) {
                *b = h.load(Relaxed);
            }
            out.phases[p].merge(&ps);
        }
        for (c, slot_c) in Counter::ALL.iter().zip(&s.counters) {
            let v = slot_c.load(Relaxed);
            let agg = &mut out.counters[*c as usize];
            *agg = if c.is_gauge() { (*agg).max(v) } else { *agg + v };
        }
    }
    out
}

/// Zero all recorded statistics, counters, and ring buffers.
///
/// Call at a quiescent point; resetting concurrently with recording threads
/// can interleave with in-flight spans.
pub fn reset() {
    for s in &SLOTS {
        for p in 0..NUM_PHASES {
            s.count[p].store(0, Relaxed);
            s.total_ns[p].store(0, Relaxed);
            s.min_ns[p].store(u64::MAX, Relaxed);
            s.max_ns[p].store(0, Relaxed);
            for b in &s.hist[p] {
                b.store(0, Relaxed);
            }
        }
        for c in &s.counters {
            c.store(0, Relaxed);
        }
        s.ring_head.store(0, Relaxed);
        for r in &s.ring {
            for w in r {
                w.store(0, Relaxed);
            }
        }
    }
}

/// One raw span drained from the ring buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which phase the span belongs to.
    pub phase: Phase,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Stop, nanoseconds since the telemetry epoch.
    pub stop_ns: u64,
}

/// Collect the most recent raw spans (up to 64 per recording thread), sorted
/// by start time. Allocates; not for hot paths.
#[must_use]
pub fn trace() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for s in &SLOTS {
        let head = s.ring_head.load(Relaxed) as usize;
        let filled = head.min(RING_CAP);
        for r in s.ring.iter().take(filled) {
            let phase_idx = r[0].load(Relaxed) as usize;
            let start_ns = r[1].load(Relaxed);
            let stop_ns = r[2].load(Relaxed);
            if phase_idx < NUM_PHASES && stop_ns >= start_ns {
                out.push(SpanRecord { phase: Phase::ALL[phase_idx], start_ns, stop_ns });
            }
        }
    }
    out.sort_by_key(|s| (s.start_ns, s.stop_ns));
    out
}
