//! A minimal JSON parser, just enough to validate emitted profiles.
//!
//! The telemetry crate emits JSON by string building (profiles, reports);
//! this parser closes the loop so integration tests and `xtask
//! validate-profile` can check well-formedness and schema without external
//! dependencies. Strict on structure, permissive on numbers (anything Rust's
//! `f64::parse` accepts after the JSON grammar's first pass).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape a string for embedding in emitted JSON.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our profiles;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a maximal run of unescaped bytes in one go.
                let run = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[run..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let doc = r#"{"a": 1.5e3, "b": [true, false, null], "s": "x\"y\n", "o": {}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1500.0));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("o"), Some(&Value::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{\"a\":1} x", "\"abc", "nul", "1.2.3"] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode é";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
