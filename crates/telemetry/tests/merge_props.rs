//! Property tests: histogram/stat merge is associative, commutative, and
//! order-independent across threads. All state is exact u64 arithmetic, so
//! every equality below is bit-exact — no tolerances.

use hibd_telemetry::{Counter, Phase, PhaseStats, Snapshot, NUM_PHASES};
use proptest::prelude::*;

fn stats_from(durations: &[u64]) -> PhaseStats {
    let mut s = PhaseStats::empty();
    for &d in durations {
        s.record(d);
    }
    s
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in prop::collection::vec(any::<u64>(), 0..64),
                            ys in prop::collection::vec(any::<u64>(), 0..64)) {
        // Avoid count/total overflow: cap durations.
        let xs: Vec<u64> = xs.iter().map(|d| d % (1 << 40)).collect();
        let ys: Vec<u64> = ys.iter().map(|d| d % (1 << 40)).collect();
        let (a, b) = (stats_from(&xs), stats_from(&ys));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(xs in prop::collection::vec(any::<u64>(), 0..48),
                            ys in prop::collection::vec(any::<u64>(), 0..48),
                            zs in prop::collection::vec(any::<u64>(), 0..48)) {
        let f = |v: &[u64]| stats_from(&v.iter().map(|d| d % (1 << 40)).collect::<Vec<_>>());
        let (a, b, c) = (f(&xs), f(&ys), f(&zs));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn any_partition_merges_to_the_sequential_result(
        durations in prop::collection::vec(0u64..(1 << 40), 1..128),
        cuts in prop::collection::vec(any::<usize>(), 0..6),
    ) {
        let sequential = stats_from(&durations);

        let mut boundaries: Vec<usize> = cuts.iter().map(|i| i % (durations.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(durations.len());
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut merged = PhaseStats::empty();
        for w in boundaries.windows(2) {
            merged.merge(&stats_from(&durations[w[0]..w[1]]));
        }
        prop_assert_eq!(sequential, merged);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_maxes_gauges(a in any::<u32>(), b in any::<u32>()) {
        let mut x = Snapshot::empty();
        let mut y = Snapshot::empty();
        x.counters[Counter::LanczosIterations as usize] = u64::from(a);
        y.counters[Counter::LanczosIterations as usize] = u64::from(b);
        x.counters[Counter::PmeScratchBytes as usize] = u64::from(a);
        y.counters[Counter::PmeScratchBytes as usize] = u64::from(b);
        x.merge(&y);
        prop_assert_eq!(x.counter(Counter::LanczosIterations), u64::from(a) + u64::from(b));
        prop_assert_eq!(x.counter(Counter::PmeScratchBytes), u64::from(a).max(u64::from(b)));
    }
}

/// Order-independence with the real recorder: threads record interleaved
/// spans; the global snapshot must equal the deterministic per-thread sum.
#[test]
fn threaded_recording_is_order_independent() {
    const THREADS: usize = 4;
    const SPANS_PER_THREAD: usize = 200;

    hibd_telemetry::reset();
    hibd_telemetry::enable();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let phase = Phase::ALL[(t + i) % NUM_PHASES];
                    let sw = hibd_telemetry::start(phase);
                    std::hint::black_box(i * t);
                    let _ = sw.stop();
                    hibd_telemetry::incr(Counter::LanczosIterations, 1);
                }
            });
        }
    });
    let snap = hibd_telemetry::snapshot();
    hibd_telemetry::disable();

    let mut expected = [0u64; NUM_PHASES];
    for t in 0..THREADS {
        for i in 0..SPANS_PER_THREAD {
            expected[(t + i) % NUM_PHASES] += 1;
        }
    }
    for (p, want) in Phase::ALL.iter().zip(expected) {
        assert_eq!(snap.phase(*p).count, want, "span count for {}", p.name());
        let hist_total: u64 = snap.phase(*p).hist.iter().sum();
        assert_eq!(hist_total, want, "histogram mass for {}", p.name());
    }
    assert_eq!(snap.counter(Counter::LanczosIterations), (THREADS * SPANS_PER_THREAD) as u64);
}
