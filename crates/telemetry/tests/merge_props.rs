//! Property tests: histogram/stat merge is associative, commutative, and
//! order-independent across threads. All state is exact u64 arithmetic, so
//! every equality below is bit-exact — no tolerances.

use hibd_telemetry::{
    merge_labeled, Counter, LabeledSnapshot, Phase, PhaseStats, Snapshot, NUM_PHASES,
};
use proptest::prelude::*;

fn stats_from(durations: &[u64]) -> PhaseStats {
    let mut s = PhaseStats::empty();
    for &d in durations {
        s.record(d);
    }
    s
}

/// A labeled snapshot from a tiny alphabet of labels (so collisions are
/// common) with a few recorded spans and one counter.
fn labeled_from(label_idx: u8, durations: &[u64], count: u64) -> LabeledSnapshot {
    let mut ls = LabeledSnapshot::empty(format!("r{}", label_idx % 4));
    ls.snapshot.phases[Phase::Stepping as usize] = stats_from(durations);
    ls.snapshot.counters[Counter::LanczosIterations as usize] = count;
    ls
}

/// Canonical form: sort by label (merge order only affects label order).
fn canon(mut v: Vec<LabeledSnapshot>) -> Vec<LabeledSnapshot> {
    v.sort_by(|a, b| a.label.cmp(&b.label));
    v
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in prop::collection::vec(any::<u64>(), 0..64),
                            ys in prop::collection::vec(any::<u64>(), 0..64)) {
        // Avoid count/total overflow: cap durations.
        let xs: Vec<u64> = xs.iter().map(|d| d % (1 << 40)).collect();
        let ys: Vec<u64> = ys.iter().map(|d| d % (1 << 40)).collect();
        let (a, b) = (stats_from(&xs), stats_from(&ys));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(xs in prop::collection::vec(any::<u64>(), 0..48),
                            ys in prop::collection::vec(any::<u64>(), 0..48),
                            zs in prop::collection::vec(any::<u64>(), 0..48)) {
        let f = |v: &[u64]| stats_from(&v.iter().map(|d| d % (1 << 40)).collect::<Vec<_>>());
        let (a, b, c) = (f(&xs), f(&ys), f(&zs));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn any_partition_merges_to_the_sequential_result(
        durations in prop::collection::vec(0u64..(1 << 40), 1..128),
        cuts in prop::collection::vec(any::<usize>(), 0..6),
    ) {
        let sequential = stats_from(&durations);

        let mut boundaries: Vec<usize> = cuts.iter().map(|i| i % (durations.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(durations.len());
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut merged = PhaseStats::empty();
        for w in boundaries.windows(2) {
            merged.merge(&stats_from(&durations[w[0]..w[1]]));
        }
        prop_assert_eq!(sequential, merged);
    }

    #[test]
    fn labeled_merge_is_associative(
        groups in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(0u64..(1 << 40), 0..8), any::<u32>()),
            0..12,
        ),
        cut in any::<usize>(),
    ) {
        let all: Vec<LabeledSnapshot> =
            groups.iter().map(|(l, d, c)| labeled_from(*l, d, u64::from(*c))).collect();
        // Left fold one at a time...
        let mut one_by_one: Vec<LabeledSnapshot> = Vec::new();
        for ls in &all {
            merge_labeled(&mut one_by_one, std::slice::from_ref(ls));
        }
        // ...must equal merging two arbitrary halves that were themselves
        // label-merged.
        let k = if all.is_empty() { 0 } else { cut % (all.len() + 1) };
        let mut left: Vec<LabeledSnapshot> = Vec::new();
        merge_labeled(&mut left, &all[..k]);
        let mut right: Vec<LabeledSnapshot> = Vec::new();
        merge_labeled(&mut right, &all[k..]);
        let mut grouped = left;
        merge_labeled(&mut grouped, &right);
        prop_assert_eq!(canon(one_by_one), canon(grouped));
    }

    #[test]
    fn labeled_merge_keeps_labels_disjoint(
        groups in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(0u64..(1 << 40), 0..8), any::<u32>()),
            0..12,
        ),
    ) {
        let all: Vec<LabeledSnapshot> =
            groups.iter().map(|(l, d, c)| labeled_from(*l, d, u64::from(*c))).collect();
        let mut merged: Vec<LabeledSnapshot> = Vec::new();
        merge_labeled(&mut merged, &all);
        // One entry per distinct label, and per-label totals are the exact
        // sums of that label's inputs.
        let mut labels: Vec<&str> = merged.iter().map(|m| m.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        prop_assert_eq!(labels.len(), merged.len());
        for m in &merged {
            let want: u64 = all
                .iter()
                .filter(|ls| ls.label == m.label)
                .map(|ls| ls.snapshot.phase(Phase::Stepping).count)
                .sum();
            prop_assert_eq!(m.snapshot.phase(Phase::Stepping).count, want);
        }
    }

    #[test]
    fn snapshot_merge_sums_counters_and_maxes_gauges(a in any::<u32>(), b in any::<u32>()) {
        let mut x = Snapshot::empty();
        let mut y = Snapshot::empty();
        x.counters[Counter::LanczosIterations as usize] = u64::from(a);
        y.counters[Counter::LanczosIterations as usize] = u64::from(b);
        x.counters[Counter::PmeScratchBytes as usize] = u64::from(a);
        y.counters[Counter::PmeScratchBytes as usize] = u64::from(b);
        x.merge(&y);
        prop_assert_eq!(x.counter(Counter::LanczosIterations), u64::from(a) + u64::from(b));
        prop_assert_eq!(x.counter(Counter::PmeScratchBytes), u64::from(a).max(u64::from(b)));
    }
}

/// Order-independence with the real recorder: threads record interleaved
/// spans; the global snapshot must equal the deterministic per-thread sum.
#[test]
fn threaded_recording_is_order_independent() {
    const THREADS: usize = 4;
    const SPANS_PER_THREAD: usize = 200;

    // The recorder is process-global: hold the cross-test mutex while this
    // test resets/enables it.
    let _guard = hibd_alloctrack::exclusive();
    hibd_telemetry::reset();
    hibd_telemetry::enable();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let phase = Phase::ALL[(t + i) % NUM_PHASES];
                    let sw = hibd_telemetry::start(phase);
                    std::hint::black_box(i * t);
                    let _ = sw.stop();
                    hibd_telemetry::incr(Counter::LanczosIterations, 1);
                }
            });
        }
    });
    let snap = hibd_telemetry::snapshot();
    hibd_telemetry::disable();

    let mut expected = [0u64; NUM_PHASES];
    for t in 0..THREADS {
        for i in 0..SPANS_PER_THREAD {
            expected[(t + i) % NUM_PHASES] += 1;
        }
    }
    for (p, want) in Phase::ALL.iter().zip(expected) {
        assert_eq!(snap.phase(*p).count, want, "span count for {}", p.name());
        let hist_total: u64 = snap.phase(*p).hist.iter().sum();
        assert_eq!(hist_total, want, "histogram mass for {}", p.name());
    }
    assert_eq!(snap.counter(Counter::LanczosIterations), (THREADS * SPANS_PER_THREAD) as u64);
}
