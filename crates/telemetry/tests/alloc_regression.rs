//! Allocation and overhead regression tests for the span recorder.
//!
//! ISSUE 4 acceptance: the recorder must be heap-quiet at steady state (it
//! lives inside `#[hibd::hot]` kernels, next to code whose own allocation
//! freedom is machine-checked), and the disabled path must cost ~nothing.

use hibd_alloctrack::{exclusive, measure};
use hibd_telemetry::{Counter, Phase};

hibd_alloctrack::install!();

#[test]
fn recording_is_heap_quiet_at_steady_state() {
    let _guard = exclusive();
    hibd_telemetry::reset();
    hibd_telemetry::enable();

    // Warm-up: claim this thread's slot and initialize the epoch clock.
    for _ in 0..64 {
        let sw = hibd_telemetry::start(Phase::Spreading);
        std::hint::black_box(());
        let _ = sw.stop();
    }

    let (m, ()) = measure(|| {
        for i in 0..10_000u64 {
            let sw = hibd_telemetry::start(Phase::ALL[(i % 11) as usize]);
            std::hint::black_box(i);
            let _ = sw.stop();
            {
                let _span = hibd_telemetry::span(Phase::Influence);
            }
            hibd_telemetry::incr(Counter::ForwardFfts, 3);
            hibd_telemetry::gauge_max(Counter::PmeScratchBytes, i);
        }
        // Snapshot aggregation is array-valued and heap-free too.
        let snap = hibd_telemetry::snapshot();
        std::hint::black_box(&snap);
    });
    hibd_telemetry::disable();

    assert_eq!(m.alloc_calls, 0, "recorder allocated at steady state: {m:?}");
    assert_eq!(m.net_bytes, 0, "recorder grew the heap at steady state: {m:?}");
}

#[test]
fn disabled_recording_is_heap_quiet_and_near_free() {
    let _guard = exclusive();
    hibd_telemetry::disable();
    hibd_telemetry::reset();

    // Initialize the epoch clock outside the measured window.
    let warm = hibd_telemetry::start(Phase::Stepping);
    let _ = warm.stop();

    // The allocation counters are process-global, so another thread (e.g.
    // the libtest coordinator printing a result) can dirty a window. A
    // clean recorder produces a clean attempt almost immediately; a real
    // regression allocates in *every* attempt, so retrying is sound.
    const ITERS: u64 = 1_000_000;
    const ATTEMPTS: usize = 5;
    let before = hibd_telemetry::snapshot();
    let mut best_per_iter_ns = f64::INFINITY;
    let mut last = None;
    for _ in 0..ATTEMPTS {
        let (m, elapsed) = measure(|| {
            let t0 = std::time::Instant::now();
            for i in 0..ITERS {
                let _span = hibd_telemetry::span(Phase::RealSpace);
                hibd_telemetry::incr(Counter::InverseFfts, i);
            }
            t0.elapsed()
        });
        best_per_iter_ns = best_per_iter_ns.min(elapsed.as_nanos() as f64 / ITERS as f64);
        last = Some(m);
        if m.alloc_calls == 0 && m.net_bytes == 0 {
            break;
        }
    }
    let after = hibd_telemetry::snapshot();

    let m = last.expect("at least one attempt");
    assert_eq!(m.alloc_calls, 0, "disabled path allocated in every attempt: {m:?}");
    assert_eq!(m.net_bytes, 0);
    assert_eq!(before, after, "disabled recording mutated state");
    // "Costs ~nothing": a span + a counter while disabled is two relaxed
    // loads. Allow a generous 200 ns/iter so the bound holds on loaded CI
    // machines while still catching an accidental clock read or slot claim.
    assert!(best_per_iter_ns < 200.0, "disabled span cost {best_per_iter_ns:.1} ns/iter");
}
