//! `hibd-linalg`: dense linear algebra for the BD solvers.
//!
//! The paper uses Intel MKL for `DGEMM`, `DGEMV`, Cholesky factorization and
//! the small dense eigenproblems inside the Krylov method; this crate
//! implements the required subset from scratch:
//!
//! * [`DMat`] — row-major dense matrix with (parallel) matvec and GEMM;
//! * [`chol`] — Cholesky factorization `M = L L^T` and triangular products /
//!   solves (the conventional Brownian-displacement path, Algorithm 1);
//! * [`qr`] — thin QR of tall skinny blocks (block Lanczos orthogonalizes
//!   `n x s` panels every iteration);
//! * [`eig`] — cyclic Jacobi eigensolver for small symmetric matrices and an
//!   implicit-shift QL solver for symmetric tridiagonals, plus the matrix
//!   square roots `f(T) = T^{1/2}` that the Krylov displacement method needs;
//! * [`op`] — the [`LinearOperator`] abstraction through
//!   which the Krylov solver consumes either a dense mobility matrix or the
//!   matrix-free PME operator.

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels

pub mod chol;
pub mod dmat;
pub mod eig;
pub mod op;
pub mod qr;

pub use chol::CholeskyFactor;
pub use dmat::DMat;
pub use eig::{sym_eig, sym_sqrt_times_block, tridiag_eig};
pub use op::{DenseOp, LinearOperator};
pub use qr::thin_qr;
