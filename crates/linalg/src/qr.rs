//! Thin QR factorization of tall skinny panels.
//!
//! Block Lanczos (paper Section III-B, ref. \[8\]) re-orthogonalizes an
//! `n x s` panel every iteration (`s = lambda_RPY` is small, 8–32). Modified
//! Gram–Schmidt with one re-orthogonalization pass is numerically adequate at
//! these panel widths and trivially parallel over the long dimension.

use crate::dmat::{dot, DMat};

/// Result of a thin QR: `A = Q R` with `Q` `n x s` orthonormal columns and
/// `R` `s x s` upper triangular.
#[derive(Clone, Debug)]
pub struct ThinQr {
    pub q: DMat,
    pub r: DMat,
    /// Columns whose norm collapsed below the breakdown tolerance; their `Q`
    /// columns were replaced by zeros and `R` diagonal by 0. A nonempty list
    /// signals (benign) Lanczos breakdown.
    pub deficient: Vec<usize>,
}

/// Factor a tall skinny `n x s` panel (`a` row-major, `n >= s`).
///
/// Uses modified Gram–Schmidt with a second orthogonalization pass
/// ("twice is enough").
pub fn thin_qr(a: &DMat) -> ThinQr {
    let n = a.nrows();
    let s = a.ncols();
    assert!(n >= s, "panel must be tall: {n} x {s}");
    // Work on columns: copy into column-major scratch.
    let mut cols: Vec<Vec<f64>> = (0..s).map(|j| (0..n).map(|i| a[(i, j)]).collect()).collect();
    let mut r = DMat::zeros(s, s);
    let mut deficient = Vec::new();

    let scale = cols
        .iter()
        .map(|c| c.iter().map(|v| v * v).sum::<f64>().sqrt())
        .fold(0.0f64, f64::max)
        .max(1e-300);

    for j in 0..s {
        // Two MGS passes against the already-finished columns.
        for _pass in 0..2 {
            for k in 0..j {
                let proj = dot_vec(&cols[k], &cols[j]);
                r[(k, j)] += proj;
                // cols[j] -= proj * cols[k]; split borrows by index math.
                let (left, right) = cols.split_at_mut(j);
                let qk = &left[k];
                let cj = &mut right[0];
                for (x, qv) in cj.iter_mut().zip(qk) {
                    *x -= proj * qv;
                }
            }
        }
        let norm = cols[j].iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= 1e-14 * scale {
            deficient.push(j);
            r[(j, j)] = 0.0;
            for v in &mut cols[j] {
                *v = 0.0;
            }
        } else {
            r[(j, j)] = norm;
            for v in &mut cols[j] {
                *v /= norm;
            }
        }
    }

    let q = DMat::from_fn(n, s, |i, j| cols[j][i]);
    ThinQr { q, r, deficient }
}

fn dot_vec(a: &[f64], b: &[f64]) -> f64 {
    dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_panel(n: usize, s: usize, seed: u64) -> DMat {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        DMat::from_fn(n, s, |_, _| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    #[test]
    fn qr_reconstructs_panel() {
        for (n, s) in [(10usize, 3usize), (50, 8), (7, 7), (100, 16)] {
            let a = random_panel(n, s, (n + s) as u64);
            let f = thin_qr(&a);
            assert!(f.deficient.is_empty());
            let qr = f.q.matmul(&f.r);
            assert!(qr.max_abs_diff(&a) < 1e-12, "({n},{s}): {}", qr.max_abs_diff(&a));
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = random_panel(40, 10, 5);
        let f = thin_qr(&a);
        let gram = f.q.tr_matmul(&f.q);
        let eye = DMat::identity(10);
        assert!(gram.max_abs_diff(&eye) < 1e-13);
    }

    #[test]
    fn r_is_upper_triangular_with_nonnegative_diagonal() {
        let a = random_panel(20, 6, 9);
        let f = thin_qr(&a);
        for i in 0..6 {
            assert!(f.r[(i, i)] >= 0.0);
            for j in 0..i {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn detects_rank_deficiency() {
        // Third column = sum of the first two.
        let mut a = random_panel(30, 3, 1);
        for i in 0..30 {
            a[(i, 2)] = a[(i, 0)] + a[(i, 1)];
        }
        let f = thin_qr(&a);
        assert_eq!(f.deficient, vec![2]);
        // Q's surviving columns are still orthonormal and reconstruct A.
        let qr = f.q.matmul(&f.r);
        assert!(qr.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn already_orthogonal_input_is_fixed_point() {
        let n = 12;
        let a = DMat::identity(n);
        let f = thin_qr(&a);
        assert!(f.q.max_abs_diff(&DMat::identity(n)) < 1e-15);
        assert!(f.r.max_abs_diff(&DMat::identity(n)) < 1e-15);
    }

    #[test]
    fn severely_ill_conditioned_panel_stays_orthogonal() {
        // Nearly parallel columns stress MGS; the second pass must rescue
        // orthogonality.
        let n = 50;
        let base = random_panel(n, 1, 2);
        let mut a = DMat::zeros(n, 3);
        let eps = 1e-9;
        let pert1 = random_panel(n, 1, 3);
        let pert2 = random_panel(n, 1, 4);
        for i in 0..n {
            a[(i, 0)] = base[(i, 0)];
            a[(i, 1)] = base[(i, 0)] + eps * pert1[(i, 0)];
            a[(i, 2)] = base[(i, 0)] - eps * pert2[(i, 0)];
        }
        let f = thin_qr(&a);
        let gram = f.q.tr_matmul(&f.q);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((gram[(i, j)] - want).abs() < 1e-10, "gram[{i},{j}] = {}", gram[(i, j)]);
            }
        }
    }
}
