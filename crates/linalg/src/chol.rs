//! Cholesky factorization — the conventional Brownian-displacement path.
//!
//! Algorithm 1 of the paper computes `M = S S^T` and draws correlated
//! displacements as `d = sqrt(2 kB T dt) S z`. This module provides the
//! factorization, the triangular product `S z` (single and blocked), and
//! triangular solves (used by tests to verify the factor).

use crate::dmat::{dot, DMat};
use rayon::prelude::*;

/// Error for non-SPD inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which the factorization broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `M = L L^T`.
#[derive(Clone, Debug)]
pub struct CholeskyFactor {
    l: DMat,
}

impl CholeskyFactor {
    /// Factorize a symmetric positive definite matrix (only the lower
    /// triangle of `m` is read).
    pub fn new(m: &DMat) -> Result<CholeskyFactor, NotPositiveDefinite> {
        assert_eq!(m.nrows(), m.ncols(), "matrix must be square");
        let n = m.nrows();
        let mut l = DMat::zeros(n, n);
        for j in 0..n {
            // Diagonal pivot.
            let ljj2 = m[(j, j)] - dot(&l.row(j)[..j], &l.row(j)[..j]);
            if ljj2 <= 0.0 || !ljj2.is_finite() {
                return Err(NotPositiveDefinite { pivot: j });
            }
            let ljj = ljj2.sqrt();
            l[(j, j)] = ljj;
            // Column update below the pivot, parallel over rows.
            let (done, rest) = l.as_mut_slice().split_at_mut((j + 1) * n);
            let ljrow = &done[j * n..j * n + j];
            rest.par_chunks_mut(n).enumerate().for_each(|(off, lrow)| {
                let i = j + 1 + off;
                let lij = (m[(i, j)] - dot(&lrow[..j], ljrow)) / ljj;
                lrow[j] = lij;
            });
        }
        Ok(CholeskyFactor { l })
    }

    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &DMat {
        &self.l
    }

    /// `y = L x` (the sampling transform).
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            *yi = dot(&self.l.row(i)[..=i], &x[..=i]);
        });
    }

    /// `Y = L X` for `X` row-major `[n][s]` — draws `s` correlated
    /// displacement vectors at once (Algorithm 1, line 7).
    pub fn mul_multi(&self, x: &[f64], y: &mut [f64], s: usize) {
        let n = self.dim();
        assert_eq!(x.len(), n * s);
        assert_eq!(y.len(), n * s);
        y.par_chunks_mut(s).enumerate().for_each(|(i, yrow)| {
            yrow.fill(0.0);
            for (k, lik) in self.l.row(i)[..=i].iter().enumerate() {
                if *lik != 0.0 {
                    let xrow = &x[k * s..(k + 1) * s];
                    for (o, xv) in yrow.iter_mut().zip(xrow) {
                        *o += lik * xv;
                    }
                }
            }
        });
    }

    /// Solve `L z = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64], z: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n);
        assert_eq!(z.len(), n);
        for i in 0..n {
            let s = dot(&self.l.row(i)[..i], &z[..i]);
            z[i] = (b[i] - s) / self.l[(i, i)];
        }
    }

    /// Solve `M x = b` via `L L^T x = b`.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.dim();
        let mut z = vec![0.0; n];
        self.solve_lower(b, &mut z);
        // Back substitution with L^T.
        for i in (0..n).rev() {
            let mut s = z[i];
            for k in i + 1..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
    }

    /// Reconstruct `L L^T` (tests).
    pub fn reconstruct(&self) -> DMat {
        let lt = self.l.transpose();
        self.l.matmul(&lt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random SPD matrix `A = B B^T + n I`.
    fn random_spd(n: usize, seed: u64) -> DMat {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = DMat::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        for n in [1usize, 2, 5, 20, 50] {
            let a = random_spd(n, n as u64);
            let f = CholeskyFactor::new(&a).unwrap();
            assert!(f.reconstruct().max_abs_diff(&a) < 1e-10 * n as f64, "n={n}");
            // L is lower triangular with positive diagonal.
            for i in 0..n {
                assert!(f.l()[(i, i)] > 0.0);
                for j in i + 1..n {
                    assert_eq!(f.l()[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn known_3x3_factor() {
        // Classic example: A = [[4,12,-16],[12,37,-43],[-16,-43,98]]
        // has L = [[2,0,0],[6,1,0],[-8,5,3]].
        let a = DMat::from_vec(3, 3, vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0]);
        let f = CholeskyFactor::new(&a).unwrap();
        let want = [2.0, 0.0, 0.0, 6.0, 1.0, 0.0, -8.0, 5.0, 3.0];
        for (got, want) in f.l().as_slice().iter().zip(&want) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        let err = CholeskyFactor::new(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn mul_vec_matches_dense_triangular_product() {
        let a = random_spd(12, 3);
        let f = CholeskyFactor::new(&a).unwrap();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.77).sin()).collect();
        let mut y = vec![0.0; 12];
        f.mul_vec(&x, &mut y);
        let mut want = vec![0.0; 12];
        f.l().mul_vec(&x, &mut want);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn mul_multi_matches_mul_vec() {
        let a = random_spd(9, 8);
        let f = CholeskyFactor::new(&a).unwrap();
        let s = 4;
        let x: Vec<f64> = (0..9 * s).map(|i| (i as f64 * 0.19).cos()).collect();
        let mut y = vec![0.0; 9 * s];
        f.mul_multi(&x, &mut y, s);
        for col in 0..s {
            let xc: Vec<f64> = (0..9).map(|r| x[r * s + col]).collect();
            let mut yc = vec![0.0; 9];
            f.mul_vec(&xc, &mut yc);
            for r in 0..9 {
                assert!((y[r * s + col] - yc[r]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn solve_inverts_the_matrix() {
        let a = random_spd(15, 5);
        let f = CholeskyFactor::new(&a).unwrap();
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64 * 1.3).sin()).collect();
        let mut b = vec![0.0; 15];
        a.mul_vec(&x_true, &mut b);
        let mut x = vec![0.0; 15];
        f.solve(&b, &mut x);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_covariance_is_m() {
        // Statistical check: cov(L z) = L L^T = M for z ~ N(0, I).
        let n = 4;
        let a = random_spd(n, 11);
        let f = CholeskyFactor::new(&a).unwrap();
        let samples = 200_000;
        let mut cov = DMat::zeros(n, n);
        let mut state = 777u64;
        let mut next_gauss = move || {
            // Sum of 12 uniforms minus 6: near-Gaussian, adequate here.
            let mut s = 0.0;
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            s - 6.0
        };
        let mut z = vec![0.0; n];
        let mut d = vec![0.0; n];
        for _ in 0..samples {
            for zi in &mut z {
                *zi = next_gauss();
            }
            f.mul_vec(&z, &mut d);
            for i in 0..n {
                for j in 0..n {
                    cov[(i, j)] += d[i] * d[j];
                }
            }
        }
        for v in cov.as_mut_slice() {
            *v /= samples as f64;
        }
        let scale = a.fro_norm();
        assert!(cov.max_abs_diff(&a) < 0.02 * scale, "cov err {}", cov.max_abs_diff(&a));
    }
}
