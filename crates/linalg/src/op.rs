//! The linear-operator abstraction consumed by the Krylov solver.
//!
//! The Brownian-displacement method only needs products `y = M x` (and block
//! products `Y = M X`), so the dense Ewald mobility matrix and the matrix-
//! free PME operator implement the same trait. `apply` takes `&mut self`
//! because the PME operator owns large scratch meshes that it reuses across
//! applications (precomputation being the point of Section IV-A).

use crate::dmat::DMat;

/// A square linear operator `R^dim -> R^dim`.
pub trait LinearOperator {
    /// Vector length the operator acts on.
    fn dim(&self) -> usize;

    /// `y = A x`.
    fn apply(&mut self, x: &[f64], y: &mut [f64]);

    /// `Y = A X` for `s` columns stored row-major `[dim][s]`.
    ///
    /// The default loops over columns through `apply`; implementations with a
    /// genuine multi-vector fast path (BCSR SpMM, blocked PME) override this.
    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        let n = self.dim();
        assert_eq!(x.len(), n * s);
        assert_eq!(y.len(), n * s);
        let mut xc = vec![0.0; n];
        let mut yc = vec![0.0; n];
        for col in 0..s {
            for i in 0..n {
                xc[i] = x[i * s + col];
            }
            self.apply(&xc, &mut yc);
            for i in 0..n {
                y[i * s + col] = yc[i];
            }
        }
    }
}

/// Dense-matrix operator (the conventional algorithm's mobility matrix).
#[derive(Clone, Debug)]
pub struct DenseOp {
    m: DMat,
}

impl DenseOp {
    pub fn new(m: DMat) -> DenseOp {
        assert_eq!(m.nrows(), m.ncols(), "operator must be square");
        DenseOp { m }
    }

    pub fn matrix(&self) -> &DMat {
        &self.m
    }
}

impl LinearOperator for DenseOp {
    fn dim(&self) -> usize {
        self.m.nrows()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.m.mul_vec(x, y);
    }

    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        self.m.mul_multi(x, y, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_op_applies_matrix() {
        let m = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut op = DenseOp::new(m);
        let mut y = [0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, [3.0, 7.0]);
    }

    #[test]
    fn default_apply_multi_matches_specialized() {
        struct ViaDefault(DMat);
        impl LinearOperator for ViaDefault {
            fn dim(&self) -> usize {
                self.0.nrows()
            }
            fn apply(&mut self, x: &[f64], y: &mut [f64]) {
                self.0.mul_vec(x, y);
            }
        }
        let m = DMat::from_fn(5, 5, |i, j| ((i + 2 * j) as f64).sin());
        let s = 3;
        let x: Vec<f64> = (0..15).map(|i| i as f64 * 0.1).collect();

        let mut y1 = vec![0.0; 15];
        ViaDefault(m.clone()).apply_multi(&x, &mut y1, s);
        let mut y2 = vec![0.0; 15];
        DenseOp::new(m).apply_multi(&x, &mut y2, s);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-14);
        }
    }
}
