//! Row-major dense matrix.

use rayon::prelude::*;

/// Dense `nrows x ncols` matrix, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct DMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMat {
    pub fn zeros(nrows: usize, ncols: usize) -> DMat {
        DMat { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    pub fn identity(n: usize) -> DMat {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> DMat {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        DMat { nrows, ncols, data }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> DMat {
        assert_eq!(data.len(), nrows * ncols);
        DMat { nrows, ncols, data }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Two disjoint mutable rows (`i != j`).
    pub fn rows_mut2(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(i, j);
        let nc = self.ncols;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * nc);
            (&mut a[i * nc..(i + 1) * nc], &mut b[..nc])
        } else {
            let (a, b) = self.data.split_at_mut(i * nc);
            (&mut b[..nc], &mut a[j * nc..(j + 1) * nc])
        }
    }

    /// `y = A x`, parallel over rows.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            *yi = dot(self.row(i), x);
        });
    }

    /// `Y = A X` with `X` row-major `[ncols][s]`, `Y` row-major `[nrows][s]`.
    pub fn mul_multi(&self, x: &[f64], y: &mut [f64], s: usize) {
        assert_eq!(x.len(), self.ncols * s);
        assert_eq!(y.len(), self.nrows * s);
        y.par_chunks_mut(s).enumerate().for_each(|(i, yrow)| {
            yrow.fill(0.0);
            for (aij, xrow) in self.row(i).iter().zip(x.chunks_exact(s)) {
                if *aij != 0.0 {
                    for (o, xv) in yrow.iter_mut().zip(xrow) {
                        *o += aij * xv;
                    }
                }
            }
        });
    }

    /// `C = A * B` (parallel over rows of C, ikj order).
    pub fn matmul(&self, b: &DMat) -> DMat {
        assert_eq!(self.ncols, b.nrows);
        let mut c = DMat::zeros(self.nrows, b.ncols);
        let bn = b.ncols;
        c.data.par_chunks_mut(bn).enumerate().for_each(|(i, crow)| {
            for (k, aik) in self.row(i).iter().enumerate() {
                if *aik != 0.0 {
                    let brow = b.row(k);
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
        });
        c
    }

    /// `C = A^T * B` where `A` is `n x p`, `B` is `n x q` → `p x q`.
    pub fn tr_matmul(&self, b: &DMat) -> DMat {
        assert_eq!(self.nrows, b.nrows);
        let (p, q) = (self.ncols, b.ncols);
        let mut c = DMat::zeros(p, q);
        for i in 0..self.nrows {
            let arow = self.row(i);
            let brow = b.row(i);
            for (k, av) in arow.iter().enumerate() {
                if *av != 0.0 {
                    let crow = c.row_mut(k);
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
        c
    }

    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Largest absolute entry of `A - B`.
    pub fn max_abs_diff(&self, other: &DMat) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum asymmetry `max |A_ij - A_ji|` (square matrices).
    pub fn max_asymmetry(&self) -> f64 {
        assert_eq!(self.nrows, self.ncols);
        let mut m = 0.0f64;
        for i in 0..self.nrows {
            for j in 0..i {
                m = m.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        m
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

/// Plain dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_identity() {
        let i3 = DMat::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        i3.mul_vec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn matmul_reference() {
        let a = DMat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DMat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        let a = DMat::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.3 - 1.0);
        let b = DMat::from_fn(5, 4, |i, j| ((i + 2 * j) as f64).sin());
        let c1 = a.tr_matmul(&b);
        let c2 = a.transpose().matmul(&b);
        assert!(c1.max_abs_diff(&c2) < 1e-13);
    }

    #[test]
    fn mul_multi_matches_mul_vec() {
        let a = DMat::from_fn(4, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let s = 3;
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut y = vec![0.0; 12];
        a.mul_multi(&x, &mut y, s);
        for col in 0..s {
            let xc: Vec<f64> = (0..4).map(|r| x[r * s + col]).collect();
            let mut yc = vec![0.0; 4];
            a.mul_vec(&xc, &mut yc);
            for r in 0..4 {
                assert!((y[r * s + col] - yc[r]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn rows_mut2_both_orders() {
        let mut a = DMat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        {
            let (r0, r2) = a.rows_mut2(0, 2);
            r0[0] = -1.0;
            r2[1] = -2.0;
        }
        {
            let (r2, r1) = a.rows_mut2(2, 1);
            r2[0] = 9.0;
            r1[0] = 8.0;
        }
        assert_eq!(a.as_slice(), &[-1.0, 1.0, 8.0, 3.0, 9.0, -2.0]);
    }

    #[test]
    fn norms_and_asymmetry() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.5, -1.0]);
        assert!((a.fro_norm() - (1.0f64 + 4.0 + 6.25 + 1.0).sqrt()).abs() < 1e-15);
        assert!((a.max_asymmetry() - 0.5).abs() < 1e-15);
    }
}
