//! Symmetric eigendecompositions and matrix square roots.
//!
//! The Krylov Brownian-displacement method reduces `M^{1/2} z` to the square
//! root of a *small* projected matrix `T` (tridiagonal for single-vector
//! Lanczos, block tridiagonal for block Lanczos). Those square roots are
//! computed through a full eigendecomposition `T = V diag(w) V^T` here.
//!
//! The workhorse is a cyclic Jacobi solver: slower asymptotically than
//! tridiagonalization + QL, but unconditionally robust and plenty fast for
//! the `<= few hundred` dimensions that occur (the projected matrix is
//! `m*s x m*s` with `m` Krylov iterations and `s = lambda_RPY`).

use crate::dmat::DMat;

/// Eigendecomposition of a symmetric matrix: `a = V diag(w) V^T`.
///
/// Returns `(w, v)` with eigenvalues `w` ascending and the corresponding
/// eigenvectors as the *columns* of `v`. Only the lower triangle of the
/// symmetrized input `(a + a^T)/2` matters; minor asymmetry is tolerated.
pub fn sym_eig(a: &DMat) -> (Vec<f64>, DMat) {
    assert_eq!(a.nrows(), a.ncols(), "matrix must be square");
    let n = a.nrows();
    // Work on a symmetrized copy.
    let mut m = DMat::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = DMat::identity(n);

    let scale = (0..n)
        .map(|i| m[(i, i)].abs())
        .fold(0.0f64, f64::max)
        .max(m.fro_norm() / (n as f64).max(1.0))
        .max(1e-300);
    let tol = 1e-15 * scale;

    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                off = off.max(m[(p, q)].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                // Jacobi rotation zeroing m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    -1.0 / (-theta + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    if k != p && k != q {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(p, k)] = m[(k, p)];
                        m[(k, q)] = s * mkp + c * mkq;
                        m[(q, k)] = m[(k, q)];
                    }
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                m[(p, p)] = app - t * apq;
                m[(q, q)] = aqq + t * apq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                // Accumulate eigenvectors (columns of v).
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort ascending.
    let mut idx: Vec<usize> = (0..n).collect();
    let w_raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&i, &j| w_raw[i].partial_cmp(&w_raw[j]).unwrap());
    let w: Vec<f64> = idx.iter().map(|&i| w_raw[i]).collect();
    let vs = DMat::from_fn(n, n, |i, j| v[(i, idx[j])]);
    (w, vs)
}

/// Eigendecomposition of a symmetric tridiagonal matrix given its diagonal
/// `d` and subdiagonal `e` (`e.len() == d.len() - 1`). Returns `(w, v)` like
/// [`sym_eig`].
pub fn tridiag_eig(d: &[f64], e: &[f64]) -> (Vec<f64>, DMat) {
    let n = d.len();
    assert!(n > 0);
    assert_eq!(e.len(), n - 1, "subdiagonal length must be n-1");
    let mut a = DMat::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = d[i];
        if i + 1 < n {
            a[(i, i + 1)] = e[i];
            a[(i + 1, i)] = e[i];
        }
    }
    sym_eig(&a)
}

/// Compute `sqrt(T) * B` for a small symmetric positive semidefinite `T`
/// (`k x k`) and a block `B` (`k x s`).
///
/// Tiny negative eigenvalues (roundoff from a PSD source) are clamped to
/// zero; a significantly negative eigenvalue (beyond `-1e-8 * max|w|`)
/// returns `Err` with its value, signalling the source operator was not PSD.
pub fn sym_sqrt_times_block(t: &DMat, b: &DMat) -> Result<DMat, f64> {
    assert_eq!(t.nrows(), t.ncols());
    assert_eq!(t.nrows(), b.nrows());
    let (w, v) = sym_eig(t);
    let wmax = w.iter().fold(0.0f64, |m, &x| m.max(x.abs())).max(1e-300);
    let mut sqrt_w = Vec::with_capacity(w.len());
    for &wi in &w {
        if wi < -1e-8 * wmax {
            return Err(wi);
        }
        sqrt_w.push(wi.max(0.0).sqrt());
    }
    // sqrt(T) B = V diag(sqrt w) V^T B
    let vtb = v.tr_matmul(b);
    let mut scaled = vtb;
    for (i, sw) in sqrt_w.iter().enumerate() {
        for x in scaled.row_mut(i) {
            *x *= sw;
        }
    }
    Ok(v.matmul(&scaled))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_sym(n: usize, seed: u64) -> DMat {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = DMat::from_fn(n, n, |_, _| next());
        let bt = b.transpose();
        DMat::from_fn(n, n, |i, j| b[(i, j)] + bt[(i, j)])
    }

    fn check_decomposition(a: &DMat, w: &[f64], v: &DMat, tol: f64) {
        let n = a.nrows();
        // A v_j = w_j v_j
        for j in 0..n {
            let vj: Vec<f64> = (0..n).map(|i| v[(i, j)]).collect();
            let mut av = vec![0.0; n];
            a.mul_vec(&vj, &mut av);
            for i in 0..n {
                assert!(
                    (av[i] - w[j] * vj[i]).abs() < tol,
                    "residual at ({i},{j}): {} vs {}",
                    av[i],
                    w[j] * vj[i]
                );
            }
        }
        // V orthogonal
        let gram = v.tr_matmul(v);
        assert!(gram.max_abs_diff(&DMat::identity(n)) < tol);
    }

    #[test]
    fn known_2x2() {
        let a = DMat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (w, v) = sym_eig(&a);
        assert!((w[0] - 1.0).abs() < 1e-13);
        assert!((w[1] - 3.0).abs() < 1e-13);
        check_decomposition(&a, &w, &v, 1e-12);
    }

    #[test]
    fn random_symmetric_matrices() {
        for n in [1usize, 2, 3, 8, 25, 60] {
            let a = random_sym(n, n as u64);
            let (w, v) = sym_eig(&a);
            assert!(w.windows(2).all(|p| p[0] <= p[1]), "sorted ascending");
            check_decomposition(&a, &w, &v, 1e-10 * (n as f64).max(1.0));
            // Trace preserved.
            let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
            let ws: f64 = w.iter().sum();
            assert!((tr - ws).abs() < 1e-10 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn diagonal_matrix_is_trivial() {
        let a = DMat::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (w, v) = sym_eig(&a);
        assert_eq!(w, vec![1.0, 2.0, 3.0]);
        check_decomposition(&a, &w, &v, 1e-14);
    }

    #[test]
    fn tridiagonal_known_eigenvalues() {
        // The n x n tridiagonal (2, -1) matrix has eigenvalues
        // 2 - 2 cos(k pi/(n+1)).
        let n = 10;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        let (w, v) = tridiag_eig(&d, &e);
        for k in 1..=n {
            let want = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((w[k - 1] - want).abs() < 1e-12, "k={k}");
        }
        let mut a = DMat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        check_decomposition(&a, &w, &v, 1e-11);
    }

    #[test]
    fn sqrt_times_block_squares_back() {
        // T PSD: sqrt(T) applied twice = T applied once.
        let n = 12;
        let b = random_sym(n, 77);
        let t = b.matmul(&b.transpose()); // PSD
        let x = DMat::from_fn(n, 4, |i, j| ((i * 4 + j) as f64 * 0.21).sin());
        let s1 = sym_sqrt_times_block(&t, &x).unwrap();
        let s2 = sym_sqrt_times_block(&t, &s1).unwrap();
        let tx = t.matmul(&x);
        assert!(s2.max_abs_diff(&tx) < 1e-8 * tx.fro_norm().max(1.0));
    }

    #[test]
    fn sqrt_rejects_indefinite() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalue -1
        let b = DMat::identity(2);
        let err = sym_sqrt_times_block(&a, &b).unwrap_err();
        assert!((err + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sqrt_clamps_roundoff_negatives() {
        // PSD with an exactly-zero eigenvalue perturbed by tiny negative.
        let mut a = DMat::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -1e-16;
        let b = DMat::identity(2);
        let s = sym_sqrt_times_block(&a, &b).unwrap();
        assert!((s[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(s[(1, 1)].abs() < 1e-8);
    }
}
