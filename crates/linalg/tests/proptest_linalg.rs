//! Property-based tests of the dense linear algebra kernels.

use hibd_linalg::{sym_eig, sym_sqrt_times_block, thin_qr, CholeskyFactor, DMat};
use proptest::prelude::*;

fn square(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, n * n)
}

fn spd_from(raw: &[f64], n: usize) -> DMat {
    let b = DMat::from_vec(n, n, raw.to_vec());
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64; // diagonal shift guarantees SPD
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cholesky_reconstructs((n, raw) in (1usize..12).prop_flat_map(|n| (Just(n), square(n)))) {
        let a = spd_from(&raw, n);
        let f = CholeskyFactor::new(&a).unwrap();
        prop_assert!(f.reconstruct().max_abs_diff(&a) < 1e-9 * (n as f64));
    }

    #[test]
    fn cholesky_solve_inverts((n, raw, xs) in (1usize..10)
        .prop_flat_map(|n| (Just(n), square(n), prop::collection::vec(-1.0f64..1.0, n))))
    {
        let a = spd_from(&raw, n);
        let f = CholeskyFactor::new(&a).unwrap();
        let mut b = vec![0.0; n];
        a.mul_vec(&xs, &mut b);
        let mut x = vec![0.0; n];
        f.solve(&b, &mut x);
        for (got, want) in x.iter().zip(&xs) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn qr_reconstruction_and_orthogonality(
        (n, s, raw) in (2usize..20, 1usize..6)
            .prop_flat_map(|(n, s)| {
                let s = s.min(n);
                (Just(n), Just(s), prop::collection::vec(-1.0f64..1.0, n * s))
            })
    ) {
        let a = DMat::from_vec(n, s, raw);
        let f = thin_qr(&a);
        let qr = f.q.matmul(&f.r);
        prop_assert!(qr.max_abs_diff(&a) < 1e-10);
        // Columns not flagged deficient must be orthonormal.
        let gram = f.q.tr_matmul(&f.q);
        for i in 0..s {
            if f.deficient.contains(&i) {
                continue;
            }
            for j in 0..s {
                if f.deficient.contains(&j) {
                    continue;
                }
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((gram[(i, j)] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigendecomposition_residuals((n, raw) in (1usize..10).prop_flat_map(|n| (Just(n), square(n)))) {
        let b = DMat::from_vec(n, n, raw);
        let a = DMat::from_fn(n, n, |i, j| b[(i, j)] + b[(j, i)]);
        let (w, v) = sym_eig(&a);
        // Sorted eigenvalues, orthonormal V, small residuals.
        prop_assert!(w.windows(2).all(|p| p[0] <= p[1]));
        let gram = v.tr_matmul(&v);
        prop_assert!(gram.max_abs_diff(&DMat::identity(n)) < 1e-9);
        for j in 0..n {
            let vj: Vec<f64> = (0..n).map(|i| v[(i, j)]).collect();
            let mut av = vec![0.0; n];
            a.mul_vec(&vj, &mut av);
            for i in 0..n {
                prop_assert!((av[i] - w[j] * vj[i]).abs() < 1e-8 * (1.0 + w[j].abs()));
            }
        }
    }

    #[test]
    fn sqrt_squares_to_operator((n, raw) in (1usize..8).prop_flat_map(|n| (Just(n), square(n)))) {
        let a = spd_from(&raw, n);
        let eye = DMat::identity(n);
        let s1 = sym_sqrt_times_block(&a, &eye).unwrap();
        let s2 = s1.matmul(&s1);
        prop_assert!(s2.max_abs_diff(&a) < 1e-8 * a.fro_norm().max(1.0));
    }

    #[test]
    fn gemm_is_associative_with_vectors(
        (n, raw1, raw2, xs) in (1usize..8)
            .prop_flat_map(|n| (Just(n), square(n), square(n), prop::collection::vec(-1.0f64..1.0, n)))
    ) {
        // (A B) x == A (B x)
        let a = DMat::from_vec(n, n, raw1);
        let b = DMat::from_vec(n, n, raw2);
        let ab = a.matmul(&b);
        let mut lhs = vec![0.0; n];
        ab.mul_vec(&xs, &mut lhs);
        let mut bx = vec![0.0; n];
        b.mul_vec(&xs, &mut bx);
        let mut rhs = vec![0.0; n];
        a.mul_vec(&bx, &mut rhs);
        for (p, q) in lhs.iter().zip(&rhs) {
            prop_assert!((p - q).abs() < 1e-10);
        }
    }
}
