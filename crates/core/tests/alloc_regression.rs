//! Allocation regression for the Algorithm 2 driver: BD steps inside one
//! operator window must not grow the heap.
//!
//! The expensive allocations (PME operator, displacement block, per-step
//! scratch) all happen at the window refresh; the steps that follow inside
//! the window reuse them. Force evaluation allocates a transient total-force
//! vector per step, which frees immediately — the invariant is zero *net*
//! growth, i.e. nothing persists step to step.

use hibd_alloctrack::{exclusive, measure};
use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
use hibd_core::system::ParticleSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

hibd_alloctrack::install!();

const TOL: isize = 16 * 1024;

#[test]
fn steps_within_a_lambda_window_do_not_grow_the_heap() {
    let _guard = exclusive();
    let mut rng = StdRng::seed_from_u64(4);
    let sys = ParticleSystem::random_suspension(24, 0.1, &mut rng);
    let cfg = MatrixFreeConfig { lambda_rpy: 8, ..Default::default() };
    let mut bd = MatrixFreeBd::new(sys, cfg, 11).unwrap();

    // Step 1 refreshes the operator, draws the displacement block, and
    // grows the per-step scratch; steps 2..8 stay inside the window.
    bd.step().unwrap();
    let op_mem = bd.operator_memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..5 {
            bd.step().unwrap();
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "5 in-window steps leaked {} net bytes", m.net_bytes);
    assert_eq!(bd.operator_memory_bytes(), op_mem, "operator scratch grew inside the window");
}
