//! Structural analysis of suspensions.
//!
//! Besides the diffusion coefficient (paper Eq. 12, in [`crate::diffusion`]),
//! the standard observable for validating suspension microstructure is the
//! radial distribution function g(r); BD studies report it to check that
//! the repulsive contact force maintains the expected hard-sphere-like
//! structure.

use crate::system::ParticleSystem;
use hibd_cells::CellList;

/// Radial distribution function accumulated over configurations.
#[derive(Clone, Debug)]
pub struct RdfAccumulator {
    r_max: f64,
    nbins: usize,
    counts: Vec<f64>,
    frames: usize,
    n: usize,
    box_l: f64,
}

impl RdfAccumulator {
    /// Histogram pair distances up to `r_max` into `nbins` bins.
    pub fn new(r_max: f64, nbins: usize) -> RdfAccumulator {
        assert!(r_max > 0.0 && nbins > 0);
        RdfAccumulator { r_max, nbins, counts: vec![0.0; nbins], frames: 0, n: 0, box_l: 0.0 }
    }

    /// Accumulate one configuration.
    pub fn record(&mut self, system: &ParticleSystem) {
        assert!(
            self.r_max <= system.box_l / 2.0 + 1e-9,
            "g(r) beyond L/2 is ill-defined under minimum image"
        );
        if self.frames == 0 {
            self.n = system.len();
            self.box_l = system.box_l;
        } else {
            assert_eq!(self.n, system.len(), "particle count changed");
        }
        let cl = CellList::new(system.positions(), system.box_l, self.r_max);
        let bin_w = self.r_max / self.nbins as f64;
        cl.for_each_pair(|_, _, _, r2| {
            let r = r2.sqrt();
            let b = (r / bin_w) as usize;
            if b < self.nbins {
                self.counts[b] += 2.0; // each unordered pair counts for both
            }
        });
        self.frames += 1;
    }

    /// Number of configurations accumulated.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// `(r_center, g(r))` per bin, ideal-gas normalized.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        if self.frames == 0 {
            return Vec::new();
        }
        let bin_w = self.r_max / self.nbins as f64;
        let density = self.n as f64 / self.box_l.powi(3);
        let mut out = Vec::with_capacity(self.nbins);
        for b in 0..self.nbins {
            let r_lo = b as f64 * bin_w;
            let r_hi = r_lo + bin_w;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            let ideal = density * shell * self.n as f64 * self.frames as f64;
            out.push((r_lo + 0.5 * bin_w, self.counts[b] / ideal));
        }
        out
    }
}

/// Mean collective velocity `Σ u_i / n` from a flat `3n` velocity vector.
pub fn mean_velocity(u: &[f64]) -> [f64; 3] {
    assert_eq!(u.len() % 3, 0);
    let n = (u.len() / 3).max(1) as f64;
    let mut m = [0.0; 3];
    for chunk in u.chunks_exact(3) {
        m[0] += chunk[0];
        m[1] += chunk[1];
        m[2] += chunk[2];
    }
    [m[0] / n, m[1] / n, m[2] / n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_mathx::Vec3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_gas_rdf_is_flat_at_one() {
        // Uncorrelated uniform points: g(r) ~ 1 for all r.
        let mut rng = StdRng::seed_from_u64(3);
        let box_l = 20.0;
        let n = 800;
        let mut acc = RdfAccumulator::new(8.0, 16);
        for _ in 0..4 {
            use rand::Rng;
            let pos: Vec<Vec3> = (0..n)
                .map(|_| {
                    Vec3::new(
                        rng.gen_range(0.0..box_l),
                        rng.gen_range(0.0..box_l),
                        rng.gen_range(0.0..box_l),
                    )
                })
                .collect();
            let sys = ParticleSystem::new(pos, box_l, 0.1, 1.0);
            acc.record(&sys);
        }
        for (r, g) in acc.normalized() {
            if r > 1.0 {
                assert!((g - 1.0).abs() < 0.25, "r = {r}: g = {g}");
            }
        }
    }

    #[test]
    fn hard_sphere_suspension_has_depleted_core() {
        // Non-overlapping spheres: g(r) ~ 0 below contact (2a), and a
        // contact peak above.
        let mut rng = StdRng::seed_from_u64(9);
        let sys = ParticleSystem::random_suspension(400, 0.2, &mut rng);
        let mut acc = RdfAccumulator::new((sys.box_l / 2.0).min(6.0), 24);
        acc.record(&sys);
        let rdf = acc.normalized();
        for &(r, g) in &rdf {
            if r < 1.9 {
                assert!(g < 0.05, "core not depleted at r = {r}: g = {g}");
            }
        }
        let peak = rdf
            .iter()
            .filter(|(r, _)| *r > 2.0 && *r < 3.0)
            .map(|(_, g)| *g)
            .fold(0.0f64, f64::max);
        assert!(peak > 0.8, "no structure near contact: peak = {peak}");
    }

    #[test]
    fn rdf_rejects_cutoff_beyond_half_box() {
        let mut rng = StdRng::seed_from_u64(1);
        let sys = ParticleSystem::random_suspension(50, 0.1, &mut rng);
        let mut acc = RdfAccumulator::new(sys.box_l, 10);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            acc.record(&sys);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn mean_velocity_averages_components() {
        let u = [1.0, 0.0, 2.0, 3.0, 0.0, 4.0];
        assert_eq!(mean_velocity(&u), [2.0, 0.0, 3.0]);
    }
}
