//! Deterministic forces `f(r)` for the BD propagation (paper Eq. 1).
//!
//! The evaluation model of Section V-A uses only the repulsive harmonic
//! contact force; the example applications additionally use constant body
//! forces (sedimentation) and harmonic bonds (bead-spring polymers).

use crate::system::{Boundary, ParticleSystem};
use hibd_cells::{CellList, VerletList};
use hibd_mathx::Vec3;

/// A deterministic force field: adds its contribution into a flat `3n`
/// force vector. Takes `&mut self` so implementations can cache state
/// across calls (the contact force keeps a skinned Verlet list).
pub trait Force: Send {
    /// Accumulate forces for the current configuration into `f` (`+=`).
    fn accumulate(&mut self, system: &ParticleSystem, f: &mut [f64]);

    /// Display name for logs.
    fn name(&self) -> &'static str {
        "force"
    }
}

/// The paper's contact repulsion (Section V-A):
/// `f_ij = k (2a - r) r̂` on particle `i`, pushing overlapping pairs apart,
/// zero beyond contact (`r > 2a`). The paper's constant is `k = 125`.
///
/// Neighbor search goes through a skinned [`VerletList`] (ref. \[27\]) that is
/// reused across BD steps while no particle has moved more than half the
/// skin.
#[derive(Clone, Debug)]
pub struct RepulsiveHarmonic {
    /// Spring constant (paper: 125).
    pub k: f64,
    /// Verlet skin radius (in units of `a`), default 0.3.
    pub skin: f64,
    list: Option<VerletList>,
}

impl RepulsiveHarmonic {
    pub fn new(k: f64) -> RepulsiveHarmonic {
        RepulsiveHarmonic { k, skin: 0.3, list: None }
    }

    /// `(rebuilds, reuses)` of the internal neighbor list so far.
    pub fn neighbor_stats(&self) -> (usize, usize) {
        self.list.as_ref().map(hibd_cells::VerletList::stats).unwrap_or((0, 0))
    }
}

impl Default for RepulsiveHarmonic {
    fn default() -> Self {
        RepulsiveHarmonic::new(125.0)
    }
}

impl Force for RepulsiveHarmonic {
    fn accumulate(&mut self, system: &ParticleSystem, f: &mut [f64]) {
        let contact = 2.0 * system.a;
        let list = self.list.get_or_insert_with(|| match system.boundary() {
            Boundary::Periodic => {
                VerletList::new(system.positions(), system.box_l, contact, self.skin * system.a)
            }
            Boundary::Open => {
                VerletList::new_open(system.positions(), contact, self.skin * system.a)
            }
        });
        let k = self.k;
        list.for_each_pair(system.positions(), |i, j, dr, r2| {
            let r = r2.sqrt();
            if r >= contact {
                return;
            }
            // dr = r_i - r_j; push i along +dr, j along -dr.
            let mag = k * (contact - r) / r;
            let fx = mag * dr.x;
            let fy = mag * dr.y;
            let fz = mag * dr.z;
            f[3 * i] += fx;
            f[3 * i + 1] += fy;
            f[3 * i + 2] += fz;
            f[3 * j] -= fx;
            f[3 * j + 1] -= fy;
            f[3 * j + 2] -= fz;
        });
    }

    fn name(&self) -> &'static str {
        "repulsive-harmonic"
    }
}

/// A constant body force per particle (e.g. gravity for sedimentation).
#[derive(Clone, Copy, Debug)]
pub struct ConstantForce(pub Vec3);

impl Force for ConstantForce {
    fn accumulate(&mut self, _system: &ParticleSystem, f: &mut [f64]) {
        for chunk in f.chunks_exact_mut(3) {
            chunk[0] += self.0.x;
            chunk[1] += self.0.y;
            chunk[2] += self.0.z;
        }
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Harmonic springs between explicit particle pairs (bead-spring chains):
/// `U = (k/2)(r - r0)^2` per bond, with boundary-appropriate displacements
/// (minimum image in a periodic box, raw in open solvent).
#[derive(Clone, Debug)]
pub struct HarmonicBond {
    pub pairs: Vec<(u32, u32)>,
    pub k: f64,
    pub r0: f64,
}

impl HarmonicBond {
    /// Bonds forming a linear chain over particles `first..first+len`.
    pub fn chain(first: u32, len: u32, k: f64, r0: f64) -> HarmonicBond {
        let pairs = (0..len.saturating_sub(1)).map(|i| (first + i, first + i + 1)).collect();
        HarmonicBond { pairs, k, r0 }
    }
}

impl Force for HarmonicBond {
    fn accumulate(&mut self, system: &ParticleSystem, f: &mut [f64]) {
        for &(i, j) in &self.pairs {
            let (i, j) = (i as usize, j as usize);
            let dr = system.pair_dr(i, j);
            let r = dr.norm();
            if r < 1e-12 {
                continue;
            }
            // Force on i: -k (r - r0) r̂  (restoring).
            let mag = -self.k * (r - self.r0) / r;
            let fv = dr * mag;
            f[3 * i] += fv.x;
            f[3 * i + 1] += fv.y;
            f[3 * i + 2] += fv.z;
            f[3 * j] -= fv.x;
            f[3 * j + 1] -= fv.y;
            f[3 * j + 2] -= fv.z;
        }
    }

    fn name(&self) -> &'static str {
        "harmonic-bond"
    }
}

/// Truncated-and-shifted Lennard-Jones force (WCA when `cutoff = 2^{1/6}
/// sigma`): the generic short-range interaction of colloid/macromolecule
/// models beyond the paper's minimal contact repulsion.
#[derive(Clone, Copy, Debug)]
pub struct LennardJones {
    /// Well depth.
    pub epsilon: f64,
    /// Zero-crossing distance of the potential.
    pub sigma: f64,
    /// Interaction cutoff (force is truncated, not smoothed, beyond it).
    pub cutoff: f64,
}

impl LennardJones {
    /// Purely repulsive WCA parameterization: cutoff at the potential
    /// minimum `2^{1/6} sigma`.
    pub fn wca(epsilon: f64, sigma: f64) -> LennardJones {
        LennardJones { epsilon, sigma, cutoff: sigma * 2.0f64.powf(1.0 / 6.0) }
    }
}

impl Force for LennardJones {
    fn accumulate(&mut self, system: &ParticleSystem, f: &mut [f64]) {
        let cl = match system.boundary() {
            Boundary::Periodic => CellList::new(system.positions(), system.box_l, self.cutoff),
            Boundary::Open => CellList::new_open(system.positions(), self.cutoff),
        };
        let s2 = self.sigma * self.sigma;
        cl.for_each_pair(|i, j, dr, r2| {
            if r2 > self.cutoff * self.cutoff {
                return;
            }
            // F(r) = 24 eps (2 (sigma/r)^12 - (sigma/r)^6) / r along r̂,
            // i.e. coefficient 24 eps (2 x^12 - x^6) / r^2 on dr.
            let x2 = s2 / r2;
            let x6 = x2 * x2 * x2;
            let x12 = x6 * x6;
            let coeff = 24.0 * self.epsilon * (2.0 * x12 - x6) / r2;
            f[3 * i] += coeff * dr.x;
            f[3 * i + 1] += coeff * dr.y;
            f[3 * i + 2] += coeff * dr.z;
            f[3 * j] -= coeff * dr.x;
            f[3 * j + 1] -= coeff * dr.y;
            f[3 * j + 2] -= coeff * dr.z;
        });
    }

    fn name(&self) -> &'static str {
        "lennard-jones"
    }
}

/// Evaluate a set of forces into a fresh force vector.
pub fn total_force(forces: &mut [Box<dyn Force>], system: &ParticleSystem) -> Vec<f64> {
    let mut f = vec![0.0; 3 * system.len()];
    for force in forces.iter_mut() {
        force.accumulate(system, &mut f);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_particle_system(r: f64) -> ParticleSystem {
        ParticleSystem::new(
            vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(5.0 + r, 5.0, 5.0)],
            20.0,
            1.0,
            1.0,
        )
    }

    #[test]
    fn repulsion_pushes_overlapping_pair_apart() {
        let sys = two_particle_system(1.5); // r < 2a
        let mut f = vec![0.0; 6];
        RepulsiveHarmonic::default().accumulate(&sys, &mut f);
        // Particle 0 sits at lower x: force must be -x; particle 1 +x.
        assert!(f[0] < 0.0);
        assert!(f[3] > 0.0);
        assert_eq!(f[0], -f[3]);
        // Magnitude: 125 * (2 - 1.5) = 62.5.
        assert!((f[3] - 62.5).abs() < 1e-12);
        // No transverse components.
        for idx in [1, 2, 4, 5] {
            assert_eq!(f[idx], 0.0);
        }
    }

    #[test]
    fn repulsion_vanishes_beyond_contact() {
        let sys = two_particle_system(2.5);
        let mut f = vec![0.0; 6];
        RepulsiveHarmonic::default().accumulate(&sys, &mut f);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn repulsion_conserves_momentum() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let sys = ParticleSystem::random_suspension(100, 0.35, &mut rng);
        let mut f = vec![0.0; 300];
        RepulsiveHarmonic::default().accumulate(&sys, &mut f);
        for theta in 0..3 {
            let total: f64 = (0..100).map(|i| f[3 * i + theta]).sum();
            assert!(total.abs() < 1e-10, "component {theta}: {total}");
        }
    }

    #[test]
    fn constant_force_applies_everywhere() {
        let sys = two_particle_system(3.0);
        let mut f = vec![0.0; 6];
        let mut g = ConstantForce(Vec3::new(0.0, 0.0, -9.8));
        g.accumulate(&sys, &mut f);
        assert_eq!(f, vec![0.0, 0.0, -9.8, 0.0, 0.0, -9.8]);
    }

    #[test]
    fn bond_restores_to_rest_length() {
        let sys = two_particle_system(3.0);
        let mut bond = HarmonicBond { pairs: vec![(0, 1)], k: 10.0, r0: 2.0 };
        let mut f = vec![0.0; 6];
        bond.accumulate(&sys, &mut f);
        // Stretched past r0: attraction. Particle 0 pulled +x.
        assert!((f[0] - 10.0).abs() < 1e-12);
        assert!((f[3] + 10.0).abs() < 1e-12);

        let sys2 = two_particle_system(1.0);
        let mut f2 = vec![0.0; 6];
        bond.accumulate(&sys2, &mut f2);
        // Compressed: repulsion. Particle 0 pushed -x.
        assert!((f2[0] + 10.0).abs() < 1e-12);
    }

    #[test]
    fn chain_builder_links_consecutive_beads() {
        let b = HarmonicBond::chain(3, 4, 1.0, 2.0);
        assert_eq!(b.pairs, vec![(3, 4), (4, 5), (5, 6)]);
        let empty = HarmonicBond::chain(0, 1, 1.0, 2.0);
        assert!(empty.pairs.is_empty());
    }

    #[test]
    fn bond_respects_periodicity() {
        // Pair straddling the seam: min-image distance 2, at rest.
        let sys = ParticleSystem::new(
            vec![Vec3::new(0.5, 5.0, 5.0), Vec3::new(18.5, 5.0, 5.0)],
            20.0,
            1.0,
            1.0,
        );
        let mut bond = HarmonicBond { pairs: vec![(0, 1)], k: 10.0, r0: 2.0 };
        let mut f = vec![0.0; 6];
        bond.accumulate(&sys, &mut f);
        assert!(f.iter().all(|&v| v.abs() < 1e-12), "{f:?}");
    }

    #[test]
    fn open_forces_do_not_wrap() {
        // Same geometry as `bond_respects_periodicity` but open: the raw
        // separation is 18, so a k=10 r0=2 bond pulls hard.
        let sys = ParticleSystem::new_open(
            vec![Vec3::new(0.5, 5.0, 5.0), Vec3::new(18.5, 5.0, 5.0)],
            1.0,
            1.0,
        );
        let mut bond = HarmonicBond { pairs: vec![(0, 1)], k: 10.0, r0: 2.0 };
        let mut f = vec![0.0; 6];
        bond.accumulate(&sys, &mut f);
        assert!((f[0] - 160.0).abs() < 1e-9, "{f:?}");
        // And the contact repulsion sees no phantom wrapped pair.
        let mut f2 = vec![0.0; 6];
        RepulsiveHarmonic::default().accumulate(&sys, &mut f2);
        assert!(f2.iter().all(|&v| v == 0.0), "{f2:?}");
    }

    #[test]
    fn open_repulsion_matches_periodic_in_the_bulk() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(6);
        let per = ParticleSystem::random_suspension(100, 0.35, &mut rng);
        // An interior cloud far from every face: boundary must not matter.
        let open = ParticleSystem::new_open(per.positions().to_vec(), 1.0, 1.0);
        let mut fp = vec![0.0; 300];
        let mut fo = vec![0.0; 300];
        RepulsiveHarmonic::default().accumulate(&per, &mut fp);
        RepulsiveHarmonic::default().accumulate(&open, &mut fo);
        // Forces differ only on seam pairs; interior contributions agree.
        // Compare pair sets instead: every open pair must appear in the
        // periodic evaluation with identical dr.
        let mut vl_open = VerletList::new_open(open.positions(), 2.0, 0.0);
        vl_open.for_each_pair(open.positions(), |i, j, dr, _| {
            let want = per.pair_dr(i, j);
            assert!((dr - want).norm() < 1e-12, "interior pair ({i},{j}) must agree");
        });
    }

    #[test]
    fn lj_force_zero_at_minimum_and_repulsive_inside() {
        let sigma: f64 = 2.0;
        let eps = 1.5;
        let rmin = sigma * 2.0f64.powf(1.0 / 6.0);
        let mut lj = LennardJones::wca(eps, sigma);
        // At the WCA cutoff (the potential minimum) the force vanishes.
        let sys = two_particle_system(rmin);
        let mut f = vec![0.0; 6];
        lj.accumulate(&sys, &mut f);
        assert!(f[0].abs() < 1e-10, "force at minimum: {}", f[0]);
        // Inside the minimum: repulsion (particle 0 pushed -x).
        let sys2 = two_particle_system(0.9 * rmin);
        let mut f2 = vec![0.0; 6];
        lj.accumulate(&sys2, &mut f2);
        assert!(f2[0] < 0.0);
        assert_eq!(f2[0], -f2[3]);
        // Beyond the cutoff: nothing.
        let sys3 = two_particle_system(1.2 * rmin);
        let mut f3 = vec![0.0; 6];
        lj.accumulate(&sys3, &mut f3);
        assert!(f3.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lj_attractive_branch_with_extended_cutoff() {
        let sigma: f64 = 2.0;
        let mut lj = LennardJones { epsilon: 1.0, sigma, cutoff: 3.0 * sigma };
        let rmin = sigma * 2.0f64.powf(1.0 / 6.0);
        let sys = two_particle_system(1.3 * rmin);
        let mut f = vec![0.0; 6];
        lj.accumulate(&sys, &mut f);
        // Past the minimum the pair attracts: particle 0 pulled +x.
        assert!(f[0] > 0.0, "{}", f[0]);
    }

    #[test]
    fn total_force_combines_contributions() {
        let sys = two_particle_system(1.5);
        let mut forces: Vec<Box<dyn Force>> = vec![
            Box::new(RepulsiveHarmonic::default()),
            Box::new(ConstantForce(Vec3::new(1.0, 0.0, 0.0))),
        ];
        let f = total_force(&mut forces, &sys);
        assert!((f[0] - (1.0 - 62.5)).abs() < 1e-12);
        assert!((f[3] - (1.0 + 62.5)).abs() < 1e-12);
    }
}
