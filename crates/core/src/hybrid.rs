//! Hybrid CPU + coprocessor execution (paper Section IV-E).
//!
//! The paper splits each PME application: the irregular real-space SpMV
//! stays on the CPU while the regular, bandwidth-hungry reciprocal pipeline
//! is offloaded to Xeon Phi coprocessors. Two mechanisms provide load
//! balance:
//!
//! 1. **`alpha` tuning** — the Ewald parameter shifts work between the real
//!    sum (CPU) and the reciprocal sum (accelerator) until the two sides
//!    predict equal time under the Section IV-D performance model;
//! 2. **static partitioning** — for the *block* PME application of
//!    Algorithm 2 line 6, contiguous **column chunks** of the Krylov block
//!    are assigned to devices (CPUs included) proportionally to their
//!    modeled throughput; each device runs its chunk through the batched
//!    reciprocal pipeline ([`PmeOperator::recip_apply_add_cols`]), so a
//!    device with `c` columns pays one batched spread/FFT trip, not `c`
//!    single-RHS trips.
//!
//! **Hardware substitution.** This host has no Xeon Phi; accelerator
//! devices are *modeled* with the Table I machine descriptions (see
//! DESIGN.md). The partitioning/balancing logic is identical to what would
//! drive real offload, the real/reciprocal *overlap* is genuinely executed
//! (see [`PmeOperator::apply_overlapped`]), and all timing predictions come
//! from the same performance model the paper's scheduler uses.

use hibd_pme::perf::{Machine, PerfModel};
use hibd_pme::{PmeOperator, PmeParams};

/// PCIe transfer model for offloading one vector each way (bytes/s and
/// fixed latency per offload region). Canonical Gen2 x16 numbers.
#[derive(Clone, Copy, Debug)]
pub struct Interconnect {
    pub bandwidth: f64,
    pub latency: f64,
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect { bandwidth: 6.0e9, latency: 50e-6 }
    }
}

impl Interconnect {
    /// Time to ship a `3n` force vector down and a `3n` velocity vector back.
    pub fn roundtrip(&self, n: usize) -> f64 {
        self.latency + 2.0 * (3 * n * 8) as f64 / self.bandwidth
    }
}

/// A compute device for the static partitioner.
#[derive(Clone, Copy, Debug)]
pub struct Device {
    pub machine: Machine,
    /// Whether offload transfers apply (false for the host CPU).
    pub offload: bool,
}

/// The hybrid execution plan for one PME configuration.
#[derive(Clone, Debug)]
pub struct HybridModel {
    pub params: PmeParams,
    pub n: usize,
    pub cpu: Device,
    pub accels: Vec<Device>,
    pub link: Interconnect,
    /// Average real-space neighbors per particle (from `r_max` and density).
    pub neighbors_per_particle: f64,
    /// Telemetry-calibrated CPU phase costs. When set, the CPU side of the
    /// split (reciprocal per-column cost and real-space block cost) comes
    /// from constants fitted to *measured* spans instead of the a-priori
    /// Table I machine description, so the partition fraction is derived
    /// from calibrated phase costs. Accelerators stay modeled (no hardware
    /// to measure on this host). Conventions: calibrate with `threads = 1`
    /// (the constants then absorb the host's actual parallel efficiency).
    pub calibrated_cpu: Option<hibd_telemetry::PerfModel>,
}

impl HybridModel {
    /// Build the model from PME parameters; the neighbor count comes from
    /// the uniform-density estimate `n (4/3) pi r_max^3 / L^3`.
    pub fn new(params: PmeParams, n: usize, cpu: Machine, accels: Vec<Machine>) -> HybridModel {
        let density = n as f64 / params.box_l.powi(3);
        let neighbors = density * 4.0 / 3.0 * std::f64::consts::PI * params.r_max.powi(3);
        HybridModel {
            params,
            n,
            cpu: Device { machine: cpu, offload: false },
            accels: accels.into_iter().map(|m| Device { machine: m, offload: true }).collect(),
            link: Interconnect::default(),
            neighbors_per_particle: neighbors,
            calibrated_cpu: None,
        }
    }

    /// Install telemetry-calibrated CPU costs (see
    /// [`HybridModel::calibrated_cpu`]). Returns `self` for chaining.
    pub fn with_calibrated_cpu(mut self, model: hibd_telemetry::PerfModel) -> HybridModel {
        self.calibrated_cpu = Some(model);
        self
    }

    /// Modeled real-space SpMV time on the CPU: streaming the BCSR blocks
    /// (72 B + 4 B index each) plus the in/out vectors.
    pub fn t_real(&self) -> f64 {
        self.t_real_block(1)
    }

    /// Modeled multi-RHS real-space SpMM for `s` columns: the matrix
    /// streams **once** regardless of `s` (the paper's ref. \[24\] benefit);
    /// only the vector traffic scales.
    pub fn t_real_block(&self, s: usize) -> f64 {
        if let Some(cal) = &self.calibrated_cpu {
            let p = cal.predict(self.n, self.params.mesh_dim, self.params.spline_order, s, 1);
            if p.real_space > 0.0 {
                return p.real_space;
            }
        }
        let nnz_blocks = self.n as f64 * self.neighbors_per_particle;
        let bytes = nnz_blocks * 76.0 + 2.0 * (3 * self.n * 8 * s) as f64;
        bytes / self.cpu.machine.bandwidth
    }

    /// Modeled reciprocal time on a device. The CPU uses calibrated phase
    /// costs when available ([`HybridModel::with_calibrated_cpu`]);
    /// accelerators always use their machine description plus the offload
    /// round-trip.
    pub fn t_recip_on(&self, dev: &Device) -> f64 {
        if !dev.offload {
            if let Some(cal) = &self.calibrated_cpu {
                let p = cal.predict(self.n, self.params.mesh_dim, self.params.spline_order, 1, 1);
                let t = p.recip_total();
                if t > 0.0 {
                    return t;
                }
            }
        }
        let m = PerfModel::new(dev.machine, self.params.mesh_dim, self.params.spline_order, self.n);
        let transfer = if dev.offload { self.link.roundtrip(self.n) } else { 0.0 };
        m.t_recip() + transfer
    }

    /// CPU-only single application: real + reciprocal sequentially.
    pub fn t_apply_cpu_only(&self) -> f64 {
        self.t_real() + self.t_recip_on(&self.cpu)
    }

    /// Hybrid single application (Algorithm 2 line 9): the real sum on the
    /// CPU runs concurrently with the reciprocal sum on the fastest
    /// accelerator. For small systems where the offload round-trip exceeds
    /// the local reciprocal time, the scheduler keeps everything on the CPU
    /// (the paper's "for small configurations ... the advantage is
    /// marginal").
    pub fn t_apply_hybrid(&self) -> f64 {
        let best_accel =
            self.accels.iter().map(|d| self.t_recip_on(d)).fold(f64::INFINITY, f64::min);
        let cpu_only = self.t_apply_cpu_only();
        if best_accel.is_infinite() {
            return cpu_only;
        }
        self.t_real().max(best_accel).min(cpu_only)
    }

    /// Partition `s` block columns over all devices (CPU last) so the
    /// makespan is minimized, CPU's real-space SpMM included in its load.
    /// Returns (columns per device in `[accels..., cpu]` order, makespan).
    pub fn partition_block(&self, s: usize) -> (Vec<usize>, f64) {
        let t_real_block = self.t_real_block(s);
        let mut per_col: Vec<f64> = self.accels.iter().map(|d| self.t_recip_on(d)).collect();
        per_col.push(self.t_recip_on(&self.cpu));
        let base: Vec<f64> = per_col
            .iter()
            .enumerate()
            .map(|(i, _)| if i == per_col.len() - 1 { t_real_block } else { 0.0 })
            .collect();
        // Greedy list scheduling (optimal enough for identical columns).
        let mut load = base.clone();
        let mut cols = vec![0usize; per_col.len()];
        for _ in 0..s {
            let (best, _) = load
                .iter()
                .enumerate()
                .map(|(i, l)| (i, l + per_col[i]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("at least one device");
            load[best] += per_col[best];
            cols[best] += 1;
        }
        let makespan = load.iter().copied().fold(0.0, f64::max);
        (cols, makespan)
    }

    /// CPU-only block application time.
    pub fn t_block_cpu_only(&self, s: usize) -> f64 {
        self.t_real_block(s) + self.t_recip_on(&self.cpu) * s as f64
    }

    /// Modeled whole-BD-step times `(cpu_only, hybrid)` given the Krylov
    /// iteration count per operator refresh: per `lambda` steps the cost is
    /// `iters` block applications (width `lambda`) plus `lambda` single
    /// applications.
    pub fn step_times(&self, lambda: usize, krylov_iters: usize) -> (f64, f64) {
        let cpu_only = (krylov_iters as f64 * self.t_block_cpu_only(lambda)
            + lambda as f64 * self.t_apply_cpu_only())
            / lambda as f64;
        let (_, block_makespan) = self.partition_block(lambda);
        let hybrid = (krylov_iters as f64 * block_makespan + lambda as f64 * self.t_apply_hybrid())
            / lambda as f64;
        (cpu_only, hybrid)
    }
}

/// Search for the `alpha` that balances modeled CPU real-space time against
/// the modeled accelerator reciprocal time (the Section IV-E tuning), by
/// scanning `r_max` candidates and retuning the mesh for each.
///
/// Returns the chosen parameters and the resulting `(t_real, t_recip)`.
pub fn balance_alpha(
    n: usize,
    phi: f64,
    a: f64,
    eta: f64,
    target_ep: f64,
    cpu: Machine,
    accel: Machine,
) -> (PmeParams, f64, f64) {
    let base = hibd_pme::tune(n, phi, a, eta, target_ep).params;
    let mut best: Option<(PmeParams, f64, f64, f64)> = None;
    for mult in [0.6, 0.8, 1.0, 1.25, 1.5, 2.0, 2.5] {
        let r_max = (base.r_max * mult).min(base.box_l / 2.0);
        let cfg = hibd_pme::tuner::tune_with_rmax(n, phi, a, eta, target_ep, r_max);
        let model = HybridModel::new(cfg.params, n, cpu, vec![accel]);
        let tr = model.t_real();
        let tk = model.t_recip_on(&model.accels[0]);
        let makespan = tr.max(tk);
        if best.as_ref().map(|b| makespan < b.3).unwrap_or(true) {
            best = Some((cfg.params, tr, tk, makespan));
        }
    }
    let (params, tr, tk, _) = best.expect("non-empty candidate set");
    (params, tr, tk)
}

/// Execute one genuinely-overlapped hybrid application on the host (the
/// real/reciprocal concurrency of the paper) and return the measured branch
/// times.
pub fn apply_overlapped_host(op: &mut PmeOperator, f: &[f64], u: &mut [f64]) -> (f64, f64) {
    op.apply_overlapped(f, u)
}

/// Execute one block application `Y = M X` with the static column
/// partitioning of Algorithm 2 line 6: the real-space SpMM runs once over
/// the whole block, then each device's contiguous column chunk goes through
/// the batched reciprocal pipeline. `chunks` holds the per-device column
/// counts from [`HybridModel::partition_block`] (zeros allowed); on this
/// host the chunks execute sequentially, standing in for the per-device
/// offload regions, but the data movement is exactly what real offload
/// would ship — contiguous `[dim][s]` column windows, no gathers.
pub fn apply_block_partitioned(
    op: &mut PmeOperator,
    x: &[f64],
    y: &mut [f64],
    s: usize,
    chunks: &[usize],
) {
    assert_eq!(chunks.iter().sum::<usize>(), s, "chunks must cover all {s} columns");
    op.real_apply_multi(x, y, s);
    let mut col0 = 0;
    for &width in chunks {
        if width == 0 {
            continue;
        }
        op.recip_apply_add_cols(x, y, s, col0, width);
        col0 += width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> HybridModel {
        let params = hibd_pme::tune(n, 0.2, 1.0, 1.0, 1e-3).params;
        HybridModel::new(params, n, Machine::westmere(), vec![Machine::knc(), Machine::knc()])
    }

    #[test]
    fn hybrid_single_apply_never_slower_than_cpu_only() {
        for n in [1000usize, 10_000, 100_000] {
            let m = model(n);
            assert!(m.t_apply_hybrid() <= m.t_apply_cpu_only() + 1e-12, "n={n}");
        }
    }

    #[test]
    fn speedup_grows_with_system_size() {
        // Figure 9 shape: marginal gains for small systems, > 2x for large.
        let small = model(1000);
        let (c_s, h_s) = small.step_times(16, 20);
        let large = model(200_000);
        let (c_l, h_l) = large.step_times(16, 20);
        let speedup_small = c_s / h_s;
        let speedup_large = c_l / h_l;
        assert!(speedup_large > speedup_small, "{speedup_small} vs {speedup_large}");
        assert!(speedup_large > 2.0, "large-system speedup {speedup_large}");
        assert!(speedup_small >= 1.0);
    }

    #[test]
    fn partition_assigns_all_columns() {
        let m = model(50_000);
        let s = 16;
        let (cols, makespan) = m.partition_block(s);
        assert_eq!(cols.iter().sum::<usize>(), s);
        assert_eq!(cols.len(), 3); // 2 accels + cpu
        assert!(makespan > 0.0);
        // Accelerators (faster for large meshes) get at least as many
        // columns as the CPU, which also carries the real-space SpMM.
        assert!(cols[0] + cols[1] >= cols[2]);
    }

    #[test]
    fn partition_makespan_beats_cpu_only() {
        let m = model(100_000);
        let (_, makespan) = m.partition_block(16);
        assert!(makespan < m.t_block_cpu_only(16));
    }

    #[test]
    fn no_accelerators_degrades_gracefully() {
        let params = hibd_pme::tune(5000, 0.2, 1.0, 1.0, 1e-3).params;
        let m = HybridModel::new(params, 5000, Machine::westmere(), vec![]);
        assert_eq!(m.t_apply_hybrid(), m.t_apply_cpu_only());
        let (cols, _) = m.partition_block(8);
        assert_eq!(cols, vec![8]);
    }

    #[test]
    fn balance_alpha_produces_balanced_sides() {
        let (params, tr, tk) =
            balance_alpha(20_000, 0.2, 1.0, 1.0, 1e-3, Machine::westmere(), Machine::knc());
        assert!(params.r_max <= params.box_l / 2.0);
        // Balanced within a factor ~3 (discrete r_max grid).
        let ratio = tr.max(tk) / tr.min(tk).max(1e-12);
        assert!(ratio < 3.0, "t_real {tr:e} vs t_recip {tk:e}");
    }

    #[test]
    fn partitioned_block_apply_matches_apply_multi() {
        use hibd_linalg::LinearOperator;
        use hibd_mathx::Vec3;

        let n = 10;
        let s = 6;
        let params = PmeParams::default();
        // Deterministic scattered positions and forces.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pos: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(next() * params.box_l, next() * params.box_l, next() * params.box_l))
            .collect();
        let x: Vec<f64> = (0..3 * n * s).map(|_| next() - 0.5).collect();
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let mut y_ref = vec![0.0; 3 * n * s];
        op.apply_multi(&x, &mut y_ref, s);
        // A partition like partition_block would emit: uneven chunks + a
        // zero-column device.
        let mut y_part = vec![0.0; 3 * n * s];
        apply_block_partitioned(&mut op, &x, &mut y_part, s, &[3, 0, 2, 1]);
        for i in 0..3 * n * s {
            assert!((y_ref[i] - y_part[i]).abs() < 1e-13, "i={i}: {} vs {}", y_ref[i], y_part[i]);
        }
    }

    #[test]
    fn calibrated_cpu_steers_the_partition() {
        let m = model(50_000);
        let s = 16;
        let (base_cols, _) = m.partition_block(s);
        // A calibrated CPU far faster than its Table I description pulls
        // columns off the accelerators and onto the host.
        let fast = hibd_telemetry::PerfModel {
            bandwidth: 1e13,
            fft_rate: 1e14,
            ifft_rate: 1e14,
            real_rate: 1e12,
        };
        let cal = m.clone().with_calibrated_cpu(fast);
        assert!(cal.t_recip_on(&cal.cpu) < m.t_recip_on(&m.cpu));
        let (cal_cols, _) = cal.partition_block(s);
        assert_eq!(cal_cols.iter().sum::<usize>(), s);
        assert!(cal_cols[2] > base_cols[2], "{base_cols:?} vs {cal_cols:?}");
        // Accelerator predictions are untouched by CPU calibration.
        assert_eq!(cal.t_recip_on(&cal.accels[0]), m.t_recip_on(&m.accels[0]));
    }

    #[test]
    fn zeroed_calibration_falls_back_to_machine_model() {
        let m = model(20_000);
        let cal = m.clone().with_calibrated_cpu(hibd_telemetry::PerfModel::default());
        assert_eq!(cal.t_recip_on(&cal.cpu), m.t_recip_on(&m.cpu));
        assert_eq!(cal.t_real_block(8), m.t_real_block(8));
    }

    #[test]
    fn interconnect_roundtrip_scales_with_n() {
        let link = Interconnect::default();
        let t1 = link.roundtrip(1000);
        let t2 = link.roundtrip(100_000);
        assert!(t2 > t1);
        assert!(t1 > link.latency);
    }
}
