//! The simulated particle suspension.
//!
//! Positions are kept twice: wrapped into the primary box (what the
//! operators consume) and unwrapped (continuous trajectories, what the
//! mean-squared-displacement estimator needs). The builders produce the
//! monodisperse suspensions used throughout the paper's evaluation.
//!
//! A system carries a [`Boundary`]: periodic (the cubic box of the paper,
//! served by the Ewald-family mobility backends) or open (a finite cluster
//! in unbounded solvent, served by the free-space treecode backend). Open
//! systems never wrap: wrapped and unwrapped positions coincide and all pair
//! displacements are raw differences.

use hibd_mathx::Vec3;
use rand::Rng;

/// Boundary condition of the solvent domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Boundary {
    /// Cubic periodic box of side `box_l`; minimum-image displacements.
    #[default]
    Periodic,
    /// Unbounded solvent (free space); raw displacements, nothing wraps.
    Open,
}

/// A monodisperse particle suspension in a cubic periodic box or in open
/// (unbounded) solvent.
#[derive(Clone, Debug)]
pub struct ParticleSystem {
    /// Box side `L` (zero for open boundaries, which have no box).
    pub box_l: f64,
    /// Particle radius `a`.
    pub a: f64,
    /// Fluid viscosity `eta`.
    pub eta: f64,
    boundary: Boundary,
    pos: Vec<Vec3>,
    unwrapped: Vec<Vec3>,
}

impl ParticleSystem {
    /// Wrap the given positions into the box and take them as the initial
    /// configuration of a periodic system.
    pub fn new(positions: Vec<Vec3>, box_l: f64, a: f64, eta: f64) -> ParticleSystem {
        assert!(box_l > 0.0 && a > 0.0 && eta > 0.0);
        let pos: Vec<Vec3> = positions.iter().map(|p| p.wrap_into_box(box_l)).collect();
        let unwrapped = pos.clone();
        ParticleSystem { box_l, a, eta, boundary: Boundary::Periodic, pos, unwrapped }
    }

    /// Take the given positions verbatim as an open-boundary (free-space)
    /// system. `box_l` is zero: there is no box and nothing ever wraps.
    pub fn new_open(positions: Vec<Vec3>, a: f64, eta: f64) -> ParticleSystem {
        assert!(a > 0.0 && eta > 0.0);
        let unwrapped = positions.clone();
        ParticleSystem { box_l: 0.0, a, eta, boundary: Boundary::Open, pos: positions, unwrapped }
    }

    /// Random non-overlapping suspension of `n` unit spheres (`a = eta = 1`)
    /// at volume fraction `phi`, the monodisperse model of Section V-A.
    ///
    /// Uses random sequential insertion; above the RSA saturation regime
    /// (`phi > 0.25`) it falls back to a jittered simple-cubic lattice, from
    /// which the repulsive force quickly equilibrates the structure.
    pub fn random_suspension<R: Rng + ?Sized>(n: usize, phi: f64, rng: &mut R) -> ParticleSystem {
        Self::random_suspension_with(n, phi, 1.0, 1.0, rng)
    }

    /// As [`random_suspension`](Self::random_suspension) with explicit
    /// radius and viscosity.
    pub fn random_suspension_with<R: Rng + ?Sized>(
        n: usize,
        phi: f64,
        a: f64,
        eta: f64,
        rng: &mut R,
    ) -> ParticleSystem {
        let box_l = (4.0 * std::f64::consts::PI * a.powi(3) * n as f64 / (3.0 * phi)).cbrt();
        let pos = if phi <= 0.25 {
            rsa_insert(n, box_l, a, rng).unwrap_or_else(|| lattice_jitter(n, box_l, a, rng))
        } else {
            lattice_jitter(n, box_l, a, rng)
        };
        ParticleSystem::new(pos, box_l, a, eta)
    }

    /// Random non-overlapping open-boundary cluster of `n` spheres: the same
    /// insertion machinery as [`random_suspension_with`](Self::random_suspension_with)
    /// sized for local density `phi`, but with [`Boundary::Open`] — the
    /// "cube of solvent" is just the insertion region, not a periodic box.
    pub fn random_cluster_with<R: Rng + ?Sized>(
        n: usize,
        phi: f64,
        a: f64,
        eta: f64,
        rng: &mut R,
    ) -> ParticleSystem {
        let side = (4.0 * std::f64::consts::PI * a.powi(3) * n as f64 / (3.0 * phi)).cbrt();
        let pos = if phi <= 0.25 {
            rsa_insert(n, side, a, rng).unwrap_or_else(|| lattice_jitter(n, side, a, rng))
        } else {
            lattice_jitter(n, side, a, rng)
        };
        ParticleSystem::new_open(pos, a, eta)
    }

    /// The boundary condition.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Operator-facing positions: wrapped into `[0, L)^3` for periodic
    /// systems, raw for open systems (where they equal the unwrapped ones).
    pub fn positions(&self) -> &[Vec3] {
        &self.pos
    }

    /// Unwrapped positions (continuous trajectories).
    pub fn unwrapped(&self) -> &[Vec3] {
        &self.unwrapped
    }

    /// Overwrite the unwrapped trajectories (checkpoint restore). The
    /// wrapped positions are unchanged; lengths must match.
    pub fn set_unwrapped(&mut self, unwrapped: Vec<Vec3>) {
        assert_eq!(unwrapped.len(), self.pos.len(), "particle count mismatch");
        self.unwrapped = unwrapped;
    }

    /// Achieved volume fraction `n (4/3) pi a^3 / L^3` (meaningless — and
    /// infinite — for open boundaries, which have no box volume).
    pub fn volume_fraction(&self) -> f64 {
        self.len() as f64 * 4.0 / 3.0 * std::f64::consts::PI * self.a.powi(3) / self.box_l.powi(3)
    }

    /// Apply a flat displacement vector `d` (length `3n`): unwrapped
    /// coordinates accumulate it verbatim; wrapped coordinates re-enter the
    /// box (periodic) or accumulate it too (open).
    pub fn apply_displacements(&mut self, d: &[f64]) {
        assert_eq!(d.len(), 3 * self.len());
        for (i, (p, u)) in self.pos.iter_mut().zip(self.unwrapped.iter_mut()).enumerate() {
            let dv = Vec3::new(d[3 * i], d[3 * i + 1], d[3 * i + 2]);
            *u += dv;
            *p = match self.boundary {
                Boundary::Periodic => (*p + dv).wrap_into_box(self.box_l),
                Boundary::Open => *p + dv,
            };
        }
    }

    /// The displacement `r_i - r_j` under this system's boundary: minimum
    /// image for periodic, raw for open.
    pub fn pair_dr(&self, i: usize, j: usize) -> Vec3 {
        let raw = self.pos[i] - self.pos[j];
        match self.boundary {
            Boundary::Periodic => raw.min_image(self.box_l),
            Boundary::Open => raw,
        }
    }

    /// Smallest pair separation (minimum image for periodic systems, raw for
    /// open ones); `None` for n < 2.
    pub fn min_separation(&self) -> Option<f64> {
        if self.len() < 2 {
            return None;
        }
        let mut min = f64::INFINITY;
        match self.boundary {
            Boundary::Periodic => {
                let cl = hibd_cells::CellList::new(&self.pos, self.box_l, self.box_l / 2.001);
                cl.for_each_pair(|_, _, _, r2| {
                    min = min.min(r2.sqrt());
                });
                // All pairs beyond L/2 from each other: fall back to brute scan.
                if min.is_infinite() {
                    for i in 0..self.len() {
                        for j in i + 1..self.len() {
                            min = min.min((self.pos[i] - self.pos[j]).min_image(self.box_l).norm());
                        }
                    }
                }
            }
            Boundary::Open => {
                let cl = hibd_cells::CellList::new_open(&self.pos, 4.0 * self.a);
                cl.for_each_pair(|_, _, _, r2| {
                    min = min.min(r2.sqrt());
                });
                // Cloud sparser than the cell cutoff: brute scan.
                if min.is_infinite() {
                    for i in 0..self.len() {
                        for j in i + 1..self.len() {
                            min = min.min((self.pos[i] - self.pos[j]).norm());
                        }
                    }
                }
            }
        }
        Some(min)
    }
}

/// Random sequential insertion of non-overlapping spheres. `None` if an
/// insertion cannot be placed within the attempt budget.
fn rsa_insert<R: Rng + ?Sized>(n: usize, box_l: f64, a: f64, rng: &mut R) -> Option<Vec<Vec3>> {
    // Spatial hash with cells of side >= 2a for O(1) overlap checks.
    let ncell = ((box_l / (2.0 * a)).floor() as usize).max(1);
    let cell_of = |p: Vec3| -> usize {
        let f = |v: f64| (((v / box_l) * ncell as f64) as usize).min(ncell - 1);
        (f(p.x) * ncell + f(p.y)) * ncell + f(p.z)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); ncell * ncell * ncell];
    let mut pos: Vec<Vec3> = Vec::with_capacity(n);
    let min2 = 4.0 * a * a;
    'outer: for _ in 0..n {
        for _attempt in 0..2000 {
            let cand = Vec3::new(
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
            );
            let c = cell_of(cand);
            let cz = c % ncell;
            let cy = (c / ncell) % ncell;
            let cx = c / (ncell * ncell);
            let mut ok = true;
            'scan: for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        let nx = (cx as i64 + dx).rem_euclid(ncell as i64) as usize;
                        let ny = (cy as i64 + dy).rem_euclid(ncell as i64) as usize;
                        let nz = (cz as i64 + dz).rem_euclid(ncell as i64) as usize;
                        for &other in &grid[(nx * ncell + ny) * ncell + nz] {
                            let dr = (cand - pos[other as usize]).min_image(box_l);
                            if dr.norm2() < min2 {
                                ok = false;
                                break 'scan;
                            }
                        }
                    }
                }
            }
            if ok {
                grid[c].push(pos.len() as u32);
                pos.push(cand);
                continue 'outer;
            }
        }
        return None;
    }
    Some(pos)
}

/// Jittered simple-cubic lattice that fits `n` spheres; valid (overlap-free)
/// as long as the lattice constant exceeds `2a`, which holds up to
/// `phi ~ 0.52` minus the jitter allowance.
fn lattice_jitter<R: Rng + ?Sized>(n: usize, box_l: f64, a: f64, rng: &mut R) -> Vec<Vec3> {
    let per_dim = (n as f64).cbrt().ceil() as usize;
    let spacing = box_l / per_dim as f64;
    let jitter = ((spacing - 2.0 * a) * 0.45).max(0.0);
    let mut pos = Vec::with_capacity(n);
    'fill: for ix in 0..per_dim {
        for iy in 0..per_dim {
            for iz in 0..per_dim {
                if pos.len() == n {
                    break 'fill;
                }
                let base = Vec3::new(
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                );
                let j = Vec3::new(
                    rng.gen_range(-0.5..0.5) * jitter,
                    rng.gen_range(-0.5..0.5) * jitter,
                    rng.gen_range(-0.5..0.5) * jitter,
                );
                pos.push(base + j);
            }
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn suspension_hits_target_volume_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        for phi in [0.05, 0.1, 0.2, 0.3, 0.4] {
            let sys = ParticleSystem::random_suspension(200, phi, &mut rng);
            assert!((sys.volume_fraction() - phi).abs() < 1e-9, "phi {phi}");
            assert_eq!(sys.len(), 200);
        }
    }

    #[test]
    fn suspension_has_no_overlaps_at_low_phi() {
        let mut rng = StdRng::seed_from_u64(2);
        let sys = ParticleSystem::random_suspension(300, 0.2, &mut rng);
        let min = sys.min_separation().unwrap();
        assert!(min >= 2.0, "min separation {min}");
    }

    #[test]
    fn lattice_fallback_has_no_overlaps_at_high_phi() {
        let mut rng = StdRng::seed_from_u64(3);
        let sys = ParticleSystem::random_suspension(216, 0.4, &mut rng);
        let min = sys.min_separation().unwrap();
        assert!(min >= 2.0 * 0.999, "min separation {min}");
    }

    #[test]
    fn displacements_update_wrapped_and_unwrapped() {
        let pos = vec![Vec3::new(9.9, 5.0, 5.0), Vec3::new(1.0, 1.0, 1.0)];
        let mut sys = ParticleSystem::new(pos, 10.0, 1.0, 1.0);
        let d = vec![0.3, 0.0, 0.0, -2.0, 0.0, 0.0];
        sys.apply_displacements(&d);
        // Particle 0 wrapped around the seam.
        assert!((sys.positions()[0].x - 0.2).abs() < 1e-12);
        // Unwrapped keeps going.
        assert!((sys.unwrapped()[0].x - 10.2).abs() < 1e-12);
        assert!((sys.unwrapped()[1].x - -1.0).abs() < 1e-12);
        assert!((sys.positions()[1].x - 9.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ParticleSystem::random_suspension(50, 0.15, &mut StdRng::seed_from_u64(7));
        let b = ParticleSystem::random_suspension(50, 0.15, &mut StdRng::seed_from_u64(7));
        for (x, y) in a.positions().iter().zip(b.positions()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn open_system_never_wraps() {
        let pos = vec![Vec3::new(9.9, 5.0, 5.0), Vec3::new(1.0, 1.0, 1.0)];
        let mut sys = ParticleSystem::new_open(pos, 1.0, 1.0);
        assert_eq!(sys.boundary(), Boundary::Open);
        assert_eq!(sys.box_l, 0.0);
        let d = vec![0.3, 0.0, 0.0, -2.0, 0.0, 0.0];
        sys.apply_displacements(&d);
        assert!((sys.positions()[0].x - 10.2).abs() < 1e-12);
        assert!((sys.positions()[1].x - -1.0).abs() < 1e-12);
        // Wrapped and unwrapped coincide for open systems.
        assert_eq!(sys.positions(), sys.unwrapped());
    }

    #[test]
    fn open_pair_dr_is_raw() {
        let sys = ParticleSystem::new_open(
            vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(9.0, 0.0, 0.0)],
            1.0,
            1.0,
        );
        assert!((sys.pair_dr(0, 1).x - -9.0).abs() < 1e-12);
        assert!((sys.min_separation().unwrap() - 9.0).abs() < 1e-12);
        let per = ParticleSystem::new(
            vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(9.0, 0.0, 0.0)],
            10.0,
            1.0,
            1.0,
        );
        assert!((per.pair_dr(0, 1).x - 1.0).abs() < 1e-12, "periodic min-images");
    }

    #[test]
    fn random_cluster_is_open_and_overlap_free() {
        let mut rng = StdRng::seed_from_u64(9);
        let sys = ParticleSystem::random_cluster_with(200, 0.15, 1.0, 1.0, &mut rng);
        assert_eq!(sys.boundary(), Boundary::Open);
        assert_eq!(sys.len(), 200);
        assert!(sys.min_separation().unwrap() >= 2.0);
    }

    #[test]
    fn min_separation_of_pair() {
        let sys = ParticleSystem::new(
            vec![Vec3::new(0.5, 5.0, 5.0), Vec3::new(9.5, 5.0, 5.0)],
            10.0,
            1.0,
            1.0,
        );
        assert!((sys.min_separation().unwrap() - 1.0).abs() < 1e-12);
    }
}
