//! The simulated particle suspension.
//!
//! Positions are kept twice: wrapped into the primary box (what the
//! operators consume) and unwrapped (continuous trajectories, what the
//! mean-squared-displacement estimator needs). The builders produce the
//! monodisperse suspensions used throughout the paper's evaluation.

use hibd_mathx::Vec3;
use rand::Rng;

/// A monodisperse particle suspension in a cubic periodic box.
#[derive(Clone, Debug)]
pub struct ParticleSystem {
    /// Box side `L`.
    pub box_l: f64,
    /// Particle radius `a`.
    pub a: f64,
    /// Fluid viscosity `eta`.
    pub eta: f64,
    pos: Vec<Vec3>,
    unwrapped: Vec<Vec3>,
}

impl ParticleSystem {
    /// Wrap the given positions into the box and take them as the initial
    /// configuration.
    pub fn new(positions: Vec<Vec3>, box_l: f64, a: f64, eta: f64) -> ParticleSystem {
        assert!(box_l > 0.0 && a > 0.0 && eta > 0.0);
        let pos: Vec<Vec3> = positions.iter().map(|p| p.wrap_into_box(box_l)).collect();
        let unwrapped = pos.clone();
        ParticleSystem { box_l, a, eta, pos, unwrapped }
    }

    /// Random non-overlapping suspension of `n` unit spheres (`a = eta = 1`)
    /// at volume fraction `phi`, the monodisperse model of Section V-A.
    ///
    /// Uses random sequential insertion; above the RSA saturation regime
    /// (`phi > 0.25`) it falls back to a jittered simple-cubic lattice, from
    /// which the repulsive force quickly equilibrates the structure.
    pub fn random_suspension<R: Rng + ?Sized>(n: usize, phi: f64, rng: &mut R) -> ParticleSystem {
        Self::random_suspension_with(n, phi, 1.0, 1.0, rng)
    }

    /// As [`random_suspension`](Self::random_suspension) with explicit
    /// radius and viscosity.
    pub fn random_suspension_with<R: Rng + ?Sized>(
        n: usize,
        phi: f64,
        a: f64,
        eta: f64,
        rng: &mut R,
    ) -> ParticleSystem {
        let box_l = (4.0 * std::f64::consts::PI * a.powi(3) * n as f64 / (3.0 * phi)).cbrt();
        let pos = if phi <= 0.25 {
            rsa_insert(n, box_l, a, rng).unwrap_or_else(|| lattice_jitter(n, box_l, a, rng))
        } else {
            lattice_jitter(n, box_l, a, rng)
        };
        ParticleSystem::new(pos, box_l, a, eta)
    }

    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Wrapped positions (inside `[0, L)^3`).
    pub fn positions(&self) -> &[Vec3] {
        &self.pos
    }

    /// Unwrapped positions (continuous trajectories).
    pub fn unwrapped(&self) -> &[Vec3] {
        &self.unwrapped
    }

    /// Overwrite the unwrapped trajectories (checkpoint restore). The
    /// wrapped positions are unchanged; lengths must match.
    pub fn set_unwrapped(&mut self, unwrapped: Vec<Vec3>) {
        assert_eq!(unwrapped.len(), self.pos.len(), "particle count mismatch");
        self.unwrapped = unwrapped;
    }

    /// Achieved volume fraction `n (4/3) pi a^3 / L^3`.
    pub fn volume_fraction(&self) -> f64 {
        self.len() as f64 * 4.0 / 3.0 * std::f64::consts::PI * self.a.powi(3) / self.box_l.powi(3)
    }

    /// Apply a flat displacement vector `d` (length `3n`): unwrapped
    /// coordinates accumulate it verbatim, wrapped coordinates re-enter the
    /// box.
    pub fn apply_displacements(&mut self, d: &[f64]) {
        assert_eq!(d.len(), 3 * self.len());
        for (i, (p, u)) in self.pos.iter_mut().zip(self.unwrapped.iter_mut()).enumerate() {
            let dv = Vec3::new(d[3 * i], d[3 * i + 1], d[3 * i + 2]);
            *u += dv;
            *p = (*p + dv).wrap_into_box(self.box_l);
        }
    }

    /// Smallest pair separation (minimum image); `None` for n < 2.
    pub fn min_separation(&self) -> Option<f64> {
        if self.len() < 2 {
            return None;
        }
        let cl = hibd_cells::CellList::new(&self.pos, self.box_l, self.box_l / 2.001);
        let mut min = f64::INFINITY;
        cl.for_each_pair(|_, _, _, r2| {
            min = min.min(r2.sqrt());
        });
        // All pairs beyond L/2 from each other: fall back to brute scan.
        if min.is_infinite() {
            for i in 0..self.len() {
                for j in i + 1..self.len() {
                    min = min.min((self.pos[i] - self.pos[j]).min_image(self.box_l).norm());
                }
            }
        }
        Some(min)
    }
}

/// Random sequential insertion of non-overlapping spheres. `None` if an
/// insertion cannot be placed within the attempt budget.
fn rsa_insert<R: Rng + ?Sized>(n: usize, box_l: f64, a: f64, rng: &mut R) -> Option<Vec<Vec3>> {
    // Spatial hash with cells of side >= 2a for O(1) overlap checks.
    let ncell = ((box_l / (2.0 * a)).floor() as usize).max(1);
    let cell_of = |p: Vec3| -> usize {
        let f = |v: f64| (((v / box_l) * ncell as f64) as usize).min(ncell - 1);
        (f(p.x) * ncell + f(p.y)) * ncell + f(p.z)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); ncell * ncell * ncell];
    let mut pos: Vec<Vec3> = Vec::with_capacity(n);
    let min2 = 4.0 * a * a;
    'outer: for _ in 0..n {
        for _attempt in 0..2000 {
            let cand = Vec3::new(
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
            );
            let c = cell_of(cand);
            let cz = c % ncell;
            let cy = (c / ncell) % ncell;
            let cx = c / (ncell * ncell);
            let mut ok = true;
            'scan: for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        let nx = (cx as i64 + dx).rem_euclid(ncell as i64) as usize;
                        let ny = (cy as i64 + dy).rem_euclid(ncell as i64) as usize;
                        let nz = (cz as i64 + dz).rem_euclid(ncell as i64) as usize;
                        for &other in &grid[(nx * ncell + ny) * ncell + nz] {
                            let dr = (cand - pos[other as usize]).min_image(box_l);
                            if dr.norm2() < min2 {
                                ok = false;
                                break 'scan;
                            }
                        }
                    }
                }
            }
            if ok {
                grid[c].push(pos.len() as u32);
                pos.push(cand);
                continue 'outer;
            }
        }
        return None;
    }
    Some(pos)
}

/// Jittered simple-cubic lattice that fits `n` spheres; valid (overlap-free)
/// as long as the lattice constant exceeds `2a`, which holds up to
/// `phi ~ 0.52` minus the jitter allowance.
fn lattice_jitter<R: Rng + ?Sized>(n: usize, box_l: f64, a: f64, rng: &mut R) -> Vec<Vec3> {
    let per_dim = (n as f64).cbrt().ceil() as usize;
    let spacing = box_l / per_dim as f64;
    let jitter = ((spacing - 2.0 * a) * 0.45).max(0.0);
    let mut pos = Vec::with_capacity(n);
    'fill: for ix in 0..per_dim {
        for iy in 0..per_dim {
            for iz in 0..per_dim {
                if pos.len() == n {
                    break 'fill;
                }
                let base = Vec3::new(
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                );
                let j = Vec3::new(
                    rng.gen_range(-0.5..0.5) * jitter,
                    rng.gen_range(-0.5..0.5) * jitter,
                    rng.gen_range(-0.5..0.5) * jitter,
                );
                pos.push(base + j);
            }
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn suspension_hits_target_volume_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        for phi in [0.05, 0.1, 0.2, 0.3, 0.4] {
            let sys = ParticleSystem::random_suspension(200, phi, &mut rng);
            assert!((sys.volume_fraction() - phi).abs() < 1e-9, "phi {phi}");
            assert_eq!(sys.len(), 200);
        }
    }

    #[test]
    fn suspension_has_no_overlaps_at_low_phi() {
        let mut rng = StdRng::seed_from_u64(2);
        let sys = ParticleSystem::random_suspension(300, 0.2, &mut rng);
        let min = sys.min_separation().unwrap();
        assert!(min >= 2.0, "min separation {min}");
    }

    #[test]
    fn lattice_fallback_has_no_overlaps_at_high_phi() {
        let mut rng = StdRng::seed_from_u64(3);
        let sys = ParticleSystem::random_suspension(216, 0.4, &mut rng);
        let min = sys.min_separation().unwrap();
        assert!(min >= 2.0 * 0.999, "min separation {min}");
    }

    #[test]
    fn displacements_update_wrapped_and_unwrapped() {
        let pos = vec![Vec3::new(9.9, 5.0, 5.0), Vec3::new(1.0, 1.0, 1.0)];
        let mut sys = ParticleSystem::new(pos, 10.0, 1.0, 1.0);
        let d = vec![0.3, 0.0, 0.0, -2.0, 0.0, 0.0];
        sys.apply_displacements(&d);
        // Particle 0 wrapped around the seam.
        assert!((sys.positions()[0].x - 0.2).abs() < 1e-12);
        // Unwrapped keeps going.
        assert!((sys.unwrapped()[0].x - 10.2).abs() < 1e-12);
        assert!((sys.unwrapped()[1].x - -1.0).abs() < 1e-12);
        assert!((sys.positions()[1].x - 9.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ParticleSystem::random_suspension(50, 0.15, &mut StdRng::seed_from_u64(7));
        let b = ParticleSystem::random_suspension(50, 0.15, &mut StdRng::seed_from_u64(7));
        for (x, y) in a.positions().iter().zip(b.positions()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn min_separation_of_pair() {
        let sys = ParticleSystem::new(
            vec![Vec3::new(0.5, 5.0, 5.0), Vec3::new(9.5, 5.0, 5.0)],
            10.0,
            1.0,
            1.0,
        );
        assert!((sys.min_separation().unwrap() - 1.0).abs() < 1e-12);
    }
}
