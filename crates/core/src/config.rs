//! The hibd configuration format.
//!
//! A deliberately tiny, dependency-free `key = value` format with `#`
//! comments — enough to describe every knob the drivers expose without
//! pulling a serialization stack into the build:
//!
//! ```text
//! # suspension
//! particles      = 1000
//! volume_fraction = 0.2
//! seed           = 7
//!
//! # integrator
//! algorithm   = matrix-free      # or: dense
//! dt          = 0.01
//! kbt         = 1.0
//! lambda_rpy  = 16
//! e_k         = 1e-2
//! e_p         = 1e-3
//! steps       = 1000
//!
//! # forces
//! repulsion   = on
//! gravity     = 0 0 -0.5
//! lj_epsilon  = 0.0
//!
//! # output
//! trajectory          = out.xyz
//! trajectory_interval = 50
//! report_interval     = 100
//! checkpoint          = state.hibd
//! checkpoint_interval = 500
//! ```

use crate::forces::{ConstantForce, Force, LennardJones, RepulsiveHarmonic};
use crate::mf_bd::{DisplacementMode, MatrixFreeConfig};
use crate::system::{Boundary, ParticleSystem};
use hibd_mathx::Vec3;
use hibd_treecode::{TreeEval, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;

/// Which propagation algorithm to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 2: PME + block Krylov.
    #[default]
    MatrixFree,
    /// Algorithm 1: dense Ewald + Cholesky (baseline; small systems only).
    Dense,
}

/// Brownian displacement solver for the matrix-free algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Displacement {
    /// Block Lanczos over the whole `lambda_rpy` window (Algorithm 2).
    #[default]
    BlockKrylov,
    /// One Lanczos solve per displacement vector (ablation baseline).
    SingleKrylov,
    /// Fixman's Chebyshev polynomial method.
    Chebyshev,
    /// Positively-split Ewald sampling (wave-space exact square root plus
    /// sparse near-field Lanczos).
    SplitEwald,
}

/// Far-field strategy of the open-boundary hierarchical operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FarFieldEval {
    /// Node-to-particle treecode (`O(n log n)` far field).
    Tree,
    /// Kernel-independent FMM with the M2L/L2L/L2P downward pass (`O(n)`).
    Fmm,
}

/// A fully parsed simulation specification.
#[derive(Clone, Debug)]
pub struct SimSpec {
    pub particles: usize,
    pub volume_fraction: f64,
    pub radius: f64,
    pub viscosity: f64,
    pub seed: u64,
    /// Number of replicas stepped in lockstep by `hibd ensemble`. Replica
    /// `r` uses seed `seed + r`; `hibd run` requires `replicas = 1`.
    pub replicas: usize,
    /// Boundary condition: periodic box (PME mobility) or open/free-space
    /// cluster (treecode mobility).
    pub boundary: Boundary,
    /// Treecode MAC parameter for open-boundary runs; `None` lets the
    /// measured tuner derive it from `e_p`.
    pub theta: Option<f64>,
    /// Far-field strategy for open-boundary runs; `None` means the default
    /// node-to-particle treecode.
    pub eval: Option<FarFieldEval>,
    pub algorithm: Algorithm,
    pub displacement: Displacement,
    pub dt: f64,
    pub kbt: f64,
    pub lambda_rpy: usize,
    pub e_k: f64,
    pub e_p: f64,
    pub steps: usize,
    pub repulsion: bool,
    pub gravity: Option<Vec3>,
    pub lj_epsilon: f64,
    pub trajectory: Option<String>,
    pub trajectory_interval: usize,
    pub report_interval: usize,
    pub checkpoint: Option<String>,
    pub checkpoint_interval: usize,
    /// Wall-clock budget enforced by `hibd serve`: a job still running
    /// after this many seconds is checkpointed and failed as expired.
    /// `None` (the default) means no deadline; `hibd run` ignores it.
    pub deadline_seconds: Option<f64>,
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            particles: 100,
            volume_fraction: 0.2,
            radius: 1.0,
            viscosity: 1.0,
            seed: 2014,
            replicas: 1,
            boundary: Boundary::Periodic,
            theta: None,
            eval: None,
            algorithm: Algorithm::MatrixFree,
            displacement: Displacement::BlockKrylov,
            dt: 0.01,
            kbt: 1.0,
            lambda_rpy: 16,
            e_k: 1e-2,
            e_p: 1e-3,
            steps: 100,
            repulsion: true,
            gravity: None,
            lj_epsilon: 0.0,
            trajectory: None,
            trajectory_interval: 50,
            report_interval: 100,
            checkpoint: None,
            checkpoint_interval: 0,
            deadline_seconds: None,
        }
    }
}

/// Parse error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

impl SimSpec {
    /// Parse the configuration text.
    pub fn parse(text: &str) -> Result<SimSpec, ConfigError> {
        let mut kv: BTreeMap<String, (usize, String)> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(line_no, format!("expected `key = value`, got `{line}`")))?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if value.is_empty() {
                return Err(err(line_no, format!("empty value for `{key}`")));
            }
            if kv.insert(key.clone(), (line_no, value)).is_some() {
                return Err(err(line_no, format!("duplicate key `{key}`")));
            }
        }

        let mut spec = SimSpec::default();
        for (key, (line, value)) in &kv {
            match key.as_str() {
                "particles" => spec.particles = parse_num(*line, key, value)?,
                "volume_fraction" => spec.volume_fraction = parse_num(*line, key, value)?,
                "radius" => spec.radius = parse_num(*line, key, value)?,
                "viscosity" => spec.viscosity = parse_num(*line, key, value)?,
                "seed" => spec.seed = parse_num(*line, key, value)?,
                "replicas" => spec.replicas = parse_num(*line, key, value)?,
                "boundary" => {
                    spec.boundary = match value.to_ascii_lowercase().as_str() {
                        "periodic" | "pbc" => Boundary::Periodic,
                        "open" | "free" | "free-space" => Boundary::Open,
                        other => {
                            return Err(err(
                                *line,
                                format!("unknown boundary `{other}` (periodic | open)"),
                            ))
                        }
                    }
                }
                "theta" => spec.theta = Some(parse_num(*line, key, value)?),
                "eval" => {
                    spec.eval = Some(match value.to_ascii_lowercase().as_str() {
                        "tree" | "treecode" => FarFieldEval::Tree,
                        "fmm" => FarFieldEval::Fmm,
                        other => {
                            return Err(err(*line, format!("unknown eval `{other}` (tree | fmm)")))
                        }
                    });
                }
                "algorithm" => {
                    spec.algorithm = match value.to_ascii_lowercase().as_str() {
                        "matrix-free" | "matrixfree" | "pme" => Algorithm::MatrixFree,
                        "dense" | "ewald" | "cholesky" => Algorithm::Dense,
                        other => {
                            return Err(err(
                                *line,
                                format!("unknown algorithm `{other}` (matrix-free | dense)"),
                            ))
                        }
                    }
                }
                "displacement" => {
                    spec.displacement = match value.to_ascii_lowercase().as_str() {
                        "block-krylov" | "block" => Displacement::BlockKrylov,
                        "single-krylov" | "single" => Displacement::SingleKrylov,
                        "chebyshev" => Displacement::Chebyshev,
                        "split-ewald" | "pse" => Displacement::SplitEwald,
                        other => {
                            return Err(err(
                                *line,
                                format!(
                                    "unknown displacement `{other}` (block-krylov | \
                                     single-krylov | chebyshev | split-ewald)"
                                ),
                            ))
                        }
                    }
                }
                "dt" => spec.dt = parse_num(*line, key, value)?,
                "kbt" => spec.kbt = parse_num(*line, key, value)?,
                "lambda_rpy" => spec.lambda_rpy = parse_num(*line, key, value)?,
                "e_k" => spec.e_k = parse_num(*line, key, value)?,
                "e_p" => spec.e_p = parse_num(*line, key, value)?,
                "steps" => spec.steps = parse_num(*line, key, value)?,
                "repulsion" => spec.repulsion = parse_bool(*line, key, value)?,
                "gravity" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() != 3 {
                        return Err(err(*line, "gravity needs three components"));
                    }
                    let mut g = [0.0; 3];
                    for (i, p) in parts.iter().enumerate() {
                        g[i] = p
                            .parse()
                            .map_err(|_| err(*line, format!("bad gravity component `{p}`")))?;
                    }
                    spec.gravity = Some(Vec3::new(g[0], g[1], g[2]));
                }
                "lj_epsilon" => spec.lj_epsilon = parse_num(*line, key, value)?,
                "trajectory" => spec.trajectory = Some(value.clone()),
                "trajectory_interval" => spec.trajectory_interval = parse_num(*line, key, value)?,
                "report_interval" => spec.report_interval = parse_num(*line, key, value)?,
                "checkpoint" => spec.checkpoint = Some(value.clone()),
                "checkpoint_interval" => spec.checkpoint_interval = parse_num(*line, key, value)?,
                "deadline_seconds" => spec.deadline_seconds = Some(parse_num(*line, key, value)?),
                other => return Err(err(*line, format!("unknown key `{other}`"))),
            }
        }
        spec.validate().map_err(|m| err(0, m))?;
        Ok(spec)
    }

    /// Cross-field validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.particles == 0 {
            return Err("particles must be positive".into());
        }
        if self.replicas == 0 {
            return Err("replicas must be at least 1".into());
        }
        if self.replicas > 1 && self.algorithm != Algorithm::MatrixFree {
            return Err("ensemble stepping shares matrix-free operator plans; replicas > 1 \
                 needs algorithm = matrix-free"
                .into());
        }
        if !(0.0..0.52).contains(&self.volume_fraction) || self.volume_fraction <= 0.0 {
            return Err(format!(
                "volume_fraction {} outside supported (0, 0.52)",
                self.volume_fraction
            ));
        }
        if self.dt <= 0.0 {
            return Err("dt must be positive".into());
        }
        if self.kbt < 0.0 {
            return Err("kbt must be nonnegative".into());
        }
        if self.lambda_rpy == 0 {
            return Err("lambda_rpy must be at least 1".into());
        }
        if !(self.e_k > 0.0 && self.e_k < 1.0) {
            return Err(format!("e_k {} outside (0, 1)", self.e_k));
        }
        if !(self.e_p > 0.0 && self.e_p < 0.5) {
            return Err(format!("e_p {} outside (0, 0.5)", self.e_p));
        }
        if let Some(theta) = self.theta {
            if !(theta > 0.0 && theta < 1.0) {
                return Err(format!("theta {theta} outside (0, 1)"));
            }
            if self.boundary != Boundary::Open {
                return Err("theta tunes the open-boundary treecode; set boundary = open".into());
            }
        }
        if self.eval.is_some() && self.boundary != Boundary::Open {
            return Err(
                "eval selects the open-boundary far-field strategy; set boundary = open".into()
            );
        }
        if self.boundary == Boundary::Open {
            if self.algorithm == Algorithm::Dense {
                return Err("the dense Ewald baseline is periodic-only; open boundaries need \
                     algorithm = matrix-free"
                    .into());
            }
            if self.displacement == Displacement::SplitEwald {
                return Err("split-ewald sampling is wave-space (periodic-only); open \
                     boundaries need an M*v displacement mode"
                    .into());
            }
        }
        if self.algorithm == Algorithm::Dense && self.displacement != Displacement::BlockKrylov {
            return Err("displacement selects the matrix-free solver; it has no effect with \
                 algorithm = dense"
                .into());
        }
        if self.algorithm == Algorithm::Dense && self.particles > 5000 {
            return Err(format!(
                "dense algorithm at n = {} would need {:.1} GiB for the mobility matrix; \
                 use matrix-free",
                self.particles,
                (3.0 * self.particles as f64).powi(2) * 8.0 / 1024f64.powi(3)
            ));
        }
        if self.trajectory.is_some() && self.trajectory_interval == 0 {
            return Err("trajectory_interval must be positive when trajectory is set".into());
        }
        if self.checkpoint.is_some() && self.checkpoint_interval == 0 {
            return Err("checkpoint_interval must be positive when checkpoint is set".into());
        }
        if let Some(d) = self.deadline_seconds {
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("deadline_seconds {d} must be positive"));
            }
        }
        Ok(())
    }

    /// The [`MatrixFreeConfig`] this spec resolves to (shared by `hibd
    /// run`, `hibd ensemble`, and `hibd serve`).
    #[must_use]
    pub fn matrix_free_config(&self) -> MatrixFreeConfig {
        let eval = match self.eval {
            Some(FarFieldEval::Fmm) => TreeEval::Fmm,
            Some(FarFieldEval::Tree) | None => TreeEval::Tree,
        };
        MatrixFreeConfig {
            dt: self.dt,
            kbt: self.kbt,
            lambda_rpy: self.lambda_rpy,
            e_k: self.e_k,
            target_ep: self.e_p,
            displacement_mode: match self.displacement {
                Displacement::BlockKrylov => DisplacementMode::BlockKrylov,
                Displacement::SingleKrylov => DisplacementMode::SingleKrylov,
                Displacement::Chebyshev => DisplacementMode::Chebyshev,
                Displacement::SplitEwald => DisplacementMode::SplitEwald,
            },
            tree: self.theta.map(|theta| TreeParams { theta, eval, ..TreeParams::default() }),
            tree_eval: eval,
            ..Default::default()
        }
    }

    /// Generate the initial configuration for `seed` (replica `r` of an
    /// ensemble passes `spec.seed + r`).
    #[must_use]
    pub fn build_system(&self, seed: u64) -> ParticleSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.boundary {
            Boundary::Periodic => ParticleSystem::random_suspension_with(
                self.particles,
                self.volume_fraction,
                self.radius,
                self.viscosity,
                &mut rng,
            ),
            Boundary::Open => ParticleSystem::random_cluster_with(
                self.particles,
                self.volume_fraction,
                self.radius,
                self.viscosity,
                &mut rng,
            ),
        }
    }

    /// The deterministic forces this spec turns on, ready to attach to a
    /// driver in a fixed order (repulsion, gravity, LJ).
    #[must_use]
    pub fn forces(&self) -> Vec<Box<dyn Force>> {
        let mut out: Vec<Box<dyn Force>> = Vec::new();
        if self.repulsion {
            out.push(Box::new(RepulsiveHarmonic::default()));
        }
        if let Some(g) = self.gravity {
            out.push(Box::new(ConstantForce(g)));
        }
        if self.lj_epsilon > 0.0 {
            out.push(Box::new(LennardJones::wca(self.lj_epsilon, 2.0 * self.radius)));
        }
        out
    }
}

impl SimSpec {
    /// Serialize back to the config text format (inverse of [`parse`](Self::parse)).
    pub fn to_config_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        writeln!(out, "particles = {}", self.particles).unwrap();
        writeln!(out, "volume_fraction = {}", self.volume_fraction).unwrap();
        writeln!(out, "radius = {}", self.radius).unwrap();
        writeln!(out, "viscosity = {}", self.viscosity).unwrap();
        writeln!(out, "seed = {}", self.seed).unwrap();
        writeln!(out, "replicas = {}", self.replicas).unwrap();
        let boundary = match self.boundary {
            Boundary::Periodic => "periodic",
            Boundary::Open => "open",
        };
        writeln!(out, "boundary = {boundary}").unwrap();
        if let Some(theta) = self.theta {
            writeln!(out, "theta = {theta}").unwrap();
        }
        if let Some(eval) = self.eval {
            let eval = match eval {
                FarFieldEval::Tree => "tree",
                FarFieldEval::Fmm => "fmm",
            };
            writeln!(out, "eval = {eval}").unwrap();
        }
        let alg = match self.algorithm {
            Algorithm::MatrixFree => "matrix-free",
            Algorithm::Dense => "dense",
        };
        writeln!(out, "algorithm = {alg}").unwrap();
        let disp = match self.displacement {
            Displacement::BlockKrylov => "block-krylov",
            Displacement::SingleKrylov => "single-krylov",
            Displacement::Chebyshev => "chebyshev",
            Displacement::SplitEwald => "split-ewald",
        };
        writeln!(out, "displacement = {disp}").unwrap();
        writeln!(out, "dt = {}", self.dt).unwrap();
        writeln!(out, "kbt = {}", self.kbt).unwrap();
        writeln!(out, "lambda_rpy = {}", self.lambda_rpy).unwrap();
        writeln!(out, "e_k = {}", self.e_k).unwrap();
        writeln!(out, "e_p = {}", self.e_p).unwrap();
        writeln!(out, "steps = {}", self.steps).unwrap();
        writeln!(out, "repulsion = {}", if self.repulsion { "on" } else { "off" }).unwrap();
        if let Some(g) = self.gravity {
            writeln!(out, "gravity = {} {} {}", g.x, g.y, g.z).unwrap();
        }
        writeln!(out, "lj_epsilon = {}", self.lj_epsilon).unwrap();
        if let Some(t) = &self.trajectory {
            writeln!(out, "trajectory = {t}").unwrap();
        }
        writeln!(out, "trajectory_interval = {}", self.trajectory_interval).unwrap();
        writeln!(out, "report_interval = {}", self.report_interval).unwrap();
        if let Some(c) = &self.checkpoint {
            writeln!(out, "checkpoint = {c}").unwrap();
        }
        writeln!(out, "checkpoint_interval = {}", self.checkpoint_interval).unwrap();
        if let Some(d) = self.deadline_seconds {
            writeln!(out, "deadline_seconds = {d}").unwrap();
        }
        out
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, key: &str, value: &str) -> Result<T, ConfigError> {
    value.parse().map_err(|_| err(line, format!("cannot parse `{value}` for `{key}`")))
}

fn parse_bool(line: usize, key: &str, value: &str) -> Result<bool, ConfigError> {
    match value.to_ascii_lowercase().as_str() {
        "on" | "true" | "yes" | "1" => Ok(true),
        "off" | "false" | "no" | "0" => Ok(false),
        other => Err(err(line, format!("cannot parse `{other}` as boolean for `{key}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
            # system
            particles = 500
            volume_fraction = 0.3
            seed = 99
            algorithm = dense
            dt = 0.005
            kbt = 0.5       # cool
            lambda_rpy = 8
            e_k = 1e-3
            e_p = 1e-4
            steps = 250
            repulsion = off
            gravity = 0 0 -9.8
            lj_epsilon = 1.5
            trajectory = out.xyz
            trajectory_interval = 10
            report_interval = 50
            checkpoint = state.bin
            checkpoint_interval = 100
        "#;
        let s = SimSpec::parse(text).unwrap();
        assert_eq!(s.particles, 500);
        assert_eq!(s.volume_fraction, 0.3);
        assert_eq!(s.algorithm, Algorithm::Dense);
        assert_eq!(s.dt, 0.005);
        assert_eq!(s.lambda_rpy, 8);
        assert!(!s.repulsion);
        assert_eq!(s.gravity.unwrap().z, -9.8);
        assert_eq!(s.lj_epsilon, 1.5);
        assert_eq!(s.trajectory.as_deref(), Some("out.xyz"));
        assert_eq!(s.checkpoint_interval, 100);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let s = SimSpec::parse("particles = 64\n").unwrap();
        assert_eq!(s.particles, 64);
        assert_eq!(s.algorithm, Algorithm::MatrixFree);
        assert_eq!(s.lambda_rpy, 16);
        assert!(s.repulsion);
        assert!(s.gravity.is_none());
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let e = SimSpec::parse("particles = 10\nbogus = 3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_duplicates_and_syntax_errors() {
        assert!(SimSpec::parse("dt = 0.01\ndt = 0.02\n")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(SimSpec::parse("just a line\n").unwrap_err().message.contains("key = value"));
        assert!(SimSpec::parse("dt =\n").unwrap_err().message.contains("empty value"));
        assert!(SimSpec::parse("dt = fast\n").unwrap_err().message.contains("cannot parse"));
    }

    #[test]
    fn validation_catches_physical_nonsense() {
        assert!(SimSpec::parse("particles = 0\n").is_err());
        assert!(SimSpec::parse("volume_fraction = 0.9\n").is_err());
        assert!(SimSpec::parse("dt = -1\n").is_err());
        assert!(SimSpec::parse("e_k = 2\n").is_err());
        assert!(SimSpec::parse("algorithm = dense\nparticles = 100000\n").is_err());
        assert!(SimSpec::parse("trajectory = a.xyz\ntrajectory_interval = 0\n").is_err());
    }

    #[test]
    fn displacement_modes_parse_with_aliases() {
        for (text, want) in [
            ("displacement = block-krylov\n", Displacement::BlockKrylov),
            ("displacement = block\n", Displacement::BlockKrylov),
            ("displacement = single-krylov\n", Displacement::SingleKrylov),
            ("displacement = single\n", Displacement::SingleKrylov),
            ("displacement = chebyshev\n", Displacement::Chebyshev),
            ("displacement = split-ewald\n", Displacement::SplitEwald),
            ("displacement = PSE\n", Displacement::SplitEwald),
        ] {
            assert_eq!(SimSpec::parse(text).unwrap().displacement, want, "{text}");
        }
        assert!(SimSpec::parse("displacement = qr\n")
            .unwrap_err()
            .message
            .contains("unknown displacement"));
        // Dense Cholesky has no displacement solver to select.
        assert!(SimSpec::parse("algorithm = dense\ndisplacement = pse\n")
            .unwrap_err()
            .message
            .contains("no effect"));
    }

    #[test]
    fn boundary_and_theta_parse_and_validate() {
        let s = SimSpec::parse("boundary = open\ntheta = 0.5\n").unwrap();
        assert_eq!(s.boundary, Boundary::Open);
        assert_eq!(s.theta, Some(0.5));
        let s = SimSpec::parse("boundary = periodic\n").unwrap();
        assert_eq!(s.boundary, Boundary::Periodic);
        assert!(s.theta.is_none());
        assert!(SimSpec::parse("boundary = torus\n")
            .unwrap_err()
            .message
            .contains("unknown boundary"));
        // theta without open boundary, theta out of range.
        assert!(SimSpec::parse("theta = 0.5\n").unwrap_err().message.contains("boundary = open"));
        assert!(SimSpec::parse("boundary = open\ntheta = 1.5\n")
            .unwrap_err()
            .message
            .contains("outside (0, 1)"));
        // Open boundaries exclude the periodic-only machinery.
        assert!(SimSpec::parse("boundary = open\nalgorithm = dense\n")
            .unwrap_err()
            .message
            .contains("periodic-only"));
        assert!(SimSpec::parse("boundary = open\ndisplacement = split-ewald\n")
            .unwrap_err()
            .message
            .contains("periodic-only"));
    }

    #[test]
    fn config_text_roundtrips_boundary_and_theta() {
        let spec = SimSpec { boundary: Boundary::Open, theta: Some(0.45), ..SimSpec::default() };
        let back = SimSpec::parse(&spec.to_config_text()).unwrap();
        assert_eq!(back.boundary, Boundary::Open);
        assert_eq!(back.theta, Some(0.45));
    }

    #[test]
    fn eval_parses_validates_and_roundtrips() {
        let s = SimSpec::parse("boundary = open\neval = fmm\n").unwrap();
        assert_eq!(s.eval, Some(FarFieldEval::Fmm));
        let s = SimSpec::parse("boundary = open\neval = tree\n").unwrap();
        assert_eq!(s.eval, Some(FarFieldEval::Tree));
        assert!(SimSpec::parse("boundary = open\n").unwrap().eval.is_none());
        assert!(SimSpec::parse("eval = fmm\n").unwrap_err().message.contains("boundary = open"));
        assert!(SimSpec::parse("boundary = open\neval = bogus\n")
            .unwrap_err()
            .message
            .contains("unknown eval"));
        let spec = SimSpec {
            boundary: Boundary::Open,
            theta: Some(0.45),
            eval: Some(FarFieldEval::Fmm),
            ..SimSpec::default()
        };
        let back = SimSpec::parse(&spec.to_config_text()).unwrap();
        assert_eq!(back.eval, Some(FarFieldEval::Fmm));
        assert_eq!(back.theta, Some(0.45));
    }

    #[test]
    fn config_text_roundtrips_displacement() {
        let spec = SimSpec { displacement: Displacement::SplitEwald, ..SimSpec::default() };
        let back = SimSpec::parse(&spec.to_config_text()).unwrap();
        assert_eq!(back.displacement, Displacement::SplitEwald);
    }

    #[test]
    fn replicas_parse_validate_and_roundtrip() {
        assert_eq!(SimSpec::parse("particles = 8\n").unwrap().replicas, 1);
        let s = SimSpec::parse("replicas = 4\n").unwrap();
        assert_eq!(s.replicas, 4);
        assert!(SimSpec::parse("replicas = 0\n").unwrap_err().message.contains("at least 1"));
        assert!(SimSpec::parse("replicas = 3\nalgorithm = dense\n")
            .unwrap_err()
            .message
            .contains("matrix-free"));
        let spec = SimSpec { replicas: 6, ..SimSpec::default() };
        assert_eq!(SimSpec::parse(&spec.to_config_text()).unwrap().replicas, 6);
    }

    #[test]
    fn gravity_parsing_edge_cases() {
        assert!(SimSpec::parse("gravity = 1 2\n").unwrap_err().message.contains("three"));
        assert!(SimSpec::parse("gravity = a b c\n").is_err());
        let s = SimSpec::parse("gravity = -1.5 0 2e-3\n").unwrap();
        let g = s.gravity.unwrap();
        assert_eq!((g.x, g.y, g.z), (-1.5, 0.0, 2e-3));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = SimSpec::parse("\n# full line comment\n  \nparticles = 7 # trailing\n").unwrap();
        assert_eq!(s.particles, 7);
    }

    #[test]
    fn deadline_parses_validates_and_roundtrips() {
        assert!(SimSpec::parse("particles = 8\n").unwrap().deadline_seconds.is_none());
        let s = SimSpec::parse("deadline_seconds = 2.5\n").unwrap();
        assert_eq!(s.deadline_seconds, Some(2.5));
        assert!(SimSpec::parse("deadline_seconds = 0\n").unwrap_err().message.contains("positive"));
        assert!(SimSpec::parse("deadline_seconds = -3\n").is_err());
        let spec = SimSpec { deadline_seconds: Some(30.0), ..SimSpec::default() };
        assert_eq!(SimSpec::parse(&spec.to_config_text()).unwrap().deadline_seconds, Some(30.0));
    }

    #[test]
    fn spec_builders_match_the_boundary() {
        let spec = SimSpec { particles: 9, ..SimSpec::default() };
        let sys = spec.build_system(3);
        assert_eq!((sys.len(), sys.boundary()), (9, Boundary::Periodic));
        let open = SimSpec { particles: 9, boundary: Boundary::Open, ..SimSpec::default() };
        assert_eq!(open.build_system(3).boundary(), Boundary::Open);
        // build_system is a pure function of (spec, seed).
        let again = spec.build_system(3);
        assert_eq!(sys.positions(), again.positions());

        let cfg = spec.matrix_free_config();
        assert_eq!(cfg.lambda_rpy, spec.lambda_rpy);
        assert_eq!(spec.forces().len(), 1, "default spec turns on repulsion only");
        let heavy = SimSpec { gravity: Some(Vec3::new(0.0, 0.0, -1.0)), ..spec };
        assert_eq!(heavy.forces().len(), 2);
    }
}
