//! Trajectory output in the XYZ format.
//!
//! Minimal, dependency-free trajectory writing so simulation results can be
//! inspected with standard tools (OVITO, VMD, MDAnalysis). Frames append to
//! one file; wrapped or unwrapped coordinates can be selected.

use crate::system::ParticleSystem;
use hibd_mathx::Vec3;
use std::io::{self, BufRead, Write};

/// Which coordinate set to write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coordinates {
    /// Positions wrapped into the primary box.
    Wrapped,
    /// Continuous (unwrapped) trajectories.
    Unwrapped,
}

/// Streaming XYZ trajectory writer.
pub struct XyzWriter<W: Write> {
    sink: W,
    coords: Coordinates,
    element: String,
    frames: usize,
}

impl<W: Write> XyzWriter<W> {
    pub fn new(sink: W, coords: Coordinates) -> XyzWriter<W> {
        XyzWriter { sink, coords, element: "C".to_string(), frames: 0 }
    }

    /// Element symbol written per particle (cosmetic; default "C").
    pub fn with_element(mut self, element: impl Into<String>) -> Self {
        self.element = element.into();
        self
    }

    /// Resume appending to a trajectory that already holds `frames` frames,
    /// keeping the extended-XYZ `frame=` counter monotone across restarts
    /// (`hibd serve` truncates to the committed byte count and continues).
    pub fn with_frame_offset(mut self, frames: usize) -> Self {
        self.frames = frames;
        self
    }

    /// Append one frame.
    pub fn write_frame(&mut self, system: &ParticleSystem, comment: &str) -> io::Result<()> {
        let pts = match self.coords {
            Coordinates::Wrapped => system.positions(),
            Coordinates::Unwrapped => system.unwrapped(),
        };
        writeln!(self.sink, "{}", pts.len())?;
        // Extended-XYZ style lattice in the comment line.
        let l = system.box_l;
        writeln!(self.sink, "Lattice=\"{l} 0 0 0 {l} 0 0 0 {l}\" frame={} {comment}", self.frames)?;
        for p in pts {
            writeln!(self.sink, "{} {:.8} {:.8} {:.8}", self.element, p.x, p.y, p.z)?;
        }
        self.frames += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The underlying sink (flush points, byte accounting).
    pub fn sink_mut(&mut self) -> &mut W {
        &mut self.sink
    }

    /// Flush and return the underlying sink.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// One frame read back from an XYZ trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct XyzFrame {
    /// The comment line (with any `Lattice="..."` metadata).
    pub comment: String,
    /// Box side parsed from the extended-XYZ lattice, if present and cubic.
    pub box_l: Option<f64>,
    pub positions: Vec<Vec3>,
}

/// Streaming XYZ reader (accepts the output of [`XyzWriter`] and plain XYZ).
pub struct XyzReader<R: BufRead> {
    source: R,
    line: String,
    frames: usize,
}

/// XYZ parse error with the offending frame index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XyzError {
    pub frame: usize,
    pub message: String,
}

impl std::fmt::Display for XyzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xyz frame {}: {}", self.frame, self.message)
    }
}

impl std::error::Error for XyzError {}

impl<R: BufRead> XyzReader<R> {
    pub fn new(source: R) -> XyzReader<R> {
        XyzReader { source, line: String::new(), frames: 0 }
    }

    fn fail(&self, message: impl Into<String>) -> XyzError {
        XyzError { frame: self.frames, message: message.into() }
    }

    fn read_line(&mut self) -> Result<bool, XyzError> {
        self.line.clear();
        let n = self
            .source
            .read_line(&mut self.line)
            .map_err(|e| self.fail(format!("io error: {e}")))?;
        Ok(n > 0)
    }

    /// Read the next frame; `Ok(None)` at end of input.
    pub fn next_frame(&mut self) -> Result<Option<XyzFrame>, XyzError> {
        // Particle count line (skip trailing blank lines).
        loop {
            if !self.read_line()? {
                return Ok(None);
            }
            if !self.line.trim().is_empty() {
                break;
            }
        }
        let n: usize = self
            .line
            .trim()
            .parse()
            .map_err(|_| self.fail(format!("bad particle count `{}`", self.line.trim())))?;
        if !self.read_line()? {
            return Err(self.fail("missing comment line"));
        }
        let comment = self.line.trim_end().to_string();
        let box_l = parse_cubic_lattice(&comment);
        let mut positions = Vec::with_capacity(n);
        for i in 0..n {
            if !self.read_line()? {
                return Err(self.fail(format!("truncated at atom {i} of {n}")));
            }
            let mut it = self.line.split_whitespace();
            let _element = it.next().ok_or_else(|| self.fail("empty atom line"))?;
            let mut coord = [0.0f64; 3];
            for c in &mut coord {
                *c = it
                    .next()
                    .ok_or_else(|| self.fail("missing coordinate"))?
                    .parse()
                    .map_err(|_| self.fail("bad coordinate"))?;
            }
            positions.push(Vec3::new(coord[0], coord[1], coord[2]));
        }
        self.frames += 1;
        Ok(Some(XyzFrame { comment, box_l, positions }))
    }

    /// Read all remaining frames.
    pub fn read_all(&mut self) -> Result<Vec<XyzFrame>, XyzError> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

/// Extract `L` from an extended-XYZ `Lattice="L 0 0 0 L 0 0 0 L"` comment.
fn parse_cubic_lattice(comment: &str) -> Option<f64> {
    let start = comment.find("Lattice=\"")? + 9;
    let rest = &comment[start..];
    let end = rest.find('"')?;
    let nums: Vec<f64> = rest[..end].split_whitespace().filter_map(|t| t.parse().ok()).collect();
    if nums.len() != 9 {
        return None;
    }
    let l = nums[0];
    let cubic = nums == [l, 0.0, 0.0, 0.0, l, 0.0, 0.0, 0.0, l];
    if cubic && l > 0.0 {
        Some(l)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_mathx::Vec3;

    fn sample_system() -> ParticleSystem {
        ParticleSystem::new(
            vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(9.5, 0.5, 4.25)],
            10.0,
            1.0,
            1.0,
        )
    }

    #[test]
    fn writes_well_formed_frames() {
        let sys = sample_system();
        let mut w = XyzWriter::new(Vec::new(), Coordinates::Wrapped).with_element("Ar");
        w.write_frame(&sys, "t=0").unwrap();
        w.write_frame(&sys, "t=1").unwrap();
        assert_eq!(w.frames(), 2);
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 2 frames x (1 count + 1 comment + 2 atoms).
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "2");
        assert!(lines[1].contains("Lattice=\"10 0 0 0 10 0 0 0 10\""));
        assert!(lines[1].contains("frame=0"));
        assert!(lines[1].ends_with("t=0"));
        assert!(lines[2].starts_with("Ar 1.0"));
        assert!(lines[5].contains("frame=1"));
    }

    #[test]
    fn unwrapped_coordinates_track_motion_across_boundary() {
        let mut sys = sample_system();
        sys.apply_displacements(&[0.0, 0.0, 0.0, 1.0, 0.0, 0.0]); // wraps p1
        let mut w = XyzWriter::new(Vec::new(), Coordinates::Unwrapped);
        w.write_frame(&sys, "").unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert!(text.contains("10.5"), "unwrapped x must exceed the box:\n{text}");

        let mut w2 = XyzWriter::new(Vec::new(), Coordinates::Wrapped);
        w2.write_frame(&sys, "").unwrap();
        let text2 = String::from_utf8(w2.into_inner().unwrap()).unwrap();
        assert!(text2.contains("0.5"), "wrapped x re-enters the box:\n{text2}");
    }

    #[test]
    fn reader_roundtrips_writer_output() {
        let sys = sample_system();
        let mut w = XyzWriter::new(Vec::new(), Coordinates::Wrapped);
        w.write_frame(&sys, "t=0").unwrap();
        w.write_frame(&sys, "t=1").unwrap();
        let bytes = w.into_inner().unwrap();
        let mut r = XyzReader::new(&bytes[..]);
        let frames = r.read_all().unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].box_l, Some(10.0));
        assert_eq!(frames[0].positions.len(), 2);
        for (got, want) in frames[0].positions.iter().zip(sys.positions()) {
            assert!((*got - *want).norm() < 1e-7);
        }
        assert!(frames[1].comment.contains("t=1"));
    }

    #[test]
    fn reader_rejects_malformed_input() {
        let r = |text: &str| XyzReader::new(text.as_bytes()).read_all();
        assert!(r("abc\ncomment\n").is_err(), "bad count");
        assert!(r("2\ncomment\nC 1 2 3\n").is_err(), "truncated");
        assert!(r("1\ncomment\nC 1 2\n").is_err(), "missing coordinate");
        assert!(r("1\ncomment\nC a b c\n").is_err(), "bad coordinate");
        assert!(r("").unwrap().is_empty(), "empty input is zero frames");
    }

    #[test]
    fn plain_xyz_without_lattice_parses() {
        let text = "3\njust a comment\nAr 0 0 0\nAr 1 1 1\nAr 2 2 2\n";
        let frames = XyzReader::new(text.as_bytes()).read_all().unwrap();
        assert_eq!(frames[0].box_l, None);
        assert_eq!(frames[0].positions[2], Vec3::new(2.0, 2.0, 2.0));
    }

    #[test]
    fn frame_parsable_particle_count() {
        let sys = sample_system();
        let mut w = XyzWriter::new(Vec::new(), Coordinates::Wrapped);
        w.write_frame(&sys, "x").unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let n: usize = text.lines().next().unwrap().parse().unwrap();
        assert_eq!(n, 2);
    }
}
