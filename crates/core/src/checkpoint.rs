//! Binary checkpoint / restart of the simulation state.
//!
//! Long BD runs (the paper's Figure 3 run took 10 hours on its testbed)
//! need restart capability. The format is a minimal, versioned,
//! little-endian binary layout:
//!
//! ```text
//! magic    "HIBDCKPT"            8 bytes
//! version  u32                   (currently 2)
//! step     u64                   completed steps
//! n        u64                   particle count
//! box_l    f64, a f64, eta f64
//! boundary u8                    (version >= 2: 0 periodic, 1 open)
//! wrapped   n * 3 * f64
//! unwrapped n * 3 * f64
//! crc      u64                   FNV-1a over everything above
//! ```
//!
//! Version 1 files predate open boundaries and decode as periodic.

use crate::system::{Boundary, ParticleSystem};
use hibd_mathx::Vec3;
use std::fmt;

const MAGIC: &[u8; 8] = b"HIBDCKPT";
const VERSION: u32 = 2;

/// A decoded checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Steps completed when the snapshot was taken.
    pub step: u64,
    pub box_l: f64,
    pub a: f64,
    pub eta: f64,
    /// Boundary condition (`box_l` is meaningless when open).
    pub boundary: Boundary,
    pub wrapped: Vec<Vec3>,
    pub unwrapped: Vec<Vec3>,
}

/// Decode errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    CorruptChecksum,
    BadBoundary(u8),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a hibd checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::CorruptChecksum => write!(f, "checksum mismatch (corrupt file)"),
            CheckpointError::BadBoundary(b) => write!(f, "unknown boundary tag {b}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Snapshot a system.
    pub fn capture(system: &ParticleSystem, step: u64) -> Checkpoint {
        Checkpoint {
            step,
            box_l: system.box_l,
            a: system.a,
            eta: system.eta,
            boundary: system.boundary(),
            wrapped: system.positions().to_vec(),
            unwrapped: system.unwrapped().to_vec(),
        }
    }

    /// Rebuild the particle system (positions and continuous trajectories).
    pub fn restore(&self) -> ParticleSystem {
        let mut sys = match self.boundary {
            Boundary::Periodic => {
                ParticleSystem::new(self.wrapped.clone(), self.box_l, self.a, self.eta)
            }
            Boundary::Open => ParticleSystem::new_open(self.wrapped.clone(), self.a, self.eta),
        };
        sys.set_unwrapped(self.unwrapped.clone());
        sys
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.wrapped.len();
        let mut out = Vec::with_capacity(8 + 4 + 8 + 8 + 24 + n * 48 + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for v in [self.box_l, self.a, self.eta] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(match self.boundary {
            Boundary::Periodic => 0,
            Boundary::Open => 1,
        });
        for p in self.wrapped.iter().chain(&self.unwrapped) {
            for c in [p.x, p.y, p.z] {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        let crc = fnv1a(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode from bytes, verifying magic, version and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if !(1..=VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let step = r.u64()?;
        let n = r.u64()? as usize;
        let box_l = r.f64()?;
        let a = r.f64()?;
        let eta = r.f64()?;
        // Version 1 predates open boundaries: everything was periodic.
        let boundary = if version >= 2 {
            match r.take(1)?[0] {
                0 => Boundary::Periodic,
                1 => Boundary::Open,
                b => return Err(CheckpointError::BadBoundary(b)),
            }
        } else {
            Boundary::Periodic
        };
        let read_points = |r: &mut Reader| -> Result<Vec<Vec3>, CheckpointError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let x = r.f64()?;
                let y = r.f64()?;
                let z = r.f64()?;
                out.push(Vec3::new(x, y, z));
            }
            Ok(out)
        };
        let wrapped = read_points(&mut r)?;
        let unwrapped = read_points(&mut r)?;
        let body_end = r.pos;
        let stored_crc = r.u64()?;
        if fnv1a(&bytes[..body_end]) != stored_crc {
            return Err(CheckpointError::CorruptChecksum);
        }
        Ok(Checkpoint { step, box_l, a, eta, boundary, wrapped, unwrapped })
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Read from a file.
    pub fn load(path: &std::path::Path) -> Result<Checkpoint, Box<dyn std::error::Error>> {
        let bytes = std::fs::read(path)?;
        Ok(Checkpoint::decode(&bytes)?)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + len > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// FNV-1a 64-bit hash (checksum, not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_system() -> ParticleSystem {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sys = ParticleSystem::random_suspension(40, 0.15, &mut rng);
        // Give the unwrapped coordinates some history.
        let d: Vec<f64> = (0..120).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        sys.apply_displacements(&d);
        sys
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sys = sample_system();
        let ck = Checkpoint::capture(&sys, 1234);
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded, ck);
        let restored = decoded.restore();
        assert_eq!(restored.positions(), sys.positions());
        assert_eq!(restored.unwrapped(), sys.unwrapped());
        assert_eq!(restored.box_l, sys.box_l);
    }

    fn sample_open_system() -> ParticleSystem {
        let mut rng = StdRng::seed_from_u64(8);
        ParticleSystem::random_cluster_with(25, 0.1, 1.0, 1.0, &mut rng)
    }

    #[test]
    fn open_roundtrip_preserves_boundary_and_raw_positions() {
        let sys = sample_open_system();
        let ck = Checkpoint::capture(&sys, 55);
        assert_eq!(ck.boundary, Boundary::Open);
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded, ck);
        let restored = decoded.restore();
        assert_eq!(restored.boundary(), Boundary::Open);
        // Open restore must not wrap anything (new_open takes verbatim).
        assert_eq!(restored.positions(), sys.positions());
        assert_eq!(restored.unwrapped(), sys.unwrapped());
    }

    #[test]
    fn version_1_files_decode_as_periodic() {
        // Build a v1 byte stream by hand from a v2 one: drop the boundary
        // byte, rewrite the version, recompute the checksum.
        let ck = Checkpoint::capture(&sample_system(), 31);
        let v2 = ck.encode();
        let boundary_at = 8 + 4 + 8 + 8 + 24;
        let mut v1: Vec<u8> = Vec::new();
        v1.extend_from_slice(&v2[..boundary_at]);
        v1.extend_from_slice(&v2[boundary_at + 1..v2.len() - 8]);
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let crc = fnv1a(&v1);
        v1.extend_from_slice(&crc.to_le_bytes());
        let decoded = Checkpoint::decode(&v1).unwrap();
        assert_eq!(decoded.boundary, Boundary::Periodic);
        assert_eq!(decoded.wrapped, ck.wrapped);
        assert_eq!(decoded.step, ck.step);
    }

    #[test]
    fn rejects_unknown_boundary_tags() {
        let ck = Checkpoint::capture(&sample_system(), 3);
        let mut bytes = ck.encode();
        let boundary_at = 8 + 4 + 8 + 8 + 24;
        bytes[boundary_at] = 7;
        let body_end = bytes.len() - 8;
        let crc = fnv1a(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::BadBoundary(7)));
    }

    #[test]
    fn detects_corruption() {
        let ck = Checkpoint::capture(&sample_system(), 7);
        let mut bytes = ck.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::CorruptChecksum));
    }

    #[test]
    fn detects_truncation_and_bad_magic() {
        let ck = Checkpoint::capture(&sample_system(), 7);
        let bytes = ck.encode();
        assert_eq!(Checkpoint::decode(&bytes[..bytes.len() - 4]), Err(CheckpointError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Checkpoint::decode(&bad), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_future_versions() {
        let ck = Checkpoint::capture(&sample_system(), 7);
        let mut bytes = ck.encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Checksum now mismatches too, but version is checked first.
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::UnsupportedVersion(99)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hibd_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.hibd");
        let ck = Checkpoint::capture(&sample_system(), 42);
        ck.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ck);
        std::fs::remove_file(&path).ok();
    }
}
