//! Translational diffusion-coefficient estimation (paper Eq. 12).
//!
//! `D(tau) = <|r(t + tau) - r(t)|^2> / (6 tau)`, averaged over particles and
//! over many time origins, from the *unwrapped* trajectories. Successive
//! origins are correlated, so error bars use block averaging over origins.

use hibd_mathx::Vec3;
use std::collections::VecDeque;

/// Accumulates mean-squared displacements at a ladder of lag times.
#[derive(Clone, Debug)]
pub struct DiffusionEstimator {
    /// Time interval between recorded snapshots (in simulation time units).
    dt_snapshot: f64,
    /// Number of lag levels tracked: lags are `1..=max_lag` snapshots.
    max_lag: usize,
    window: VecDeque<Vec<Vec3>>,
    /// Per-lag series of per-origin MSD means (for block averaging).
    series: Vec<Vec<f64>>,
}

impl DiffusionEstimator {
    /// `dt_snapshot` is the simulation time between calls to
    /// [`record`](Self::record); lags up to `max_lag * dt_snapshot` are
    /// estimated.
    pub fn new(dt_snapshot: f64, max_lag: usize) -> DiffusionEstimator {
        assert!(dt_snapshot > 0.0 && max_lag >= 1);
        DiffusionEstimator {
            dt_snapshot,
            max_lag,
            window: VecDeque::with_capacity(max_lag + 1),
            series: vec![Vec::new(); max_lag],
        }
    }

    /// Record a snapshot of unwrapped positions.
    pub fn record(&mut self, unwrapped: &[Vec3]) {
        let snap = unwrapped.to_vec();
        for (lag_idx, past) in self.window.iter().rev().enumerate() {
            let lag = lag_idx + 1;
            if lag > self.max_lag {
                break;
            }
            debug_assert_eq!(past.len(), snap.len());
            let msd: f64 = past.iter().zip(&snap).map(|(p, q)| (*q - *p).norm2()).sum::<f64>()
                / snap.len() as f64;
            self.series[lag - 1].push(msd);
        }
        self.window.push_back(snap);
        if self.window.len() > self.max_lag {
            self.window.pop_front();
        }
    }

    /// Number of origins accumulated at `lag` snapshots.
    pub fn count(&self, lag: usize) -> usize {
        self.series.get(lag - 1).map(std::vec::Vec::len).unwrap_or(0)
    }

    /// `(D, standard error)` at `lag` snapshots, or `None` if no samples.
    pub fn diffusion_at(&self, lag: usize) -> Option<(f64, f64)> {
        let s = self.series.get(lag - 1)?;
        if s.is_empty() {
            return None;
        }
        let nblocks = (s.len() / 10).clamp(2, 32);
        let (msd, err) = hibd_mathx::block_average(s, nblocks);
        let tau = lag as f64 * self.dt_snapshot;
        Some((msd / (6.0 * tau), err / (6.0 * tau)))
    }

    /// Best single estimate: the longest lag with at least 8 origins, else
    /// the longest lag with any.
    pub fn diffusion(&self) -> Option<(f64, f64)> {
        for lag in (1..=self.max_lag).rev() {
            if self.count(lag) >= 8 {
                return self.diffusion_at(lag);
            }
        }
        (1..=self.max_lag).rev().find_map(|lag| self.diffusion_at(lag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_mathx::fill_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_known_diffusion_of_random_walk() {
        // Free random walk with step variance 2 D dt per component.
        let d_true: f64 = 0.25;
        let dt = 0.1;
        let n = 200;
        let steps = 400;
        let sigma = (2.0 * d_true * dt).sqrt();
        let mut rng = StdRng::seed_from_u64(8);
        let mut pos = vec![Vec3::ZERO; n];
        let mut est = DiffusionEstimator::new(dt, 5);
        let mut noise = vec![0.0; 3 * n];
        est.record(&pos);
        for _ in 0..steps {
            fill_standard_normal(&mut rng, &mut noise);
            for (i, p) in pos.iter_mut().enumerate() {
                *p += Vec3::new(noise[3 * i], noise[3 * i + 1], noise[3 * i + 2]) * sigma;
            }
            est.record(&pos);
        }
        for lag in 1..=5 {
            let (d, err) = est.diffusion_at(lag).unwrap();
            assert!(
                (d - d_true).abs() < 5.0 * err.max(0.01),
                "lag {lag}: D = {d} +- {err}, want {d_true}"
            );
        }
    }

    #[test]
    fn ballistic_motion_gives_linear_in_tau_estimate() {
        // Constant velocity v: MSD(tau) = v^2 tau^2, so D(tau) = v^2 tau/6.
        let v = 2.0;
        let dt = 0.5;
        let mut est = DiffusionEstimator::new(dt, 4);
        for step in 0..50 {
            let pos = vec![Vec3::new(v * dt * step as f64, 0.0, 0.0); 3];
            est.record(&pos);
        }
        let (d1, _) = est.diffusion_at(1).unwrap();
        let (d4, _) = est.diffusion_at(4).unwrap();
        assert!((d1 - v * v * dt / 6.0).abs() < 1e-12);
        assert!((d4 / d1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_particles_have_zero_diffusion() {
        let mut est = DiffusionEstimator::new(1.0, 3);
        for _ in 0..20 {
            est.record(&[Vec3::new(1.0, 2.0, 3.0); 5]);
        }
        let (d, err) = est.diffusion().unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn counts_track_origins() {
        let mut est = DiffusionEstimator::new(1.0, 3);
        assert!(est.diffusion().is_none());
        for i in 0..6 {
            est.record(&[Vec3::splat(i as f64)]);
        }
        // 6 snapshots: lag1 pairs = 5, lag2 = 4, lag3 = 3.
        assert_eq!(est.count(1), 5);
        assert_eq!(est.count(2), 4);
        assert_eq!(est.count(3), 3);
    }
}
