//! Algorithm 1: the conventional Ewald BD baseline.
//!
//! Every `lambda_RPY` steps: assemble the dense `3n x 3n` Beenakker-Ewald
//! mobility matrix, Cholesky-factor it, and draw `lambda_RPY` Brownian
//! displacement vectors `d = sqrt(2 kB T dt) S z` at once. In between, each
//! step evaluates the deterministic forces and propagates
//! `r += M f dt + d_j`.
//!
//! This is the baseline whose `O(n^2)` memory and `O(n^3)` factorization the
//! matrix-free algorithm removes (Figure 7); it also serves as the accuracy
//! reference for small systems.

use crate::forces::{total_force, Force};
use crate::system::ParticleSystem;
use hibd_linalg::{CholeskyFactor, DMat};
use hibd_mathx::fill_standard_normal;
use hibd_rpy::{dense_ewald_mobility, RpyEwald};
use hibd_telemetry::{self as telemetry, Phase};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Errors from the BD drivers.
#[derive(Clone, Debug)]
pub enum BdError {
    /// The mobility matrix lost positive definiteness (numerically).
    NotPositiveDefinite { pivot: usize },
    /// The Krylov displacement solver failed.
    Krylov(String),
    /// PME/FFT setup failed (bad mesh size).
    Setup(String),
}

impl std::fmt::Display for BdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BdError::NotPositiveDefinite { pivot } => {
                write!(f, "mobility matrix not positive definite (pivot {pivot})")
            }
            BdError::Krylov(s) => write!(f, "Krylov displacement solver: {s}"),
            BdError::Setup(s) => write!(f, "setup: {s}"),
        }
    }
}

impl std::error::Error for BdError {}

/// Configuration of the conventional algorithm.
#[derive(Clone, Copy, Debug)]
pub struct EwaldBdConfig {
    /// Time step `dt`.
    pub dt: f64,
    /// Thermal energy `kB T`.
    pub kbt: f64,
    /// Mobility-matrix reuse interval (paper: 10–100, experiments use 16).
    pub lambda_rpy: usize,
    /// Ewald splitting parameter; `None` selects the classic cost-balancing
    /// `xi = sqrt(pi) n^{1/6} / L`.
    pub xi: Option<f64>,
    /// Truncation tolerance of the Ewald sums.
    pub ewald_tol: f64,
}

impl Default for EwaldBdConfig {
    fn default() -> Self {
        EwaldBdConfig { dt: 0.01, kbt: 1.0, lambda_rpy: 16, xi: None, ewald_tol: 1e-4 }
    }
}

/// Wall-clock accounting per phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct EwaldBdTimings {
    /// Dense matrix assembly (line 4).
    pub assembly: f64,
    /// Cholesky factorization (line 5).
    pub cholesky: f64,
    /// Displacement generation (lines 6-7).
    pub displacements: f64,
    /// Force evaluation + propagation (lines 9-10).
    pub stepping: f64,
    /// Steps taken.
    pub steps: usize,
}

impl EwaldBdTimings {
    pub fn total(&self) -> f64 {
        self.assembly + self.cholesky + self.displacements + self.stepping
    }

    /// Mean seconds per BD step.
    pub fn per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total() / self.steps as f64
        }
    }
}

struct Cache {
    m: DMat,
    /// `3n x lambda` row-major block of pre-drawn displacements.
    disp: Vec<f64>,
    used: usize,
}

/// The Algorithm 1 driver.
pub struct EwaldBd {
    system: ParticleSystem,
    cfg: EwaldBdConfig,
    forces: Vec<Box<dyn Force>>,
    rng: StdRng,
    cache: Option<Cache>,
    timings: EwaldBdTimings,
}

impl EwaldBd {
    pub fn new(system: ParticleSystem, cfg: EwaldBdConfig, seed: u64) -> EwaldBd {
        assert!(cfg.lambda_rpy >= 1);
        EwaldBd {
            system,
            cfg,
            forces: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            cache: None,
            timings: EwaldBdTimings::default(),
        }
    }

    pub fn add_force(&mut self, force: impl Force + 'static) {
        self.forces.push(Box::new(force));
    }

    /// Add an already-boxed force (useful when the concrete type is chosen
    /// at run time, e.g. from a config file).
    pub fn add_force_boxed(&mut self, force: Box<dyn Force>) {
        self.forces.push(force);
    }

    pub fn system(&self) -> &ParticleSystem {
        &self.system
    }

    pub fn config(&self) -> &EwaldBdConfig {
        &self.cfg
    }

    pub fn timings(&self) -> &EwaldBdTimings {
        &self.timings
    }

    /// The splitting parameter in effect.
    pub fn xi(&self) -> f64 {
        self.cfg.xi.unwrap_or_else(|| {
            std::f64::consts::PI.sqrt() * (self.system.len() as f64).powf(1.0 / 6.0)
                / self.system.box_l
        })
    }

    /// Size of the dense mobility matrix in bytes (the Figure 7a quantity).
    pub fn mobility_memory_bytes(&self) -> usize {
        let dim = 3 * self.system.len();
        dim * dim * 8
    }

    fn refresh_cache(&mut self) -> Result<(), BdError> {
        let n3 = 3 * self.system.len();
        let lambda = self.cfg.lambda_rpy;

        let sw = telemetry::start(Phase::Assembly);
        let ewald = RpyEwald::new(
            self.system.a,
            self.system.eta,
            self.system.box_l,
            self.xi(),
            self.cfg.ewald_tol,
        );
        let m = dense_ewald_mobility(self.system.positions(), &ewald);
        self.timings.assembly += sw.stop();
        let sw = telemetry::start(Phase::Cholesky);
        let chol =
            CholeskyFactor::new(&m).map_err(|e| BdError::NotPositiveDefinite { pivot: e.pivot })?;
        self.timings.cholesky += sw.stop();
        let sw = telemetry::start(Phase::Displacements);
        let mut z = vec![0.0; n3 * lambda];
        fill_standard_normal(&mut self.rng, &mut z);
        let mut disp = vec![0.0; n3 * lambda];
        chol.mul_multi(&z, &mut disp, lambda);
        let scale = (2.0 * self.cfg.kbt * self.cfg.dt).sqrt();
        for d in &mut disp {
            *d *= scale;
        }
        self.timings.displacements += sw.stop();
        self.cache = Some(Cache { m, disp, used: 0 });
        Ok(())
    }

    /// Advance one BD step.
    pub fn step(&mut self) -> Result<(), BdError> {
        let lambda = self.cfg.lambda_rpy;
        if self.cache.as_ref().map(|c| c.used >= lambda).unwrap_or(true) {
            self.refresh_cache()?;
        }

        let sw = telemetry::start(Phase::Stepping);
        let n3 = 3 * self.system.len();
        let f = total_force(&mut self.forces, &self.system);
        let cache = self.cache.as_mut().expect("cache refreshed above");
        let mut drift = vec![0.0; n3];
        cache.m.mul_vec(&f, &mut drift);
        let j = cache.used;
        let mut d = vec![0.0; n3];
        for i in 0..n3 {
            d[i] = drift[i] * self.cfg.dt + cache.disp[i * lambda + j];
        }
        cache.used += 1;
        self.system.apply_displacements(&d);
        self.timings.stepping += sw.stop();
        self.timings.steps += 1;
        Ok(())
    }

    /// Advance `m` steps.
    pub fn run(&mut self, m: usize) -> Result<(), BdError> {
        for _ in 0..m {
            self.step()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::RepulsiveHarmonic;

    fn small_system(n: usize, phi: f64, seed: u64) -> ParticleSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        ParticleSystem::random_suspension(n, phi, &mut rng)
    }

    #[test]
    fn steps_advance_and_stay_in_box() {
        let sys = small_system(20, 0.1, 1);
        let mut bd = EwaldBd::new(sys, EwaldBdConfig::default(), 42);
        bd.add_force(RepulsiveHarmonic::default());
        bd.run(5).unwrap();
        assert_eq!(bd.timings().steps, 5);
        let l = bd.system().box_l;
        for p in bd.system().positions() {
            for c in 0..3 {
                assert!(p[c] >= 0.0 && p[c] < l);
            }
        }
        // Something actually moved.
        let moved = bd
            .system()
            .unwrapped()
            .iter()
            .zip(bd.system().positions())
            .any(|(u, _)| u.norm() > 0.0);
        assert!(moved);
    }

    #[test]
    fn matrix_reused_within_lambda_window() {
        let sys = small_system(10, 0.1, 2);
        let cfg = EwaldBdConfig { lambda_rpy: 4, ..Default::default() };
        let mut bd = EwaldBd::new(sys, cfg, 7);
        bd.run(4).unwrap();
        let t_after_4 = bd.timings().assembly;
        bd.run(1).unwrap(); // triggers the second assembly
        assert!(bd.timings().assembly > t_after_4);
        bd.run(2).unwrap(); // within the second window: no new assembly
        let t_after_7 = bd.timings().assembly;
        bd.run(1).unwrap();
        assert!((bd.timings().assembly - t_after_7).abs() < 1e-12);
    }

    #[test]
    fn zero_temperature_freezes_force_free_system() {
        let sys = small_system(8, 0.05, 3);
        let before: Vec<_> = sys.positions().to_vec();
        let cfg = EwaldBdConfig { kbt: 0.0, ..Default::default() };
        let mut bd = EwaldBd::new(sys, cfg, 9);
        bd.run(3).unwrap();
        for (a, b) in before.iter().zip(bd.system().positions()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn displacement_scale_tracks_temperature() {
        // RMS step size ~ sqrt(2 kBT mu0 dt).
        let cfg = EwaldBdConfig { lambda_rpy: 8, ..Default::default() };
        let mut bd = EwaldBd::new(small_system(30, 0.05, 4), cfg, 11);
        bd.run(8).unwrap();
        let msd: f64 = bd
            .system()
            .unwrapped()
            .iter()
            .zip(bd.system().positions().iter())
            .map(|(u, _)| u.norm2())
            .sum::<f64>();
        // Crude sanity bounds (free diffusion): 6 D t per particle.
        let mu0 = 1.0 / (6.0 * std::f64::consts::PI);
        let expect = 6.0 * cfg.kbt * mu0 * cfg.dt * 8.0 * 30.0;
        // MSD of unwrapped-vs-origin equals displacement MSD here because
        // initial unwrapped == initial positions.
        let actual: f64 = bd
            .system()
            .unwrapped()
            .iter()
            .zip(initial_positions(&bd))
            .map(|(u, p0)| (*u - p0).norm2())
            .sum();
        let _ = msd;
        assert!(actual > 0.2 * expect && actual < 5.0 * expect, "{actual} vs {expect}");
    }

    fn initial_positions(_bd: &EwaldBd) -> Vec<hibd_mathx::Vec3> {
        // Reconstruct: unwrapped - (unwrapped - initial) is not tracked;
        // instead rebuild the same seeded system.
        let mut rng = StdRng::seed_from_u64(4);
        ParticleSystem::random_suspension(30, 0.05, &mut rng).positions().to_vec()
    }
}
