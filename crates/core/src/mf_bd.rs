//! Algorithm 2: the matrix-free BD algorithm.
//!
//! Every `lambda_RPY` steps: build a fresh mobility operator for the current
//! configuration and draw the whole block of `lambda_RPY` Brownian
//! displacement vectors with block Lanczos (`D = Krylov(M, Z)`). In
//! between, each step evaluates the deterministic forces and propagates
//! `r += M(f) dt + d_j` — never materializing the mobility matrix.
//!
//! The operator backend follows the system's [`Boundary`]: periodic boxes
//! use the [`PmeOperator`] (Ewald split + particle-mesh reciprocal sum),
//! open systems use the hierarchical free-space [`TreeOperator`] from
//! `hibd-treecode`. Every `M v`-only displacement mode (block/single
//! Lanczos, Chebyshev) works with either backend; `SplitEwald` is
//! wave-space sampling and therefore periodic-only.

use crate::ewald_bd::BdError;
use crate::forces::{total_force, Force};
use crate::system::{Boundary, ParticleSystem};
use hibd_krylov::{
    block_lanczos_sqrt, chebyshev_sqrt, lanczos_sqrt, ChebyshevConfig, KrylovConfig,
};
use hibd_linalg::LinearOperator;
use hibd_mathx::fill_standard_normal;
use hibd_pme::{tune, PmeOperator, PmeParams, PmePhaseTimes, PmePlans};
use hibd_pse::{PseError, PseSampler, PseSplit};
use hibd_telemetry::{self as telemetry, Phase};
use hibd_treecode::{TreeEval, TreeOperator, TreeParams, TreePlans};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// How the block of Brownian displacement vectors is computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DisplacementMode {
    /// Block Lanczos over all `lambda_RPY` vectors at once (Algorithm 2;
    /// fewer iterations per vector, multi-RHS real-space SpMM).
    #[default]
    BlockKrylov,
    /// One single-vector Lanczos solve per displacement (the pre-block
    /// baseline of the paper's ref. \[8\]; kept for the ablation study).
    SingleKrylov,
    /// Fixman's Chebyshev polynomial method (the paper's ref. \[25\]):
    /// spectral bounds are estimated once per operator refresh, then one
    /// polynomial evaluation per displacement vector.
    Chebyshev,
    /// Positively-split Ewald sampling (`hibd-pse`): exact single-inverse
    /// FFT square root in wave space plus block Lanczos on a sparse,
    /// FFT-free near field at the sampler's own small `xi`.
    SplitEwald,
}

/// Configuration of the matrix-free algorithm.
#[derive(Clone, Copy, Debug)]
pub struct MatrixFreeConfig {
    /// Time step `dt`.
    pub dt: f64,
    /// Thermal energy `kB T`.
    pub kbt: f64,
    /// Operator reuse interval (= Krylov block width).
    pub lambda_rpy: usize,
    /// Krylov convergence tolerance (the paper's `e_k`).
    pub e_k: f64,
    /// PME accuracy target (the paper's `e_p`) used when `pme` is `None`.
    pub target_ep: f64,
    /// Explicit PME parameters; `None` lets the tuner choose from the
    /// system's size and volume fraction.
    pub pme: Option<PmeParams>,
    /// Krylov iteration cap.
    pub max_krylov: usize,
    /// Displacement solver variant (block vs single-vector Lanczos).
    pub displacement_mode: DisplacementMode,
    /// PSE split knobs, used only by [`DisplacementMode::SplitEwald`].
    pub pse: PseSplit,
    /// Explicit treecode parameters for open-boundary systems; `None` lets
    /// the measured tuner choose `(theta, cheb_order)` from `target_ep`
    /// (validated against the dense free-space RPY matrix). The particle
    /// radius and viscosity are always taken from the system.
    pub tree: Option<TreeParams>,
    /// Far-field strategy for open-boundary systems (node-to-particle
    /// treecode vs M2L/L2L/L2P FMM). Consulted only when `tree` is `None`
    /// (the tuner measures the chosen strategy); explicit [`TreeParams`]
    /// carry their own `eval`.
    pub tree_eval: TreeEval,
}

impl Default for MatrixFreeConfig {
    fn default() -> Self {
        MatrixFreeConfig {
            dt: 0.01,
            kbt: 1.0,
            lambda_rpy: 16,
            e_k: 1e-2,
            target_ep: 1e-3,
            pme: None,
            max_krylov: 100,
            displacement_mode: DisplacementMode::BlockKrylov,
            pse: PseSplit::default(),
            tree: None,
            tree_eval: TreeEval::Tree,
        }
    }
}

/// The immutable, position-independent setup artifacts of the resolved
/// mobility backend, shareable across drivers via `Arc` (the engine's plan
/// cache hands the same allocation to every replica of a shape).
#[derive(Clone)]
pub enum MobilityPlans {
    /// Periodic backend: FFT plan, influence table, Ewald coefficients.
    Pme(Arc<PmePlans>),
    /// Open backend: Chebyshev nodes and M2M transfer matrices.
    Tree(Arc<TreePlans>),
}

impl MobilityPlans {
    /// Resident bytes of the shared setup artifacts (count once per cache
    /// entry, not per driver).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        match self {
            MobilityPlans::Pme(p) => p.memory_bytes(),
            MobilityPlans::Tree(p) => p.memory_bytes(),
        }
    }
}

/// The backend parameters a `(system, config)` pair resolves to — exactly
/// one of the two is `Some`. This is the canonical shape identity the
/// engine's plan cache keys on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResolvedShape {
    /// PME parameters (periodic systems).
    pub pme: Option<PmeParams>,
    /// Treecode parameters (open systems), with `a`/`eta` from the system.
    pub tree: Option<TreeParams>,
}

/// Resolve the mobility-backend parameters for `system` under `cfg`:
/// explicit config values win, otherwise the PME or treecode tuner chooses.
/// Pure with respect to the driver — [`MatrixFreeBd::new`] and
/// [`MatrixFreeBd::with_plans`] both start here, so a plan built for a
/// shape is guaranteed to match any driver resolving the same shape.
pub fn resolve_shape(
    system: &ParticleSystem,
    cfg: &MatrixFreeConfig,
) -> Result<ResolvedShape, BdError> {
    match system.boundary() {
        Boundary::Periodic => {
            let params = match cfg.pme {
                Some(p) => p,
                None => {
                    tune(
                        system.len(),
                        system.volume_fraction(),
                        system.a,
                        system.eta,
                        cfg.target_ep,
                    )
                    .params
                }
            };
            if (params.box_l - system.box_l).abs() > 1e-9 * system.box_l {
                return Err(BdError::Setup(format!(
                    "PME box {} does not match system box {}",
                    params.box_l, system.box_l
                )));
            }
            Ok(ResolvedShape { pme: Some(params), tree: None })
        }
        Boundary::Open => {
            if cfg.displacement_mode == DisplacementMode::SplitEwald {
                return Err(BdError::Setup(
                    "SplitEwald sampling is wave-space (periodic-only); \
                     open systems need an M*v displacement mode"
                        .into(),
                ));
            }
            if cfg.pme.is_some() {
                return Err(BdError::Setup(
                    "explicit PME parameters are meaningless for an open system".into(),
                ));
            }
            let tp = match cfg.tree {
                Some(t) => TreeParams { a: system.a, eta: system.eta, ..t },
                None => hibd_treecode::tune(
                    system.positions(),
                    cfg.target_ep,
                    system.a,
                    system.eta,
                    cfg.tree_eval,
                ),
            };
            Ok(ResolvedShape { pme: None, tree: Some(tp) })
        }
    }
}

/// The boundary-selected mobility backend (periodic PME vs free-space
/// treecode), dispatched once per apply.
enum MobilityOp {
    // Boxed: both operators carry hundreds of bytes of inline scratch
    // headers, and the enum is rebuilt once per refresh — the indirection
    // costs nothing on the apply path.
    Pme(Box<PmeOperator>),
    Tree(Box<TreeOperator>),
}

impl LinearOperator for MobilityOp {
    fn dim(&self) -> usize {
        match self {
            MobilityOp::Pme(op) => op.dim(),
            MobilityOp::Tree(op) => op.dim(),
        }
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        match self {
            MobilityOp::Pme(op) => op.apply(x, y),
            MobilityOp::Tree(op) => op.apply(x, y),
        }
    }

    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        match self {
            MobilityOp::Pme(op) => op.apply_multi(x, y, s),
            MobilityOp::Tree(op) => op.apply_multi(x, y, s),
        }
    }
}

/// Wall-clock accounting per phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct MfTimings {
    /// PME operator construction (line 4).
    pub setup: f64,
    /// Block Krylov displacement solve (lines 5-6).
    pub displacements: f64,
    /// Force evaluation + PME drift + propagation (lines 8-9).
    pub stepping: f64,
    /// Total Krylov iterations across displacement solves.
    pub krylov_iterations: usize,
    /// Steps taken.
    pub steps: usize,
}

impl MfTimings {
    pub fn total(&self) -> f64 {
        self.setup + self.displacements + self.stepping
    }

    pub fn per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total() / self.steps as f64
        }
    }
}

/// The Algorithm 2 driver.
pub struct MatrixFreeBd {
    system: ParticleSystem,
    cfg: MatrixFreeConfig,
    /// Immutable setup artifacts for the resolved backend; every operator
    /// refresh reuses them (possibly shared with other drivers).
    plans: MobilityPlans,
    forces: Vec<Box<dyn Force>>,
    /// Base RNG seed; each operator window re-derives its own stream from
    /// `(seed, steps_done)` so a run resumed at a window boundary consumes
    /// exactly the Gaussians an uninterrupted run would (bitwise resume).
    seed: u64,
    /// Completed BD steps (drives the window-seeded RNG; restorable via
    /// [`set_completed_steps`](Self::set_completed_steps)).
    steps_done: u64,
    op: Option<MobilityOp>,
    /// PSE sampler, built lazily on the first `SplitEwald` refresh.
    pse: Option<PseSampler>,
    /// `3n x lambda` row-major block of pre-drawn displacements.
    disp: Vec<f64>,
    used: usize,
    /// Persistent per-step scratch: PME drift output and the combined
    /// displacement (each `3n`), so `step` allocates nothing.
    drift_scratch: Vec<f64>,
    step_scratch: Vec<f64>,
    timings: MfTimings,
}

/// SplitMix64 finalizer over `(seed, window)` — a cheap, well-mixed stream
/// seed per operator window.
fn window_seed(seed: u64, window: u64) -> u64 {
    let mut z = seed
        .wrapping_add(window.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn map_pse(e: PseError) -> BdError {
    match e {
        PseError::Setup(s) => BdError::Setup(s),
        PseError::Krylov(k) => BdError::Krylov(k.to_string()),
    }
}

impl MatrixFreeBd {
    /// Build the driver. For periodic systems the PME parameters come from
    /// `cfg.pme` or the PME tuner; for open systems the treecode parameters
    /// come from `cfg.tree` or the measured treecode tuner.
    pub fn new(
        system: ParticleSystem,
        cfg: MatrixFreeConfig,
        seed: u64,
    ) -> Result<MatrixFreeBd, BdError> {
        assert!(cfg.lambda_rpy >= 1);
        let shape = resolve_shape(&system, &cfg)?;
        let (plans, setup) = match (shape.pme, shape.tree) {
            (Some(params), None) => {
                let sw = telemetry::start(Phase::PmeSetup);
                let plans = PmePlans::new(params).map_err(|e| BdError::Setup(e.to_string()))?;
                let t = sw.stop();
                (MobilityPlans::Pme(Arc::new(plans)), t)
            }
            (None, Some(tp)) => {
                let sw = telemetry::start(Phase::TreeBuild);
                let plans = TreePlans::new(tp);
                let t = sw.stop();
                (MobilityPlans::Tree(Arc::new(plans)), t)
            }
            _ => unreachable!("resolve_shape yields exactly one backend"),
        };
        let mut bd = Self::assemble(system, cfg, seed, plans);
        bd.timings.setup += setup;
        Ok(bd)
    }

    /// Build the driver around already-constructed (typically cache-shared)
    /// setup plans. The plans must describe exactly the shape this
    /// `(system, cfg)` pair resolves to — validated here so a stale cache
    /// entry cannot silently run the wrong mesh or tree schedule.
    pub fn with_plans(
        system: ParticleSystem,
        cfg: MatrixFreeConfig,
        seed: u64,
        plans: MobilityPlans,
    ) -> Result<MatrixFreeBd, BdError> {
        assert!(cfg.lambda_rpy >= 1);
        let shape = resolve_shape(&system, &cfg)?;
        let matches = match (&plans, &shape.pme, &shape.tree) {
            (MobilityPlans::Pme(p), Some(params), None) => p.params() == params,
            (MobilityPlans::Tree(p), None, Some(tp)) => p.params() == tp,
            _ => false,
        };
        if !matches {
            return Err(BdError::Setup(
                "shared plans do not match the shape this system and config resolve to".into(),
            ));
        }
        Ok(Self::assemble(system, cfg, seed, plans))
    }

    fn assemble(
        system: ParticleSystem,
        cfg: MatrixFreeConfig,
        seed: u64,
        plans: MobilityPlans,
    ) -> MatrixFreeBd {
        MatrixFreeBd {
            system,
            cfg,
            plans,
            forces: Vec::new(),
            seed,
            steps_done: 0,
            op: None,
            pse: None,
            disp: Vec::new(),
            used: usize::MAX,
            drift_scratch: Vec::new(),
            step_scratch: Vec::new(),
            timings: MfTimings::default(),
        }
    }

    /// Restore the completed-step counter when resuming from a checkpoint.
    /// The next [`step`](Self::step) rebuilds the operator and, because the
    /// per-window RNG stream is derived from `(seed, steps_done)`, a resume
    /// at an operator-window boundary (`steps % lambda_rpy == 0`) replays
    /// the uninterrupted run bit for bit.
    pub fn set_completed_steps(&mut self, steps: u64) {
        self.steps_done = steps;
        self.used = usize::MAX;
        self.op = None;
    }

    /// Completed BD steps.
    pub fn completed_steps(&self) -> u64 {
        self.steps_done
    }

    pub fn add_force(&mut self, force: impl Force + 'static) {
        self.forces.push(Box::new(force));
    }

    /// Add an already-boxed force (useful when the concrete type is chosen
    /// at run time, e.g. from a config file).
    pub fn add_force_boxed(&mut self, force: Box<dyn Force>) {
        self.forces.push(force);
    }

    pub fn system(&self) -> &ParticleSystem {
        &self.system
    }

    pub fn config(&self) -> &MatrixFreeConfig {
        &self.cfg
    }

    /// PME parameters in effect (`None` for open-boundary systems).
    pub fn pme_params(&self) -> Option<&PmeParams> {
        match &self.plans {
            MobilityPlans::Pme(p) => Some(p.params()),
            MobilityPlans::Tree(_) => None,
        }
    }

    /// Treecode parameters in effect (`None` for periodic systems).
    pub fn tree_params(&self) -> Option<&TreeParams> {
        match &self.plans {
            MobilityPlans::Tree(p) => Some(p.params()),
            MobilityPlans::Pme(_) => None,
        }
    }

    /// The shared setup plans this driver refreshes its operators from.
    pub fn plans(&self) -> &MobilityPlans {
        &self.plans
    }

    /// The PME operator, when the current window runs on one (periodic
    /// systems after the first step).
    pub fn pme_operator(&self) -> Option<&PmeOperator> {
        match &self.op {
            Some(MobilityOp::Pme(op)) => Some(op),
            _ => None,
        }
    }

    /// The treecode operator, when the current window runs on one
    /// (open-boundary systems after the first step).
    pub fn tree_operator(&self) -> Option<&TreeOperator> {
        match &self.op {
            Some(MobilityOp::Tree(op)) => Some(op),
            _ => None,
        }
    }

    /// Mutable PME operator of the current window (`None` before the first
    /// [`ensure_window`](Self::ensure_window) or on the tree backend). The
    /// ensemble engine drives the spread/FFT/interpolate stages directly.
    pub fn pme_operator_mut(&mut self) -> Option<&mut PmeOperator> {
        match &mut self.op {
            Some(MobilityOp::Pme(op)) => Some(op),
            _ => None,
        }
    }

    /// Mutable treecode operator of the current window.
    pub fn tree_operator_mut(&mut self) -> Option<&mut TreeOperator> {
        match &mut self.op {
            Some(MobilityOp::Tree(op)) => Some(op),
            _ => None,
        }
    }

    pub fn timings(&self) -> &MfTimings {
        &self.timings
    }

    /// Resident bytes of the current operator (0 before the first step).
    pub fn operator_memory_bytes(&self) -> usize {
        match &self.op {
            Some(MobilityOp::Pme(op)) => op.memory_bytes(),
            Some(MobilityOp::Tree(op)) => op.memory_bytes(),
            None => 0,
        }
    }

    /// Resident bytes of the PSE sampler (0 unless `SplitEwald` has run).
    pub fn pse_memory_bytes(&self) -> usize {
        self.pse.as_ref().map(hibd_pse::PseSampler::memory_bytes).unwrap_or(0)
    }

    /// The PSE sampler, if `SplitEwald` has built one (counter access for
    /// harnesses).
    pub fn pse_sampler(&self) -> Option<&PseSampler> {
        self.pse.as_ref()
    }

    /// Per-phase PME timings accumulated so far (resets the counters;
    /// zero on the treecode backend).
    pub fn take_pme_times(&mut self) -> PmePhaseTimes {
        match &mut self.op {
            Some(MobilityOp::Pme(op)) => op.take_times(),
            _ => PmePhaseTimes::default(),
        }
    }

    fn refresh_operator(&mut self) -> Result<(), BdError> {
        let lambda = self.cfg.lambda_rpy;
        let n3 = 3 * self.system.len();

        let mut op = match &self.plans {
            MobilityPlans::Pme(plans) => {
                let sw = telemetry::start(Phase::PmeSetup);
                let op = PmeOperator::with_plans(self.system.positions(), Arc::clone(plans));
                self.timings.setup += sw.stop();
                MobilityOp::Pme(Box::new(op))
            }
            MobilityPlans::Tree(plans) => {
                // `TreeOperator::with_plans` times itself under
                // `Phase::TreeBuild`.
                let op = TreeOperator::with_plans(self.system.positions(), Arc::clone(plans));
                self.timings.setup += op.timings().build;
                MobilityOp::Tree(Box::new(op))
            }
        };

        let sw = telemetry::start(Phase::Displacements);
        let mut rng = StdRng::seed_from_u64(window_seed(self.seed, self.steps_done));
        let kcfg =
            KrylovConfig { tol: self.cfg.e_k, max_iter: self.cfg.max_krylov, check_interval: 1 };
        let mut z = Vec::new();
        if self.cfg.displacement_mode != DisplacementMode::SplitEwald {
            z.resize(n3 * lambda, 0.0);
            fill_standard_normal(&mut rng, &mut z);
        }
        let (mut d, iterations) = match self.cfg.displacement_mode {
            DisplacementMode::BlockKrylov => {
                let (d, stats) = block_lanczos_sqrt(&mut op, &z, lambda, &kcfg)
                    .map_err(|e| BdError::Krylov(e.to_string()))?;
                (d, stats.iterations)
            }
            DisplacementMode::SingleKrylov => {
                let mut d = vec![0.0; n3 * lambda];
                let mut iters = 0;
                let mut zc = vec![0.0; n3];
                for col in 0..lambda {
                    for i in 0..n3 {
                        zc[i] = z[i * lambda + col];
                    }
                    let (g, stats) = lanczos_sqrt(&mut op, &zc, &kcfg)
                        .map_err(|e| BdError::Krylov(e.to_string()))?;
                    iters += stats.iterations;
                    for i in 0..n3 {
                        d[i * lambda + col] = g[i];
                    }
                }
                (d, iters)
            }
            DisplacementMode::SplitEwald => {
                match &mut self.pse {
                    Some(s) => s.rebuild(self.system.positions()).map_err(map_pse)?,
                    None => {
                        let MobilityPlans::Pme(plans) = &self.plans else {
                            unreachable!("SplitEwald is gated to periodic systems")
                        };
                        let pse_params = self.cfg.pse.resolve(plans.params());
                        self.pse = Some(
                            PseSampler::new(self.system.positions(), pse_params)
                                .map_err(map_pse)?,
                        );
                    }
                }
                let sampler = self.pse.as_mut().expect("just built");
                // Reuse the displacement block as the sampler output so the
                // steady-state refresh allocates nothing here.
                let mut d = std::mem::take(&mut self.disp);
                d.resize(n3 * lambda, 0.0);
                let stats =
                    sampler.sample_block(&mut rng, &mut d, lambda, &kcfg).map_err(map_pse)?;
                (d, stats.iterations)
            }
            DisplacementMode::Chebyshev => {
                // Estimate bounds once; reuse for all lambda evaluations.
                let bounds = hibd_krylov::estimate_spectrum_bounds(&mut op, 15)
                    .map_err(|e| BdError::Krylov(e.to_string()))?;
                let ccfg = ChebyshevConfig {
                    tol: self.cfg.e_k,
                    bounds: Some(bounds),
                    ..Default::default()
                };
                let mut d = vec![0.0; n3 * lambda];
                let mut iters = 15; // bound estimation applications
                let mut zc = vec![0.0; n3];
                for col in 0..lambda {
                    for i in 0..n3 {
                        zc[i] = z[i * lambda + col];
                    }
                    let (g, stats) = chebyshev_sqrt(&mut op, &zc, &ccfg)
                        .map_err(|e| BdError::Krylov(e.to_string()))?;
                    iters += stats.degree;
                    for i in 0..n3 {
                        d[i * lambda + col] = g[i];
                    }
                }
                (d, iters)
            }
        };
        let scale = (2.0 * self.cfg.kbt * self.cfg.dt).sqrt();
        for v in &mut d {
            *v *= scale;
        }
        self.timings.displacements += sw.stop();
        self.timings.krylov_iterations += iterations;
        self.op = Some(op);
        self.disp = d;
        self.used = 0;
        Ok(())
    }

    /// Make the current displacement window valid: rebuild the operator and
    /// redraw the Brownian block when the window is exhausted (or none has
    /// been built yet). After this returns `Ok`, the operator accessors are
    /// `Some` and [`advance_with_drift`](Self::advance_with_drift) may
    /// consume one displacement.
    pub fn ensure_window(&mut self) -> Result<(), BdError> {
        if self.used >= self.cfg.lambda_rpy || self.op.is_none() {
            self.refresh_operator()?;
        }
        Ok(())
    }

    /// Evaluate the total deterministic force on the current configuration.
    pub fn total_forces(&mut self) -> Vec<f64> {
        total_force(&mut self.forces, &self.system)
    }

    /// Propagate one step from an externally computed hydrodynamic drift
    /// `M f` (length `3n`): `r += drift dt + d_j`, consuming displacement
    /// `j` of the current window. Callers must have run
    /// [`ensure_window`](Self::ensure_window) this step; the ensemble
    /// engine computes the drift itself (batching the FFTs across
    /// replicas), while [`step`](Self::step) uses the operator directly.
    pub fn advance_with_drift(&mut self, drift: &[f64]) {
        let sw = telemetry::start(Phase::Stepping);
        let n3 = 3 * self.system.len();
        assert_eq!(drift.len(), n3);
        let lambda = self.cfg.lambda_rpy;
        let j = self.used;
        assert!(j < lambda, "displacement window exhausted; call ensure_window first");
        self.step_scratch.resize(n3, 0.0);
        for (i, (s, &d)) in self.step_scratch.iter_mut().zip(drift).enumerate() {
            *s = d * self.cfg.dt + self.disp[i * lambda + j];
        }
        self.used += 1;
        self.steps_done += 1;
        self.system.apply_displacements(&self.step_scratch);
        self.timings.stepping += sw.stop();
        self.timings.steps += 1;
    }

    /// Advance one BD step.
    pub fn step(&mut self) -> Result<(), BdError> {
        self.ensure_window()?;

        let sw = telemetry::start(Phase::Stepping);
        let n3 = 3 * self.system.len();
        let f = total_force(&mut self.forces, &self.system);
        let op = self.op.as_mut().expect("operator refreshed by ensure_window");
        self.drift_scratch.resize(n3, 0.0);
        op.apply(&f, &mut self.drift_scratch);
        self.timings.stepping += sw.stop();

        // Same buffer round-trips through `advance_with_drift` (which needs
        // `&mut self`), so the steady state stays allocation-free.
        let drift = std::mem::take(&mut self.drift_scratch);
        self.advance_with_drift(&drift);
        self.drift_scratch = drift;
        Ok(())
    }

    /// Advance `m` steps.
    pub fn run(&mut self, m: usize) -> Result<(), BdError> {
        for _ in 0..m {
            self.step()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::RepulsiveHarmonic;

    fn small_system(n: usize, phi: f64, seed: u64) -> ParticleSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        ParticleSystem::random_suspension(n, phi, &mut rng)
    }

    #[test]
    fn steps_advance_with_tuned_parameters() {
        let sys = small_system(30, 0.1, 1);
        let mut bd = MatrixFreeBd::new(sys, MatrixFreeConfig::default(), 42).unwrap();
        bd.add_force(RepulsiveHarmonic::default());
        bd.run(3).unwrap();
        assert_eq!(bd.timings().steps, 3);
        assert!(bd.timings().krylov_iterations > 0);
        assert!(bd.operator_memory_bytes() > 0);
        let l = bd.system().box_l;
        for p in bd.system().positions() {
            for c in 0..3 {
                assert!(p[c] >= 0.0 && p[c] < l);
            }
        }
    }

    #[test]
    fn operator_reused_within_lambda_window() {
        let sys = small_system(20, 0.1, 2);
        let cfg = MatrixFreeConfig { lambda_rpy: 4, ..Default::default() };
        let mut bd = MatrixFreeBd::new(sys, cfg, 5).unwrap();
        bd.run(4).unwrap();
        let setups_after_4 = bd.timings().setup;
        bd.run(3).unwrap(); // one more setup at step 5, reused for 6-7
        let setups_after_7 = bd.timings().setup;
        assert!(setups_after_7 > setups_after_4);
        bd.run(1).unwrap(); // step 8: still inside second window
        assert!((bd.timings().setup - setups_after_7).abs() < 1e-12);
    }

    #[test]
    fn zero_temperature_freezes_force_free_system() {
        let sys = small_system(15, 0.05, 3);
        let before: Vec<_> = sys.positions().to_vec();
        let cfg = MatrixFreeConfig { kbt: 0.0, ..Default::default() };
        let mut bd = MatrixFreeBd::new(sys, cfg, 9).unwrap();
        bd.run(2).unwrap();
        for (a, b) in before.iter().zip(bd.system().positions()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn rejects_mismatched_pme_box() {
        let sys = small_system(10, 0.1, 4);
        let cfg = MatrixFreeConfig {
            pme: Some(PmeParams { box_l: 999.0, ..PmeParams::default() }),
            ..Default::default()
        };
        assert!(matches!(MatrixFreeBd::new(sys, cfg, 1), Err(BdError::Setup(_))));
    }

    #[test]
    fn single_vector_mode_runs_and_costs_more_iterations() {
        let sys = small_system(15, 0.1, 8);
        let mut block = MatrixFreeBd::new(
            sys.clone(),
            MatrixFreeConfig { lambda_rpy: 8, ..Default::default() },
            3,
        )
        .unwrap();
        block.run(1).unwrap();
        let mut single = MatrixFreeBd::new(
            sys,
            MatrixFreeConfig {
                lambda_rpy: 8,
                displacement_mode: DisplacementMode::SingleKrylov,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        single.run(1).unwrap();
        // Block: iterations counted once per block application; single:
        // summed over the 8 separate solves.
        assert!(
            single.timings().krylov_iterations > block.timings().krylov_iterations,
            "single {} vs block {}",
            single.timings().krylov_iterations,
            block.timings().krylov_iterations
        );
    }

    #[test]
    fn chebyshev_mode_produces_comparable_displacement_scale() {
        // Same seed => same Gaussian block; the RMS displacement from the
        // Chebyshev path must match the block-Krylov path closely (both
        // approximate the same M^{1/2} z at tolerance e_k).
        let run = |mode| {
            let sys = small_system(15, 0.1, 9);
            let cfg = MatrixFreeConfig {
                lambda_rpy: 4,
                e_k: 1e-4,
                displacement_mode: mode,
                ..Default::default()
            };
            let mut bd = MatrixFreeBd::new(sys, cfg, 77).unwrap();
            bd.run(4).unwrap();
            bd.system().unwrapped().to_vec()
        };
        let a = run(DisplacementMode::BlockKrylov);
        let b = run(DisplacementMode::Chebyshev);
        let mut num = 0.0;
        let mut den = 0.0;
        for (p, q) in a.iter().zip(&b) {
            num += (*p - *q).norm2();
            den += p.norm2().max(q.norm2());
        }
        let rel = (num / den.max(1e-300)).sqrt();
        assert!(rel < 0.05, "trajectory mismatch {rel}");
    }

    #[test]
    fn split_ewald_mode_produces_comparable_displacement_scale() {
        // SplitEwald consumes a different Gaussian stream (spectral noise +
        // near-field block instead of one dense block), so trajectories
        // cannot match bitwise; both paths sample N(0, 2 kBT M dt), so the
        // RMS displacement per step must agree to within MC scatter.
        let rms = |mode| {
            let sys = small_system(15, 0.1, 9);
            let start: Vec<_> = sys.positions().to_vec();
            let cfg = MatrixFreeConfig {
                lambda_rpy: 8,
                e_k: 1e-4,
                displacement_mode: mode,
                ..Default::default()
            };
            let mut bd = MatrixFreeBd::new(sys, cfg, 77).unwrap();
            bd.run(8).unwrap();
            let mut sum = 0.0;
            for (p, q) in bd.system().unwrapped().iter().zip(&start) {
                sum += (*p - *q).norm2();
            }
            (sum / start.len() as f64).sqrt()
        };
        let block = rms(DisplacementMode::BlockKrylov);
        let pse = rms(DisplacementMode::SplitEwald);
        let ratio = pse / block;
        assert!((0.7..1.4).contains(&ratio), "RMS ratio {ratio} (pse {pse} vs block {block})");
    }

    #[test]
    fn resume_at_window_boundary_matches_uninterrupted_run() {
        // The window-seeded RNG makes a resume at steps % lambda == 0
        // replay the uninterrupted Gaussian stream exactly, for every
        // displacement mode.
        for mode in [DisplacementMode::BlockKrylov, DisplacementMode::SplitEwald] {
            let cfg =
                MatrixFreeConfig { lambda_rpy: 4, displacement_mode: mode, ..Default::default() };
            let sys = small_system(12, 0.1, 21);

            let mut full = MatrixFreeBd::new(sys.clone(), cfg, 55).unwrap();
            full.add_force(RepulsiveHarmonic::default());
            full.run(8).unwrap();

            let mut head = MatrixFreeBd::new(sys, cfg, 55).unwrap();
            head.add_force(RepulsiveHarmonic::default());
            head.run(4).unwrap();
            let mut tail = MatrixFreeBd::new(head.system().clone(), cfg, 55).unwrap();
            tail.add_force(RepulsiveHarmonic::default());
            tail.set_completed_steps(4);
            tail.run(4).unwrap();
            assert_eq!(tail.completed_steps(), 8);

            for (a, b) in full.system().positions().iter().zip(tail.system().positions()) {
                for c in 0..3 {
                    assert_eq!(a[c], b[c], "mode {mode:?}: resumed trajectory diverged");
                }
            }
        }
    }

    fn small_cluster(n: usize, phi: f64, seed: u64) -> ParticleSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        ParticleSystem::random_cluster_with(n, phi, 1.0, 1.0, &mut rng)
    }

    #[test]
    fn open_boundary_steps_on_the_tree_operator() {
        let sys = small_cluster(25, 0.1, 13);
        let cfg = MatrixFreeConfig { lambda_rpy: 4, ..Default::default() };
        let mut bd = MatrixFreeBd::new(sys, cfg, 42).unwrap();
        bd.add_force(RepulsiveHarmonic::default());
        bd.run(5).unwrap();
        assert_eq!(bd.timings().steps, 5);
        assert!(bd.timings().krylov_iterations > 0);
        assert!(bd.pme_params().is_none());
        let tp = *bd.tree_params().expect("open driver resolved tree params");
        assert!((tp.a - 1.0).abs() < 1e-15 && (tp.eta - 1.0).abs() < 1e-15);
        let op = bd.tree_operator().expect("tree operator built");
        assert!(op.interactions_per_apply() > 0);
        assert!(bd.operator_memory_bytes() > 0);
        for p in bd.system().positions() {
            for c in 0..3 {
                assert!(p[c].is_finite());
            }
        }
    }

    #[test]
    fn open_boundary_supports_every_matvec_displacement_mode() {
        for mode in [
            DisplacementMode::BlockKrylov,
            DisplacementMode::SingleKrylov,
            DisplacementMode::Chebyshev,
        ] {
            let sys = small_cluster(12, 0.1, 19);
            let cfg =
                MatrixFreeConfig { lambda_rpy: 3, displacement_mode: mode, ..Default::default() };
            let mut bd = MatrixFreeBd::new(sys, cfg, 7).unwrap();
            bd.run(3).unwrap();
            assert_eq!(bd.timings().steps, 3, "mode {mode:?}");
        }
    }

    #[test]
    fn open_boundary_rejects_split_ewald_and_pme_params() {
        let cfg = MatrixFreeConfig {
            displacement_mode: DisplacementMode::SplitEwald,
            ..Default::default()
        };
        assert!(matches!(
            MatrixFreeBd::new(small_cluster(8, 0.1, 2), cfg, 1),
            Err(BdError::Setup(_))
        ));
        let cfg = MatrixFreeConfig { pme: Some(PmeParams::default()), ..Default::default() };
        assert!(matches!(
            MatrixFreeBd::new(small_cluster(8, 0.1, 2), cfg, 1),
            Err(BdError::Setup(_))
        ));
    }

    #[test]
    fn open_resume_at_window_boundary_matches_uninterrupted_run() {
        // Pin the tree parameters: the tuner would re-measure on the tail's
        // (different) configuration and could in principle pick another
        // schedule entry.
        let cfg = MatrixFreeConfig {
            lambda_rpy: 3,
            tree: Some(TreeParams::default()),
            ..Default::default()
        };
        let sys = small_cluster(10, 0.1, 23);

        let mut full = MatrixFreeBd::new(sys.clone(), cfg, 91).unwrap();
        full.add_force(RepulsiveHarmonic::default());
        full.run(6).unwrap();

        let mut head = MatrixFreeBd::new(sys, cfg, 91).unwrap();
        head.add_force(RepulsiveHarmonic::default());
        head.run(3).unwrap();
        let mut tail = MatrixFreeBd::new(head.system().clone(), cfg, 91).unwrap();
        tail.add_force(RepulsiveHarmonic::default());
        tail.set_completed_steps(3);
        tail.run(3).unwrap();

        for (a, b) in full.system().positions().iter().zip(tail.system().positions()) {
            for c in 0..3 {
                assert_eq!(a[c], b[c], "open resumed trajectory diverged");
            }
        }
    }

    #[test]
    fn deterministic_trajectories_for_fixed_seed() {
        let run = |seed| {
            let sys = small_system(12, 0.1, 6);
            let mut bd = MatrixFreeBd::new(sys, MatrixFreeConfig::default(), seed).unwrap();
            bd.add_force(RepulsiveHarmonic::default());
            bd.run(3).unwrap();
            bd.system().positions().to_vec()
        };
        let a = run(123);
        let b = run(123);
        let c = run(124);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        assert!(a.iter().zip(&c).any(|(x, y)| (*x - *y).norm() > 1e-12));
    }
}
